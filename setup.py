"""Legacy setup shim for offline editable installs.

The execution environment ships setuptools 65.5 without ``wheel``, which
breaks PEP 660 editable installs; ``pip install -e .`` then falls back to
``setup.py develop``, which this file provides.  All metadata lives in
pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
