#!/usr/bin/env python
"""VMC with structural observables and a pseudopotential local energy.

The measurement stage of paper Sec. III, expanded: after each sweep the
walker accumulates the electron pair correlation g(r) and the static
structure factor S(k), and evaluates a local energy whose nonlocal
pseudopotential term drives the V kernel over spherical quadrature
points (the paper's "V is used with pseudopotentials").

Run:  python examples/observables_vmc.py
"""

import numpy as np

from repro.core import CubicBspline1D
from repro.lattice import Cell, PlaneWaveOrbitalSet, wigner_seitz_radius
from repro.qmc import (
    LocalEnergy,
    NonlocalPseudopotential,
    PairCorrelation,
    ParticleSet,
    SlaterJastrow,
    SplineOrbitalSet,
    StructureFactor,
    WalkerRngPool,
    make_polynomial_radial,
    sweep,
)


def main():
    pool = WalkerRngPool(7)
    rng = pool.next_rng()
    cell = Cell.cubic(7.0)
    n_orb = 8
    pw = PlaneWaveOrbitalSet(cell, n_orb)
    spos = SplineOrbitalSet.from_orbital_functions(cell, pw, (14, 14, 14))
    ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((4, 3))))
    electrons = ParticleSet.random("e", cell, 2 * n_orb, rng)
    rcut = 0.9 * wigner_seitz_radius(cell)
    wf = SlaterJastrow(
        electrons, ions, spos,
        make_polynomial_radial(0.4, rcut),
        make_polynomial_radial(0.6, rcut),
    )

    pp = NonlocalPseudopotential(
        CubicBspline1D.fit_function(
            lambda r: 0.3 * (1 - r / 1.8) ** 3, 1.8, bc="clamped", deriv0=-0.5
        ),
        l=0,
        rng=pool.next_rng(),
    )
    estimator = LocalEnergy(wf, pseudopotential=pp)
    gofr = PairCorrelation(cell, len(electrons), n_bins=12)
    sk = StructureFactor(cell, n_kvectors=10)

    print("sweep  acc   E_local      V-kernel evals (PP)")
    for step in range(12):
        acc, att = sweep(wf, 0.25, rng)
        if step < 4:
            continue  # warm-up
        e_l = estimator.total()
        gofr.accumulate(wf.ee_table._target if hasattr(wf.ee_table, "_target") else wf.ee_table)
        sk.accumulate(wf.electrons.positions)
        print(f"{step:5d}  {acc/att:.2f}  {e_l:+10.3f}  {pp.n_v_evals:6d}")

    r, g = gofr.estimate()
    print("\npair correlation g(r):")
    for ri, gi in zip(r[::3], g[::3]):
        bar = "#" * int(min(gi, 3.0) * 20)
        print(f"  r={ri:5.2f}  g={gi:5.2f}  {bar}")

    k, s = sk.estimate()
    print("\nstructure factor S(k):")
    for ki, si in zip(k[:6], s[:6]):
        print(f"  |k|={ki:5.2f}  S={si:5.2f}")

    print(
        "\nJastrow repulsion should suppress g(r) at small r versus the "
        "uncorrelated value of 1."
    )


if __name__ == "__main__":
    main()
