#!/usr/bin/env python
"""Strong scaling within a walker — the paper's Opt C, on modelled hardware.

Reproduces the two headline parallelization results:

* Fig. 9 — speedup of V/VGL/VGH on KNL at N=2048 as nth threads
  cooperate on each walker (walkers per node reduced by the same nth);
* the "more than 14x reduction in the time-to-solution on 16 KNL nodes"
  claim — nth=16 at ~90% efficiency means a walker finishes ~14x sooner.

Also prints the nested-threading rows of Table IV for all four machines.

Run:  python examples/strong_scaling_model.py
"""

from repro.hwsim import MACHINES, BsplinePerfModel


def fig9() -> None:
    print("== Fig 9: KNL nested-threading speedup at N=2048 (model) ==")
    model = BsplinePerfModel(MACHINES["KNL"])
    print(f"  {'nth':>4s} {'V':>7s} {'VGL':>7s} {'VGH':>7s} {'VGH eff':>8s} {'Nb':>5s}")
    for nth in (1, 2, 4, 8, 16):
        row = []
        nb = None
        for kern in ("v", "vgl", "vgh"):
            ref = model.speedups(kern, 2048, 1)
            s = model.speedups(kern, 2048, nth)
            row.append(s["C"] / ref["B"])
            nb = s["nb_nested"]
        eff = row[2] / nth
        print(
            f"  {nth:4d} {row[0]:7.2f} {row[1]:7.2f} {row[2]:7.2f} "
            f"{eff:8.1%} {nb:5d}"
        )
    s16 = model.speedups("vgh", 2048, 16)
    ref = model.speedups("vgh", 2048, 1)
    print(
        f"\n  VGH at nth=16: {s16['C'] / ref['B']:.1f}x per-walker speedup "
        "(paper: >14x across 16 nodes at ~90% efficiency)\n"
    )


def table4_row_c() -> None:
    print("== Table IV row C: nested speedups vs AoS baseline (model) ==")
    nth = {"BDW": 2, "KNC": 8, "KNL": 16, "BGQ": 2}
    paper = {
        ("v", "BDW"): 3.4, ("v", "KNC"): 5.9, ("v", "KNL"): 18.7, ("v", "BGQ"): 2.0,
        ("vgl", "BDW"): 17.2, ("vgl", "KNC"): 42.1, ("vgl", "KNL"): 80.6,
        ("vgl", "BGQ"): 15.8,
        ("vgh", "BDW"): 6.4, ("vgh", "KNC"): 35.2, ("vgh", "KNL"): 33.1,
        ("vgh", "BGQ"): 5.2,
    }
    print(f"  {'kernel':>6s} {'machine':>8s} {'nth':>4s} {'model':>7s} {'paper':>7s}")
    for kern in ("v", "vgl", "vgh"):
        for name in ("BDW", "KNC", "KNL", "BGQ"):
            model = BsplinePerfModel(MACHINES[name])
            s = model.speedups(kern, 2048, nth[name])
            print(
                f"  {kern.upper():>6s} {name:>8s} {nth[name]:4d} "
                f"{s['C']:7.1f} {paper[(kern, name)]:7.1f}"
            )


if __name__ == "__main__":
    fig9()
    table4_row_c()
