#!/usr/bin/env python
"""Tile-size selection: measured wisdom on this host, modelled on paper HW.

The paper (Sec. VI) plans "an auto-tuning capability using miniQMC to
guide the production runs similar to FFTW's solution using wisdom files".
This example does both halves:

1. **live** — run the measurement-based auto-tuner on this host and
   persist the result to a wisdom file;
2. **model** — ask the calibrated hardware model for the optimal Nb on
   each of the paper's four machines, reproducing Fig. 7(c)'s peaks
   (BDW 64, KNC/KNL 512, BG/Q ~64) and the working-set reasons for them.

Run:  python examples/tile_autotuning.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import Grid3D, Wisdom, autotune_tile_size
from repro.hwsim import (
    MACHINES,
    BsplinePerfModel,
    max_accum_fitting_tile,
    max_llc_fitting_tile,
)


def live_half() -> None:
    print("== live: auto-tuning Nb on this host ==")
    grid = Grid3D(16, 16, 16)
    rng = np.random.default_rng(3)
    P = rng.standard_normal((16, 16, 16, 128)).astype(np.float32)
    best, timings = autotune_tile_size(
        grid, P, kernel="vgh", candidates=[16, 32, 64, 128], n_samples=6
    )
    for nb, secs in sorted(timings.items()):
        marker = "  <-- winner" if nb == best else ""
        print(f"  Nb={nb:4d}: {secs * 1e3:8.2f} ms/batch{marker}")

    with tempfile.TemporaryDirectory() as tmp:
        wisdom = Wisdom(Path(tmp) / "wisdom.json")
        wisdom.record("vgh", 128, 16**3, best)
        again = Wisdom(Path(tmp) / "wisdom.json")
        print(f"  persisted + recalled: Nb = {again.lookup('vgh', 128, 16 ** 3)}")
    print("  (host optimum reflects Python per-tile dispatch, not caches)\n")


def model_half() -> None:
    print("== model: optimal Nb on the paper's machines (N=2048, VGH) ==")
    print(f"  {'machine':8s} {'model Nb':>8s} {'paper Nb':>8s} "
          f"{'LLC-fit Nb':>11s} {'accum-fit Nb':>13s}")
    paper = {"BDW": 64, "KNC": 512, "KNL": 512, "BGQ": 64}
    for name, machine in MACHINES.items():
        model = BsplinePerfModel(machine)
        best, _ = model.best_tile_size("vgh", 2048)
        llc = max_llc_fitting_tile(machine, "vgh", 2048)
        accum = max_accum_fitting_tile(machine, "vgh", 2048)
        print(
            f"  {name:8s} {best:8d} {paper[name]:8d} "
            f"{str(llc):>11s} {accum:13d}"
        )
    print(
        "\n  Mechanisms (paper Sec. VI-B): shared-LLC machines peak where\n"
        "  the 4*Ng*Nb slab fits the LLC; KNC/KNL peak where the per-thread\n"
        "  output set (40*Nb bytes for VGH) still fits the accumulation\n"
        "  budget while the prefactor cost is amortized."
    )


if __name__ == "__main__":
    live_half()
    model_half()
