#!/usr/bin/env python
"""Quickstart: build a B-spline orbital table and evaluate it every way.

Covers the core public API in ~60 lines:

1. sample synthetic periodic orbitals on a grid,
2. solve for the tricubic B-spline coefficient table,
3. evaluate V / VGL / VGH through all four engine layouts,
4. check they agree and time them against each other.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro.core import (
    BsplineAoS,
    BsplineAoSoA,
    BsplineFused,
    BsplineSoA,
    Grid3D,
    solve_coefficients_3d,
)
from repro.lattice import Cell, PlaneWaveOrbitalSet


def main():
    # 1. A cubic cell with 64 synthetic orbitals sampled on a 20^3 grid.
    cell = Cell.cubic(8.0)
    orbitals = PlaneWaveOrbitalSet(cell, n_orbitals=64)
    nx = ny = nz = 20
    samples = orbitals.values_on_grid(nx, ny, nz)
    print(f"orbital samples: {samples.shape}  ({samples.nbytes / 1e6:.1f} MB)")

    # 2. The read-only coefficient table P[nx][ny][nz][N] (paper Fig. 5).
    P = solve_coefficients_3d(samples, dtype=np.float32)
    grid = Grid3D(nx, ny, nz)  # fractional coordinates: unit box

    # 3. One engine per data layout of the paper.
    engines = {
        "AoS   (baseline)": BsplineAoS(grid, P),
        "SoA   (Opt A)": BsplineSoA(grid, P),
        "AoSoA (Opt B, Nb=16)": BsplineAoSoA(grid, P, tile_size=16),
        "fused (Python-fast)": BsplineFused(grid, P),
    }

    rng = np.random.default_rng(7)
    positions = grid.random_positions(32, rng)

    # 4. Evaluate VGH everywhere; compare against the AoS answer and time.
    reference = None
    print(f"\n{'engine':24s} {'ms/32 evals':>12s} {'max|dv| vs AoS':>16s}")
    for name, eng in engines.items():
        out = eng.new_output("vgh")
        t0 = time.perf_counter()
        for x, y, z in positions:
            eng.vgh(x, y, z, out)
        ms = (time.perf_counter() - t0) * 1e3
        values = out.as_canonical()["v"]
        if reference is None:
            reference = values
            err = 0.0
        else:
            err = float(np.abs(values - reference).max())
        print(f"{name:24s} {ms:12.2f} {err:16.2e}")

    print("\nAll layouts compute identical orbitals; only memory moves.")


if __name__ == "__main__":
    main()
