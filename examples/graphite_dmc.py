#!/usr/bin/env python
"""Diffusion Monte Carlo on a graphite-flavoured system.

The paper's motivating workload (Sec. I, Fig. 1): DMC of AB-stacked
graphite with B-spline orbitals.  This example runs the whole pipeline at
laptop scale — hexagonal cell, synthetic periodic orbitals fitted to a
tricubic B-spline table, Slater-Jastrow trial function, VMC equilibration,
then the three-stage DMC loop (drift-diffusion / measurement / branching)
of paper Sec. III.

Run:  python examples/graphite_dmc.py
"""

import numpy as np

from repro.lattice import (
    PlaneWaveOrbitalSet,
    graphite_basis_frac,
    graphite_unit_cell,
    wigner_seitz_radius,
)
from repro.qmc import (
    DmcWalker,
    ParticleSet,
    SlaterJastrow,
    SplineOrbitalSet,
    WalkerRngPool,
    make_polynomial_radial,
    run_dmc,
    run_vmc,
)


def build_walker(pool: WalkerRngPool, n_orbitals: int = 8) -> SlaterJastrow:
    """One graphite walker: 4-atom cell, 2N electrons, B-spline SPOs."""
    cell = graphite_unit_cell()
    rng = pool.next_rng()
    orbitals = PlaneWaveOrbitalSet(cell, n_orbitals)
    spos = SplineOrbitalSet.from_orbital_functions(
        cell, orbitals, grid_shape=(14, 14, 20), engine="fused"
    )
    ions = ParticleSet("C", cell, cell.frac_to_cart(graphite_basis_frac()))
    electrons = ParticleSet.random("e", cell, 2 * n_orbitals, rng)
    rcut = 0.9 * wigner_seitz_radius(cell)
    return SlaterJastrow(
        electrons,
        ions,
        spos,
        j1_radial=make_polynomial_radial(0.4, rcut),
        j2_radial=make_polynomial_radial(0.6, rcut),
        layout="soa",
    )


def main():
    pool = WalkerRngPool(seed=2017)
    n_walkers = 4
    print(f"building {n_walkers} graphite walkers (16 electrons each) ...")
    walkers = []
    for w in range(n_walkers):
        wf = build_walker(pool)
        rng = pool.next_rng()
        # VMC equilibration (paper: walkers thermalize before DMC).
        res = run_vmc(wf, rng, n_steps=5, n_warmup=5, tau=0.3)
        print(
            f"  walker {w}: VMC acceptance {res.acceptance:.2f}, "
            f"E_L = {res.energy_mean:+.2f} ± {res.energy_error:.2f} Ha"
        )
        walkers.append(DmcWalker(wf=wf, rng=rng))

    print("\nrunning DMC (drift-diffusion / measure / branch) ...")
    result = run_dmc(walkers, pool, n_generations=10, tau=0.02)
    for gen, (e, pop, et) in enumerate(
        zip(result.energy_trace, result.population_trace, result.e_trial_trace)
    ):
        print(f"  gen {gen:2d}: <E_L> = {e:+8.3f} Ha   pop = {pop:3d}   E_T = {et:+8.3f}")
    print(
        f"\nDMC energy (2nd half average): {result.energy_mean:+.3f} Ha, "
        f"acceptance {result.acceptance:.2f}"
    )


if __name__ == "__main__":
    main()
