"""One-call reproduction of each paper table/figure as formatted text.

The benchmark suite (``benchmarks/``) asserts shapes and measures; this
module is the *presentation* layer behind the command-line interface:

    python -m repro table4
    python -m repro fig9
    python -m repro all

Each ``repro_*`` function returns the printable table(s) for one paper
artifact, generated from the same models the benches use.
"""

from __future__ import annotations

import numpy as np

from repro.hwsim import KNL, MACHINES, BsplinePerfModel, strong_scaling_curve
from repro.perf import format_bars, format_series, format_table
from repro.roofline import roofline_points

__all__ = [
    "repro_table1",
    "repro_table4",
    "repro_fig7a",
    "repro_fig7b",
    "repro_fig7c",
    "repro_fig8",
    "repro_fig9",
    "repro_fig10",
    "repro_multinode",
    "ALL_TARGETS",
]

SWEEP = (128, 256, 512, 1024, 2048, 4096)
NTH = {"BDW": 2, "KNC": 8, "KNL": 16, "BGQ": 2}
PAPER_NB = {"BDW": 64, "KNC": 512, "KNL": 512, "BGQ": 64}


def _models() -> dict[str, BsplinePerfModel]:
    return {name: BsplinePerfModel(m) for name, m in MACHINES.items()}


def repro_table1() -> str:
    """Table I — system configurations."""
    rows = []
    for name in ("BDW", "KNC", "KNL", "BGQ"):
        m = MACHINES[name]
        rows.append(
            [name, m.cores, m.smt, m.simd_bits, m.freq_ghz,
             m.l1d_bytes // 1024, m.l2_bytes // 1024,
             m.llc_bytes // (1024 * 1024), m.stream_bw / 1e9,
             round(m.peak_sp_gflops)]
        )
    return format_table(
        ["machine", "cores", "smt", "simd(b)", "GHz", "L1KB", "L2KB",
         "LLCMB", "BW GB/s", "peakSP GF"],
        rows,
        title="Table I — system configurations",
    )


def repro_table4() -> str:
    """Table IV — A/B/C speedup matrix at N=2048 (model)."""
    models = _models()
    rows = []
    for kern in ("v", "vgl", "vgh"):
        for name in ("BDW", "KNC", "KNL", "BGQ"):
            s = models[name].speedups(kern, 2048, NTH[name])
            rows.append(
                [kern.upper(), name, round(s["A"], 2), round(s["B"], 2),
                 round(s["C"], 2), f"{NTH[name]}({s['nb_nested']})"]
            )
    return format_table(
        ["kernel", "machine", "A", "B", "C", "nth(Nb)"],
        rows,
        title="Table IV — modelled speedups vs AoS baseline, N=2048",
    )


def repro_fig7a() -> str:
    """Fig. 7(a) — AoS vs SoA VGH throughput over the N sweep."""
    models = _models()
    parts = []
    for name in ("BDW", "KNC", "KNL", "BGQ"):
        model = models[name]
        aos = [model.evaluate("vgh", "aos", n).throughput for n in SWEEP]
        soa = [model.evaluate("vgh", "soa", n).throughput for n in SWEEP]
        parts.append(
            format_series(
                "N", list(SWEEP),
                {"T(AoS)": aos, "T(SoA)": soa,
                 "speedup": list(np.asarray(soa) / aos)},
                title=f"Fig 7a [model:{name}]",
            )
        )
    return "\n\n".join(parts)


def repro_fig7b() -> str:
    """Fig. 7(b) — SoA vs AoSoA VGH throughput over the N sweep."""
    models = _models()
    parts = []
    for name in ("BDW", "KNC", "KNL", "BGQ"):
        model = models[name]
        nb = PAPER_NB[name]
        soa = [model.evaluate("vgh", "soa", n).throughput for n in SWEEP]
        til = [model.evaluate("vgh", "aosoa", n, min(nb, n)).throughput for n in SWEEP]
        parts.append(
            format_series(
                "N", list(SWEEP),
                {"T(SoA)": soa, f"T(AoSoA {nb})": til,
                 "speedup": list(np.asarray(til) / soa)},
                title=f"Fig 7b [model:{name}]",
            )
        )
    return "\n\n".join(parts)


def repro_fig7c() -> str:
    """Fig. 7(c) — VGH throughput vs tile size at N=2048."""
    models = _models()
    parts = []
    for name in ("BDW", "KNC", "KNL", "BGQ"):
        best, sweep = models[name].best_tile_size("vgh", 2048)
        nbs = sorted(sweep)
        parts.append(
            format_bars(
                [f"Nb={nb}" for nb in nbs],
                [sweep[nb] for nb in nbs],
                title=f"Fig 7c [model:{name}] T(VGH) vs Nb — peak {best} "
                f"(paper {PAPER_NB[name]})",
            )
        )
    return "\n\n".join(parts)


def repro_fig8() -> str:
    """Fig. 8 — KNL normalized speedups over the N sweep."""
    model = _models()["KNL"]
    series = {}
    for kern in ("v", "vgl", "vgh"):
        vals = []
        for n in SWEEP:
            base = model.evaluate(kern, "aos", n)
            nb, _ = model.best_tile_size(kern, n)
            vals.append(
                model.evaluate(kern, "aosoa", n, nb).evals_per_sec
                / base.evals_per_sec
            )
        series[kern.upper()] = vals
    return format_series(
        "N", list(SWEEP), series,
        title="Fig 8 — KNL speedups vs AoS baseline [model]",
    )


def repro_fig9() -> str:
    """Fig. 9 — nested-threading scaling on KNL at N=2048."""
    model = _models()["KNL"]
    rows = []
    ref = model.speedups("vgh", 2048, 1)
    speedups = []
    for nth in (1, 2, 4, 8, 16):
        s = model.speedups("vgh", 2048, nth)
        spd = s["C"] / ref["B"]
        speedups.append(spd)
        rows.append([nth, round(spd, 2), round(spd / nth, 3), s["nb_nested"]])
    table = format_table(
        ["nth", "speedup", "efficiency", "Nb"],
        rows,
        title="Fig 9 — KNL VGH nested-threading scaling [model]",
    )
    bars = format_bars(
        [f"nth={n}" for n in (1, 2, 4, 8, 16)], speedups
    )
    return table + "\n" + bars


def repro_fig10() -> str:
    """Fig. 10 — roofline points for BDW and KNL."""
    parts = []
    for name in ("BDW", "KNL"):
        pts = roofline_points(MACHINES[name])
        rows = [[p.step, p.ai, p.gflops, p.attainable_gflops, p.efficiency]
                for p in pts]
        parts.append(
            format_table(
                ["step", "AI", "GFLOP/s", "roof", "eff"],
                rows,
                title=f"Fig 10 — VGH roofline, N=2048 [model:{name}]",
            )
        )
    return "\n\n".join(parts)


def repro_multinode() -> str:
    """Sec. I headline — 16-node KNL time-to-solution."""
    pts = strong_scaling_curve(KNL, "vgh", 2048)
    rows = [[p.n_nodes, p.nth, p.tile_size, round(p.time_reduction, 2),
             round(p.parallel_efficiency, 3)] for p in pts]
    return format_table(
        ["nodes", "nth", "Nb", "time reduction", "efficiency"],
        rows,
        title="Multi-node strong scaling [model:KNL] (paper: >14x on 16 nodes)",
    )


#: CLI target registry: name -> (function, description).
ALL_TARGETS = {
    "table1": (repro_table1, "system configurations"),
    "table4": (repro_table4, "A/B/C speedup matrix at N=2048"),
    "fig7a": (repro_fig7a, "AoS vs SoA throughput sweep"),
    "fig7b": (repro_fig7b, "SoA vs AoSoA throughput sweep"),
    "fig7c": (repro_fig7c, "tile-size sweep at N=2048"),
    "fig8": (repro_fig8, "KNL normalized speedups"),
    "fig9": (repro_fig9, "nested-threading scaling"),
    "fig10": (repro_fig10, "roofline analysis"),
    "multinode": (repro_multinode, "16-node time-to-solution"),
}
