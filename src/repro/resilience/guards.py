"""Numerical guardrails: NaN/Inf detection, repair, and population control.

The failure modes these guard against are silent by default: a poisoned
coefficient read propagates NaN through V/VGL/VGH into ratios and local
energies, and a DMC population that collapses or explodes wastes the run
long before anything crashes.  Each guard turns the silent failure into a
configurable policy:

* :func:`check_finite` / :func:`nonfinite_counts` — the primitive scan;
* :class:`GuardedEngine` — wraps any B-spline engine and validates every
  kernel output, with policy ``"raise"`` (loud :class:`GuardViolation`),
  ``"recompute"`` (repair the output through the
  :mod:`repro.core.refimpl` reference path against a pristine table), or
  ``"count"`` (record and continue — for monitoring);
* :class:`PopulationGuard` — DMC collapse/explosion control that rescues
  toward the target population instead of crashing: explosion is
  truncated to the cap, extinction is rebuilt by cloning the
  best surviving finite-energy walkers.

Walker-energy policy (NaN local energy → raise / recompute / drop-and-
rebranch) is applied inside :func:`repro.qmc.dmc.run_dmc` and
:func:`repro.qmc.vmc.run_vmc` via :class:`GuardConfig`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core import refimpl
from repro.obs import OBS

__all__ = [
    "GuardViolation",
    "GuardConfig",
    "nonfinite_counts",
    "check_finite",
    "GuardedEngine",
    "PopulationGuard",
]

_ENERGY_POLICIES = ("raise", "drop", "recompute", "ignore")
_OUTPUT_POLICIES = ("raise", "recompute", "count")


class GuardViolation(RuntimeError):
    """A numerical guardrail tripped (NaN/Inf where none is allowed)."""


@dataclass
class GuardConfig:
    """Guardrail policy knobs consumed by the QMC drivers.

    Attributes
    ----------
    on_nonfinite_energy:
        What a driver does with a walker whose local energy is NaN/Inf:
        ``"raise"`` (default — fail loudly), ``"recompute"`` (rebuild the
        wavefunction's derived state and re-measure once, then drop if
        still bad), ``"drop"`` (give the walker branching weight zero so
        the ensemble rebranches over healthy walkers), or ``"ignore"``
        (legacy pass-through).
    on_nonfinite_output:
        Kernel-output policy for :class:`GuardedEngine` construction by
        drivers: ``"raise"``, ``"recompute"``, or ``"count"``.
    max_population_factor:
        DMC explosion cap as a multiple of the target population.
    """

    on_nonfinite_energy: str = "raise"
    on_nonfinite_output: str = "raise"
    max_population_factor: int = 4

    def __post_init__(self) -> None:
        if self.on_nonfinite_energy not in _ENERGY_POLICIES:
            raise ValueError(
                f"on_nonfinite_energy must be one of {_ENERGY_POLICIES}, "
                f"got {self.on_nonfinite_energy!r}"
            )
        if self.on_nonfinite_output not in _OUTPUT_POLICIES:
            raise ValueError(
                f"on_nonfinite_output must be one of {_OUTPUT_POLICIES}, "
                f"got {self.on_nonfinite_output!r}"
            )


def nonfinite_counts(**arrays: np.ndarray) -> dict[str, int]:
    """Count of non-finite entries per named array (empty dict = clean)."""
    bad = {}
    for name, arr in arrays.items():
        n = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
        if n:
            bad[name] = n
    return bad


def check_finite(context: str, **arrays: np.ndarray) -> None:
    """Raise :class:`GuardViolation` naming every non-finite output stream."""
    bad = nonfinite_counts(**arrays)
    if bad:
        detail = ", ".join(f"{k}: {v} bad values" for k, v in sorted(bad.items()))
        raise GuardViolation(f"non-finite values in {context} ({detail})")


# -- guarded kernel engine ---------------------------------------------------


def _output_arrays(kind: str, out) -> dict[str, np.ndarray]:
    """The streams kernel ``kind`` writes into ``out``, by layout."""
    if getattr(out, "layout", None) == "aosoa":
        arrays = {}
        for t, tile in enumerate(out.tiles):
            for name, arr in _output_arrays(kind, tile).items():
                arrays[f"tile{t}.{name}"] = arr
        return arrays
    arrays = {"v": out.v}
    if kind in ("vgl", "vgh"):
        arrays["g"] = out.g
    if kind == "vgl":
        arrays["l"] = out.l
    if kind == "vgh":
        arrays["h"] = out.h
    return arrays


def _write_reference(kind: str, out, v, g, lh) -> None:
    """Write reference-path results into an output buffer of any layout."""
    layout = getattr(out, "layout", None)
    if layout == "aosoa":
        nb = out.tile_size
        for t, tile in enumerate(out.tiles):
            sl = slice(t * nb, (t + 1) * nb)
            _write_reference(
                kind,
                tile,
                v[sl],
                None if g is None else g[:, sl],
                None if lh is None else lh[..., sl],
            )
        return
    dtype = out.dtype
    out.v[:] = v.astype(dtype)
    if kind == "v":
        return
    if layout == "aos":
        out.g[:] = g.T.reshape(-1).astype(dtype)
        if kind == "vgl":
            out.l[:] = lh.astype(dtype)
        else:
            out.h[:] = np.moveaxis(lh, 2, 0).reshape(-1).astype(dtype)
    else:  # soa
        out.g[:] = g.astype(dtype)
        if kind == "vgl":
            out.l[:] = lh.astype(dtype)
        else:
            h = lh
            out.h[0] = h[0, 0].astype(dtype)
            out.h[1] = h[0, 1].astype(dtype)
            out.h[2] = h[0, 2].astype(dtype)
            out.h[3] = h[1, 1].astype(dtype)
            out.h[4] = h[1, 2].astype(dtype)
            out.h[5] = h[2, 2].astype(dtype)


class GuardedEngine:
    """Drop-in engine wrapper validating every V/VGL/VGH output.

    Parameters
    ----------
    engine:
        Any single-position engine (``BsplineAoS``/``SoA``/``AoSoA``/
        ``Fused``) exposing ``v/vgl/vgh(x, y, z, out)`` and
        ``new_output``.
    policy:
        ``"raise"`` — raise :class:`GuardViolation` on any NaN/Inf
        output; ``"recompute"`` — re-evaluate the position through the
        :mod:`repro.core.refimpl` reference path against
        ``reference_table`` and overwrite the bad output (counted in
        :attr:`repairs`; raises only if the reference is bad too);
        ``"count"`` — record in :attr:`violations` and pass through.
    reference_table:
        Pristine coefficient table for the repair path.  Defaults to the
        wrapped engine's own table — sufficient when the *kernel* (not
        the table) misbehaves; pass an independent copy to survive
        in-memory table corruption.

    Attributes
    ----------
    violations:
        Kernel calls that produced at least one non-finite value.
    repairs:
        Violations successfully repaired via the reference path.

    Notes
    -----
    The counters are updated under an internal lock, so one engine can
    safely be shared by concurrent walker threads
    (``WalkerEnsemble.run_batch(walker_threads > 1)``) — each walker
    still needs its *own* output buffer, as with any engine.  The
    recompute repair path only writes into the caller's private output,
    so the lock covers exactly the shared mutable state.
    """

    def __init__(self, engine, policy: str = "raise", reference_table=None):
        if policy not in _OUTPUT_POLICIES:
            raise ValueError(
                f"policy must be one of {_OUTPUT_POLICIES}, got {policy!r}"
            )
        self.engine = engine
        self.policy = policy
        self.grid = engine.grid
        self.reference_table = (
            reference_table if reference_table is not None else getattr(engine, "P", None)
        )
        if policy == "recompute" and self.reference_table is None:
            raise ValueError("recompute policy needs a reference_table")
        self.violations = 0
        self.repairs = 0
        self._lock = threading.Lock()

    def __getattr__(self, name):
        # Everything not guarded (new_output, n_splines, dtype, ...) passes
        # through to the wrapped engine.
        return getattr(self.engine, name)

    def _guarded(self, kind: str, x: float, y: float, z: float, out) -> None:
        getattr(self.engine, kind)(x, y, z, out)
        arrays = _output_arrays(kind, out)
        bad = nonfinite_counts(**arrays)
        if not bad:
            return
        with self._lock:
            self.violations += 1
        OBS.count(
            "guard_trips_total",
            kind="nonfinite_output",
            policy=self.policy,
            kernel=kind,
        )
        OBS.event(
            "guard:nonfinite_output", cat="guard", kernel=kind, policy=self.policy
        )
        if self.policy == "count":
            return
        if self.policy == "raise":
            detail = ", ".join(f"{k}: {v}" for k, v in sorted(bad.items()))
            raise GuardViolation(
                f"non-finite {kind.upper()} output at "
                f"({x:.6g}, {y:.6g}, {z:.6g}) ({detail})"
            )
        # policy == "recompute": repair through the reference oracle.
        if kind == "v":
            v = refimpl.reference_v(self.grid, self.reference_table, x, y, z)
            g = lh = None
        elif kind == "vgl":
            v, g, lh = refimpl.reference_vgl(self.grid, self.reference_table, x, y, z)
        else:
            v, g, lh = refimpl.reference_vgh(self.grid, self.reference_table, x, y, z)
        ref_arrays = {"v": v}
        if g is not None:
            ref_arrays["g"] = g
        if lh is not None:
            ref_arrays["lh"] = lh
        check_finite(f"reference {kind.upper()} repair", **ref_arrays)
        _write_reference(kind, out, v, g, lh)
        with self._lock:
            self.repairs += 1
        OBS.count("guard_repairs_total", kernel=kind)

    def v(self, x: float, y: float, z: float, out) -> None:
        """Guarded value kernel."""
        self._guarded("v", x, y, z, out)

    def vgl(self, x: float, y: float, z: float, out) -> None:
        """Guarded value+gradient+Laplacian kernel."""
        self._guarded("vgl", x, y, z, out)

    def vgh(self, x: float, y: float, z: float, out) -> None:
        """Guarded value+gradient+Hessian kernel."""
        self._guarded("vgh", x, y, z, out)


# -- DMC population control --------------------------------------------------


@dataclass
class PopulationGuard:
    """Collapse/explosion control that steers toward the target population.

    Parameters
    ----------
    target:
        The intended ensemble size.
    max_factor:
        Explosion cap = ``max_factor * target``.

    Attributes
    ----------
    rescues / truncations:
        How many generations needed a collapse rescue / explosion
        truncation — nonzero values are the run's health report.
    """

    target: int
    max_factor: int = 4
    rescues: int = field(default=0)
    truncations: int = field(default=0)

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError(f"target must be positive, got {self.target}")
        if self.max_factor < 1:
            raise ValueError(f"max_factor must be >= 1, got {self.max_factor}")

    @property
    def cap(self) -> int:
        """Hard population ceiling."""
        return self.max_factor * self.target

    def enforce(self, new_walkers: list, previous: list, pool) -> list:
        """Apply both guards to a post-branching ensemble.

        Explosion: truncate to :attr:`cap` (branching already caps while
        copying; this is the backstop).  Extinction: rebuild the ensemble
        up to ``target`` by cloning the best (lowest, finite local
        energy) walkers of the previous generation — each clone drawing a
        fresh stream from ``pool``, never a copied one.

        Raises
        ------
        GuardViolation:
            Total extinction with no finite-energy walker left to rescue
            from (nothing sane remains to continue with).
        """
        if len(new_walkers) > self.cap:
            del new_walkers[self.cap:]
            self.truncations += 1
            OBS.count("population_truncations_total")
            OBS.event("guard:population_truncated", cat="guard", cap=self.cap)
        if not new_walkers:
            finite = [w for w in previous if np.isfinite(w.e_local)]
            if not finite:
                raise GuardViolation(
                    "population extinct and no finite-energy walker to rescue"
                )
            finite.sort(key=lambda w: w.e_local)
            self.rescues += 1
            OBS.count("population_rescues_total")
            OBS.event(
                "guard:population_rescued", cat="guard", survivors=len(finite)
            )
            rescued = [finite[0]]
            while len(rescued) < min(self.target, self.cap):
                parent = finite[(len(rescued) - 1) % len(finite)]
                rescued.append(parent.clone(pool.next_rng()))
            return rescued
        return new_walkers
