"""repro.resilience — fault tolerance for long-running QMC drivers.

Production QMC burns node-hours by the thousand: a killed job or a single
NaN walker must not cost the whole ensemble.  This package supplies the
three layers the drivers wire through:

* :mod:`repro.resilience.checkpoint` — versioned, seeded snapshots
  (``.npz`` arrays + JSON manifest with exact RNG bit-generator state)
  with :func:`save_checkpoint` / :func:`load_checkpoint`, plus the
  DMC/VMC/driver-specific state captures.  A resumed run reproduces the
  uninterrupted energy trace bit-for-bit.
* :mod:`repro.resilience.faults` — a deterministic, seeded
  :class:`FaultInjector` that corrupts coefficient tables, poisons local
  energies with NaN/Inf, and kills worker tasks; the engine behind
  ``tests/resilience``.
* :mod:`repro.resilience.guards` — NaN/Inf guardrails on kernel outputs
  (:class:`GuardedEngine`, with recompute-via-reference repair) and on
  walker energies, plus DMC population collapse/explosion guards
  (:class:`PopulationGuard`).
* :mod:`repro.resilience.retry` — bounded retry-with-backoff
  (:func:`retry_with_backoff`) and :class:`ResilientEvaluator`, the
  nested-threading wrapper that falls back to single-threaded evaluation
  when workers keep dying.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    has_checkpoint,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.resilience.faults import FaultInjector, ProcessFault, SimulatedFault
from repro.resilience.guards import (
    GuardConfig,
    GuardedEngine,
    GuardViolation,
    PopulationGuard,
    nonfinite_counts,
    check_finite,
)
from repro.resilience.retry import (
    ResilientEvaluator,
    RetryExhausted,
    RetryPolicy,
    retry_with_backoff,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "has_checkpoint",
    "rng_state",
    "restore_rng",
    "FaultInjector",
    "ProcessFault",
    "SimulatedFault",
    "GuardConfig",
    "GuardViolation",
    "GuardedEngine",
    "PopulationGuard",
    "nonfinite_counts",
    "check_finite",
    "RetryPolicy",
    "RetryExhausted",
    "retry_with_backoff",
    "ResilientEvaluator",
]
