"""Bounded retry-with-backoff and the resilient nested evaluator.

Worker-task failures in the nested (Opt C) evaluator are the one failure
mode where simply retrying is usually right: the computation is a pure
function of a read-only table, so a transient fault (an OOM-killed
thread, an injected test fault) leaves nothing to clean up.  The policy
here is deliberately conservative:

* :func:`retry_with_backoff` — at most ``max_attempts`` tries with
  exponential backoff between them; the final failure re-raises.
* :class:`ResilientEvaluator` — wraps a
  :class:`~repro.core.nested.NestedEvaluator`; when retries are
  exhausted it *degrades* instead of failing: the evaluation runs
  single-threaded over all tiles on the caller's thread (same results,
  no worker pool), and the degradation is counted so callers can report
  it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.kinds import Kind
from repro.obs import OBS

__all__ = ["RetryPolicy", "RetryExhausted", "retry_with_backoff", "ResilientEvaluator"]


class RetryExhausted(RuntimeError):
    """All retry attempts failed; ``__cause__`` is the last error."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff.

    Attributes
    ----------
    max_attempts:
        Total tries (first call included); must be >= 1.
    base_delay:
        Seconds before the first retry.
    multiplier:
        Backoff factor between consecutive retries.
    max_delay:
        Ceiling on any single delay.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def delays(self) -> list[float]:
        """The sleep before each retry (``max_attempts - 1`` entries)."""
        out = []
        d = self.base_delay
        for _ in range(self.max_attempts - 1):
            out.append(min(d, self.max_delay))
            d *= self.multiplier
        return out


def retry_with_backoff(
    fn,
    policy: RetryPolicy = RetryPolicy(),
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep=time.sleep,
    on_retry=None,
):
    """Call ``fn()`` with bounded retries; returns its result.

    Parameters
    ----------
    fn:
        Zero-argument callable (close over arguments).
    policy:
        The backoff schedule.
    retry_on:
        Exception types worth retrying; anything else propagates
        immediately.
    sleep:
        Injectable sleeper (tests pass a recorder to avoid real delays).
    on_retry:
        Optional ``on_retry(attempt, exc)`` callback before each retry.

    Raises
    ------
    RetryExhausted:
        After ``policy.max_attempts`` failures, chaining the last error.
    """
    delays = policy.delays()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt < len(delays):
                if on_retry is not None:
                    on_retry(attempt + 1, exc)
                sleep(delays[attempt])
    raise RetryExhausted(
        f"gave up after {policy.max_attempts} attempts: {last}"
    ) from last


class ResilientEvaluator:
    """A :class:`~repro.core.nested.NestedEvaluator` that survives workers.

    ``evaluate`` retries the nested evaluation under ``policy``; if every
    attempt fails it falls back to evaluating all tiles single-threaded
    on the calling thread — bit-identical results (the kernels are pure
    functions of position and table), just without the parallelism.

    Parameters
    ----------
    nested:
        The wrapped evaluator (owns the engine and the worker pool).
    policy:
        Retry schedule for worker failures.
    sleep:
        Injectable sleeper forwarded to :func:`retry_with_backoff`.

    Attributes
    ----------
    retries:
        Worker failures absorbed by retrying.
    fallbacks:
        Evaluations that completed on the single-threaded fallback path.
    """

    def __init__(self, nested, policy: RetryPolicy | None = None, sleep=time.sleep):
        self.nested = nested
        self.engine = nested.engine
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self.retries = 0
        self.fallbacks = 0

    def evaluate(self, kind: "Kind | str", positions: np.ndarray, out) -> None:
        """Nested evaluation with retry, then single-threaded degradation."""
        kind = Kind.coerce(kind)

        def count_retry(attempt, exc):
            self.retries += 1
            OBS.count("nested_retries_total", kernel=kind.value)
            OBS.event(
                "retry:nested_worker",
                cat="resilience",
                kernel=kind.value,
                attempt=attempt,
                error=type(exc).__name__,
            )

        try:
            retry_with_backoff(
                lambda: self.nested.evaluate(kind, positions, out),
                policy=self.policy,
                sleep=self._sleep,
                on_retry=count_retry,
            )
        except RetryExhausted:
            self.fallbacks += 1
            OBS.count("nested_fallbacks_total", kernel=kind.value)
            OBS.event(
                "retry:single_thread_fallback", cat="resilience", kernel=kind.value
            )
            self.engine.eval_tiles(
                kind, range(self.engine.n_tiles), positions, out
            )

    def close(self) -> None:
        """Shut down the wrapped evaluator's worker pool."""
        self.nested.close()

    def __enter__(self) -> "ResilientEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
