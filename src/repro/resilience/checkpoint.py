"""Versioned checkpoints: ``.npz`` arrays + a JSON manifest.

A checkpoint is a directory holding two files:

* ``manifest.json`` — everything small and structured: format version,
  checkpoint kind, progress counters, and *exact* RNG state (the
  bit-generator state dicts NumPy exposes, which restore a
  ``np.random.Generator`` bit-for-bit — Python's JSON carries the
  arbitrary-precision PCG64 integers losslessly);
* ``arrays.npz`` — the bulky numeric payload (walker positions, traces).

Writes are atomic at the directory level: the checkpoint is assembled in
a ``<path>.tmp-<pid>`` staging directory and renamed into place, so a
kill mid-write leaves either the previous checkpoint or none — never a
torn one.

The QMC drivers (:func:`repro.qmc.dmc.run_dmc`,
:func:`repro.qmc.vmc.run_vmc`, the miniQMC drivers) build their
checkpoint payloads on top of the generic :func:`save_checkpoint` /
:func:`load_checkpoint` pair; resuming restores RNG streams, particle
positions and accumulated traces so the continued run reproduces the
uninterrupted one bit-for-bit.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass

import numpy as np

from repro.obs import OBS

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "has_checkpoint",
    "rng_state",
    "restore_rng",
    "set_rng_state",
]

#: Format version written into every manifest; bumped on layout changes.
CHECKPOINT_VERSION = 1

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, torn, or incompatible with this run."""


# -- RNG state (de)serialization ---------------------------------------------


def _jsonable(obj):
    """Recursively convert NumPy scalars/arrays/tuples to JSON-native types."""
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def rng_state(rng: np.random.Generator) -> dict:
    """JSON-serializable bit-generator state of ``rng`` (exact)."""
    return _jsonable(rng.bit_generator.state)


def restore_rng(state: dict) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` restored from ``state``."""
    name = state["bit_generator"]
    try:
        bitgen_cls = getattr(np.random, name)
    except AttributeError as exc:
        raise CheckpointError(f"unknown bit generator {name!r}") from exc
    bitgen = bitgen_cls()
    bitgen.state = state
    return np.random.Generator(bitgen)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore ``state`` *into* an existing generator (in place).

    Used when the caller owns the generator object (e.g. the stream passed
    to :func:`repro.qmc.vmc.run_vmc`) and identity must be preserved.
    """
    if rng.bit_generator.state["bit_generator"] != state["bit_generator"]:
        raise CheckpointError(
            f"bit generator mismatch: checkpoint has "
            f"{state['bit_generator']!r}, generator is "
            f"{rng.bit_generator.state['bit_generator']!r}"
        )
    rng.bit_generator.state = state


# -- generic save / load -----------------------------------------------------


@dataclass
class Checkpoint:
    """A loaded checkpoint: the manifest dict plus the array payload."""

    manifest: dict
    arrays: dict[str, np.ndarray]

    @property
    def kind(self) -> str:
        """The driver kind that wrote this checkpoint (``dmc``, ``vmc``...)."""
        return self.manifest.get("kind", "")


def save_checkpoint(
    path: str | os.PathLike,
    manifest: dict,
    arrays: dict[str, np.ndarray] | None = None,
) -> str:
    """Write a checkpoint directory atomically; returns the final path.

    Parameters
    ----------
    path:
        Target checkpoint directory (created or replaced).
    manifest:
        JSON-serializable metadata; ``version`` and the caller's ``kind``
        are stamped in automatically (``version`` cannot be overridden).
    arrays:
        Numeric payload for ``arrays.npz``.
    """
    path = os.fspath(path)
    manifest = dict(manifest)
    manifest["version"] = CHECKPOINT_VERSION
    t0 = time.perf_counter() if OBS.enabled else 0.0
    staging = f"{path}.tmp-{os.getpid()}"
    if os.path.exists(staging):
        shutil.rmtree(staging)
    os.makedirs(staging)
    try:
        with open(os.path.join(staging, _MANIFEST), "w") as fh:
            json.dump(_jsonable(manifest), fh, indent=2, sort_keys=True)
        np.savez(os.path.join(staging, _ARRAYS), **(arrays or {}))
        if os.path.isdir(path):
            shutil.rmtree(path)
        os.replace(staging, path)
    finally:
        if os.path.exists(staging):
            shutil.rmtree(staging)
    if OBS.enabled:
        dt = time.perf_counter() - t0
        kind = manifest.get("kind", "unknown")
        size = os.path.getsize(os.path.join(path, _ARRAYS))
        OBS.count("checkpoints_saved_total", kind=kind)
        OBS.count("checkpoint_bytes_total", size, kind=kind)
        OBS.observe("checkpoint_save_seconds", dt, kind=kind)
        OBS.complete(
            "checkpoint:save", t0, dt, cat="resilience", kind=kind, bytes=size
        )
    return path


def has_checkpoint(path: str | os.PathLike) -> bool:
    """Whether ``path`` holds a complete checkpoint (manifest + arrays).

    Writes are atomic at the directory level, so either both files exist
    or the checkpoint does not — the predicate behind ``resume="auto"``
    (resume if a checkpoint exists, start fresh otherwise).
    """
    path = os.fspath(path)
    return os.path.isfile(os.path.join(path, _MANIFEST)) and os.path.isfile(
        os.path.join(path, _ARRAYS)
    )


def load_checkpoint(
    path: str | os.PathLike, expect_kind: str | None = None
) -> Checkpoint:
    """Load a checkpoint directory; validates version and (optionally) kind.

    Raises
    ------
    CheckpointError:
        Missing directory/files, version from the future, or a kind
        mismatch (resuming a DMC run from a VMC checkpoint is refused
        loudly rather than garbling state).
    """
    path = os.fspath(path)
    manifest_path = os.path.join(path, _MANIFEST)
    arrays_path = os.path.join(path, _ARRAYS)
    if not os.path.isdir(path) or not os.path.exists(manifest_path):
        raise CheckpointError(f"no checkpoint at {path!r}")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    if expect_kind is not None and manifest.get("kind") != expect_kind:
        raise CheckpointError(
            f"checkpoint kind {manifest.get('kind')!r} at {path!r}; "
            f"expected {expect_kind!r}"
        )
    arrays: dict[str, np.ndarray] = {}
    if os.path.exists(arrays_path):
        with np.load(arrays_path) as npz:
            arrays = {k: npz[k] for k in npz.files}
    OBS.count("checkpoints_loaded_total", kind=manifest.get("kind", "unknown"))
    OBS.event(
        "checkpoint:load", cat="resilience", kind=manifest.get("kind", "unknown")
    )
    return Checkpoint(manifest=manifest, arrays=arrays)
