"""Deterministic fault injection for resilience testing.

Every fault drawn from a :class:`FaultInjector` comes from its own seeded
stream, so a failing resilience test replays exactly: the same table
entries get corrupted, the same local-energy evaluation returns NaN, the
same worker task dies on the same call.  The injector also keeps an audit
``log`` of everything it did, which the tests assert against.

Three fault families match the production failure modes the guardrails
(:mod:`repro.resilience.guards`) and retries
(:mod:`repro.resilience.retry`) defend against:

* **data corruption** — :meth:`FaultInjector.corrupt_coefficients`
  poisons entries of a coefficient table (NaN, Inf, or large noise);
* **poisoned measurements** — :meth:`FaultInjector.poison_energies`
  wraps a local-energy callable to return NaN/Inf on selected calls;
* **dying workers** — :meth:`FaultInjector.failing` wraps any callable to
  raise :class:`SimulatedFault` a fixed number of times (transient
  faults, which retries absorb) or forever (hard faults, which force the
  single-threaded fallback), and
  :meth:`FaultInjector.kill_at_generation` builds the mid-run kill hook
  the checkpoint/resume tests use;
* **dying worker processes** — :meth:`FaultInjector.sigkill_worker` and
  :meth:`FaultInjector.hang_worker` schedule *process-level* faults
  (a worker SIGKILLs itself, or stalls past its deadline, at a chosen
  generation); the fleet supervisor (:mod:`repro.fleet`) arms them on
  the live pool and must recover bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulatedFault", "ProcessFault", "FaultInjector"]


class SimulatedFault(RuntimeError):
    """An injected failure — raised by wrappers built on a FaultInjector."""


@dataclass(frozen=True)
class ProcessFault:
    """A scheduled process-level fault: which worker, when, what.

    ``kind`` is ``"sigkill"`` (the worker kills itself at its next
    dispatched call of generation ``generation`` — the parent sees EOF,
    like a real OOM-kill) or ``"hang"`` (the worker sleeps ``seconds``
    before serving that call — a stall only a deadline catches).
    Population drivers with a single broadcast (VMC, crowd) treat the
    whole run as generation 0.
    """

    kind: str
    generation: int
    worker: int
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("sigkill", "hang"):
            raise ValueError(f"unknown process-fault kind {self.kind!r}")
        if self.generation < 0:
            raise ValueError(f"generation must be >= 0, got {self.generation}")
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


class FaultInjector:
    """Seeded source of reproducible faults.

    Parameters
    ----------
    seed:
        Seed of the injector's private stream; two injectors with the
        same seed inject identical faults in identical order.
    """

    def __init__(self, seed: int = 2017):
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        #: Audit trail: one ``(kind, detail)`` tuple per injected fault.
        self.log: list[tuple[str, dict]] = []
        #: Scheduled process-level faults, armed by the fleet supervisor.
        self.process_faults: list[ProcessFault] = []

    # -- data corruption ----------------------------------------------------

    def corrupt_coefficients(
        self,
        table: np.ndarray,
        n_sites: int = 1,
        mode: str = "nan",
        in_place: bool = False,
    ) -> tuple[np.ndarray, list[tuple[int, ...]]]:
        """Poison ``n_sites`` random entries of a coefficient table.

        Parameters
        ----------
        table:
            The ``(nx, ny, nz, N)`` (or any-shape) coefficient array.
        n_sites:
            Number of scalar entries to corrupt.
        mode:
            ``"nan"``, ``"inf"``, or ``"noise"`` (entry replaced by a huge
            finite value — the silent-corruption case NaN checks alone
            miss).
        in_place:
            Corrupt ``table`` itself instead of a copy.

        Returns
        -------
        (corrupted, sites):
            The corrupted array and the multi-indices that were hit.
        """
        if mode not in ("nan", "inf", "noise"):
            raise ValueError(f"unknown corruption mode {mode!r}")
        out = table if in_place else table.copy()
        flat = self._rng.choice(table.size, size=n_sites, replace=False)
        sites = [tuple(int(i) for i in np.unravel_index(f, table.shape)) for f in flat]
        for site in sites:
            if mode == "nan":
                out[site] = np.nan
            elif mode == "inf":
                out[site] = np.inf
            else:
                out[site] = 1e30
        self.log.append(("corrupt_coefficients", {"mode": mode, "sites": sites}))
        return out, sites

    # -- poisoned measurements ----------------------------------------------

    def poison_energies(self, fn, every: int = 3, mode: str = "nan"):
        """Wrap a scalar-returning callable to return NaN/Inf periodically.

        Every ``every``-th call (1-indexed) returns the poison value
        instead of the true result; all other calls pass through.

        Parameters
        ----------
        fn:
            The callable to wrap (e.g. a bound ``LocalEnergy.total``).
        every:
            Poison call numbers ``every, 2*every, ...``.
        mode:
            ``"nan"`` or ``"inf"``.
        """
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        poison = float("nan") if mode == "nan" else float("inf")
        calls = 0

        def wrapped(*args, **kwargs):
            nonlocal calls
            calls += 1
            result = fn(*args, **kwargs)
            if calls % every == 0:
                self.log.append(("poison_energy", {"call": calls, "mode": mode}))
                return poison
            return result

        return wrapped

    # -- dying workers -------------------------------------------------------

    def failing(self, fn, n_failures: int = 1, exc_type=SimulatedFault):
        """Wrap a callable to raise on its first ``n_failures`` calls.

        ``n_failures=None`` fails forever (a hard fault); otherwise calls
        after the first ``n_failures`` pass through — the transient-fault
        shape bounded retries are built for.
        """
        calls = 0

        def wrapped(*args, **kwargs):
            nonlocal calls
            calls += 1
            if n_failures is None or calls <= n_failures:
                self.log.append(("fault", {"call": calls, "fn": getattr(fn, "__name__", str(fn))}))
                raise exc_type(f"injected fault on call {calls}")
            return fn(*args, **kwargs)

        return wrapped

    def kill_at_generation(self, generation: int):
        """A driver hook that raises :class:`SimulatedFault` at one generation.

        The returned callable matches the ``on_generation(gen, walkers)``
        hook of :func:`repro.qmc.dmc.run_dmc` (and the per-step hooks of
        the other drivers); it kills the run *after* generation
        ``generation`` completes — past any checkpoint written for it —
        which is exactly the shape of a mid-run SIGKILL.
        """

        def hook(gen: int, *_args) -> None:
            if gen == generation:
                self.log.append(("kill", {"generation": gen}))
                raise SimulatedFault(f"injected kill after generation {gen}")

        return hook

    # -- dying worker processes ----------------------------------------------

    def sigkill_worker(self, worker: int, generation: int) -> ProcessFault:
        """Schedule worker ``worker`` to SIGKILL itself at ``generation``.

        The fault fires on the worker's next dispatched call of that
        generation: the process dies without replying, the parent sees
        EOF — indistinguishable from a real OOM-kill or segfault.
        """
        fault = ProcessFault(kind="sigkill", generation=generation, worker=worker)
        self.process_faults.append(fault)
        self.log.append(
            ("sigkill_worker", {"worker": worker, "generation": generation})
        )
        return fault

    def hang_worker(
        self, worker: int, generation: int, seconds: float = 60.0
    ) -> ProcessFault:
        """Schedule worker ``worker`` to stall ``seconds`` at ``generation``.

        The worker sleeps before serving the call, then proceeds — a
        stuck-but-alive worker that only a reply deadline
        (``worker_timeout``) can detect.
        """
        fault = ProcessFault(
            kind="hang", generation=generation, worker=worker, seconds=seconds
        )
        self.process_faults.append(fault)
        self.log.append(
            (
                "hang_worker",
                {"worker": worker, "generation": generation, "seconds": seconds},
            )
        )
        return fault
