"""Distance tables in AoS and SoA layouts, with incremental move updates.

Distance tables are the second-largest consumer in the QMC profile (paper
Table II: 23-39% of run time) and the first target of the SoA container
work ("The same transformation boosts performance of the other critical
computational steps involving distance tables and Jastrow", Sec. V-A).

Both table classes support the particle-by-particle move protocol: a
*temporary* row is computed for a staged move (``propose_row``), and an
accepted move writes that row back into the committed table without any
O(N^2) recomputation.

Layouts
-------
* ``layout="aos"`` — positions and displacement rows are ``(n, 3)``
  arrays; component access is strided (the baseline R[N][3] abstraction).
* ``layout="soa"`` — positions and displacement rows are ``(3, n)``
  arrays; each Cartesian component is a contiguous stream.

Both compute identical values; the difference is pure memory layout,
mirroring the paper's optimization surface.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.cell import Cell
from repro.qmc.particleset import ParticleSet

__all__ = ["DistanceTableAB", "DistanceTableAA"]

_LAYOUTS = ("aos", "soa")


def _row_displacements_aos(
    cell: Cell, src_frac: np.ndarray, tgt_cart: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Minimal-image displacements src -> tgt for one target, AoS math.

    ``src_frac`` is ``(n, 3)``; returns ``(disp (n, 3), dist (n,))``.
    """
    tgt_frac = cell.cart_to_frac(tgt_cart)
    dfrac = tgt_frac[np.newaxis, :] - src_frac
    dfrac -= np.round(dfrac)
    if cell.is_orthorhombic:
        disp = dfrac * np.diag(cell.lattice)[np.newaxis, :]
    else:
        from repro.lattice.pbc import _IMAGE_SHIFTS

        cand = dfrac[:, np.newaxis, :] + _IMAGE_SHIFTS  # (n, 27, 3)
        cart = cand @ cell.lattice
        r2 = np.einsum("nij,nij->ni", cart, cart)
        disp = cart[np.arange(len(cart)), np.argmin(r2, axis=1)]
    return disp, np.sqrt(np.einsum("ni,ni->n", disp, disp))


def _row_displacements_soa(
    cell: Cell, src_frac_soa: np.ndarray, tgt_cart: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Same computation with component-major ``(3, n)`` streams."""
    tgt_frac = cell.cart_to_frac(tgt_cart)
    dfrac = tgt_frac[:, np.newaxis] - src_frac_soa  # (3, n)
    dfrac -= np.round(dfrac)
    if cell.is_orthorhombic:
        diag = np.diag(cell.lattice)
        disp = dfrac * diag[:, np.newaxis]
    else:
        from repro.lattice.pbc import _IMAGE_SHIFTS

        cand = dfrac.T[:, np.newaxis, :] + _IMAGE_SHIFTS
        cart = cand @ cell.lattice
        r2 = np.einsum("nij,nij->ni", cart, cart)
        disp = cart[np.arange(len(cart)), np.argmin(r2, axis=1)].T
    dist = np.sqrt(disp[0] ** 2 + disp[1] ** 2 + disp[2] ** 2)
    return disp, dist


class DistanceTableAB:
    """Asymmetric table: distances from fixed sources to mobile targets.

    The canonical instance is ion->electron (sources never move).  Row
    ``i`` holds the data for target particle ``i`` against *all* sources.

    Parameters
    ----------
    sources:
        The fixed particle set (e.g. ions).
    targets:
        The mobile particle set (e.g. electrons); its moves drive updates.
    layout:
        ``"aos"`` or ``"soa"``.
    """

    def __init__(self, sources: ParticleSet, targets: ParticleSet, layout: str = "soa"):
        if layout not in _LAYOUTS:
            raise ValueError(f"layout must be one of {_LAYOUTS}, got {layout!r}")
        if sources.cell is not targets.cell:
            raise ValueError("source and target sets must share a cell")
        self.layout = layout
        self.cell = sources.cell
        self.sources = sources
        self.targets = targets
        ns, nt = len(sources), len(targets)
        if layout == "aos":
            self.displacements = np.zeros((nt, ns, 3))
            self._temp_disp = np.zeros((ns, 3))
        else:
            self.displacements = np.zeros((nt, 3, ns))
            self._temp_disp = np.zeros((3, ns))
        self.distances = np.zeros((nt, ns))
        self._temp_dist = np.zeros(ns)
        self._temp_for: int | None = None
        self.rebuild()

    def _compute_row(self, tgt_cart: np.ndarray):
        if self.layout == "aos":
            return _row_displacements_aos(self.cell, self._src_frac, tgt_cart)
        return _row_displacements_soa(self.cell, self._src_frac, tgt_cart)

    def rebuild(self) -> None:
        """Recompute the full table from committed positions (O(ns*nt)).

        Re-snapshots the *source* positions too: sources are fixed between
        single-particle moves, but a full rebuild must honour bulk source
        updates (e.g. checkpoint restore loading ion positions into an
        already-constructed wavefunction).
        """
        src_frac = self.cell.cart_to_frac(self.sources.positions)
        if self.layout == "aos":
            self._src_frac = np.ascontiguousarray(src_frac)
        else:
            self._src_frac = np.ascontiguousarray(src_frac.T)
        for i in range(len(self.targets)):
            disp, dist = self._compute_row(self.targets[i])
            self.displacements[i] = disp
            self.distances[i] = dist
        self._temp_for = None

    def row(self, i: int) -> np.ndarray:
        """Committed distances from target ``i`` to every source (view)."""
        return self.distances[i]

    def disp_row(self, i: int) -> np.ndarray:
        """Committed displacement row for target ``i`` (view; layout-shaped)."""
        return self.displacements[i]

    def propose_row(self, i: int, new_pos: np.ndarray) -> np.ndarray:
        """Distances of target ``i``'s *trial* position to all sources.

        The result is staged; :meth:`accept_move` writes it back.
        """
        disp, dist = self._compute_row(np.asarray(new_pos, dtype=np.float64))
        self._temp_disp[...] = disp
        self._temp_dist[...] = dist
        self._temp_for = i
        return self._temp_dist

    def stage_row(self, i: int, dist: np.ndarray, disp: np.ndarray) -> None:
        """Stage a row precomputed elsewhere (the batched crowd driver).

        Equivalent to :meth:`propose_row` when the caller's row math is
        the same as :meth:`_compute_row`'s — batched drivers compute all
        walkers' rows in one shot and hand each table its slice.
        """
        self._temp_dist[...] = dist
        self._temp_disp[...] = disp
        self._temp_for = i

    @property
    def temp_dist(self) -> np.ndarray:
        """The staged trial-distance row (view)."""
        return self._temp_dist

    @property
    def temp_disp(self) -> np.ndarray:
        """The staged trial-displacement row (view; layout-shaped)."""
        return self._temp_disp

    def accept_move(self, i: int) -> None:
        """Commit the staged row for target ``i``."""
        if self._temp_for != i:
            raise RuntimeError(f"no staged row for target {i}")
        self.distances[i] = self._temp_dist
        self.displacements[i] = self._temp_disp
        self._temp_for = None

    def reject_move(self, i: int) -> None:
        """Drop the staged row."""
        if self._temp_for != i:
            raise RuntimeError(f"no staged row for target {i}")
        self._temp_for = None


class DistanceTableAA:
    """Symmetric table among one mobile set (electron-electron).

    Row ``i`` holds distances from particle ``i`` to every particle of the
    same set (diagonal entries are zero and must be masked by consumers).
    An accepted move of particle ``i`` updates row ``i`` *and* column ``i``
    to keep the table symmetric.

    Parameters
    ----------
    pset:
        The mobile particle set.
    layout:
        ``"aos"`` or ``"soa"``.
    """

    def __init__(self, pset: ParticleSet, layout: str = "soa"):
        if layout not in _LAYOUTS:
            raise ValueError(f"layout must be one of {_LAYOUTS}, got {layout!r}")
        self.layout = layout
        self.cell = pset.cell
        self.pset = pset
        n = len(pset)
        if layout == "aos":
            self.displacements = np.zeros((n, n, 3))
            self._temp_disp = np.zeros((n, 3))
        else:
            self.displacements = np.zeros((n, 3, n))
            self._temp_disp = np.zeros((3, n))
        self.distances = np.zeros((n, n))
        self._temp_dist = np.zeros(n)
        self._temp_for: int | None = None
        self.rebuild()

    def _frac_all(self) -> np.ndarray:
        frac = self.cell.cart_to_frac(self.pset.positions)
        return frac if self.layout == "aos" else np.ascontiguousarray(frac.T)

    def _compute_row(self, cart: np.ndarray, frac: np.ndarray | None = None):
        if frac is None:
            frac = self._frac_all()
        if self.layout == "aos":
            return _row_displacements_aos(self.cell, frac, cart)
        return _row_displacements_soa(self.cell, frac, cart)

    def rebuild(self) -> None:
        """Recompute the full symmetric table (O(n^2))."""
        frac = self._frac_all()  # hoisted: one conversion for all rows
        for i in range(len(self.pset)):
            disp, dist = self._compute_row(self.pset[i], frac)
            self.displacements[i] = disp
            self.distances[i] = dist
            self.distances[i, i] = 0.0
        self._temp_for = None

    def row(self, i: int) -> np.ndarray:
        """Committed distances from particle ``i`` (view; entry i is 0)."""
        return self.distances[i]

    def disp_row(self, i: int) -> np.ndarray:
        """Committed displacement row for particle ``i`` (view)."""
        return self.displacements[i]

    def propose_row(self, i: int, new_pos: np.ndarray) -> np.ndarray:
        """Trial distances from a staged move of particle ``i``.

        The self entry ``i`` (distance *and* displacement) is forced to
        zero — the raw computation would yield the old-to-new step there,
        which no consumer wants.
        """
        disp, dist = self._compute_row(np.asarray(new_pos, dtype=np.float64))
        dist[i] = 0.0
        self._temp_disp[...] = disp
        if self.layout == "aos":
            self._temp_disp[i, :] = 0.0
        else:
            self._temp_disp[:, i] = 0.0
        self._temp_dist[...] = dist
        self._temp_for = i
        return self._temp_dist

    def stage_row(self, i: int, dist: np.ndarray, disp: np.ndarray) -> None:
        """Stage a row precomputed elsewhere (the batched crowd driver).

        The caller must already have zeroed the self entry ``i`` in both
        ``dist`` and ``disp``, exactly as :meth:`propose_row` does.
        """
        self._temp_dist[...] = dist
        self._temp_disp[...] = disp
        self._temp_for = i

    @property
    def temp_dist(self) -> np.ndarray:
        """The staged trial-distance row (view)."""
        return self._temp_dist

    @property
    def temp_disp(self) -> np.ndarray:
        """The staged trial-displacement row (view)."""
        return self._temp_disp

    def accept_move(self, i: int) -> None:
        """Commit the staged row; mirrors it into column ``i``.

        Displacements in the mirrored column flip sign (r_ji = -r_ij).
        """
        if self._temp_for != i:
            raise RuntimeError(f"no staged row for particle {i}")
        self.distances[i] = self._temp_dist
        self.distances[:, i] = self._temp_dist
        self.displacements[i] = self._temp_disp
        if self.layout == "aos":
            self.displacements[:, i, :] = -self._temp_disp
        else:
            self.displacements[:, :, i] = -self._temp_disp.T
        self._temp_for = None

    def reject_move(self, i: int) -> None:
        """Drop the staged row."""
        if self._temp_for != i:
            raise RuntimeError(f"no staged row for particle {i}")
        self._temp_for = None
