"""repro.qmc — the miniQMC substrate: everything around the B-spline kernels.

Implements the QMC machinery whose profile the paper measures (Tables
II/III): particle sets, AoS/SoA distance tables, one-/two-body Jastrow
factors, Slater determinants with Sherman-Morrison updates (paper Eqs.
2-4), drift-diffusion particle-by-particle moves, and VMC/DMC drivers
(paper Sec. III's three-stage generation loop).
"""

from repro.qmc.batched_step import CrowdState, batched_sweep
from repro.qmc.crowd import Crowd
from repro.qmc.delayed import DelayedDeterminant
from repro.qmc.determinant import DiracDeterminant
from repro.qmc.distance_tables import DistanceTableAA, DistanceTableAB
from repro.qmc.dmc import DmcResult, DmcWalker, run_dmc
from repro.qmc.drift_diffusion import limited_drift, log_greens_ratio, sweep
from repro.qmc.estimators import (
    LocalEnergy,
    coulomb_ee,
    coulomb_ei,
    coulomb_ii,
    kinetic_energy,
)
from repro.qmc.jastrow import OneBodyJastrow, TwoBodyJastrow, make_polynomial_radial
from repro.qmc.particleset import ParticleSet
from repro.qmc.pseudopotential import (
    NonlocalPseudopotential,
    icosahedron_quadrature,
    legendre,
    octahedron_quadrature,
)
from repro.qmc.observables import PairCorrelation, StructureFactor
from repro.qmc.optimize import OptimizationResult, optimize_jastrow_strengths
from repro.qmc.rng import WalkerRngPool
from repro.qmc.slater import SlaterDet, SplineOrbitalSet
from repro.qmc.vmc import VmcResult, run_vmc
from repro.qmc.wavefunction import SlaterJastrow

__all__ = [
    "ParticleSet",
    "Crowd",
    "CrowdState",
    "batched_sweep",
    "DelayedDeterminant",
    "DistanceTableAA",
    "DistanceTableAB",
    "OneBodyJastrow",
    "TwoBodyJastrow",
    "make_polynomial_radial",
    "DiracDeterminant",
    "SlaterDet",
    "SplineOrbitalSet",
    "SlaterJastrow",
    "LocalEnergy",
    "kinetic_energy",
    "coulomb_ee",
    "coulomb_ei",
    "coulomb_ii",
    "limited_drift",
    "log_greens_ratio",
    "sweep",
    "run_vmc",
    "VmcResult",
    "run_dmc",
    "DmcWalker",
    "DmcResult",
    "WalkerRngPool",
    "NonlocalPseudopotential",
    "octahedron_quadrature",
    "icosahedron_quadrature",
    "legendre",
    "PairCorrelation",
    "StructureFactor",
    "optimize_jastrow_strengths",
    "OptimizationResult",
]
