"""Batched population-step hot path: whole-crowd drift-diffusion sweeps.

The per-walker :func:`repro.qmc.drift_diffusion.sweep` spends its time in
hundreds of tiny NumPy dispatches per move — one B-spline gather, one
distance row, one Jastrow radial at a time.  This module advances the
whole walker population through each electron index with *one* batched
kernel call per stage instead (the crowd design the paper's AoSoA work
grew into):

for each sweep:
    0. ONE ``vgl_batch`` over every walker's every committed electron
       position — the drift cache.  Within a sweep each electron is
       visited exactly once, so its committed orbitals cannot change
       before its visit and the cache never goes stale.
    for each electron index e:
        1. drift for all walkers from the cache + batched committed
           Jastrow rows; per-walker Gaussian diffusion from each
           walker's private stream;
        2. ONE ``vgl_batch`` at all trial positions; batched
           minimal-image distance rows; batched Jastrow radials;
        3. each walker stages its slices
           (:meth:`~repro.qmc.wavefunction.SlaterJastrow.stage_precomputed`)
           and finishes its Metropolis decision independently.

Bit-identity with the per-walker path is a hard invariant, not an
aspiration: every batched stage uses only operations whose per-row bits
are independent of batch size (row-wise matmuls, last-axis reductions,
elementwise ufuncs — see the probes referenced in
:mod:`repro.core.batched`), walkers consume their streams in the same
per-walker order (``standard_normal`` at the proposal, ``random`` only
when the log-acceptance is negative and the ratio nonzero), and scalar
assembly (``(det * j1) * j2``) replays the per-walker operation order
exactly.  ``tests/qmc/test_batched_step.py`` locks this down with
``assert_array_equal`` on full VMC and DMC traces.
"""

from __future__ import annotations

import numpy as np

from repro.obs import OBS
from repro.qmc.drift_diffusion import limited_drift, log_greens_ratio
from repro.qmc.wavefunction import SlaterJastrow

__all__ = ["CrowdState", "batched_sweep"]


def _ufunc_equal(a, b) -> bool:
    """True when two radial functions are interchangeable bit-for-bit.

    Compares type and every instance attribute (arrays by value).  DMC
    ensembles build one radial per walker with identical inputs; value
    equality lets the crowd evaluate one spline over every walker's rows.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    va, vb = vars(a), vars(b)
    if va.keys() != vb.keys():
        return False
    for k, x in va.items():
        y = vb[k]
        if isinstance(x, np.ndarray):
            if not (
                isinstance(y, np.ndarray)
                and x.shape == y.shape
                and np.array_equal(x, y)
            ):
                return False
        elif x != y:
            return False
    return True


class CrowdState:
    """SoA state for a crowd of walkers advanced in lock step.

    Holds the population-level arrays the batched step reads and writes —
    committed positions, last-move ratios, local energies — plus the
    shareability analysis (which Jastrows/tables can be evaluated stacked)
    done once at construction instead of every move.

    Parameters
    ----------
    wavefunctions:
        One :class:`SlaterJastrow` per walker.  All walkers must share
        the *same orbital set object* (the read-only table of paper
        Fig. 3), live in its cell, have equal electron counts, and agree
        on Jastrow structure.
    rngs:
        One private stream per walker.
    config:
        Optional :class:`repro.config.RunConfig`; when given, the shared
        orbital set is reconfigured with it (per-walker trajectories are
        bitwise invariant to the blocking knobs).
    tile_size, chunk_size:
        .. deprecated:: PR9
           Use ``config=RunConfig(...)``; honoured (with a warning) for
           one release.
    """

    def __init__(
        self,
        wavefunctions: list[SlaterJastrow],
        rngs: list,
        tile_size: int | None = None,
        chunk_size: int | None = None,
        config=None,
    ):
        if not wavefunctions:
            raise ValueError("a crowd needs at least one walker")
        if len(rngs) != len(wavefunctions):
            raise ValueError("need exactly one rng per walker")
        spos = wavefunctions[0].slater.spos
        n_el = len(wavefunctions[0].electrons)
        for wf in wavefunctions[1:]:
            if wf.slater.spos is not spos:
                raise ValueError(
                    "crowd walkers must share one orbital set (the shared "
                    "read-only table)"
                )
            if len(wf.electrons) != n_el:
                raise ValueError("crowd walkers must have equal electron counts")
        for wf in wavefunctions:
            if not np.array_equal(wf.electrons.cell.lattice, spos.cell.lattice):
                raise ValueError(
                    "crowd walkers must live in the orbital set's cell"
                )
        has_j1 = wavefunctions[0].j1 is not None
        has_j2 = wavefunctions[0].j2 is not None
        for wf in wavefunctions[1:]:
            if (wf.j1 is not None) != has_j1 or (wf.j2 is not None) != has_j2:
                raise ValueError(
                    "crowd walkers must agree on Jastrow structure "
                    "(every walker has j1 or none does; likewise j2)"
                )

        from repro.config import deprecated_kwargs

        deprecated_kwargs(
            "CrowdState",
            tile_size=tile_size is not None,
            chunk_size=chunk_size is not None,
        )
        if tile_size is not None or chunk_size is not None:
            config = (config or spos.config).replace(
                tile_size=tile_size, chunk_size=chunk_size
            )
        if config is not None:
            spos.configure_batched(config=config)

        self.wfs = list(wavefunctions)
        self.rngs = list(rngs)
        self.spos = spos
        self.cell = spos.cell
        self.n_electrons = n_el
        self.n_walkers = len(self.wfs)
        #: Committed positions, SoA over the crowd: ``(nw, ne, 3)``.
        self.positions = np.zeros((self.n_walkers, n_el, 3))
        #: Total Psi ratios of the last proposed move per walker.
        self.ratios = np.zeros(self.n_walkers)
        #: Per-walker local energies (written by the measuring driver).
        self.e_local = np.zeros(self.n_walkers)
        #: Per-walker accepted-move counts of the last sweep.
        self.accepts = np.zeros(self.n_walkers, dtype=np.int64)
        #: Batched kernel calls performed (for instrumentation).
        self.n_batched_calls = 0

        self._has_j1 = has_j1
        self._has_j2 = has_j2
        # Stacked-row evaluation needs uniform layouts/shapes across the
        # crowd; stacked Jastrow evaluation additionally needs one radial
        # function valid for every walker.
        wf0 = self.wfs[0]
        self._ee_stack = all(
            wf.ee_table.layout == wf0.ee_table.layout for wf in self.wfs
        )
        self._ei_stack = all(
            wf.ei_table.layout == wf0.ei_table.layout
            and len(wf.ions) == len(wf0.ions)
            for wf in self.wfs
        )
        self._share_j1 = (
            has_j1
            and self._ei_stack
            and all(_ufunc_equal(wf.j1.u, wf0.j1.u) for wf in self.wfs)
        )
        self._share_j2 = (
            has_j2
            and self._ee_stack
            and all(_ufunc_equal(wf.j2.u, wf0.j2.u) for wf in self.wfs)
        )
        self._ee_fast = (
            self._ee_stack
            and wf0.ee_table.layout == "soa"
            and self.cell.is_orthorhombic
        )
        self._ei_fast = (
            self._ei_stack
            and wf0.ei_table.layout == "soa"
            and self.cell.is_orthorhombic
        )
        self.refresh_positions()

    def __len__(self) -> int:
        return self.n_walkers

    def refresh_positions(self) -> None:
        """Re-gather every walker's committed positions into the SoA array.

        Call after any out-of-band position change (checkpoint restore,
        DMC branching assembling a new crowd from cloned walkers).
        """
        for w, wf in enumerate(self.wfs):
            self.positions[w] = wf.electrons.positions

    # -- batched distance rows ------------------------------------------------

    def _rows_ei(self, wrapped: np.ndarray):
        """Trial ion->electron rows for the whole crowd.

        Returns ``(dist, disp)`` stacked over walkers when layouts are
        uniform (fast path: one vectorized minimal-image computation for
        the soa/orthorhombic case), else lists of per-walker rows.
        """
        if self._ei_fast:
            cell = self.cell
            src = np.stack([wf.ei_table._src_frac for wf in self.wfs])
            tgt_frac = cell.cart_to_frac(wrapped)  # (nw, 3)
            dfrac = tgt_frac[:, :, np.newaxis] - src
            dfrac -= np.round(dfrac)
            diag = np.diag(cell.lattice)
            disp = dfrac * diag[np.newaxis, :, np.newaxis]
            dist = np.sqrt(disp[:, 0] ** 2 + disp[:, 1] ** 2 + disp[:, 2] ** 2)
            return dist, disp
        rows = [wf.ei_table._compute_row(wrapped[w]) for w, wf in enumerate(self.wfs)]
        dists = [dist for _, dist in rows]
        disps = [disp for disp, _ in rows]
        if self._ei_stack:
            return np.stack(dists), np.stack(disps)
        return dists, disps

    def _rows_ee(self, wrapped: np.ndarray, e: int):
        """Trial electron-electron rows (self entry zeroed, as propose_row)."""
        if self._ee_fast:
            cell = self.cell
            nw, ne = self.n_walkers, self.n_electrons
            frac = cell.cart_to_frac(self.positions.reshape(-1, 3))
            src = frac.reshape(nw, ne, 3).transpose(0, 2, 1)  # (nw, 3, ne)
            tgt_frac = cell.cart_to_frac(wrapped)
            dfrac = tgt_frac[:, :, np.newaxis] - src
            dfrac -= np.round(dfrac)
            diag = np.diag(cell.lattice)
            disp = dfrac * diag[np.newaxis, :, np.newaxis]
            dist = np.sqrt(disp[:, 0] ** 2 + disp[:, 1] ** 2 + disp[:, 2] ** 2)
            dist[:, e] = 0.0
            disp[:, :, e] = 0.0
            return dist, disp
        dists, disps = [], []
        for w, wf in enumerate(self.wfs):
            disp, dist = wf.ee_table._compute_row(wrapped[w])
            dist[e] = 0.0
            if wf.ee_table.layout == "aos":
                disp[e, :] = 0.0
            else:
                disp[:, e] = 0.0
            dists.append(dist)
            disps.append(disp)
        if self._ee_stack:
            return np.stack(dists), np.stack(disps)
        return dists, disps


def _stacked_committed_rows(tables, e: int):
    """Stack the committed (dist, disp) rows of electron ``e`` over a crowd."""
    dist = np.stack([t.row(e) for t in tables])
    disp = np.stack([t.disp_row(e) for t in tables])
    return dist, disp


def _j1_pieces(state: CrowdState, e: int, ei_dist, ei_disp):
    """(usum_temp, ratio, grad_temp) per walker for the one-body Jastrow."""
    nw = state.n_walkers
    if state._share_j1:
        j0 = state.wfs[0].j1
        v_new, _, _, _ = j0._row_terms(ei_dist, None)
        usum_temp = v_new.sum(axis=-1)
        usums = np.array([wf.j1._usum[e] for wf in state.wfs])
        ratio = np.exp(-(usum_temp - usums))
        gt, _ = j0._grad_lap_from_row(ei_dist, ei_disp, None)
        return usum_temp, ratio, gt
    usum_temp = np.empty(nw)
    ratio = np.empty(nw)
    gt = np.empty((nw, 3))
    for w, wf in enumerate(state.wfs):
        v_new, _, _, _ = wf.j1._row_terms(ei_dist[w], None)
        usum_temp[w] = float(v_new.sum())
        ratio[w] = float(np.exp(-(usum_temp[w] - wf.j1._usum[e])))
        gt[w], _ = wf.j1._grad_lap_from_row(ei_dist[w], ei_disp[w], None)
    return usum_temp, ratio, gt


def _j2_pieces(state: CrowdState, e: int, ee_dist, ee_disp):
    """(urow_new, urow_old, ratio, grad_temp) per walker, two-body Jastrow."""
    nw = state.n_walkers
    if state._share_j2:
        j0 = state.wfs[0].j2
        urow_new, _, _, _ = j0._row_terms(ee_dist, e)
        cd = np.stack([wf.ee_table.row(e) for wf in state.wfs])
        urow_old, _, _, _ = j0._row_terms(cd, e)
        usum_temp = urow_new.sum(axis=-1)
        usums = np.array([wf.j2._usum[e] for wf in state.wfs])
        ratio = np.exp(-(usum_temp - usums))
        gt, _ = j0._grad_lap_from_row(ee_dist, ee_disp, e)
        return urow_new, urow_old, ratio, gt
    n = state.n_electrons
    urow_new = np.empty((nw, n))
    urow_old = np.empty((nw, n))
    ratio = np.empty(nw)
    gt = np.empty((nw, 3))
    for w, wf in enumerate(state.wfs):
        vn, _, _, _ = wf.j2._row_terms(ee_dist[w], e)
        vo, _, _, _ = wf.j2._row_terms(wf.ee_table.row(e), e)
        urow_new[w] = vn
        urow_old[w] = vo
        usum_temp = float(vn.sum())
        ratio[w] = float(np.exp(-(usum_temp - wf.j2._usum[e])))
        gt[w], _ = wf.j2._grad_lap_from_row(ee_dist[w], ee_disp[w], e)
    return urow_new, urow_old, ratio, gt


def _committed_grads(state: CrowdState, e: int, cache_g, cache_lap):
    """grad log Psi at every walker's committed electron ``e`` (drift)."""
    nw = state.n_walkers
    grads = np.empty((nw, 3))
    for w, wf in enumerate(state.wfs):
        g, _ = wf.slater.grad_lap_from_vgl(e, cache_g[w, e], cache_lap[w, e])
        grads[w] = g
    # Same accumulation order as SlaterJastrow.grad: det, then j1, then j2.
    if state._has_j1:
        if state._share_j1:
            cd, cdisp = _stacked_committed_rows(
                [wf.ei_table for wf in state.wfs], e
            )
            g1, _ = state.wfs[0].j1._grad_lap_from_row(cd, cdisp, None)
            grads = grads + g1
        else:
            for w, wf in enumerate(state.wfs):
                grads[w] = grads[w] + wf.j1.grad(e)
    if state._has_j2:
        if state._share_j2:
            cd, cdisp = _stacked_committed_rows(
                [wf.ee_table for wf in state.wfs], e
            )
            g2, _ = state.wfs[0].j2._grad_lap_from_row(cd, cdisp, e)
            grads = grads + g2
        else:
            for w, wf in enumerate(state.wfs):
                grads[w] = grads[w] + wf.j2.grad(e)
    return grads


def batched_sweep(
    state: CrowdState, tau: float, use_drift: bool = True
) -> tuple[int, int]:
    """One lock-step drift-diffusion pass over all electrons of a crowd.

    Per-walker trajectories are bitwise identical to running the
    sequential :func:`repro.qmc.drift_diffusion.sweep` on each walker
    with the same streams; only the evaluation schedule changes.

    Returns
    -------
    (accepted, attempted):
        Move counts summed over the crowd.
    """
    wfs, rngs = state.wfs, state.rngs
    nw, ne = state.n_walkers, state.n_electrons
    spos = state.spos
    accepted = 0
    state.accepts[:] = 0
    sqrt_tau = np.sqrt(tau)

    if use_drift:
        # Drift cache: one batched VGH over every committed position.
        # Valid for the whole sweep — electron e's committed orbitals can
        # only change when e itself moves, and each e is visited once.
        _, cache_g, cache_lap = spos.vgl_batch(state.positions.reshape(-1, 3))
        state.n_batched_calls += 1
        cache_g = cache_g.reshape(nw, ne, 3, -1)
        cache_lap = cache_lap.reshape(nw, ne, -1)

    for e in range(ne):
        # 1. proposals: batched drift, per-walker diffusion.
        r_old = state.positions[:, e, :]
        if use_drift:
            grads_old = _committed_grads(state, e, cache_g, cache_lap)
            drift_old = limited_drift(grads_old, tau)
        else:
            drift_old = np.zeros((nw, 3))
        chi = np.stack([rng.standard_normal(3) for rng in rngs])
        r_new = r_old + tau * drift_old + chi * sqrt_tau

        # 2. one batched orbital call + batched rows/radials at the trials.
        wrapped = state.cell.wrap_cart(r_new)
        v, g, lap = spos.vgl_batch(wrapped)
        state.n_batched_calls += 1
        ee_dist, ee_disp = state._rows_ee(wrapped, e)
        ei_dist, ei_disp = state._rows_ei(wrapped)
        if state._has_j1:
            j1_usum, j1_ratio, j1_gt = _j1_pieces(state, e, ei_dist, ei_disp)
        if state._has_j2:
            j2_new, j2_old, j2_ratio, j2_gt = _j2_pieces(
                state, e, ee_dist, ee_disp
            )

        # 3. per-walker staging; scalar assembly replays the per-walker
        # operation order: ratio = (det * j1) * j2, grad = (det + j1) + j2.
        ratios = np.empty(nw)
        grads_new = np.empty((nw, 3))
        for w, wf in enumerate(wfs):
            det_ratio, det_grad = wf.stage_precomputed(
                e,
                wrapped[w],
                (v[w], g[w], lap[w]),
                (ee_dist[w], ee_disp[w]),
                (ei_dist[w], ei_disp[w]),
                j1_usum_temp=float(j1_usum[w]) if state._has_j1 else None,
                j2_urows=(j2_new[w], j2_old[w]) if state._has_j2 else None,
            )
            ratio = det_ratio
            grad = det_grad
            if state._has_j1:
                ratio *= float(j1_ratio[w])
                grad = grad + j1_gt[w]
            if state._has_j2:
                ratio *= float(j2_ratio[w])
                grad = grad + j2_gt[w]
            ratios[w] = ratio
            grads_new[w] = grad
        state.ratios[...] = ratios

        # 4. independent Metropolis decisions (same per-stream RNG order
        # as the per-walker path: a uniform is drawn only when the ratio
        # is nonzero and the log-acceptance negative).
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            log_acc = 2.0 * np.log(np.abs(ratios))
            if use_drift:
                drift_new = limited_drift(grads_new, tau)
                log_acc = log_acc + log_greens_ratio(
                    r_old, r_new, drift_old, drift_new, tau
                )
            acc_prob = np.exp(np.minimum(log_acc, 0.0))
        for w, wf in enumerate(wfs):
            if ratios[w] == 0.0:
                wf.reject_move(e)
                continue
            if log_acc[w] >= 0.0 or rngs[w].random() < acc_prob[w]:
                wf.accept_move(e)
                state.positions[w, e] = wrapped[w]
                accepted += 1
                state.accepts[w] += 1
            else:
                wf.reject_move(e)

    if OBS.enabled:
        OBS.count("crowd_batched_sweeps_total")
        OBS.count("crowd_batched_moves_total", nw * ne)
        OBS.count("crowd_batched_accepts_total", accepted)
    return accepted, nw * ne
