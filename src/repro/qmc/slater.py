"""Spline-backed orbital sets and the spin-factorized Slater determinant.

:class:`SplineOrbitalSet` is the bridge between the B-spline kernels of
:mod:`repro.core` (which live in the grid's fractional coordinate frame)
and the QMC layer (which works in Cartesian coordinates): it wraps any
engine layout, converts positions to fractional coordinates, and applies
the lattice chain rule to gradients and Laplacians.  For non-orthorhombic
cells the Cartesian Laplacian mixes all six Hessian components, so the
adapter always drives the ``VGH`` kernel — matching the paper's note that
"for the graphite systems, VGH is used during the drift-diffusion phase"
(Sec. IV).

:class:`SlaterDet` stacks the two spin determinants D(up), D(down) of the
Slater-Jastrow form (paper Eq. 1) over one shared orbital set, assuming
the paper's convention ``Nel = 2N`` with equal spin populations.
"""

from __future__ import annotations

import numpy as np

from repro.core.coeffs import solve_coefficients_3d
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.layout_fused import BsplineFused
from repro.core.layout_soa import BsplineSoA
from repro.core.layout_aos import BsplineAoS
from repro.lattice.cell import Cell
from repro.qmc.determinant import DiracDeterminant
from repro.qmc.particleset import ParticleSet

__all__ = ["SplineOrbitalSet", "SlaterDet"]

_ENGINES = {
    "aos": BsplineAoS,
    "soa": BsplineSoA,
    "fused": BsplineFused,
}

#: configure_batched sentinel: "argument not given" (None is meaningful).
_UNSET = object()


class SplineOrbitalSet:
    """N B-spline orbitals evaluated at Cartesian positions.

    Parameters
    ----------
    cell:
        The periodic cell the orbitals are defined on.
    grid:
        Fractional-coordinate grid (its ``lengths`` must be the unit box).
    engine:
        Any :class:`repro.core.Engine` exposing a coefficient table
        ``P``; all evaluations run through a
        :class:`~repro.core.batched.BsplineBatched` built over that
        table (single positions are batches of one).
    config:
        A :class:`repro.config.RunConfig` carrying the execution knobs
        (chunk, tile, backend, tune mode).  ``None`` builds one from
        the environment (rung 2 of the documented resolution order);
        unresolved blocking fields are concretized lazily — tuned-DB
        winner if one is tier-eligible, cache-budget heuristic
        otherwise.
    tile_size, chunk_size, backend:
        .. deprecated:: PR9
           Pre-config spellings of the same knobs, honoured for one
           release (a passed value overrides the matching ``config``
           field and warns).  Use ``config=RunConfig(...)``.
    padded_table:
        Optional ghost-padded ``(nx+3, ny+3, nz+3, N)`` table from
        :func:`repro.core.coeffs.pad_table_3d`; when given, the batched
        engine adopts it zero-copy instead of re-padding ``engine.P`` —
        the shared-memory path, where the parent process pads once and
        workers attach.

    Notes
    -----
    Chain rule used throughout, with ``B = inv(lattice)`` (so that
    ``frac = cart @ B``):

    * ``grad_cart = B @ grad_frac``
    * ``H_cart = B @ H_frac @ B.T``
    * ``lap_cart = sum_{fg} M[f,g] H_frac[f,g]`` with ``M = B.T? `` —
      concretely ``M = B @ B.T`` contracted against the symmetric
      fractional Hessian (see :meth:`vgl`).
    """

    def __init__(
        self,
        cell: Cell,
        grid: Grid3D,
        engine,
        tile_size: int | None = None,
        chunk_size: int | None = None,
        padded_table: np.ndarray | None = None,
        backend=None,
        config=None,
    ):
        from repro.config import RunConfig, deprecated_kwargs

        deprecated_kwargs(
            "SplineOrbitalSet",
            tile_size=tile_size is not None,
            chunk_size=chunk_size is not None,
            backend=backend is not None,
        )
        if config is None:
            config = RunConfig.from_env(
                tile_size=tile_size, chunk_size=chunk_size, backend=backend
            )
        else:
            overrides = {
                k: v
                for k, v in (
                    ("tile_size", tile_size),
                    ("chunk_size", chunk_size),
                    ("backend", backend),
                )
                if v is not None
            }
            if overrides:
                config = config.replace(**overrides)
        if tuple(grid.lengths) != (1.0, 1.0, 1.0):
            raise ValueError(
                "SplineOrbitalSet grids live in fractional coordinates; "
                f"grid lengths must be (1,1,1), got {grid.lengths}"
            )
        if padded_table is not None:
            expected = grid.padded_shape + (engine.n_splines,)
            if padded_table.shape != expected:
                raise ValueError(
                    f"padded table shape {padded_table.shape} does not "
                    f"match expected {expected}"
                )
        self.cell = cell
        self.grid = grid
        self.engine = engine
        self.n_orbitals = engine.n_splines
        #: The resolved-or-resolving :class:`repro.config.RunConfig`.
        self.config = config
        self._padded_table = padded_table
        self._B = np.linalg.inv(cell.lattice)  # cart -> frac Jacobian (rows a)
        self._M = self._B @ self._B.T  # Laplacian metric

    @property
    def tile_size(self) -> int | None:
        """The config's spline-tile width (read-only view)."""
        return self.config.tile_size

    @property
    def chunk_size(self) -> int | None:
        """The config's gather-chunk size (read-only view)."""
        return self.config.chunk_size

    @property
    def backend(self):
        """The config's kernel-backend spec (read-only view)."""
        return self.config.backend

    def configure_batched(
        self,
        tile_size: int | None = None,
        chunk_size: int | None = None,
        backend=_UNSET,
        config=None,
    ) -> None:
        """Re-plan the batched engine with an explicit configuration.

        Drops the cached engine so the next evaluation rebuilds it with
        the new plan — results stay bitwise identical for any setting
        (see :mod:`repro.core.batched`); only the cache behaviour moves.
        Pass ``config=RunConfig(...)`` (the PR9 spelling) to replace the
        whole configuration.

        The knob kwargs are the pre-config spelling, honoured one more
        release with a DeprecationWarning: ``tile_size``/``chunk_size``
        reset together (``None`` = re-tune), while ``backend`` switches
        only when given — unlike the tuner knobs, a backend choice
        changes numerics at the allclose tier, so it never resets
        implicitly.
        """
        from repro.config import deprecated_kwargs

        deprecated_kwargs(
            "SplineOrbitalSet.configure_batched",
            tile_size=tile_size is not None,
            chunk_size=chunk_size is not None,
            backend=backend is not _UNSET,
        )
        if config is not None:
            self.config = config
        else:
            changes = {"tile_size": tile_size, "chunk_size": chunk_size}
            if backend is not _UNSET:
                changes["backend"] = backend
            self.config = self.config.replace(**changes)
        if hasattr(self, "_batched"):
            del self._batched

    def _get_batched(self):
        """The lazily-built batched engine over the same table.

        Every evaluation — single-position and batched alike — routes
        through this one engine, so the per-walker and crowd step paths
        produce bit-identical orbitals by construction (NumPy reductions
        along the last axes are row-wise batch-invariant; see
        :mod:`repro.core.batched`).
        """
        from repro.core.batched import BsplineBatched

        if not hasattr(self, "_batched"):
            table = (
                self._padded_table
                if self._padded_table is not None
                else self.engine.P
            )
            if not self.config.is_resolved:
                # Rungs 3-4, parent-side, at the natural batch of the
                # QMC adapter: one sweep over all 2N electrons.
                self.config = self.config.resolved_for(
                    self.n_orbitals,
                    batch=2 * self.n_orbitals,
                    dtype=table.dtype,
                )
            self._batched = BsplineBatched(self.grid, table, config=self.config)
        return self._batched

    @classmethod
    def from_orbital_functions(
        cls,
        cell: Cell,
        orbitals,
        grid_shape: tuple[int, int, int],
        engine: str = "fused",
        dtype: np.dtype | type = np.float32,
        tile_size: int | None = None,
        chunk_size: int | None = None,
        backend: str | None = None,
        config=None,
    ) -> "SplineOrbitalSet":
        """Sample analytic orbitals on the grid, solve, and wrap an engine.

        Parameters
        ----------
        cell:
            The periodic cell.
        orbitals:
            An object with ``values_on_grid(nx, ny, nz)`` and
            ``n_orbitals`` (e.g. :class:`repro.lattice.PlaneWaveOrbitalSet`).
        grid_shape:
            Spline grid dimensions.
        engine:
            ``"aos"``, ``"soa"``, ``"fused"`` or ``"aosoa"``.
        dtype:
            Coefficient-table dtype (paper default: single precision).
        config:
            :class:`repro.config.RunConfig` for the batched engine.
        tile_size, chunk_size, backend:
            .. deprecated:: PR9
               Use ``config=RunConfig(...)``; honoured (with a warning)
               for one release.
        """
        if engine == "aosoa":
            raise ValueError(
                "the QMC adapter needs single-block outputs; tiled (aosoa) "
                "engines are exercised by the miniQMC drivers instead — "
                "use engine='soa' or 'fused' here"
            )
        nx, ny, nz = grid_shape
        samples = orbitals.values_on_grid(nx, ny, nz)
        P = solve_coefficients_3d(samples, dtype=dtype)
        grid = Grid3D(nx, ny, nz, (1.0, 1.0, 1.0))
        try:
            eng = _ENGINES[engine](grid, P)
        except KeyError:
            raise ValueError(f"unknown engine {engine!r}") from None
        return cls(
            cell,
            grid,
            eng,
            tile_size=tile_size,
            chunk_size=chunk_size,
            backend=backend,
            config=config,
        )

    def _frac(self, cart_pos: np.ndarray) -> np.ndarray:
        return self.cell.wrap_frac(self.cell.cart_to_frac(cart_pos))

    def values(self, cart_pos: np.ndarray) -> np.ndarray:
        """Orbital values at one Cartesian position; ``(N,)`` float64."""
        return self.values_batch(cart_pos)[0]

    def values_batch(self, cart_positions: np.ndarray) -> np.ndarray:
        """Orbital values at many positions at once; ``(ns, N)`` float64.

        Uses the batched engine (:mod:`repro.core.batched`) built lazily
        over the same coefficient table — the evaluation path behind the
        pseudopotential quadrature, where one electron needs orbital
        values at 6-12 sphere points simultaneously.
        """
        batched = self._get_batched()
        cart_positions = np.atleast_2d(np.asarray(cart_positions, dtype=np.float64))
        frac = self.cell.wrap_frac(self.cell.cart_to_frac(cart_positions))
        out = batched.new_output(Kind.V, n=len(frac))
        batched.v_batch(frac, out)
        return out.v.astype(np.float64)

    def vgl_batch(
        self, cart_positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`vgl`: many positions in one engine call.

        Returns ``(v (ns, N), g (ns, 3, N), lap (ns, N))`` — float64,
        Cartesian derivatives via the same lattice chain rule.  This is
        the evaluation path of the crowd driver
        (:mod:`repro.qmc.crowd`), which advances many walkers' same-index
        electrons through one batched kernel call.
        """
        batched = self._get_batched()
        cart_positions = np.atleast_2d(np.asarray(cart_positions, dtype=np.float64))
        frac = self.cell.wrap_frac(self.cell.cart_to_frac(cart_positions))
        out = batched.new_output(Kind.VGH, n=len(frac))
        batched.vgh_batch(frac, out)
        v = out.v.astype(np.float64)
        g_cart = np.einsum("af,sfn->san", self._B, out.g.astype(np.float64))
        h = out.h.astype(np.float64)  # (ns, 6, N): xx, xy, xz, yy, yz, zz
        M = self._M
        lap = (
            M[0, 0] * h[:, 0]
            + M[1, 1] * h[:, 3]
            + M[2, 2] * h[:, 5]
            + 2.0 * (M[0, 1] * h[:, 1] + M[0, 2] * h[:, 2] + M[1, 2] * h[:, 4])
        )
        return v, g_cart, lap

    def vgl(
        self, cart_pos: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Values, Cartesian gradients and Laplacians at one position.

        A batch-of-one through :meth:`vgl_batch`, so per-walker and crowd
        drivers see the same bits.

        Returns
        -------
        (v, g, lap):
            ``v`` ``(N,)``, ``g`` ``(3, N)``, ``lap`` ``(N,)`` — float64.
        """
        v, g, lap = self.vgl_batch(cart_pos)
        return v[0], g[0], lap[0]

    def vgh(
        self, cart_pos: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Values, Cartesian gradients and full Cartesian Hessians.

        Returns ``(v (N,), g (3, N), h (3, 3, N))``.
        """
        batched = self._get_batched()
        cart = np.atleast_2d(np.asarray(cart_pos, dtype=np.float64))
        frac = self.cell.wrap_frac(self.cell.cart_to_frac(cart))
        out = batched.new_output(Kind.VGH, n=len(frac))
        batched.vgh_batch(frac, out)
        c = out.as_canonical(0)
        g_cart = self._B @ c["g"]
        h_cart = np.einsum("af,fgn,bg->abn", self._B, c["h"], self._B)
        return c["v"], g_cart, h_cart


class SlaterDet:
    """Product of two spin determinants sharing one orbital set.

    Electrons ``0 .. N-1`` are spin-up, ``N .. 2N-1`` spin-down, with
    ``N = spos.n_orbitals`` (paper convention below Eq. 1).

    Parameters
    ----------
    spos:
        The shared orbital set.
    electrons:
        The electron :class:`~repro.qmc.particleset.ParticleSet`; its
        size must be exactly ``2 * spos.n_orbitals``.
    delay:
        Opt-in delayed (rank-k) inverse updates: with ``delay=k`` each
        spin uses a :class:`~repro.qmc.delayed.DelayedDeterminant` that
        accumulates up to ``k`` accepted rows before one Woodbury flush
        (``k=1`` degenerates to per-move updates).  ``None`` (default)
        keeps the paper's per-move Sherman-Morrison
        :class:`~repro.qmc.determinant.DiracDeterminant`.  Ratios and
        derivatives agree move for move to rounding (different
        operation order, so equality is ``allclose``, not bitwise).
    """

    def __init__(
        self,
        spos: SplineOrbitalSet,
        electrons: ParticleSet,
        delay: int | None = None,
        config=None,
    ):
        # ``config.delay`` is the RunConfig spelling of the same knob; an
        # explicit ``delay`` kwarg wins (resolution-order rung 1).
        if delay is None and config is not None:
            delay = config.delay
        n = spos.n_orbitals
        if len(electrons) != 2 * n:
            raise ValueError(
                f"need 2N = {2 * n} electrons for N = {n} orbitals, "
                f"got {len(electrons)}"
            )
        self.spos = spos
        self.electrons = electrons
        self.n_orbitals = n
        self.delay = delay
        if delay is None:
            self.dets = [
                DiracDeterminant(self._build_matrix(0)),
                DiracDeterminant(self._build_matrix(1)),
            ]
        else:
            from repro.qmc.delayed import DelayedDeterminant

            self.dets = [
                DelayedDeterminant(self._build_matrix(0), delay=delay),
                DelayedDeterminant(self._build_matrix(1), delay=delay),
            ]
        self._staged_vgl: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._staged_for: int | None = None

    def _build_matrix(self, spin: int) -> np.ndarray:
        n = self.n_orbitals
        offset = spin * n
        A = np.empty((n, n))
        for e in range(n):
            A[e, :] = self.spos.values(self.electrons[offset + e])
        return A

    def _locate(self, e: int) -> tuple[DiracDeterminant, int]:
        """The determinant owning electron ``e`` and its local row index."""
        n = self.n_orbitals
        if not 0 <= e < 2 * n:
            raise IndexError(f"electron {e} out of range [0, {2 * n})")
        return (self.dets[0], e) if e < n else (self.dets[1], e - n)

    @property
    def log_value(self) -> float:
        """log |D(up) * D(down)|."""
        return self.dets[0].log_det + self.dets[1].log_det

    @property
    def sign(self) -> float:
        """Sign of the determinant product."""
        return self.dets[0].sign * self.dets[1].sign

    def ratio(self, e: int, new_pos: np.ndarray) -> float:
        """Eq.-3 ratio for moving electron ``e`` to ``new_pos``.

        Evaluates the B-spline VGH kernel once and caches the full VGL so
        :meth:`ratio_grad` / :meth:`accept_move` reuse it.
        """
        r, _ = self.ratio_grad(e, new_pos)
        return r

    def ratio_grad(self, e: int, new_pos: np.ndarray) -> tuple[float, np.ndarray]:
        """(ratio, grad log D at the trial position) — Eqs. 3-4."""
        v, g, lap = self.spos.vgl(new_pos)
        return self.ratio_grad_from_vgl(e, v, g, lap)

    def ratio_grad_from_vgl(
        self, e: int, v: np.ndarray, g: np.ndarray, lap: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Like :meth:`ratio_grad` but with precomputed orbital VGL.

        The entry point for batched drivers (:mod:`repro.qmc.crowd`):
        orbitals for many walkers are evaluated in one kernel call, then
        each walker stages its own slice here.
        """
        det, row = self._locate(e)
        self._staged_vgl = (v, g, lap)
        self._staged_for = e
        return det.ratio_grad(row, v, g)

    def accept_move(self, e: int) -> None:
        """Sherman-Morrison update for the staged move of ``e``."""
        det, row = self._locate(e)
        if self._staged_for != e:
            raise RuntimeError(f"no staged evaluation for electron {e}")
        det.accept_move(row)
        self._staged_for = None
        self._staged_vgl = None

    def reject_move(self, e: int) -> None:
        """Drop the staged move of ``e``."""
        det, row = self._locate(e)
        if self._staged_for != e:
            raise RuntimeError(f"no staged evaluation for electron {e}")
        det.reject_move(row)
        self._staged_for = None
        self._staged_vgl = None

    def grad_lap(self, e: int) -> tuple[np.ndarray, float]:
        """(grad D / D, lap D / D) at electron ``e``'s committed position."""
        v, g, lap = self.spos.vgl(self.electrons[e])
        return self.grad_lap_from_vgl(e, g, lap)

    def grad_lap_from_vgl(
        self, e: int, g: np.ndarray, lap: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Like :meth:`grad_lap` but with precomputed orbital gradients.

        The entry point for batched drivers, which evaluate the committed
        positions of a whole crowd in one kernel call and hand each
        walker its slice.
        """
        det, row = self._locate(e)
        return det.grad_lap(row, g, lap)

    def recompute(self) -> None:
        """Rebuild both Slater matrices and inverses from scratch."""
        for spin in (0, 1):
            self.dets[spin].recompute(self._build_matrix(spin))
