"""Diffusion Monte Carlo driver with drift-diffusion, measurement, branching.

Paper Sec. III describes the three stages per generation this module
implements: "(i) a drift-diffusion process ... (ii) a measurement stage
... (iii) a branching process" over an ensemble of walkers, each carrying
its own configuration ``R`` and private random stream.

Branching uses the standard integer-copies scheme: a walker with weight
``w = exp(-tau * ((E_L + E_L_old)/2 - E_T))`` produces
``floor(w + u)`` copies (``u`` uniform), and the trial energy ``E_T`` is
steered with a population-control feedback term so the ensemble stays
near its target size.  Each clone receives a *fresh* random stream from
the pool (never a copy of the parent's), keeping streams independent.

Fault tolerance (:mod:`repro.resilience`): the driver can write periodic
checkpoints (walker positions, exact RNG bit-generator states, traces)
and resume from one such that the continued run reproduces the
uninterrupted energy/population traces **bit-for-bit**; a
:class:`~repro.resilience.guards.GuardConfig` turns NaN/Inf local
energies into a policy (raise / recompute / drop-and-rebranch) instead
of silent trace poison; and population collapse or explosion is rescued
toward the target by a
:class:`~repro.resilience.guards.PopulationGuard`.

Bit-for-bit note: taking a checkpoint calls ``recompute()`` on every
walker (so the in-memory derived state equals what a restore rebuilds
from positions).  Runs compared for reproducibility must therefore share
the same ``checkpoint_every`` cadence — which is exactly how a
production restart compares against its own uninterrupted twin.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs import OBS
from repro.qmc.batched_step import CrowdState, batched_sweep
from repro.qmc.drift_diffusion import sweep
from repro.qmc.estimators import LocalEnergy
from repro.qmc.rng import WalkerRngPool
from repro.qmc.wavefunction import SlaterJastrow
from repro.resilience.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.resilience.guards import GuardConfig, GuardViolation, PopulationGuard

__all__ = ["DmcWalker", "DmcResult", "run_dmc", "build_dmc_ensemble"]


@dataclass
class DmcWalker:
    """One DMC walker: wavefunction state + stream + bookkeeping."""

    wf: SlaterJastrow
    rng: np.random.Generator
    e_local: float = 0.0

    def clone(self, rng: np.random.Generator) -> "DmcWalker":
        """A branching copy: same configuration, fresh random stream.

        The clone gets its own mutable state (particles, tables,
        determinant inverses) but *shares* the parent's orbital set —
        the read-only coefficient table every walker in the ensemble
        reads.  Sharing keeps branching O(walker state) instead of
        O(spline table) and keeps the whole ensemble in one crowd for
        the batched population step.
        """
        spos = self.wf.slater.spos
        wf_new = copy.deepcopy(self.wf, {id(spos): spos})
        return DmcWalker(wf=wf_new, rng=rng, e_local=self.e_local)


@dataclass
class DmcResult:
    """Outcome of a DMC run.

    Attributes
    ----------
    energy_trace:
        Population-averaged local energy per generation.
    population_trace:
        Walker count per generation.
    e_trial_trace:
        The steered trial energy per generation.
    acceptance:
        Overall move acceptance.
    rescues, truncations:
        Population-guard interventions (collapse rescues / explosion
        truncations) over the run — nonzero means the run needed help.
    dropped_walkers:
        Walkers discarded by the non-finite-energy ``"drop"`` policy.
    fleet:
        Supervision outcome when the run was driven by
        :func:`repro.fleet.run_dmc_supervised` (restart/rebalance/scale
        counts, MTTR samples, final worker count); ``None`` otherwise.
    """

    energy_trace: np.ndarray
    population_trace: np.ndarray
    e_trial_trace: np.ndarray
    acceptance: float
    rescues: int = field(default=0)
    truncations: int = field(default=0)
    dropped_walkers: int = field(default=0)
    fleet: dict | None = field(default=None)

    @property
    def energy_mean(self) -> float:
        """Mean of the second half of the energy trace (post-equilibration)."""
        half = len(self.energy_trace) // 2
        return float(np.mean(self.energy_trace[half:]))


def _save_dmc_checkpoint(
    path,
    walkers: list[DmcWalker],
    pool: WalkerRngPool,
    generation: int,
    e_trial: float,
    accepted: int,
    attempted: int,
    traces: tuple[list, list, list],
    params: dict,
) -> None:
    """Snapshot the full ensemble state after ``generation`` generations.

    Every walker is ``recompute()``d first so the continuing in-memory
    run and a future restore share identical derived state (the
    bit-for-bit contract).
    """
    for w in walkers:
        w.wf.recompute()
    energy_trace, pop_trace, et_trace = traces
    manifest = {
        "kind": "dmc",
        "generation": generation,
        "accepted": accepted,
        "attempted": attempted,
        "n_walkers": len(walkers),
        "pool_state": pool.state,
        "walker_rng_states": [rng_state(w.rng) for w in walkers],
        "params": params,
    }
    arrays = {
        "positions": np.stack([w.wf.electrons.positions for w in walkers]),
        # Branching clones inherit their parent's ion configuration, so a
        # restore cannot assume template walker i still matches saved
        # walker i — ion positions are part of the snapshot.
        "ion_positions": np.stack([w.wf.ions.positions for w in walkers]),
        "e_local": np.asarray([w.e_local for w in walkers], dtype=np.float64),
        "e_trial": np.asarray(e_trial, dtype=np.float64),
        "energy_trace": np.asarray(energy_trace, dtype=np.float64),
        "population_trace": np.asarray(pop_trace, dtype=np.int64),
        "e_trial_trace": np.asarray(et_trace, dtype=np.float64),
    }
    save_checkpoint(path, manifest, arrays)


def _resume_dmc(
    resume, walkers: list[DmcWalker], params: dict
) -> tuple[list[DmcWalker], WalkerRngPool, int, float, int, int, tuple[list, list, list]]:
    """Rebuild ensemble state from a checkpoint, reusing ``walkers`` as
    templates for wavefunction structure (table, cell, Jastrows)."""
    ckpt = load_checkpoint(resume, expect_kind="dmc")
    saved = ckpt.manifest["params"]
    for key in ("tau", "target_population", "feedback", "max_population_factor", "ion_charge"):
        if saved.get(key) != params.get(key):
            raise CheckpointError(
                f"checkpoint parameter mismatch for {key!r}: "
                f"saved {saved.get(key)!r}, requested {params.get(key)!r}"
            )
    if not walkers:
        raise ValueError("resume needs at least one template walker")
    positions = ckpt.arrays["positions"]
    ion_positions = ckpt.arrays["ion_positions"]
    e_locals = ckpt.arrays["e_local"]
    states = ckpt.manifest["walker_rng_states"]
    n_saved = int(ckpt.manifest["n_walkers"])
    restored: list[DmcWalker] = []
    for i in range(n_saved):
        if i < len(walkers):
            wf = walkers[i].wf
        else:
            # Extra walkers share the template's orbital set (read-only),
            # like branching clones do.
            spos0 = walkers[0].wf.slater.spos
            wf = copy.deepcopy(walkers[0].wf, {id(spos0): spos0})
        try:
            wf.electrons.load_positions(positions[i], wrap=False)
            wf.ions.load_positions(ion_positions[i], wrap=False)
        except ValueError as exc:
            raise CheckpointError(
                f"template walker {i} does not match checkpoint shape: {exc}"
            ) from exc
        wf.recompute()
        restored.append(
            DmcWalker(wf=wf, rng=restore_rng(states[i]), e_local=float(e_locals[i]))
        )
    pool = WalkerRngPool.from_state(ckpt.manifest["pool_state"])
    traces = (
        list(ckpt.arrays["energy_trace"]),
        [int(p) for p in ckpt.arrays["population_trace"]],
        list(ckpt.arrays["e_trial_trace"]),
    )
    return (
        restored,
        pool,
        int(ckpt.manifest["generation"]),
        float(ckpt.arrays["e_trial"]),
        int(ckpt.manifest["accepted"]),
        int(ckpt.manifest["attempted"]),
        traces,
    )


def _crowd_groups(walkers: list[DmcWalker]) -> list[list[DmcWalker]]:
    """Partition an ensemble into crowds that can step batched together.

    Walkers sharing one orbital-set object, electron count and Jastrow
    structure form one lock-step group; walker order is preserved inside
    each group (streams are private, so cross-group order is free).
    Branching clones share their parent's orbital set, so a standard
    ensemble stays a single crowd for its whole life.
    """
    groups: dict[tuple, list[DmcWalker]] = {}
    for w in walkers:
        wf = w.wf
        key = (
            id(wf.slater.spos),
            len(wf.electrons),
            wf.j1 is not None,
            wf.j2 is not None,
        )
        groups.setdefault(key, []).append(w)
    return list(groups.values())


def run_dmc(
    walkers: list[DmcWalker],
    pool: WalkerRngPool,
    n_generations: int = 20,
    tau: float = 0.05,
    target_population: int | None = None,
    feedback: float = 1.0,
    max_population_factor: int = 4,
    ion_charge: float = 4.0,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
    guard: GuardConfig | None = None,
    estimator_factory=None,
    on_generation=None,
    step_mode: str | None = None,
    config=None,
) -> DmcResult:
    """Propagate a DMC ensemble; returns traces for analysis.

    Parameters
    ----------
    walkers:
        The initial (ideally VMC-equilibrated) ensemble; mutated in place
        and re-populated by branching.  When resuming, these serve as
        structural templates whose positions/streams are overwritten from
        the checkpoint.
    pool:
        Stream factory for branching clones (replaced by the restored
        pool when resuming).
    n_generations:
        Total DMC generations for the run (including any completed before
        a resume point).
    tau:
        Imaginary time step.
    target_population:
        Population-control target; defaults to the initial count.
    feedback:
        E_T feedback strength kappa in
        ``E_T = E_est - kappa/tau * log(pop / target)`` (classic form,
        scaled mildly here to avoid over-steering small test populations).
    max_population_factor:
        Hard cap on population explosion (run aborts into a truncation
        instead of eating all memory if the trial energy misbehaves).
    ion_charge:
        Valence charge for the local-energy estimator.
    checkpoint_every:
        Write a checkpoint to ``checkpoint_path`` every this many
        generations (and recompute walker state at each save — see the
        module docstring's bit-for-bit note).
    checkpoint_path:
        Checkpoint directory (required with ``checkpoint_every``);
        overwritten atomically at each save.
    resume:
        Path of a checkpoint to continue from; physics parameters must
        match the checkpointed run.
    guard:
        Non-finite-energy policy
        (:class:`~repro.resilience.guards.GuardConfig`); ``None`` keeps
        the legacy pass-through behavior.
    estimator_factory:
        ``factory(walker) -> estimator`` with a ``total()`` method;
        defaults to :class:`~repro.qmc.estimators.LocalEnergy`.  The
        fault-injection tests use this seam to poison measurements.
    on_generation:
        ``hook(gen, walkers)`` called after each completed generation
        (after any checkpoint write); exceptions propagate, which is how
        the resilience tests simulate a mid-run kill.
    step_mode:
        ``"batched"`` (default) propagates each generation through the
        batched population step: walkers are grouped by shared orbital
        set and advanced in lock step with one kernel call per electron
        move (:mod:`repro.qmc.batched_step`).  ``"walker"`` keeps the
        sequential per-walker sweep.  Both produce bit-identical
        trajectories (each walker's private stream is consumed in the
        same order), so the mode is not part of the checkpoint contract.
        ``None`` resolves through ``config.step_mode``, then the
        ``REPRO_STEP_MODE`` environment variable, then ``"batched"``.
    config:
        Optional :class:`repro.config.RunConfig`; currently supplies
        the ``step_mode`` default (the ensemble's kernel knobs are
        fixed at :func:`build_dmc_ensemble` time).
    """
    from repro.config import effective_step_mode

    step_mode = effective_step_mode(step_mode, config)
    if step_mode not in ("batched", "walker"):
        raise ValueError(
            f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
        )
    if not walkers:
        raise ValueError("need at least one walker")
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
    target = target_population or len(walkers)
    params = {
        "tau": tau,
        "target_population": target,
        "feedback": feedback,
        "max_population_factor": max_population_factor,
        "ion_charge": ion_charge,
    }
    pop_guard = PopulationGuard(target, max_population_factor)
    energy_policy = guard.on_nonfinite_energy if guard is not None else "ignore"
    dropped = 0
    estimators: dict[int, object] = {}
    factory = estimator_factory or (lambda w: LocalEnergy(w.wf, ion_charge))

    def e_local(w: DmcWalker) -> float:
        est = estimators.get(id(w))
        if est is None:
            est = factory(w)
            estimators[id(w)] = est
        return est.total()

    def measure(w: DmcWalker) -> bool:
        """Measure ``w``; returns False if the walker must be dropped."""
        nonlocal dropped
        w.e_local = e_local(w)
        if np.isfinite(w.e_local) or energy_policy == "ignore":
            return True
        OBS.count(
            "guard_trips_total", kind="nonfinite_energy", driver="dmc"
        )
        OBS.event("guard:nonfinite_energy", cat="guard", driver="dmc")
        if energy_policy == "recompute":
            # Rebuild derived state (a drifted inverse is the usual
            # culprit) and re-measure once through a fresh estimator.
            w.wf.recompute()
            estimators.pop(id(w), None)
            w.e_local = e_local(w)
            if np.isfinite(w.e_local):
                return True
        if energy_policy == "raise":
            raise GuardViolation(
                f"non-finite local energy {w.e_local!r} "
                f"(policy 'raise'; use 'drop' or 'recompute' to continue)"
            )
        dropped += 1
        return False

    if resume is not None:
        (walkers_r, pool, start_gen, e_trial, accepted, attempted, traces) = (
            _resume_dmc(resume, walkers, params)
        )
        walkers[:] = walkers_r
        energy_trace, pop_trace, et_trace = traces
    else:
        start_gen = 0
        accepted = attempted = 0
        energy_trace, pop_trace, et_trace = [], [], []
        healthy = [w for w in walkers if measure(w)]
        if not healthy:
            raise GuardViolation("no walker with finite local energy at start")
        walkers[:] = healthy
        e_trial = float(np.mean([w.e_local for w in walkers]))

    for gen in range(start_gen, n_generations):
        t_gen = time.perf_counter() if OBS.enabled else 0.0
        # (i) drift-diffusion propagation.  The batched mode advances
        # each shared-orbital-set group in lock step; since every walker
        # consumes only its private stream, the result is bit-identical
        # to sweeping walkers one at a time.
        if step_mode == "batched":
            for group in _crowd_groups(walkers):
                state = CrowdState([w.wf for w in group], [w.rng for w in group])
                acc, att = batched_sweep(state, tau)
                accepted += acc
                attempted += att
        else:
            for w in walkers:
                acc, att = sweep(w.wf, tau, w.rng)
                accepted += acc
                attempted += att
        # (ii) measurement, in walker order.
        weights: list[float | None] = []
        for w in walkers:
            e_old = w.e_local
            if not measure(w):
                weights.append(None)  # dropped: no branching copies at all
                continue
            # Branching weight from the symmetrized local energy.
            weights.append(np.exp(-tau * (0.5 * (w.e_local + e_old) - e_trial)))
        # (iii) branching: integer copies floor(w + u).
        new_walkers: list[DmcWalker] = []
        cap = pop_guard.cap
        for w, wt in zip(walkers, weights):
            if wt is None:
                continue
            n_copies = int(wt + w.rng.random())
            for c in range(n_copies):
                if len(new_walkers) >= cap:
                    break
                if c == 0:
                    new_walkers.append(w)
                else:
                    new_walkers.append(w.clone(pool.next_rng()))
                    OBS.count("dmc_branch_clones_total")
        walkers[:] = pop_guard.enforce(new_walkers, walkers, pool)
        estimators.clear()
        e_est = float(np.mean([w.e_local for w in walkers]))
        # Population-control feedback on the trial energy.
        e_trial = e_est - feedback * np.log(len(walkers) / target)
        energy_trace.append(e_est)
        pop_trace.append(len(walkers))
        et_trace.append(e_trial)
        if OBS.enabled:
            dt = time.perf_counter() - t_gen
            OBS.count("dmc_generations_total")
            OBS.observe("dmc_generation_seconds", dt)
            OBS.gauge("dmc_population", len(walkers))
            OBS.gauge("dmc_e_trial", e_trial)
            OBS.complete(
                "dmc:generation",
                t_gen,
                dt,
                cat="qmc",
                generation=gen,
                population=len(walkers),
            )
        if checkpoint_every is not None and (gen + 1) % checkpoint_every == 0:
            _save_dmc_checkpoint(
                checkpoint_path,
                walkers,
                pool,
                gen + 1,
                e_trial,
                accepted,
                attempted,
                (energy_trace, pop_trace, et_trace),
                params,
            )
        if on_generation is not None:
            on_generation(gen, walkers)
    return DmcResult(
        energy_trace=np.asarray(energy_trace),
        population_trace=np.asarray(pop_trace),
        e_trial_trace=np.asarray(et_trace),
        acceptance=accepted / max(attempted, 1),
        rescues=pop_guard.rescues,
        truncations=pop_guard.truncations,
        dropped_walkers=dropped,
    )


def build_dmc_ensemble(
    pool: WalkerRngPool,
    n_walkers: int,
    n_orbitals: int = 4,
    box: float = 6.0,
    grid_shape: tuple[int, int, int] = (12, 12, 12),
    engine: str = "fused",
    tile_size: int | None = None,
    chunk_size: int | None = None,
    backend: str | None = None,
    config=None,
) -> list[DmcWalker]:
    """A small, fully deterministic DMC ensemble (CLI and test harnesses).

    Each walker gets a plane-wave-seeded Slater-Jastrow wavefunction on a
    cubic cell and a private stream from ``pool``.  Two calls with pools
    in the same state build bit-identical ensembles — the property the
    checkpoint/resume CLI relies on to reconstruct walker *structure*
    before loading checkpointed positions into it.  ``config`` (a
    :class:`repro.config.RunConfig`) carries the batched-kernel knobs:
    blocking never changes a trajectory bit, while an allclose-tier
    backend shifts it within its declared tolerance.  The
    ``tile_size``/``chunk_size``/``backend`` kwargs are the deprecated
    pre-config spellings, honoured (with a warning) for one release.
    """
    from repro.lattice.cell import Cell
    from repro.lattice.orbitals import PlaneWaveOrbitalSet
    from repro.lattice.pbc import wigner_seitz_radius
    from repro.qmc.jastrow import make_polynomial_radial
    from repro.qmc.particleset import ParticleSet
    from repro.qmc.slater import SplineOrbitalSet

    cell = Cell.cubic(box)
    orbitals = PlaneWaveOrbitalSet(cell, n_orbitals)
    spos = SplineOrbitalSet.from_orbital_functions(
        cell,
        orbitals,
        grid_shape,
        engine=engine,
        dtype=np.float64,
        tile_size=tile_size,
        chunk_size=chunk_size,
        backend=backend,
        config=config,
    )
    rcut = 0.9 * wigner_seitz_radius(cell)
    walkers = []
    for _ in range(n_walkers):
        wrng = pool.next_rng()
        ions = ParticleSet("ion", cell, cell.frac_to_cart(wrng.random((2, 3))))
        electrons = ParticleSet.random("e", cell, 2 * n_orbitals, wrng)
        wf = SlaterJastrow(
            electrons,
            ions,
            spos,
            make_polynomial_radial(0.4, rcut),
            make_polynomial_radial(0.6, rcut),
        )
        walkers.append(DmcWalker(wf=wf, rng=pool.next_rng()))
    return walkers
