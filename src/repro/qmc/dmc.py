"""Diffusion Monte Carlo driver with drift-diffusion, measurement, branching.

Paper Sec. III describes the three stages per generation this module
implements: "(i) a drift-diffusion process ... (ii) a measurement stage
... (iii) a branching process" over an ensemble of walkers, each carrying
its own configuration ``R`` and private random stream.

Branching uses the standard integer-copies scheme: a walker with weight
``w = exp(-tau * ((E_L + E_L_old)/2 - E_T))`` produces
``floor(w + u)`` copies (``u`` uniform), and the trial energy ``E_T`` is
steered with a population-control feedback term so the ensemble stays
near its target size.  Each clone receives a *fresh* random stream from
the pool (never a copy of the parent's), keeping streams independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qmc.drift_diffusion import sweep
from repro.qmc.estimators import LocalEnergy
from repro.qmc.rng import WalkerRngPool
from repro.qmc.wavefunction import SlaterJastrow

__all__ = ["DmcWalker", "DmcResult", "run_dmc"]


@dataclass
class DmcWalker:
    """One DMC walker: wavefunction state + stream + bookkeeping."""

    wf: SlaterJastrow
    rng: np.random.Generator
    e_local: float = 0.0

    def clone(self, rng: np.random.Generator) -> "DmcWalker":
        """A branching copy: same configuration, fresh random stream.

        The clone gets its own wavefunction object rebuilt from the
        parent's electron positions (derived state is recomputed rather
        than deep-copied, trading O(N^3) per clone for simplicity and
        guaranteed consistency).
        """
        import copy

        wf_new = copy.deepcopy(self.wf)
        return DmcWalker(wf=wf_new, rng=rng, e_local=self.e_local)


@dataclass
class DmcResult:
    """Outcome of a DMC run.

    Attributes
    ----------
    energy_trace:
        Population-averaged local energy per generation.
    population_trace:
        Walker count per generation.
    e_trial_trace:
        The steered trial energy per generation.
    acceptance:
        Overall move acceptance.
    """

    energy_trace: np.ndarray
    population_trace: np.ndarray
    e_trial_trace: np.ndarray
    acceptance: float

    @property
    def energy_mean(self) -> float:
        """Mean of the second half of the energy trace (post-equilibration)."""
        half = len(self.energy_trace) // 2
        return float(np.mean(self.energy_trace[half:]))


def run_dmc(
    walkers: list[DmcWalker],
    pool: WalkerRngPool,
    n_generations: int = 20,
    tau: float = 0.05,
    target_population: int | None = None,
    feedback: float = 1.0,
    max_population_factor: int = 4,
    ion_charge: float = 4.0,
) -> DmcResult:
    """Propagate a DMC ensemble; returns traces for analysis.

    Parameters
    ----------
    walkers:
        The initial (ideally VMC-equilibrated) ensemble; mutated in place
        and re-populated by branching.
    pool:
        Stream factory for branching clones.
    n_generations:
        DMC generations to run.
    tau:
        Imaginary time step.
    target_population:
        Population-control target; defaults to the initial count.
    feedback:
        E_T feedback strength kappa in
        ``E_T = E_est - kappa/tau * log(pop / target)`` (classic form,
        scaled mildly here to avoid over-steering small test populations).
    max_population_factor:
        Hard cap on population explosion (run aborts into a truncation
        instead of eating all memory if the trial energy misbehaves).
    ion_charge:
        Valence charge for the local-energy estimator.
    """
    if not walkers:
        raise ValueError("need at least one walker")
    target = target_population or len(walkers)
    estimators = {}

    def e_local(w: DmcWalker) -> float:
        est = estimators.get(id(w))
        if est is None:
            est = LocalEnergy(w.wf, ion_charge)
            estimators[id(w)] = est
        return est.total()

    for w in walkers:
        w.e_local = e_local(w)
    e_trial = float(np.mean([w.e_local for w in walkers]))

    energy_trace, pop_trace, et_trace = [], [], []
    accepted = attempted = 0
    for _gen in range(n_generations):
        weights = []
        for w in walkers:
            # (i) drift-diffusion propagation.
            acc, att = sweep(w.wf, tau, w.rng)
            accepted += acc
            attempted += att
            # (ii) measurement.
            e_old = w.e_local
            w.e_local = e_local(w)
            # Branching weight from the symmetrized local energy.
            weights.append(np.exp(-tau * (0.5 * (w.e_local + e_old) - e_trial)))
        # (iii) branching: integer copies floor(w + u).
        new_walkers: list[DmcWalker] = []
        cap = max_population_factor * target
        for w, wt in zip(walkers, weights):
            n_copies = int(wt + w.rng.random())
            for c in range(n_copies):
                if len(new_walkers) >= cap:
                    break
                if c == 0:
                    new_walkers.append(w)
                else:
                    new_walkers.append(w.clone(pool.next_rng()))
        if not new_walkers:
            # Total extinction: resurrect the best walker (standard rescue).
            best = min(walkers, key=lambda w: w.e_local)
            new_walkers = [best]
        walkers[:] = new_walkers
        estimators.clear()
        e_est = float(np.mean([w.e_local for w in walkers]))
        # Population-control feedback on the trial energy.
        e_trial = e_est - feedback * np.log(len(walkers) / target)
        energy_trace.append(e_est)
        pop_trace.append(len(walkers))
        et_trace.append(e_trial)
    return DmcResult(
        energy_trace=np.asarray(energy_trace),
        population_trace=np.asarray(pop_trace),
        e_trial_trace=np.asarray(et_trace),
        acceptance=accepted / max(attempted, 1),
    )
