"""Nonlocal pseudopotential evaluation — the paper's consumer of kernel V.

Paper Sec. IV: "V is used with pseudopotentials for the local energy
computation."  The nonlocal part of a pseudopotential requires the
wavefunction ratio at quadrature points on a sphere around each ion:

    E_nl = sum_{e,I: r_eI < rc} v_l(r_eI) * (2l+1)/(4 pi) *
           sum_q w_q P_l(cos theta_q) * Psi(..., r_q, ...) / Psi(R)

Each quadrature point costs one orbital-values evaluation (a V kernel
call) plus an Eq.-3 determinant ratio — which is exactly why the V kernel
appears in the QMC profile at all.  This module implements spherical
quadrature rules, Legendre projectors and the evaluator; the ratio at
each point reuses the same inverse-column contraction as the drift-
diffusion moves, with no staged state touched.
"""

from __future__ import annotations

import numpy as np

from repro.core.spline1d import CubicBspline1D
from repro.lattice.pbc import minimal_image_displacements
from repro.qmc.wavefunction import SlaterJastrow

__all__ = [
    "octahedron_quadrature",
    "icosahedron_quadrature",
    "legendre",
    "NonlocalPseudopotential",
]


def octahedron_quadrature() -> tuple[np.ndarray, np.ndarray]:
    """6-point octahedral rule: exact for spherical harmonics to degree 3.

    Returns
    -------
    (points, weights):
        ``(6, 3)`` unit vectors and ``(6,)`` weights summing to 1.
    """
    pts = np.array(
        [
            [1.0, 0.0, 0.0],
            [-1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.0, 0.0, -1.0],
        ]
    )
    return pts, np.full(6, 1.0 / 6.0)


def icosahedron_quadrature() -> tuple[np.ndarray, np.ndarray]:
    """12-point icosahedral rule: exact to degree 5 (QMCPACK's default)."""
    phi = (1.0 + np.sqrt(5.0)) / 2.0
    raw = []
    for s1 in (1.0, -1.0):
        for s2 in (1.0, -1.0):
            raw.append([0.0, s1, s2 * phi])
            raw.append([s1, s2 * phi, 0.0])
            raw.append([s2 * phi, 0.0, s1])
    pts = np.asarray(raw)
    pts /= np.linalg.norm(pts, axis=1, keepdims=True)
    return pts, np.full(12, 1.0 / 12.0)


def legendre(l: int, x: np.ndarray) -> np.ndarray:
    """Legendre polynomial P_l(x) for l = 0, 1, 2 (the PP channels used)."""
    x = np.asarray(x, dtype=np.float64)
    if l == 0:
        return np.ones_like(x)
    if l == 1:
        return x
    if l == 2:
        return 1.5 * x * x - 0.5
    raise ValueError(f"Legendre channel l={l} not supported (use 0, 1 or 2)")


class NonlocalPseudopotential:
    """One nonlocal channel of a (semi)local pseudopotential.

    Parameters
    ----------
    v_radial:
        Radial strength ``v_l(r)`` as a short-ranged 1D B-spline (zero at
        and beyond its cutoff).
    l:
        Angular-momentum channel (0, 1 or 2).
    quadrature:
        ``"octahedron"`` or ``"icosahedron"``.
    rng:
        Generator for the random rotation of the quadrature frame per
        evaluation (removes the fixed-grid bias, as QMCPACK does).
    """

    def __init__(
        self,
        v_radial: CubicBspline1D,
        l: int = 0,
        quadrature: str = "icosahedron",
        rng: np.random.Generator | None = None,
    ):
        self.v_radial = v_radial
        self.l = int(l)
        legendre(self.l, np.zeros(1))  # validate channel
        if quadrature == "octahedron":
            self.points, self.weights = octahedron_quadrature()
        elif quadrature == "icosahedron":
            self.points, self.weights = icosahedron_quadrature()
        else:
            raise ValueError(f"unknown quadrature {quadrature!r}")
        self.rng = rng or np.random.default_rng(0)
        #: V-kernel evaluations performed (profile bookkeeping).
        self.n_v_evals = 0

    @property
    def rcut(self) -> float:
        """Range of the nonlocal channel."""
        return self.v_radial.rcut

    def _random_rotation(self) -> np.ndarray:
        """A Haar-ish random rotation matrix (QR of a Gaussian matrix)."""
        q, r = np.linalg.qr(self.rng.standard_normal((3, 3)))
        return q * np.sign(np.diag(r))

    def _ratio_at(self, wf: SlaterJastrow, e: int, pos: np.ndarray) -> float:
        """Psi(r_e -> pos) / Psi without touching staged state.

        Determinant part: the Eq.-3 contraction with the V kernel's
        orbital values; Jastrow part: direct u-sum differences from
        minimal-image distances.
        """
        return float(self._ratios_batch(wf, e, pos[np.newaxis])[0])

    def _ratios_batch(
        self, wf: SlaterJastrow, e: int, positions: np.ndarray
    ) -> np.ndarray:
        """Wavefunction ratios for a batch of trial positions of ``e``.

        One batched V-kernel call serves every quadrature point of the
        sphere (the multi-position extension of :mod:`repro.core.batched`),
        and the Jastrow differences vectorize over points x particles.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        nq = len(positions)
        det, row = wf.slater._locate(e)
        phi = wf.slater.spos.values_batch(positions)  # (nq, N)
        self.n_v_evals += nq
        ratios = phi @ det.Ainv[:, row]
        log_j = np.zeros(nq)
        cell = wf.electrons.cell
        if wf.j2 is not None:
            others = np.delete(np.arange(len(wf.electrons)), e)
            old = wf.ee_table.row(e)[others]
            disp = minimal_image_displacements(
                cell, positions, wf.electrons.positions[others]
            )  # (nq, n-1, 3)
            new = np.linalg.norm(disp, axis=2)
            u = wf.j2.u if not hasattr(wf.j2, "_target") else wf.j2._target.u
            log_j -= u.evaluate(new).sum(axis=1) - float(u.evaluate(old).sum())
        if wf.j1 is not None:
            old = wf.ei_table.row(e)
            disp = minimal_image_displacements(cell, positions, wf.ions.positions)
            new = np.linalg.norm(disp, axis=2)
            u = wf.j1.u if not hasattr(wf.j1, "_target") else wf.j1._target.u
            log_j -= u.evaluate(new).sum(axis=1) - float(u.evaluate(old).sum())
        return ratios * np.exp(log_j)

    def energy(self, wf: SlaterJastrow) -> float:
        """The nonlocal energy contribution at the current configuration.

        Loops electron-ion pairs inside the cutoff; for each, integrates
        the ratio over the (randomly rotated) quadrature sphere of radius
        ``r_eI`` centred on the ion.
        """
        total = 0.0
        cell = wf.electrons.cell
        prefactor = 2 * self.l + 1.0
        for e in range(len(wf.electrons)):
            dists = wf.ei_table.row(e)
            for i_ion in np.nonzero(dists < self.rcut)[0]:
                r = float(dists[i_ion])
                if r <= 1e-12:
                    continue
                v_r = float(self.v_radial.evaluate(r))
                if v_r == 0.0:
                    continue
                ion = wf.ions[i_ion]
                # Minimal-image direction ion -> electron.
                d_ei = minimal_image_displacements(
                    cell, ion[np.newaxis], wf.electrons[e][np.newaxis]
                )[0, 0]
                rhat = d_ei / r
                rot = self._random_rotation()
                quad_dirs = self.points @ rot.T
                cos_theta = quad_dirs @ rhat
                positions = ion[np.newaxis, :] + r * quad_dirs
                ratios = self._ratios_batch(wf, e, positions)
                acc = float(
                    np.sum(self.weights * legendre(self.l, cos_theta) * ratios)
                )
                total += v_r * prefactor * acc
        return total
