"""Variational Monte Carlo driver.

VMC samples ``|Psi_T|^2`` with the drift-diffusion kernel and averages
the local energy.  In this reproduction it serves two roles: a
correctness harness (detailed balance + estimator sanity on toy systems)
and the equilibration stage that hands thermalized walkers to DMC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.qmc.drift_diffusion import sweep
from repro.qmc.estimators import LocalEnergy
from repro.qmc.wavefunction import SlaterJastrow

__all__ = ["VmcResult", "run_vmc"]


@dataclass
class VmcResult:
    """Outcome of a VMC run.

    Attributes
    ----------
    energies:
        Per-step local energies after warm-up.
    acceptance:
        Overall move acceptance ratio.
    energy_mean, energy_error:
        Mean local energy and its naive standard error (no blocking; the
        tests use generous tolerances instead).
    """

    energies: np.ndarray
    acceptance: float
    energy_mean: float = field(init=False)
    energy_error: float = field(init=False)

    def __post_init__(self) -> None:
        self.energy_mean = float(np.mean(self.energies)) if len(self.energies) else 0.0
        self.energy_error = (
            float(np.std(self.energies) / np.sqrt(len(self.energies)))
            if len(self.energies) > 1
            else 0.0
        )


def run_vmc(
    wf: SlaterJastrow,
    rng: np.random.Generator,
    n_steps: int = 50,
    n_warmup: int = 10,
    tau: float = 0.3,
    ion_charge: float = 4.0,
    recompute_every: int = 20,
    measure: bool = True,
) -> VmcResult:
    """Run VMC on one walker and return its energy trace.

    Parameters
    ----------
    wf:
        The walker's wavefunction; mutated in place (the walker moves).
    rng:
        The walker's private stream.
    n_steps:
        Measured generations (one sweep over all electrons each).
    n_warmup:
        Discarded equilibration sweeps.
    tau:
        Drift-diffusion time step.
    ion_charge:
        Valence charge for the potential estimator.
    recompute_every:
        Sweeps between full recomputations (rounding-drift control).
    measure:
        False skips the energy estimator (pure-propagation benchmarks).
    """
    estimator = LocalEnergy(wf, ion_charge) if measure else None
    energies = []
    accepted = attempted = 0
    for step in range(n_warmup + n_steps):
        acc, att = sweep(wf, tau, rng)
        accepted += acc
        attempted += att
        if (step + 1) % recompute_every == 0:
            wf.recompute()
        if step >= n_warmup and estimator is not None:
            energies.append(estimator.total())
    return VmcResult(
        energies=np.asarray(energies),
        acceptance=accepted / max(attempted, 1),
    )
