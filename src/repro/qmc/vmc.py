"""Variational Monte Carlo driver.

VMC samples ``|Psi_T|^2`` with the drift-diffusion kernel and averages
the local energy.  In this reproduction it serves two roles: a
correctness harness (detailed balance + estimator sanity on toy systems)
and the equilibration stage that hands thermalized walkers to DMC.

Like the DMC driver, ``run_vmc`` supports periodic checkpoints and
bit-for-bit resume (positions + exact RNG state + partial energy trace),
and a :class:`~repro.resilience.guards.GuardConfig` policy for
non-finite local energies.  Taking a checkpoint calls
``wf.recompute()``, so reproducibility comparisons must share the same
``checkpoint_every`` cadence (see :mod:`repro.qmc.dmc`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs import OBS
from repro.qmc.batched_step import CrowdState, batched_sweep
from repro.qmc.drift_diffusion import sweep
from repro.qmc.estimators import LocalEnergy
from repro.qmc.wavefunction import SlaterJastrow
from repro.resilience.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    set_rng_state,
    rng_state,
)
from repro.resilience.guards import GuardConfig, GuardViolation

__all__ = ["VmcResult", "run_vmc"]


@dataclass
class VmcResult:
    """Outcome of a VMC run.

    Attributes
    ----------
    energies:
        Per-step local energies after warm-up.
    acceptance:
        Overall move acceptance ratio.
    energy_mean, energy_error:
        Mean local energy and its naive standard error (no blocking; the
        tests use generous tolerances instead).
    """

    energies: np.ndarray
    acceptance: float
    energy_mean: float = field(init=False)
    energy_error: float = field(init=False)

    def __post_init__(self) -> None:
        self.energy_mean = float(np.mean(self.energies)) if len(self.energies) else 0.0
        self.energy_error = (
            float(np.std(self.energies) / np.sqrt(len(self.energies)))
            if len(self.energies) > 1
            else 0.0
        )


def run_vmc(
    wf: SlaterJastrow,
    rng: np.random.Generator,
    n_steps: int = 50,
    n_warmup: int = 10,
    tau: float = 0.3,
    ion_charge: float = 4.0,
    recompute_every: int = 20,
    measure: bool = True,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
    guard: GuardConfig | None = None,
    step_mode: str | None = None,
    config=None,
) -> VmcResult:
    """Run VMC on one walker and return its energy trace.

    Parameters
    ----------
    wf:
        The walker's wavefunction; mutated in place (the walker moves).
        When resuming, its positions are overwritten from the checkpoint.
    rng:
        The walker's private stream; restored in place on resume.
    n_steps:
        Measured generations (one sweep over all electrons each).
    n_warmup:
        Discarded equilibration sweeps.
    tau:
        Drift-diffusion time step.
    ion_charge:
        Valence charge for the potential estimator.
    recompute_every:
        Sweeps between full recomputations (rounding-drift control).
    measure:
        False skips the energy estimator (pure-propagation benchmarks).
    checkpoint_every:
        Write a checkpoint to ``checkpoint_path`` every this many sweeps.
    checkpoint_path:
        Checkpoint directory (required with ``checkpoint_every``).
    resume:
        Checkpoint to continue from; run parameters must match.
    guard:
        Non-finite-energy policy: ``"raise"`` fails loudly,
        ``"recompute"`` rebuilds derived state and re-measures once
        (keeping the bad sample only if still bad under ``"ignore"``
        semantics), ``"drop"`` skips the sample.
    step_mode:
        ``"batched"`` (default) advances the walker through the batched
        population-step kernels (:mod:`repro.qmc.batched_step`, a crowd
        of one); ``"walker"`` uses the sequential per-electron loop.
        Both produce bit-identical trajectories, so the mode is not part
        of the checkpoint contract — a checkpoint from either mode
        resumes under either mode.  ``None`` resolves through
        ``config.step_mode``, then ``REPRO_STEP_MODE``, then
        ``"batched"``.
    config:
        Optional :class:`repro.config.RunConfig`; supplies the
        ``step_mode`` default (kernel knobs are fixed when the
        wavefunction's orbital set is built).
    """
    from repro.config import effective_step_mode

    step_mode = effective_step_mode(step_mode, config)
    if step_mode not in ("batched", "walker"):
        raise ValueError(
            f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
        )
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
    params = {
        "n_warmup": n_warmup,
        "tau": tau,
        "ion_charge": ion_charge,
        "recompute_every": recompute_every,
        "measure": measure,
    }
    energy_policy = guard.on_nonfinite_energy if guard is not None else "ignore"
    estimator = LocalEnergy(wf, ion_charge) if measure else None

    def measure_energy() -> float | None:
        nonlocal estimator
        e = estimator.total()
        if np.isfinite(e) or energy_policy == "ignore":
            return e
        OBS.count(
            "guard_trips_total", kind="nonfinite_energy", driver="vmc"
        )
        OBS.event("guard:nonfinite_energy", cat="guard", driver="vmc")
        if energy_policy == "recompute":
            wf.recompute()
            estimator = LocalEnergy(wf, ion_charge)
            e = estimator.total()
            if np.isfinite(e):
                return e
        if energy_policy == "raise":
            raise GuardViolation(
                f"non-finite local energy {e!r} in VMC "
                f"(policy 'raise'; use 'drop' or 'recompute' to continue)"
            )
        return None  # drop the sample

    if resume is not None:
        ckpt = load_checkpoint(resume, expect_kind="vmc")
        saved = ckpt.manifest["params"]
        for key in params:
            if saved.get(key) != params[key]:
                raise CheckpointError(
                    f"checkpoint parameter mismatch for {key!r}: "
                    f"saved {saved.get(key)!r}, requested {params[key]!r}"
                )
        try:
            wf.electrons.load_positions(ckpt.arrays["positions"], wrap=False)
            wf.ions.load_positions(ckpt.arrays["ion_positions"], wrap=False)
        except ValueError as exc:
            raise CheckpointError(
                f"wavefunction does not match checkpoint shape: {exc}"
            ) from exc
        wf.recompute()
        set_rng_state(rng, ckpt.manifest["rng_state"])
        start_step = int(ckpt.manifest["step"])
        energies = list(ckpt.arrays["energies"])
        accepted = int(ckpt.manifest["accepted"])
        attempted = int(ckpt.manifest["attempted"])
        if measure:
            estimator = LocalEnergy(wf, ion_charge)
    else:
        start_step = 0
        energies = []
        accepted = attempted = 0

    # Built after any resume so the SoA position cache sees the restored
    # configuration.
    crowd = CrowdState([wf], [rng]) if step_mode == "batched" else None

    for step in range(start_step, n_warmup + n_steps):
        t_step = time.perf_counter() if OBS.enabled else 0.0
        if crowd is not None:
            acc, att = batched_sweep(crowd, tau)
        else:
            acc, att = sweep(wf, tau, rng)
        if OBS.enabled:
            dt = time.perf_counter() - t_step
            OBS.count("vmc_steps_total")
            OBS.observe("vmc_step_seconds", dt)
            OBS.complete("vmc:sweep", t_step, dt, cat="qmc", step=step)
        accepted += acc
        attempted += att
        if (step + 1) % recompute_every == 0:
            wf.recompute()
        if step >= n_warmup and estimator is not None:
            e = measure_energy()
            if e is not None:
                energies.append(e)
        if checkpoint_every is not None and (step + 1) % checkpoint_every == 0:
            wf.recompute()
            save_checkpoint(
                checkpoint_path,
                {
                    "kind": "vmc",
                    "step": step + 1,
                    "accepted": accepted,
                    "attempted": attempted,
                    "rng_state": rng_state(rng),
                    "params": params,
                },
                {
                    "positions": wf.electrons.positions,
                    "ion_positions": wf.ions.positions,
                    "energies": np.asarray(energies, dtype=np.float64),
                },
            )
    return VmcResult(
        energies=np.asarray(energies),
        acceptance=accepted / max(attempted, 1),
    )
