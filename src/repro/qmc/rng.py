"""Deterministic per-walker random number streams.

QMC correctness and debuggability depend on reproducible, statistically
independent streams per walker: walkers evolve independently (that is the
whole parallelization story of the paper), so each gets its own child of
a master :class:`numpy.random.SeedSequence`.  Branching in DMC clones a
walker's *state* but never its stream — clones draw from freshly spawned
children, keeping streams collision-free for the lifetime of a run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WalkerRngPool"]


class WalkerRngPool:
    """A factory of independent, reproducible per-walker generators.

    Parameters
    ----------
    seed:
        Master seed for the whole simulation.
    """

    def __init__(self, seed: int = 2017):
        self._seq = np.random.SeedSequence(seed)
        self._children = iter(())
        self._spawned = 0

    def next_rng(self) -> np.random.Generator:
        """A fresh, never-before-issued generator."""
        child = self._seq.spawn(1)[0]
        self._spawned += 1
        return np.random.default_rng(child)

    def batch(self, count: int) -> list[np.random.Generator]:
        """``count`` fresh independent generators (one per walker)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        children = self._seq.spawn(count)
        self._spawned += count
        return [np.random.default_rng(c) for c in children]

    @property
    def issued(self) -> int:
        """How many generators this pool has handed out."""
        return self._spawned

    @property
    def state(self) -> dict:
        """JSON-serializable snapshot (entropy + children spawned).

        Restoring via :meth:`from_state` yields a pool whose *future*
        ``next_rng``/``batch`` streams are identical to this pool's —
        the property DMC checkpoint/resume relies on for bit-for-bit
        branching reproducibility.
        """
        seq_state = self._seq.state
        entropy = seq_state["entropy"]
        return {
            "entropy": int(entropy) if np.isscalar(entropy) else [int(e) for e in entropy],
            "spawn_key": [int(k) for k in seq_state["spawn_key"]],
            "pool_size": int(seq_state["pool_size"]),
            "n_children_spawned": int(self._seq.n_children_spawned),
            "issued": self._spawned,
        }

    @classmethod
    def from_state(cls, state: dict) -> "WalkerRngPool":
        """Rebuild a pool that continues exactly where ``state`` left off."""
        pool = cls.__new__(cls)
        entropy = state["entropy"]
        pool._seq = np.random.SeedSequence(
            entropy=entropy,
            spawn_key=tuple(state.get("spawn_key", ())),
            pool_size=state.get("pool_size", 4),
            n_children_spawned=state["n_children_spawned"],
        )
        pool._children = iter(())
        pool._spawned = int(state.get("issued", state["n_children_spawned"]))
        return pool
