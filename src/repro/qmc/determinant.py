"""Dirac determinants with O(N^2) Sherman-Morrison rank-1 updates.

Paper Sec. III: particle-by-particle moves "change only one column of the
A matrices at a time and the ratio can be computed as
det[A']/det[A] = sum_n phi_n(r_e) * Ainv(n, e)" (Eq. 3), with the inverse
refreshed by a rank-1 Sherman-Morrison update in O(N^2) when a move is
accepted, and many-body gradients via the same contraction with the
orbital gradients (Eq. 4).

We store the Slater matrix electron-major, ``A[e, n] = phi_n(r_e)``, so a
single-electron move replaces *row* ``e``; the inverse column
``Ainv[:, e]`` is then the contraction partner in Eqs. 3-4.  The rank-1
update for a row replacement ``A' = A + e_e (u - A[e,:])^T`` is

    Ainv' = Ainv - outer(Ainv[:, e], u @ Ainv - I[e, :]) / R,

where ``R = u @ Ainv[:, e]`` is the Eq.-3 ratio — derived directly from
Sherman-Morrison with the denominator simplifying to R because
``A[e,:] @ Ainv = I[e,:]``.

Accumulated rounding from thousands of rank-1 updates is controlled the
QMCPACK way: :meth:`DiracDeterminant.recompute` rebuilds the inverse from
scratch, and :attr:`update_error` measures the drift for tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DiracDeterminant"]


class DiracDeterminant:
    """One spin determinant over an ``(n, n)`` Slater matrix.

    Parameters
    ----------
    phi_matrix:
        Initial Slater matrix ``A[e, n] = phi_n(r_e)``; must be square
        and non-singular.
    """

    def __init__(self, phi_matrix: np.ndarray):
        A = np.array(phi_matrix, dtype=np.float64)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ValueError(f"Slater matrix must be square, got {A.shape}")
        if not np.isfinite(A).all():
            raise ValueError("Slater matrix contains non-finite entries")
        self.n = A.shape[0]
        self.A = A
        sign, logdet = np.linalg.slogdet(A)
        if sign == 0:
            raise ValueError("Slater matrix is singular")
        self.sign = float(sign)
        self.log_det = float(logdet)
        self.Ainv = np.linalg.inv(A)
        self._staged_row: np.ndarray | None = None
        self._staged_ratio = 0.0
        self._staged_for: int | None = None
        self.n_updates_since_recompute = 0

    # -- ratios (Eq. 3 / Eq. 4) ---------------------------------------------

    def ratio(self, e: int, phi_row: np.ndarray) -> float:
        """det ratio for replacing row ``e`` with new orbital values.

        Stages the row so a subsequent :meth:`accept_move` can apply the
        Sherman-Morrison update without re-evaluating orbitals.
        """
        phi_row = np.asarray(phi_row, dtype=np.float64)
        if phi_row.shape != (self.n,):
            raise ValueError(f"expected ({self.n},) orbital row, got {phi_row.shape}")
        r = float(phi_row @ self.Ainv[:, e])
        self._staged_row = phi_row
        self._staged_ratio = r
        self._staged_for = e
        return r

    def ratio_grad(
        self, e: int, phi_row: np.ndarray, dphi_rows: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Ratio plus the gradient of log(det) *at the trial position*.

        Parameters
        ----------
        e:
            Electron (row) index.
        phi_row:
            ``(n,)`` orbital values at the trial position.
        dphi_rows:
            ``(3, n)`` orbital gradients at the trial position.

        Returns
        -------
        (ratio, grad):
            ``grad`` is ``grad log det`` evaluated as if the move were
            accepted: ``(dphi @ Ainv[:, e]) / ratio`` (Eq. 4 normalized).
        """
        r = self.ratio(e, phi_row)
        col = self.Ainv[:, e]
        grad = np.asarray(dphi_rows, dtype=np.float64) @ col
        if r != 0.0:
            grad = grad / r
        return r, grad

    # -- committed-state derivatives -----------------------------------------

    def grad_lap(
        self, e: int, dphi_rows: np.ndarray, d2phi_row: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """(grad D / D, lap D / D) for electron ``e`` at its committed position.

        Parameters
        ----------
        dphi_rows:
            ``(3, n)`` orbital gradients at the committed position of ``e``.
        d2phi_row:
            ``(n,)`` orbital Laplacians there.
        """
        col = self.Ainv[:, e]
        g = np.asarray(dphi_rows, dtype=np.float64) @ col
        l = float(np.asarray(d2phi_row, dtype=np.float64) @ col)
        return g, l

    # -- move protocol ---------------------------------------------------------

    def accept_move(self, e: int) -> None:
        """Sherman-Morrison update of ``Ainv`` for the staged row of ``e``.

        O(N^2): one matvec, one outer-product subtraction.
        """
        if self._staged_for != e or self._staged_row is None:
            raise RuntimeError(f"no staged ratio for electron {e}")
        r = self._staged_ratio
        if r == 0.0:
            raise ZeroDivisionError("cannot accept a move with zero det ratio")
        u = self._staged_row
        u_ainv = u @ self.Ainv  # (n,)
        u_ainv[e] -= 1.0  # subtract the unit row I[e, :]
        self.Ainv -= np.outer(self.Ainv[:, e], u_ainv / r)
        self.A[e, :] = u
        self.log_det += float(np.log(abs(r)))
        if r < 0.0:
            self.sign = -self.sign
        self._staged_for = None
        self._staged_row = None
        self.n_updates_since_recompute += 1

    def reject_move(self, e: int) -> None:
        """Drop the staged row."""
        if self._staged_for != e:
            raise RuntimeError(f"no staged ratio for electron {e}")
        self._staged_for = None
        self._staged_row = None

    # -- maintenance -------------------------------------------------------------

    def recompute(self, phi_matrix: np.ndarray | None = None) -> None:
        """Rebuild the inverse (and optionally the matrix) from scratch.

        QMCPACK refreshes the inverse periodically to bound the rounding
        drift of accumulated rank-1 updates; so do the drivers here.
        """
        if phi_matrix is not None:
            A = np.array(phi_matrix, dtype=np.float64)
            if A.shape != (self.n, self.n):
                raise ValueError(f"expected {(self.n, self.n)}, got {A.shape}")
            if not np.isfinite(A).all():
                raise ValueError("Slater matrix contains non-finite entries")
            self.A = A
        sign, logdet = np.linalg.slogdet(self.A)
        if sign == 0:
            raise ValueError("Slater matrix is singular")
        self.sign = float(sign)
        self.log_det = float(logdet)
        self.Ainv = np.linalg.inv(self.A)
        self.n_updates_since_recompute = 0

    @property
    def update_error(self) -> float:
        """Max-abs deviation of ``A @ Ainv`` from identity (drift monitor)."""
        return float(np.abs(self.A @ self.Ainv - np.eye(self.n)).max())
