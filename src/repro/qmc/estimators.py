"""Local-energy estimators: kinetic, Coulomb, and their aggregate.

Paper Sec. III: after each drift-diffusion step "the physical quantities
(observables) such as the kinetic energy and Coulomb potential energies
are computed for each walker" — the measurement stage.  The V kernel is
"used with pseudopotentials for the local energy computation"; our
synthetic substitute uses bare minimal-image Coulomb sums (no Ewald),
which preserves the *computational* pattern (pair sums over distance
tables, orbital evaluations per electron) that the profile tables
measure, while keeping the physics self-consistent for the toy systems
the tests validate against.
"""

from __future__ import annotations

import numpy as np

from repro.qmc.distance_tables import DistanceTableAA, DistanceTableAB
from repro.qmc.wavefunction import SlaterJastrow

__all__ = [
    "kinetic_energy",
    "coulomb_ee",
    "coulomb_ei",
    "coulomb_ii",
    "LocalEnergy",
]


def kinetic_energy(wf: SlaterJastrow) -> float:
    """-(1/2) sum_e [lap log Psi + |grad log Psi|^2] at the current R.

    The standard local kinetic energy written in log-derivative form,
    which is exactly what :meth:`SlaterJastrow.grad_lap_logpsi` provides
    per electron.
    """
    total = 0.0
    for e in range(len(wf.electrons)):
        g, lap_log = wf.grad_lap_logpsi(e)
        total += lap_log + float(g @ g)
    return -0.5 * total


def coulomb_ee(table: DistanceTableAA) -> float:
    """Electron-electron repulsion sum_{i<j} 1 / r_ij (minimal image)."""
    d = table.distances
    iu = np.triu_indices(d.shape[0], k=1)
    r = d[iu]
    return float(np.sum(1.0 / r))


def coulomb_ei(table: DistanceTableAB, ion_charge: float = 4.0) -> float:
    """Electron-ion attraction -Z sum_{i,I} 1 / r_iI (minimal image).

    The default charge matches the paper's carbon pseudopotential (4
    valence electrons per atom).
    """
    r = table.distances
    return -ion_charge * float(np.sum(1.0 / r))


def coulomb_ii(
    ion_positions: np.ndarray, cell, ion_charge: float = 4.0
) -> float:
    """Ion-ion repulsion Z^2 sum_{I<J} 1 / r_IJ — constant per geometry."""
    from repro.lattice.pbc import minimal_image_distances

    d = minimal_image_distances(cell, ion_positions, ion_positions)
    iu = np.triu_indices(d.shape[0], k=1)
    return ion_charge * ion_charge * float(np.sum(1.0 / d[iu]))


class LocalEnergy:
    """Aggregate local-energy evaluator bound to one wavefunction.

    Parameters
    ----------
    wf:
        The wavefunction (provides tables and derivatives).
    ion_charge:
        Valence charge per ion.
    pseudopotential:
        Optional :class:`~repro.qmc.pseudopotential.NonlocalPseudopotential`
        whose quadrature term is added to the potential — the
        configuration in which the V kernel enters the QMC profile
        (paper Sec. IV).

    Notes
    -----
    The ion-ion constant is computed once at construction.
    """

    def __init__(
        self,
        wf: SlaterJastrow,
        ion_charge: float = 4.0,
        pseudopotential=None,
    ):
        self.wf = wf
        self.ion_charge = float(ion_charge)
        self.pseudopotential = pseudopotential
        self.e_ii = coulomb_ii(
            wf.ions.positions, wf.ions.cell, ion_charge
        ) if len(wf.ions) > 1 else 0.0

    def kinetic(self) -> float:
        """Local kinetic energy at the walker's current configuration."""
        return kinetic_energy(self.wf)

    def potential(self) -> float:
        """Total potential: Coulomb (ee + ei + ii) + nonlocal PP term."""
        total = (
            coulomb_ee(self.wf.ee_table)
            + coulomb_ei(self.wf.ei_table, self.ion_charge)
            + self.e_ii
        )
        if self.pseudopotential is not None:
            total += self.pseudopotential.energy(self.wf)
        return total

    def total(self) -> float:
        """E_L = kinetic + potential."""
        return self.kinetic() + self.potential()
