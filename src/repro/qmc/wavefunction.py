"""The Slater-Jastrow trial wavefunction and its move protocol.

Paper Eq. 1: ``Psi_T = exp(J) * D(up) * D(down)``.  This class wires the
components — electron set, distance tables, Jastrows, Slater
determinant — into the particle-by-particle move protocol every QMC
driver uses:

1. ``ratio_grad(e, new_pos)`` stages the move everywhere and returns the
   total ratio ``Psi_T(R') / Psi_T(R)`` plus ``grad log Psi_T`` at the
   trial position (needed for the reverse drift in Metropolis-Hastings);
2. ``accept_move(e)`` commits all staged state (Sherman-Morrison update,
   distance-table rows, Jastrow sums, particle position);
3. ``reject_move(e)`` drops it.

The staged evaluations are shared: one VGH B-spline call serves the
determinant ratio, the trial gradient, and (on acceptance) the inverse
update — the reuse pattern that makes B-splines ~O(N) per attempted move.
"""

from __future__ import annotations

import numpy as np

from repro.qmc.distance_tables import DistanceTableAA, DistanceTableAB
from repro.qmc.jastrow import OneBodyJastrow, TwoBodyJastrow
from repro.qmc.particleset import ParticleSet
from repro.qmc.slater import SlaterDet, SplineOrbitalSet

__all__ = ["SlaterJastrow"]


class SlaterJastrow:
    """Full trial wavefunction with staged single-electron moves.

    Parameters
    ----------
    electrons:
        The electron particle set (size 2N).
    ions:
        The ion particle set (fixed).
    spos:
        Shared B-spline orbital set (N orbitals).
    j1_radial, j2_radial:
        Radial functions for the one- and two-body Jastrows; pass None to
        omit a factor (a bare Slater wavefunction is valid for tests).
    layout:
        Distance-table / Jastrow memory layout, ``"soa"`` (optimized) or
        ``"aos"`` (baseline).
    """

    def __init__(
        self,
        electrons: ParticleSet,
        ions: ParticleSet,
        spos: SplineOrbitalSet,
        j1_radial=None,
        j2_radial=None,
        layout: str = "soa",
    ):
        self.electrons = electrons
        self.ions = ions
        self.layout = layout
        self.slater = SlaterDet(spos, electrons)
        self.ee_table = DistanceTableAA(electrons, layout=layout)
        self.ei_table = DistanceTableAB(ions, electrons, layout=layout)
        self.j1 = OneBodyJastrow(self.ei_table, j1_radial) if j1_radial else None
        self.j2 = TwoBodyJastrow(self.ee_table, j2_radial) if j2_radial else None
        self._staged_for: int | None = None

    # -- scalar state -------------------------------------------------------

    @property
    def log_value(self) -> float:
        """log |Psi_T| = log|D_up D_dn| + J1 + J2."""
        total = self.slater.log_value
        if self.j1 is not None:
            total += self.j1.log_value()
        if self.j2 is not None:
            total += self.j2.log_value()
        return total

    @property
    def sign(self) -> float:
        """Sign of the determinant product (Jastrow is positive)."""
        return self.slater.sign

    # -- move protocol --------------------------------------------------------

    def ratio_grad(self, e: int, new_pos: np.ndarray) -> tuple[float, np.ndarray]:
        """Stage a move of electron ``e``; return (ratio, grad at trial pos).

        The ratio is signed (determinant crossing a node flips it); the
        gradient is ``grad log Psi_T`` at the *trial* position, combining
        the Eq.-4 determinant term with the Jastrow gradients evaluated on
        the staged distance rows.
        """
        if self._staged_for is not None:
            raise RuntimeError(
                f"move already staged for electron {self._staged_for}"
            )
        staged = self.electrons.propose(e, new_pos)
        self.ee_table.propose_row(e, staged)
        self.ei_table.propose_row(e, staged)
        ratio, grad = self.slater.ratio_grad(e, staged)
        if self.j1 is not None:
            ratio *= self.j1.ratio(e)
            grad = grad + self.j1.grad_temp(e)
        if self.j2 is not None:
            ratio *= self.j2.ratio(e)
            grad = grad + self.j2.grad_temp(e)
        self._staged_for = e
        return ratio, grad

    def ratio(self, e: int, new_pos: np.ndarray) -> float:
        """Stage a move and return just the total ratio."""
        r, _ = self.ratio_grad(e, new_pos)
        return r

    def ratio_grad_precomputed(
        self,
        e: int,
        new_pos: np.ndarray,
        vgl: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> tuple[float, np.ndarray]:
        """:meth:`ratio_grad` with the orbital VGL supplied by the caller.

        Used by batched drivers that evaluate the orbitals of many
        walkers in one kernel call; everything else (tables, Jastrows)
        is staged exactly as in :meth:`ratio_grad`.
        """
        if self._staged_for is not None:
            raise RuntimeError(
                f"move already staged for electron {self._staged_for}"
            )
        staged = self.electrons.propose(e, new_pos)
        self.ee_table.propose_row(e, staged)
        self.ei_table.propose_row(e, staged)
        v, g, lap = vgl
        ratio, grad = self.slater.ratio_grad_from_vgl(e, v, g, lap)
        if self.j1 is not None:
            ratio *= self.j1.ratio(e)
            grad = grad + self.j1.grad_temp(e)
        if self.j2 is not None:
            ratio *= self.j2.ratio(e)
            grad = grad + self.j2.grad_temp(e)
        self._staged_for = e
        return ratio, grad

    def stage_precomputed(
        self,
        e: int,
        wrapped_pos: np.ndarray,
        vgl: tuple[np.ndarray, np.ndarray, np.ndarray],
        ee_row: tuple[np.ndarray, np.ndarray],
        ei_row: tuple[np.ndarray, np.ndarray],
        j1_usum_temp: float | None = None,
        j2_urows: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[float, np.ndarray]:
        """Stage a move whose every ingredient was computed batched.

        The crowd driver evaluates orbitals, distance rows and Jastrow
        radials for a whole walker population in single kernel calls,
        then hands each walker its slices here.  Staging order matches
        :meth:`ratio_grad` exactly; returns the *determinant* ratio and
        gradient — the caller assembles the total ratio/gradient from its
        batched Jastrow pieces in the same order the per-walker path
        multiplies/adds them.

        Parameters
        ----------
        wrapped_pos:
            The trial position, already wrapped into the cell.
        vgl:
            Orbital ``(v, g, lap)`` at ``wrapped_pos``.
        ee_row, ei_row:
            ``(dist, disp)`` trial rows for the two tables (AA rows with
            the self entry zeroed, as ``propose_row`` produces).
        j1_usum_temp:
            Trial u-sum for the one-body Jastrow (required iff ``j1``).
        j2_urows:
            ``(urow_new, urow_old)`` for the two-body Jastrow (required
            iff ``j2``).
        """
        if self._staged_for is not None:
            raise RuntimeError(
                f"move already staged for electron {self._staged_for}"
            )
        self.electrons.propose(e, wrapped_pos, wrap=False)
        self.ee_table.stage_row(e, *ee_row)
        self.ei_table.stage_row(e, *ei_row)
        v, g, lap = vgl
        det_ratio, det_grad = self.slater.ratio_grad_from_vgl(e, v, g, lap)
        if self.j1 is not None:
            if j1_usum_temp is None:
                raise ValueError("j1_usum_temp required when j1 is present")
            self.j1.stage(e, j1_usum_temp)
        if self.j2 is not None:
            if j2_urows is None:
                raise ValueError("j2_urows required when j2 is present")
            self.j2.stage(e, *j2_urows)
        self._staged_for = e
        return det_ratio, det_grad

    def accept_move(self, e: int) -> None:
        """Commit every component's staged state for electron ``e``."""
        if self._staged_for != e:
            raise RuntimeError(f"no staged move for electron {e}")
        self.slater.accept_move(e)
        if self.j1 is not None:
            self.j1.accept_move(e)
        if self.j2 is not None:
            self.j2.accept_move(e)
        self.ee_table.accept_move(e)
        self.ei_table.accept_move(e)
        self.electrons.accept()
        self._staged_for = None

    def reject_move(self, e: int) -> None:
        """Drop every component's staged state for electron ``e``."""
        if self._staged_for != e:
            raise RuntimeError(f"no staged move for electron {e}")
        self.slater.reject_move(e)
        self.ee_table.reject_move(e)
        self.ei_table.reject_move(e)
        self.electrons.reject()
        self._staged_for = None

    # -- committed-state derivatives --------------------------------------------

    def grad(self, e: int) -> np.ndarray:
        """grad log Psi_T at electron ``e``'s committed position (drift)."""
        g, _ = self.slater.grad_lap(e)
        if self.j1 is not None:
            g = g + self.j1.grad(e)
        if self.j2 is not None:
            g = g + self.j2.grad(e)
        return g

    def grad_lap_logpsi(self, e: int) -> tuple[np.ndarray, float]:
        """(grad log Psi, lap log Psi) for electron ``e``.

        ``lap log Psi = (lap D / D) - |grad D / D|^2 + lap J`` — the form
        the kinetic-energy estimator consumes.
        """
        g_det, l_det = self.slater.grad_lap(e)
        lap_log = l_det - float(g_det @ g_det)
        g = g_det
        if self.j1 is not None:
            g1, l1 = self.j1.grad_lap(e)
            g = g + g1
            lap_log += l1
        if self.j2 is not None:
            g2, l2 = self.j2.grad_lap(e)
            g = g + g2
            lap_log += l2
        return g, lap_log

    def recompute(self) -> None:
        """Rebuild all derived state from particle positions (drift control)."""
        self.ee_table.rebuild()
        self.ei_table.rebuild()
        self.slater.recompute()
        if self.j1 is not None:
            self.j1.recompute()
        if self.j2 is not None:
            self.j2.recompute()
