"""One- and two-body Jastrow factors on B-spline radial functions.

The Jastrow factor is the third major profile component (paper Table II:
13-21%).  Its radial functions u(r) are short-ranged 1D cubic B-splines
(:class:`repro.core.spline1d.CubicBspline1D`), evaluated over distance-
table rows — contiguous streams in the SoA layout, strided in AoS, which
is exactly where the paper's container transformation pays off.

Conventions
-----------
log Psi contributions (so *larger* J means larger amplitude):

* two-body:  J2 = - sum_{i<j} u2(r_ij)
* one-body:  J1 = - sum_{i,I} u1(r_iI)

Per-electron derivatives (for drift and kinetic energy):

* grad_i J  = - sum_j u'(r_ij) * (r_i - r_j) / r_ij
* lap_i J   = - sum_j [ u''(r_ij) + 2 u'(r_ij) / r_ij ]

Both factors implement the same staged-move protocol as the distance
tables: ``ratio(i)`` evaluates against the table's *temp* row, and
``accept_move(i)`` commits cached per-particle state.
"""

from __future__ import annotations

import numpy as np

from repro.core.spline1d import CubicBspline1D
from repro.qmc.distance_tables import DistanceTableAA, DistanceTableAB

__all__ = ["make_polynomial_radial", "TwoBodyJastrow", "OneBodyJastrow"]


def make_polynomial_radial(
    strength: float, rcut: float, n_knots: int = 12, power: int = 3
) -> CubicBspline1D:
    """A smooth short-ranged radial function u(r) = a (1 - r/rc)^p.

    Vanishes with zero slope at the cutoff (for p >= 2), the smoothness
    condition QMC Jastrows need so energies are continuous as particles
    cross the cutoff sphere.

    Parameters
    ----------
    strength:
        Prefactor ``a``; positive values make same-charge particles avoid
        each other (since J contributes ``-u``).
    rcut:
        Cutoff radius; must not exceed the cell's Wigner-Seitz radius
        (callers check).
    n_knots:
        Spline resolution.
    power:
        Polynomial power ``p``.
    """
    if rcut <= 0:
        raise ValueError(f"rcut must be positive, got {rcut}")
    return CubicBspline1D.fit_function(
        lambda r: strength * (1.0 - r / rcut) ** power,
        rcut,
        n_knots=n_knots,
        bc="clamped",
        deriv0=-strength * power / rcut,
        deriv1=0.0,
    )


class _JastrowBase:
    """Shared math for summing u over a distance-table row."""

    def __init__(self, ufunc: CubicBspline1D, layout: str):
        self.u = ufunc
        self.layout = layout

    def _row_terms(
        self, dist_row: np.ndarray, exclude: int | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """u, u', u'' over distance rows plus the valid-pair mask.

        ``exclude`` masks the self entry of AA rows; zero-distance entries
        are masked as well (they can only be the self entry anyway).

        ``dist_row`` may be one row ``(n,)`` or a stack ``(nw, n)`` of
        same-index rows from a whole crowd — every operation is
        elementwise or last-axis, so stacked rows produce the same bits
        as one-at-a-time rows.
        """
        mask = dist_row > 0.0
        if exclude is not None:
            mask = mask.copy()
            mask[..., exclude] = False
        v, dv, d2v = self.u.evaluate_vgl(dist_row)
        v = np.where(mask, v, 0.0)
        dv = np.where(mask, dv, 0.0)
        d2v = np.where(mask, d2v, 0.0)
        return v, dv, d2v, mask

    def _grad_lap_from_row(
        self,
        dist_row: np.ndarray,
        disp_row: np.ndarray,
        exclude: int | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(grad_i J, lap_i J) from rows; handles both layouts.

        Accepts one row (``dist (n,)``, ``disp (n, 3)`` aos / ``(3, n)``
        soa) or a crowd stack with a leading walker axis; gradients come
        back ``(..., 3)`` and Laplacians ``(...)`` (0-d for one row —
        the public per-electron methods convert to float).
        """
        _, dv, d2v, mask = self._row_terms(dist_row, exclude)
        safe_r = np.where(mask, dist_row, 1.0)
        w = dv / safe_r  # u'(r)/r per pair, zero where masked
        if self.layout == "aos":
            grad = -(w[..., :, np.newaxis] * disp_row).sum(axis=-2)
        else:
            grad = -(w[..., np.newaxis, :] * disp_row).sum(axis=-1)
        lap = -(d2v + 2.0 * w).sum(axis=-1)
        return grad, lap


class TwoBodyJastrow(_JastrowBase):
    """Electron-electron Jastrow J2 = -sum_{i<j} u(r_ij).

    Parameters
    ----------
    table:
        The electron-electron :class:`DistanceTableAA`; the Jastrow reads
        rows from it and inherits its layout.
    ufunc:
        The radial function.
    """

    def __init__(self, table: DistanceTableAA, ufunc: CubicBspline1D):
        super().__init__(ufunc, table.layout)
        self.table = table
        self.n = len(table.pset)
        # Per-particle sums U[i] = sum_{j != i} u(r_ij); J2 = -sum(U)/2.
        self._usum = np.zeros(self.n)
        self._usum_temp = 0.0
        self._urow_temp = np.zeros(self.n)
        self._urow_old = np.zeros(self.n)
        self.recompute()

    def recompute(self) -> None:
        """Rebuild per-particle u-sums from the committed table."""
        for i in range(self.n):
            v, _, _, _ = self._row_terms(self.table.row(i), i)
            self._usum[i] = v.sum()

    def log_value(self) -> float:
        """J2 contribution to log Psi."""
        return -0.5 * float(self._usum.sum())

    def ratio(self, i: int) -> float:
        """exp(J2_new - J2_old) for the staged move of particle ``i``.

        Requires ``table.propose_row(i, ...)`` to have been called.
        """
        v_new, _, _, _ = self._row_terms(self.table.temp_dist, i)
        v_old, _, _, _ = self._row_terms(self.table.row(i), i)
        self._urow_temp[...] = v_new
        self._urow_old[...] = v_old
        self._usum_temp = float(v_new.sum())
        return float(np.exp(-(self._usum_temp - self._usum[i])))

    def stage(
        self, i: int, urow_new: np.ndarray, urow_old: np.ndarray
    ) -> None:
        """Stage precomputed u-rows for particle ``i`` (batched drivers).

        Equivalent to :meth:`ratio`'s caching when ``urow_new`` /
        ``urow_old`` come from the same :meth:`_row_terms` math over the
        staged and committed rows; the ratio itself is assembled by the
        batched caller.
        """
        self._urow_temp[...] = urow_new
        self._urow_old[...] = urow_old
        self._usum_temp = float(urow_new.sum())

    def accept_move(self, i: int) -> None:
        """Commit the staged move's cached u-sums (table committed separately)."""
        delta = self._urow_temp - self._urow_old
        self._usum += delta
        self._usum[i] = self._usum_temp

    def grad(self, i: int) -> np.ndarray:
        """grad_i J2 from the committed table."""
        g, _ = self._grad_lap_from_row(self.table.row(i), self.table.disp_row(i), i)
        return g

    def grad_temp(self, i: int) -> np.ndarray:
        """grad_i J2 at the staged position (for drift in proposals)."""
        g, _ = self._grad_lap_from_row(self.table.temp_dist, self.table.temp_disp, i)
        return g

    def grad_lap(self, i: int) -> tuple[np.ndarray, float]:
        """(grad_i J2, lap_i J2) from the committed table."""
        g, lap = self._grad_lap_from_row(
            self.table.row(i), self.table.disp_row(i), i
        )
        return g, float(lap)


class OneBodyJastrow(_JastrowBase):
    """Electron-ion Jastrow J1 = -sum_{i,I} u(r_iI).

    Parameters
    ----------
    table:
        The ion->electron :class:`DistanceTableAB` (row per electron).
    ufunc:
        The radial function.
    """

    def __init__(self, table: DistanceTableAB, ufunc: CubicBspline1D):
        super().__init__(ufunc, table.layout)
        self.table = table
        self.n = len(table.targets)
        self._usum = np.zeros(self.n)
        self._usum_temp = 0.0
        self.recompute()

    def recompute(self) -> None:
        """Rebuild per-electron u-sums from the committed table."""
        for i in range(self.n):
            v, _, _, _ = self._row_terms(self.table.row(i), None)
            self._usum[i] = v.sum()

    def log_value(self) -> float:
        """J1 contribution to log Psi."""
        return -float(self._usum.sum())

    def ratio(self, i: int) -> float:
        """exp(J1_new - J1_old) for the staged move of electron ``i``."""
        v_new, _, _, _ = self._row_terms(self.table.temp_dist, None)
        self._usum_temp = float(v_new.sum())
        return float(np.exp(-(self._usum_temp - self._usum[i])))

    def stage(self, i: int, usum_temp: float) -> None:
        """Stage a precomputed trial u-sum for electron ``i`` (batched drivers)."""
        self._usum_temp = float(usum_temp)

    def accept_move(self, i: int) -> None:
        """Commit the staged move's cached u-sum."""
        self._usum[i] = self._usum_temp

    def grad(self, i: int) -> np.ndarray:
        """grad_i J1 from the committed table."""
        g, _ = self._grad_lap_from_row(self.table.row(i), self.table.disp_row(i), None)
        return g

    def grad_temp(self, i: int) -> np.ndarray:
        """grad_i J1 at the staged position."""
        g, _ = self._grad_lap_from_row(
            self.table.temp_dist, self.table.temp_disp, None
        )
        return g

    def grad_lap(self, i: int) -> tuple[np.ndarray, float]:
        """(grad_i J1, lap_i J1) from the committed table."""
        g, lap = self._grad_lap_from_row(
            self.table.row(i), self.table.disp_row(i), None
        )
        return g, float(lap)
