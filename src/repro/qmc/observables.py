"""Structural observables: pair correlation and static structure factor.

Beyond the local energy, production QMC accumulates structural
observables every measurement stage (paper Sec. III: "the physical
quantities (observables) ... are computed for each walker").  The two
implemented here are the standard pair — both driven entirely by the
distance-table/particle machinery this reproduction builds:

* g(r) — the radial pair-correlation histogram of the electron gas;
* S(k) — the static structure factor on the reciprocal lattice.

Both are *accumulators*: feed them one configuration per measurement and
read the normalized estimate at the end.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.cell import Cell
from repro.lattice.orbitals import enumerate_gvectors
from repro.qmc.distance_tables import DistanceTableAA

__all__ = ["PairCorrelation", "StructureFactor"]


class PairCorrelation:
    """Accumulates the electron-electron pair correlation g(r).

    Parameters
    ----------
    cell:
        The periodic cell (fixes the normalization volume).
    n_particles:
        Number of electrons.
    r_max:
        Histogram range; defaults to (and is capped by) the largest
        radius where the minimal-image sphere is complete.
    n_bins:
        Histogram resolution.
    """

    def __init__(
        self,
        cell: Cell,
        n_particles: int,
        r_max: float | None = None,
        n_bins: int = 50,
    ):
        from repro.lattice.pbc import wigner_seitz_radius

        if n_particles < 2:
            raise ValueError("pair correlation needs at least two particles")
        rws = wigner_seitz_radius(cell)
        self.r_max = min(r_max, rws) if r_max else rws
        if self.r_max <= 0:
            raise ValueError("r_max must be positive")
        self.n_bins = int(n_bins)
        self.cell = cell
        self.n_particles = int(n_particles)
        self.edges = np.linspace(0.0, self.r_max, n_bins + 1)
        self.counts = np.zeros(n_bins)
        self.n_samples = 0

    def accumulate(self, table: DistanceTableAA) -> None:
        """Add one configuration (its committed distance table)."""
        d = table.distances
        iu = np.triu_indices(d.shape[0], k=1)
        r = d[iu]
        hist, _ = np.histogram(r[r < self.r_max], bins=self.edges)
        self.counts += hist
        self.n_samples += 1

    def estimate(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (bin centers, g(r)).

        Normalized against the ideal-gas expectation
        ``n_pairs * 4 pi r^2 dr / V`` so that an uncorrelated system
        gives g(r) = 1 for r inside the cell.
        """
        if self.n_samples == 0:
            raise RuntimeError("no configurations accumulated")
        centers = 0.5 * (self.edges[:-1] + self.edges[1:])
        shell = 4.0 * np.pi * centers**2 * np.diff(self.edges)
        n_pairs = self.n_particles * (self.n_particles - 1) / 2.0
        ideal = n_pairs * shell / self.cell.volume
        with np.errstate(invalid="ignore", divide="ignore"):
            g = self.counts / (self.n_samples * ideal)
        return centers, np.nan_to_num(g)


class StructureFactor:
    """Accumulates the static structure factor S(k) = <|rho_k|^2>/N.

    Parameters
    ----------
    cell:
        The periodic cell (fixes the commensurate k vectors).
    n_kvectors:
        How many of the shortest reciprocal vectors to track.
    """

    def __init__(self, cell: Cell, n_kvectors: int = 16):
        self.cell = cell
        self.triples = enumerate_gvectors(cell, n_kvectors)
        self.kvectors = self.triples @ cell.reciprocal
        self.k_norms = np.linalg.norm(self.kvectors, axis=1)
        self._acc = np.zeros(n_kvectors)
        self.n_samples = 0
        self._n_particles: int | None = None

    def accumulate(self, positions: np.ndarray) -> None:
        """Add one configuration's Cartesian positions ``(n, 3)``."""
        positions = np.asarray(positions, dtype=np.float64)
        if self._n_particles is None:
            self._n_particles = positions.shape[0]
        elif positions.shape[0] != self._n_particles:
            raise ValueError("particle count changed between accumulations")
        phases = positions @ self.kvectors.T  # (n, nk)
        rho = np.exp(1j * phases).sum(axis=0)
        self._acc += np.abs(rho) ** 2 / self._n_particles
        self.n_samples += 1

    def estimate(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (|k| values, S(k)) sorted by |k|."""
        if self.n_samples == 0:
            raise RuntimeError("no configurations accumulated")
        s = self._acc / self.n_samples
        order = np.argsort(self.k_norms)
        return self.k_norms[order], s[order]
