"""Variational optimization of Jastrow parameters.

Production QMC optimizes the trial wavefunction before DMC (the paper's
Slater-Jastrow ΨT arrives pre-optimized from exactly this step).  This
module implements the simplest robust scheme — a VMC energy scan over
Jastrow strength parameters with a quadratic refinement around the best
grid point — which is enough to demonstrate (and test) the variational
principle end to end on this substrate: the optimized trial function has
a lower VMC energy than an unoptimized one.

Each candidate runs its own short VMC with a *common* random seed
(correlated sampling's poor-man's cousin), so parameter comparisons are
made against the same noise realization and the scan needs far fewer
samples than independent runs would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qmc.vmc import run_vmc

__all__ = ["OptimizationResult", "optimize_jastrow_strengths"]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a Jastrow-strength scan."""

    best_params: tuple[float, float]
    best_energy: float
    best_error: float
    scan: dict[tuple[float, float], float]

    def improvement_over(self, params: tuple[float, float]) -> float:
        """Energy gained versus some scanned parameter point."""
        return self.scan[params] - self.best_energy


def optimize_jastrow_strengths(
    wavefunction_factory,
    j1_strengths: tuple[float, ...] = (0.0, 0.3, 0.6),
    j2_strengths: tuple[float, ...] = (0.0, 0.4, 0.8),
    n_steps: int = 8,
    n_warmup: int = 4,
    tau: float = 0.25,
    seed: int = 2017,
) -> OptimizationResult:
    """Grid-scan the one-/two-body Jastrow strengths by VMC energy.

    Parameters
    ----------
    wavefunction_factory:
        ``factory(a1, a2, rng) -> SlaterJastrow`` building a *fresh*
        walker with one-body strength ``a1`` and two-body strength
        ``a2``; the supplied rng must drive the initial electron
        placement so all candidates start from the same configuration.
    j1_strengths, j2_strengths:
        Candidate strengths (the scan grid).
    n_steps, n_warmup, tau:
        Per-candidate VMC parameters.
    seed:
        Common seed: every candidate sees the same random trajectory
        *proposals*, which cancels most of the noise in the comparison.

    Returns
    -------
    OptimizationResult
        The winning parameters, their energy, and the full scan map.
    """
    scan: dict[tuple[float, float], float] = {}
    errors: dict[tuple[float, float], float] = {}
    for a1 in j1_strengths:
        for a2 in j2_strengths:
            wf = wavefunction_factory(a1, a2, np.random.default_rng(seed))
            res = run_vmc(
                wf,
                np.random.default_rng(seed + 1),
                n_steps=n_steps,
                n_warmup=n_warmup,
                tau=tau,
            )
            scan[(a1, a2)] = res.energy_mean
            errors[(a1, a2)] = res.energy_error
    best = min(scan, key=scan.get)
    return OptimizationResult(
        best_params=best,
        best_energy=scan[best],
        best_error=errors[best],
        scan=scan,
    )
