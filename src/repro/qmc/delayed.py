"""Delayed (rank-k) determinant updates — the follow-up to Sherman-Morrison.

The paper's Eq.-3 machinery applies a rank-1 Sherman-Morrison update per
accepted move: an O(N^2) *write* of the whole inverse every time.  The
QMCPACK line of work this paper belongs to later replaced it with
*delayed updates* (McDaniel et al.): accumulate up to ``k`` accepted rows
and apply them in one rank-k Woodbury step, turning k full-matrix writes
into one GEMM — the same trade (restructure for memory behaviour, keep
the math identical) the paper makes for the B-spline kernels.

Math: after j accepted row replacements ``A' = A0 + sum_i e_{r_i} d_i^T``
with ``d_i = u_i - A0[r_i, :]``, Woodbury gives

    Ainv' = Ainv0 - X S^{-1} W,
    X = Ainv0[:, r_1..r_j]            (a column gather, free),
    W rows  w_i = u_i @ Ainv0 - e_{r_i}^T   (one matvec per accept),
    S = I_j + W[:, r_1..r_j].

A trial ratio against the *effective* inverse then costs O(N j + j^2)
instead of O(N): ``Ainv'[:, e] = Ainv0[:, e] - X S^{-1} W[:, e]``.

The class mirrors :class:`~repro.qmc.determinant.DiracDeterminant`'s
protocol (``ratio`` / ``accept_move`` / ``reject_move``) and is validated
against it move for move.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DelayedDeterminant"]


class DelayedDeterminant:
    """Square Slater matrix with rank-k delayed inverse updates.

    Parameters
    ----------
    phi_matrix:
        Initial ``(n, n)`` Slater matrix (non-singular, finite).
    delay:
        Maximum accepted moves accumulated before the Woodbury flush
        (``k``); ``delay=1`` degenerates to per-move updates.
    """

    def __init__(self, phi_matrix: np.ndarray, delay: int = 8):
        A = np.array(phi_matrix, dtype=np.float64)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ValueError(f"Slater matrix must be square, got {A.shape}")
        if not np.isfinite(A).all():
            raise ValueError("Slater matrix contains non-finite entries")
        if delay < 1:
            raise ValueError(f"delay must be >= 1, got {delay}")
        self.n = A.shape[0]
        self.delay = int(delay)
        self.A = A
        sign, logdet = np.linalg.slogdet(A)
        if sign == 0:
            raise ValueError("Slater matrix is singular")
        self.sign = float(sign)
        self.log_det = float(logdet)
        self.Ainv = np.linalg.inv(A)  # the *base* inverse (stale during delay)
        # Delay-window state.
        self._rows: list[int] = []
        self._W: list[np.ndarray] = []  # w_i = u_i @ Ainv0 - e_{r_i}
        self._staged: tuple[int, np.ndarray, float] | None = None
        self.n_flushes = 0

    # -- effective-inverse algebra ------------------------------------------

    def _s_matrix(self) -> np.ndarray:
        j = len(self._rows)
        W_cols = np.array([[w[r] for r in self._rows] for w in self._W])
        return np.eye(j) + W_cols

    def _effective_column(self, e: int) -> np.ndarray:
        """``Ainv_eff[:, e]`` including the pending delayed updates."""
        col = self.Ainv[:, e].copy()
        if not self._rows:
            return col
        X = self.Ainv[:, self._rows]  # (n, j)
        W_e = np.array([w[e] for w in self._W])  # (j,)
        S = self._s_matrix()
        col -= X @ np.linalg.solve(S, W_e)
        return col

    def effective_inverse(self) -> np.ndarray:
        """The full effective inverse (O(N^2 j); for tests/diagnostics)."""
        if not self._rows:
            return self.Ainv.copy()
        X = self.Ainv[:, self._rows]
        W = np.array(self._W)
        S = self._s_matrix()
        return self.Ainv - X @ np.linalg.solve(S, W)

    # -- move protocol ---------------------------------------------------------

    def ratio(self, e: int, phi_row: np.ndarray) -> float:
        """Eq.-3 ratio against the effective (delayed) inverse."""
        phi_row = np.asarray(phi_row, dtype=np.float64)
        if phi_row.shape != (self.n,):
            raise ValueError(f"expected ({self.n},) orbital row, got {phi_row.shape}")
        r = float(phi_row @ self._effective_column(e))
        self._staged = (e, phi_row, r)
        return r

    def ratio_grad(
        self, e: int, phi_row: np.ndarray, dphi_rows: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Ratio plus grad log(det) at the trial position.

        Same contract as :meth:`DiracDeterminant.ratio_grad`, against the
        effective column ``Ainv_eff[:, e]`` — one extra O(N j + j^2)
        correction while moves are pending, no flush required.
        """
        phi_row = np.asarray(phi_row, dtype=np.float64)
        if phi_row.shape != (self.n,):
            raise ValueError(f"expected ({self.n},) orbital row, got {phi_row.shape}")
        col = self._effective_column(e)
        r = float(phi_row @ col)
        self._staged = (e, phi_row, r)
        grad = np.asarray(dphi_rows, dtype=np.float64) @ col
        if r != 0.0:
            grad = grad / r
        return r, grad

    def grad_lap(
        self, e: int, dphi_rows: np.ndarray, d2phi_row: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """(grad D / D, lap D / D) at the committed position of ``e``.

        Same contract as :meth:`DiracDeterminant.grad_lap`; uses the
        effective column so pending delayed rows are included.
        """
        col = self._effective_column(e)
        g = np.asarray(dphi_rows, dtype=np.float64) @ col
        l = float(np.asarray(d2phi_row, dtype=np.float64) @ col)
        return g, l

    def accept_move(self, e: int) -> None:
        """Append the staged row to the delay window; flush when full."""
        if self._staged is None or self._staged[0] != e:
            raise RuntimeError(f"no staged ratio for electron {e}")
        _, u, r = self._staged
        if r == 0.0:
            raise ZeroDivisionError("cannot accept a move with zero det ratio")
        # w encodes d^T Ainv0 where d is the row change relative to the
        # row's *current* contents.  For a row already updated inside this
        # delay window, "current" is the sum of A0's row and the earlier
        # deltas, so their w's must be subtracted out.
        w = u @ self.Ainv
        w[e] -= 1.0
        for i, prev_row in enumerate(self._rows):
            if prev_row == e:
                w -= self._W[i]
        self._rows.append(e)
        self._W.append(w)
        self.A[e, :] = u
        self.log_det += float(np.log(abs(r)))
        if r < 0.0:
            self.sign = -self.sign
        self._staged = None
        if len(self._rows) >= self.delay:
            self.flush()

    def reject_move(self, e: int) -> None:
        """Drop the staged row."""
        if self._staged is None or self._staged[0] != e:
            raise RuntimeError(f"no staged ratio for electron {e}")
        self._staged = None

    def flush(self) -> None:
        """Apply the pending rank-k Woodbury update to the base inverse."""
        if not self._rows:
            return
        X = self.Ainv[:, self._rows].copy()  # gather BEFORE mutating Ainv
        W = np.array(self._W)
        S = self._s_matrix()
        self.Ainv -= X @ np.linalg.solve(S, W)  # the one GEMM
        self._rows.clear()
        self._W.clear()
        self.n_flushes += 1

    @property
    def pending(self) -> int:
        """Accepted moves waiting in the delay window."""
        return len(self._rows)

    @property
    def update_error(self) -> float:
        """Max-abs deviation of ``A @ Ainv_eff`` from identity."""
        return float(
            np.abs(self.A @ self.effective_inverse() - np.eye(self.n)).max()
        )

    def recompute(self, phi_matrix: np.ndarray | None = None) -> None:
        """Discard delayed state; rebuild the inverse from the matrix.

        With ``phi_matrix`` given the stored matrix is replaced first —
        the same signature :meth:`DiracDeterminant.recompute` offers, so
        :class:`~repro.qmc.slater.SlaterDet` can refresh either kind.
        """
        if phi_matrix is not None:
            A = np.array(phi_matrix, dtype=np.float64)
            if A.shape != (self.n, self.n):
                raise ValueError(f"expected {(self.n, self.n)}, got {A.shape}")
            if not np.isfinite(A).all():
                raise ValueError("Slater matrix contains non-finite entries")
            self.A = A
        self._rows.clear()
        self._W.clear()
        self._staged = None
        sign, logdet = np.linalg.slogdet(self.A)
        if sign == 0:
            raise ValueError("Slater matrix is singular")
        self.sign = float(sign)
        self.log_det = float(logdet)
        self.Ainv = np.linalg.inv(self.A)
