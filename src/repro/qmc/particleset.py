"""Particle sets with SoA position storage and single-particle move staging.

QMC moves particles one at a time (paper Sec. III: "particle-by-particle
moves ... change only one column of the A matrices at a time"), so a
particle set must support a three-phase protocol per move:

1. ``propose(i, new_pos)`` — stage a trial position for particle ``i``
   without touching the committed state;
2. ``accept()`` — commit the staged position;
3. ``reject()`` — drop it.

Positions are stored SoA (:class:`repro.core.containers.VectorSoA3D`),
the layout the optimized distance-table and Jastrow kernels consume,
while ``pset[i]`` still yields an (x, y, z) triple for application code —
the operator-overloading bridge of paper Sec. V-A.
"""

from __future__ import annotations

import numpy as np

from repro.core.containers import VectorSoA3D
from repro.lattice.cell import Cell

__all__ = ["ParticleSet"]


class ParticleSet:
    """N particles in a periodic cell with staged single-particle moves.

    Parameters
    ----------
    name:
        Identifier ("e" for electrons, "ion" for ions by convention).
    cell:
        The periodic simulation cell.
    positions:
        Initial ``(n, 3)`` Cartesian positions.
    """

    def __init__(self, name: str, cell: Cell, positions: np.ndarray):
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"positions must be (n, 3), got {positions.shape}")
        self.name = name
        self.cell = cell
        self.R = VectorSoA3D.from_aos(cell.wrap_cart(positions))
        self._active: int | None = None
        self._staged: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.R)

    def __getitem__(self, i: int) -> np.ndarray:
        """Committed position of particle ``i`` as an (x, y, z) triple."""
        return self.R[i]

    @property
    def n_particles(self) -> int:
        """Number of particles in the set."""
        return len(self.R)

    @property
    def positions(self) -> np.ndarray:
        """All committed positions as an ``(n, 3)`` AoS copy."""
        return self.R.to_aos()

    @property
    def active_particle(self) -> int | None:
        """Index of the particle with a staged move, or None."""
        return self._active

    @property
    def staged_position(self) -> np.ndarray | None:
        """The staged trial position (wrapped), or None."""
        return None if self._staged is None else self._staged.copy()

    def propose(self, i: int, new_pos: np.ndarray, wrap: bool = True) -> np.ndarray:
        """Stage a trial position for particle ``i``; returns it wrapped.

        Raises if another move is already staged — the particle-by-particle
        protocol never has two in flight.

        ``wrap=False`` stages the position verbatim (a private copy) —
        for batched drivers that wrap a whole crowd's proposals in one
        call and hand each walker its already-wrapped row.
        """
        if self._active is not None:
            raise RuntimeError(
                f"move already staged for particle {self._active}; "
                "accept() or reject() first"
            )
        if not 0 <= i < len(self):
            raise IndexError(f"particle index {i} out of range [0, {len(self)})")
        pos = np.asarray(new_pos, dtype=np.float64)
        # wrap_cart allocates; the verbatim path must copy too so the
        # staged state never aliases a caller-owned batch row.
        pos = self.cell.wrap_cart(pos) if wrap else np.array(pos)
        self._active = i
        self._staged = pos.reshape(3)
        return self._staged.copy()

    def accept(self) -> None:
        """Commit the staged move."""
        if self._active is None:
            raise RuntimeError("no move staged")
        self.R[self._active] = self._staged
        self._active = None
        self._staged = None

    def reject(self) -> None:
        """Drop the staged move."""
        if self._active is None:
            raise RuntimeError("no move staged")
        self._active = None
        self._staged = None

    def load_positions(self, positions: np.ndarray, wrap: bool = True) -> None:
        """Bulk-replace all positions (DMC branching clones, checkpoint restore).

        ``wrap=False`` stores the positions verbatim: already-committed
        positions are not floating-point fixed points of ``wrap_cart``
        (the cart->frac->cart round trip moves them by ULPs), so
        checkpoint restores must skip the re-wrap to stay bit-for-bit.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if positions.shape != (len(self), 3):
            raise ValueError(
                f"expected {(len(self), 3)} positions, got {positions.shape}"
            )
        if self._active is not None:
            raise RuntimeError("cannot bulk-load with a staged move in flight")
        if wrap:
            positions = self.cell.wrap_cart(positions)
        self.R.data[...] = positions.T

    @classmethod
    def random(
        cls,
        name: str,
        cell: Cell,
        count: int,
        rng: np.random.Generator,
    ) -> "ParticleSet":
        """Uniformly random particles in the cell (initial walker state)."""
        frac = rng.random((count, 3))
        return cls(name, cell, cell.frac_to_cart(frac))
