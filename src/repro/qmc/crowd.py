"""Crowd driver: lock-step batched walker propagation.

The paper closes by planning "to extend this AoSoA design to parallelize
other parts of QMCPACK" — the design that eventually shipped is the
*crowd*: a set of walkers advanced in lock step so the expensive orbital
evaluations of the same electron index across all walkers become one
batched kernel call.  This module implements that driver on top of
:meth:`repro.qmc.slater.SplineOrbitalSet.vgl_batch`:

for each electron index e:
    1. every walker drafts a drift-diffusion proposal for its electron e
       (its own stream, its own drift);
    2. ONE batched VGH call evaluates the orbitals at all trial
       positions (plus, at the start of the sweep, all current
       positions for the drifts);
    3. each walker finishes its Metropolis decision independently with
       its precomputed VGL slice.

Per-walker trajectories are mathematically identical to running the
sequential :func:`repro.qmc.drift_diffusion.sweep` on each walker (the
streams are consumed in the same order); only the evaluation schedule
changes — the crowd's point.
"""

from __future__ import annotations

import numpy as np

from repro.qmc.drift_diffusion import limited_drift, log_greens_ratio
from repro.qmc.wavefunction import SlaterJastrow

__all__ = ["Crowd"]


class Crowd:
    """A set of walkers advanced in lock step with batched orbital calls.

    Parameters
    ----------
    wavefunctions:
        One :class:`SlaterJastrow` per walker.  All walkers must share
        the *same orbital set object* (the read-only table of paper
        Fig. 3) and have equal electron counts.
    rngs:
        One private stream per walker.
    """

    def __init__(self, wavefunctions: list[SlaterJastrow], rngs: list):
        if not wavefunctions:
            raise ValueError("a crowd needs at least one walker")
        if len(rngs) != len(wavefunctions):
            raise ValueError("need exactly one rng per walker")
        spos = wavefunctions[0].slater.spos
        n_el = len(wavefunctions[0].electrons)
        for wf in wavefunctions[1:]:
            if wf.slater.spos is not spos:
                raise ValueError(
                    "crowd walkers must share one orbital set (the shared "
                    "read-only table)"
                )
            if len(wf.electrons) != n_el:
                raise ValueError("crowd walkers must have equal electron counts")
        self.wfs = wavefunctions
        self.rngs = list(rngs)
        self.spos = spos
        self.n_electrons = n_el
        #: Batched kernel calls performed (for instrumentation).
        self.n_batched_calls = 0

    def __len__(self) -> int:
        return len(self.wfs)

    def sweep(self, tau: float) -> tuple[int, int]:
        """One lock-step drift-diffusion pass over all electrons.

        Returns
        -------
        (accepted, attempted):
            Summed over the crowd.
        """
        accepted = 0
        sqrt_tau = np.sqrt(tau)
        nw = len(self.wfs)
        for e in range(self.n_electrons):
            # 1. per-walker proposals (drift from committed state).
            r_old = np.array([wf.electrons[e] for wf in self.wfs])
            drifts = np.array(
                [limited_drift(wf.grad(e), tau) for wf in self.wfs]
            )
            chi = np.array([rng.standard_normal(3) for rng in self.rngs])
            r_new = r_old + tau * drifts + chi * sqrt_tau

            # 2. one batched orbital evaluation for the whole crowd.
            v, g, lap = self.spos.vgl_batch(r_new)
            self.n_batched_calls += 1

            # 3. independent Metropolis decisions.
            for w, wf in enumerate(self.wfs):
                ratio, grad_new = wf.ratio_grad_precomputed(
                    e, r_new[w], (v[w], g[w], lap[w])
                )
                if ratio == 0.0:
                    wf.reject_move(e)
                    continue
                log_acc = 2.0 * np.log(abs(ratio))
                drift_new = limited_drift(grad_new, tau)
                log_acc += log_greens_ratio(
                    r_old[w], r_new[w], drifts[w], drift_new, tau
                )
                if log_acc >= 0.0 or self.rngs[w].random() < np.exp(log_acc):
                    wf.accept_move(e)
                    accepted += 1
                else:
                    wf.reject_move(e)
        return accepted, nw * self.n_electrons

    def run(self, n_sweeps: int, tau: float) -> float:
        """Run several sweeps; returns the overall acceptance ratio."""
        acc = att = 0
        for _ in range(n_sweeps):
            a, t = self.sweep(tau)
            acc += a
            att += t
        return acc / max(att, 1)
