"""Crowd driver: lock-step batched walker propagation.

The paper closes by planning "to extend this AoSoA design to parallelize
other parts of QMCPACK" — the design that eventually shipped is the
*crowd*: a set of walkers advanced in lock step so the expensive orbital
evaluations of the same electron index across all walkers become one
batched kernel call.  This class is a thin facade over the batched
population step (:mod:`repro.qmc.batched_step`), which does per sweep:

* ONE batched VGH call over every walker's every committed electron
  position (the drift cache), then per electron index
* ONE batched VGH call at all trial positions plus batched distance rows
  and Jastrow radials, with each walker finishing its Metropolis
  decision independently from its own stream.

Per-walker trajectories are *bitwise* identical to running the
sequential :func:`repro.qmc.drift_diffusion.sweep` on each walker (the
streams are consumed in the same order and every batched operation is
row-wise batch-invariant); only the evaluation schedule changes — the
crowd's point.
"""

from __future__ import annotations

from repro.qmc.batched_step import CrowdState, batched_sweep
from repro.qmc.wavefunction import SlaterJastrow

__all__ = ["Crowd"]


class Crowd:
    """A set of walkers advanced in lock step with batched orbital calls.

    Parameters
    ----------
    wavefunctions:
        One :class:`SlaterJastrow` per walker.  All walkers must share
        the *same orbital set object* (the read-only table of paper
        Fig. 3) and have equal electron counts.
    rngs:
        One private stream per walker.
    tile_size, chunk_size:
        Optional batched-kernel knobs (see
        :class:`~repro.qmc.batched_step.CrowdState`); trajectories are
        bitwise invariant to either.
    """

    def __init__(
        self,
        wavefunctions: list[SlaterJastrow],
        rngs: list,
        tile_size: int | None = None,
        chunk_size: int | None = None,
    ):
        self.state = CrowdState(
            wavefunctions, rngs, tile_size=tile_size, chunk_size=chunk_size
        )
        self.wfs = self.state.wfs
        self.rngs = self.state.rngs
        self.spos = self.state.spos
        self.n_electrons = self.state.n_electrons

    def __len__(self) -> int:
        return len(self.wfs)

    @property
    def n_batched_calls(self) -> int:
        """Batched kernel calls performed (for instrumentation)."""
        return self.state.n_batched_calls

    def sweep(self, tau: float) -> tuple[int, int]:
        """One lock-step drift-diffusion pass over all electrons.

        Returns
        -------
        (accepted, attempted):
            Summed over the crowd.
        """
        return batched_sweep(self.state, tau)

    def run(self, n_sweeps: int, tau: float) -> float:
        """Run several sweeps; returns the overall acceptance ratio."""
        acc = att = 0
        for _ in range(n_sweeps):
            a, t = self.sweep(tau)
            acc += a
            att += t
        return acc / max(att, 1)
