"""Particle-by-particle drift-diffusion moves (paper Sec. III, stage i).

Each electron is proposed a new position ``r' = r + tau * v(r) + chi`` with
``chi ~ N(0, tau I)`` Gaussian diffusion and ``v = grad log Psi`` the
quantum force ("to mimic QMC random moves by the quantum forces", paper
Sec. IV).  Acceptance is Metropolis-Hastings with the drift Green's
function ratio, making the sampling exact for any time step.

The drift is limited with the standard Umrigar cap — near determinant
nodes ``|v|`` diverges and an uncapped drift would push walkers far past
the node, so ``v_bar = v * (sqrt(1 + 2 tau v^2) - 1) / (tau v^2)``.
"""

from __future__ import annotations

import numpy as np

from repro.qmc.wavefunction import SlaterJastrow

__all__ = ["limited_drift", "log_greens_ratio", "sweep"]


def limited_drift(grad_logpsi: np.ndarray, tau: float) -> np.ndarray:
    """Umrigar-limited drift velocity ``v_bar * tau`` has bounded norm.

    For small ``tau * v^2`` this reduces smoothly to the bare gradient.

    Accepts a single ``(3,)`` gradient or a batch ``(..., 3)`` of them;
    the math is elementwise along the last axis either way, so the
    per-walker and crowd step paths produce the same bits from the same
    inputs.
    """
    g = np.asarray(grad_logpsi, dtype=np.float64)
    v2 = (g * g).sum(axis=-1)
    # Stable form of (sqrt(1 + 2 tau v^2) - 1) / (tau v^2): the naive
    # expression suffers catastrophic cancellation for tiny tau*v^2 and
    # can exceed 1 by rounding; this one is algebraically identical and
    # always in (0, 1].
    scale = 2.0 / (1.0 + np.sqrt(1.0 + 2.0 * tau * v2))
    # Multiplying by exactly 1.0 is a bitwise identity, so the tiny-v2
    # guard folds into the same multiply for scalars and batches alike.
    scale = np.where(v2 < 1e-300, 1.0, scale)
    return scale[..., np.newaxis] * g


def log_greens_ratio(
    r_old: np.ndarray,
    r_new: np.ndarray,
    drift_old: np.ndarray,
    drift_new: np.ndarray,
    tau: float,
):
    """log [ G(r' -> r) / G(r -> r') ] for the drift-diffusion kernel.

    With ``G(a -> b) = exp(-|b - a - tau v(a)|^2 / 2 tau)``, the forward
    and reverse displacement residuals give the detailed-balance factor
    of the Metropolis-Hastings acceptance.

    All arguments broadcast along leading axes: single ``(3,)`` vectors
    return a float, ``(nw, 3)`` batches return an ``(nw,)`` array with
    identical per-row bits.

    Parameters
    ----------
    drift_old, drift_new:
        *Limited* drift velocities at the old and new positions.
    """
    fwd = r_new - r_old - tau * drift_old
    rev = r_old - r_new - tau * drift_new
    out = ((fwd * fwd).sum(axis=-1) - (rev * rev).sum(axis=-1)) / (2.0 * tau)
    return float(out) if np.ndim(out) == 0 else out


def sweep(
    wf: SlaterJastrow,
    tau: float,
    rng: np.random.Generator,
    use_drift: bool = True,
) -> tuple[int, int]:
    """One pass of single-electron drift-diffusion moves over all electrons.

    Parameters
    ----------
    wf:
        The walker's wavefunction (owns the electron set).
    tau:
        Time step.
    rng:
        The walker's private random stream.
    use_drift:
        False gives plain symmetric Metropolis diffusion (VMC warm-up).

    Returns
    -------
    (accepted, attempted):
        Move counts for acceptance-ratio tracking.
    """
    n_el = len(wf.electrons)
    accepted = 0
    sqrt_tau = np.sqrt(tau)
    for e in range(n_el):
        r_old = wf.electrons[e]
        if use_drift:
            drift_old = limited_drift(wf.grad(e), tau)
        else:
            drift_old = np.zeros(3)
        chi = rng.standard_normal(3) * sqrt_tau
        r_new = r_old + tau * drift_old + chi
        ratio, grad_new = wf.ratio_grad(e, r_new)
        if ratio == 0.0:
            wf.reject_move(e)
            continue
        log_acc = 2.0 * np.log(abs(ratio))
        if use_drift:
            drift_new = limited_drift(grad_new, tau)
            # Use the unwrapped proposal in both directions: the trial
            # wavefunction is periodic so the drift at r_new equals the
            # drift at its wrapped image, and the forward/reverse residuals
            # then describe the same physical displacement.
            log_acc += log_greens_ratio(r_old, r_new, drift_old, drift_new, tau)
        if log_acc >= 0.0 or rng.random() < np.exp(log_acc):
            wf.accept_move(e)
            accepted += 1
        else:
            wf.reject_move(e)
    return accepted, n_el
