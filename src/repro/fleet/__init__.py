"""Elastic, self-healing fleet execution over the process pool.

:mod:`repro.parallel` makes a population run *fast* on a healthy set of
workers; this package makes long runs survive the workers not staying
healthy — the orchestration layer kernel libraries in the QMCPACK
lineage deliberately leave to the driver:

* :class:`~repro.fleet.supervisor.FleetSupervisor` — heartbeats and
  per-call deadlines detect crashed (SIGKILL, OOM) and hung workers;
  the failed slot is restarted, its state rebuilt deterministically,
  and the in-flight work replayed **bit-identically**;
* :class:`~repro.fleet.supervisor.FleetConfig` — the policy knobs:
  deadlines, restart budgets, elastic min/max bounds, latency and RSS
  budgets, rebalance threshold;
* :mod:`~repro.fleet.rebalance` — deterministic planning of DMC walker
  migrations when branching skews the shards;
* :func:`~repro.fleet.dmc.run_dmc_supervised` — the supervised twin of
  :func:`repro.parallel.run_dmc_sharded` (also reachable via its
  ``fleet=`` parameter and the CLIs' ``--elastic`` /
  ``--worker-timeout`` flags).

Everything observable lands in the OBS registry: restarts, recovery
latency (MTTR), scale events, migrated walkers/bytes, the live worker
count.
"""

from repro.fleet.dmc import run_dmc_supervised
from repro.fleet.rebalance import (
    Move,
    RebalancePlan,
    balanced_sizes,
    plan_rebalance,
    shard_imbalance,
)
from repro.fleet.supervisor import FleetConfig, FleetSupervisor

__all__ = [
    "FleetConfig",
    "FleetSupervisor",
    "run_dmc_supervised",
    "Move",
    "RebalancePlan",
    "balanced_sizes",
    "plan_rebalance",
    "shard_imbalance",
]
