"""FleetSupervisor — self-healing, elastic wrapper over ProcessCrowdPool.

The pool (:class:`~repro.parallel.pool.ProcessCrowdPool`) provides the
mechanisms — detect a dead worker, restart a slot, grow/shrink, arm a
chaos fault; this module provides the *policy* that turns them into a
run that survives real failures:

* **health tracking** — every scatter/gather runs against a per-call
  deadline (``worker_timeout``), and :meth:`FleetSupervisor.heartbeat`
  pings idle workers; a SIGKILL'd worker surfaces as
  :class:`~repro.parallel.pool.WorkerError`, a hung one as
  :class:`~repro.parallel.pool.WorkerTimeout`;
* **recovery** — the failed slot is restarted (the initializer rebuilds
  its state deterministically), a stateful worker's call journal is
  replayed, and the in-flight call is re-issued.  Because walker tasks
  are pure functions of parent-held state, the recovered run is
  **bit-identical** to an unfaulted one;
* **elastic scaling** — :meth:`FleetSupervisor.autoscale` grows the pool
  when a generation blows its latency budget and shrinks it when the
  fleet's resident memory exceeds its RSS budget (or latency shows
  ample slack);
* **observability** — restarts, scale events and recovery latency
  (MTTR) land in the OBS registry (``fleet_restarts_total``,
  ``fleet_scale_events_total``, ``fleet_recovery_seconds``, the
  ``fleet_workers`` gauge) and in the supervisor's ``events`` audit
  list.

Recovery is bounded: more than ``max_restarts`` restarts of the same
slot re-raises the underlying :class:`WorkerError` — a worker that dies
deterministically on its own shard is a bug, not bad luck, and retrying
forever would hide it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.obs import OBS
from repro.parallel.pool import ProcessCrowdPool, WorkerError, WorkerTimeout

__all__ = ["FleetConfig", "FleetSupervisor"]


@dataclass(frozen=True)
class FleetConfig:
    """Supervision and elasticity policy for one fleet.

    Parameters
    ----------
    worker_timeout:
        Reply deadline (seconds) per dispatched call; ``None`` disables
        hang detection (crashes are still detected via the closed pipe).
    heartbeat_timeout:
        Deadline for :meth:`FleetSupervisor.heartbeat` pings.
    heartbeat_every:
        Generations between proactive heartbeat sweeps in the DMC loop
        (``0`` disables them).  Every scatter/gather already probes
        liveness, so per-generation pings are pure overhead; the sweep
        is a backstop for workers that die *between* calls.
    max_restarts:
        Restart budget *per worker slot* before the supervisor gives up
        and re-raises.
    elastic:
        Allow :meth:`FleetSupervisor.autoscale` to resize the pool
        between generations.
    min_workers / max_workers:
        Elastic bounds; ``max_workers=None`` caps at the host's CPU
        count (never below the starting size).
    latency_budget:
        Target seconds per generation: above it the fleet grows, below
        half of it the fleet shrinks.  ``None`` disables latency-driven
        scaling.
    rss_budget_mb:
        Fleet-wide resident-memory budget; exceeding it forces a shrink
        regardless of latency.  ``None`` disables the check.
    rebalance:
        Plan DMC walker migrations when shards skew (see
        :mod:`repro.fleet.rebalance`).
    rebalance_threshold:
        Migrate only when the straggler excess exceeds this fraction.
    start_method:
        Multiprocessing start method override for the supervised pool.
    """

    worker_timeout: float | None = None
    heartbeat_timeout: float = 10.0
    heartbeat_every: int = 10
    max_restarts: int = 5
    elastic: bool = False
    min_workers: int = 1
    max_workers: int | None = None
    latency_budget: float | None = None
    rss_budget_mb: float | None = None
    rebalance: bool = True
    rebalance_threshold: float = 0.25
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ValueError(
                f"worker_timeout must be positive, got {self.worker_timeout}"
            )
        if self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {self.heartbeat_timeout}"
            )
        if self.heartbeat_every < 0:
            raise ValueError(
                f"heartbeat_every must be >= 0, got {self.heartbeat_every}"
            )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers is not None and self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) < min_workers "
                f"({self.min_workers})"
            )
        if self.latency_budget is not None and self.latency_budget <= 0:
            raise ValueError(
                f"latency_budget must be positive, got {self.latency_budget}"
            )
        if self.rss_budget_mb is not None and self.rss_budget_mb <= 0:
            raise ValueError(
                f"rss_budget_mb must be positive, got {self.rss_budget_mb}"
            )
        if self.rebalance_threshold < 0:
            raise ValueError(
                f"rebalance_threshold must be >= 0, got {self.rebalance_threshold}"
            )


def _proc_rss_mb(pid: int) -> float:
    """Resident set size of one process in MiB (0.0 where unsupported)."""
    try:
        with open(f"/proc/{pid}/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1024 * 1024)
    except (OSError, ValueError, IndexError):
        return 0.0


class FleetSupervisor:
    """A supervised, optionally elastic pool of crowd workers.

    Parameters
    ----------
    n_workers:
        Starting pool size.
    initializer / init_args / start_method:
        Forwarded to :class:`~repro.parallel.pool.ProcessCrowdPool`; the
        initializer must rebuild a worker's state deterministically from
        its worker id (all shard initializers in this repo do).
    config:
        The :class:`FleetConfig` policy (defaults apply when ``None``).
    stateful:
        ``True`` when worker state *evolves* across calls (the VMC/crowd
        shards hold their walkers worker-side).  Successful calls are
        then journaled per worker and replayed after a restart, and
        elastic scaling is refused (the shard structure is fixed at
        init).  The sharded-DMC executor runs stateless
        (``False``): the parent re-ships every task each generation, so
        a restarted worker needs no replay and the pool may resize
        freely.
    """

    def __init__(
        self,
        n_workers: int,
        initializer,
        init_args: tuple = (),
        config: FleetConfig | None = None,
        stateful: bool = False,
        start_method: str | None = None,
    ):
        self.config = config or FleetConfig()
        self.stateful = bool(stateful)
        if self.config.elastic and self.stateful:
            raise ValueError(
                "elastic scaling requires stateless workers (sharded DMC); "
                "stateful shards are fixed at init"
            )
        self._max_workers = self.config.max_workers or max(
            n_workers, os.cpu_count() or 1
        )
        self.pool = ProcessCrowdPool(
            n_workers,
            initializer,
            init_args,
            start_method=start_method or self.config.start_method,
        )
        #: Per-slot restart counts (index = worker id).
        self.restarts: list[int] = [0] * n_workers
        #: Detection-to-recovered latency of every recovery, in seconds.
        self.mttr_seconds: list[float] = []
        #: Audit trail: restarts, scale events, armed faults, rebalances.
        self.events: list[dict] = []
        self._journal: list[list[tuple]] = [[] for _ in range(n_workers)]
        if OBS.enabled:
            OBS.gauge("fleet_workers", self.pool.n_workers)

    # -- basic shape ---------------------------------------------------------

    def __len__(self) -> int:
        return self.pool.n_workers

    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts)

    @property
    def scale_events(self) -> int:
        return sum(1 for e in self.events if e["kind"] == "scale")

    # -- supervised scatter / gather -----------------------------------------

    def call(self, method: str, per_worker_args: list[tuple], **kwargs) -> list:
        """Scatter/gather like the pool, but survive worker failures.

        A worker that crashed before the send, died mid-call, or missed
        its ``worker_timeout`` deadline is restarted (journal replayed if
        stateful) and its call re-issued; results still come back in
        worker order.  Raises the final :class:`WorkerError` once a slot
        exhausts ``max_restarts``.
        """
        if len(per_worker_args) != self.n_workers:
            raise ValueError(
                f"need {self.n_workers} argument tuples, got {len(per_worker_args)}"
            )
        args_list = [tuple(a) for a in per_worker_args]
        for w, args in enumerate(args_list):
            self._issue(w, method, args, kwargs)
        results = []
        for w, args in enumerate(args_list):
            results.append(self._gather(w, method, args, kwargs))
        if self.stateful:
            for w, args in enumerate(args_list):
                self._journal[w].append((method, args, dict(kwargs)))
        return results

    def broadcast(self, method: str, *args, **kwargs) -> list:
        """Run ``state.method(*args, **kwargs)`` on every worker, supervised."""
        return self.call(method, [args] * self.n_workers, **kwargs)

    def _issue(self, worker: int, method: str, args: tuple, kwargs: dict) -> None:
        try:
            self.pool.start_call(worker, method, args, kwargs)
        except WorkerError as err:
            self._recover(worker, err, reason="crash")
            self.pool.start_call(worker, method, args, kwargs)

    def _gather(self, worker: int, method: str, args: tuple, kwargs: dict):
        while True:
            try:
                return self.pool.finish_call(
                    worker, timeout=self.config.worker_timeout, method=method
                )
            except WorkerTimeout as err:
                self._recover(worker, err, reason="hang")
            except WorkerError as err:
                self._recover(worker, err, reason="crash")
            self.pool.start_call(worker, method, args, kwargs)

    # -- recovery ------------------------------------------------------------

    def _recover(self, worker: int, err: WorkerError, reason: str) -> None:
        """Restart a failed slot and replay its journal; record MTTR.

        Raises the latest failure once the slot's restart budget is
        spent (replay failures count against the same budget).
        """
        t0 = time.perf_counter()
        attempt_reason = reason
        while True:
            self.restarts[worker] += 1
            if self.restarts[worker] > self.config.max_restarts:
                raise WorkerError(
                    f"worker {worker} exceeded max_restarts="
                    f"{self.config.max_restarts} (last failure: {err})",
                    worker_id=worker,
                    method=getattr(err, "method", None),
                ) from err
            if OBS.enabled:
                OBS.count("fleet_restarts_total", reason=attempt_reason)
                OBS.event(
                    "fleet:restart", cat="fleet", worker=worker, reason=attempt_reason
                )
            try:
                self.pool.restart_worker(worker)
                for method, args, kwargs in self._journal[worker]:
                    self.pool.start_call(worker, method, args, kwargs)
                    self.pool.finish_call(
                        worker, timeout=self.config.worker_timeout, method=method
                    )
                break
            except WorkerError as replay_err:
                err = replay_err
                attempt_reason = "replay"
        dt = time.perf_counter() - t0
        self.mttr_seconds.append(dt)
        self.events.append(
            {"kind": "restart", "worker": worker, "reason": reason, "seconds": dt}
        )
        if OBS.enabled:
            OBS.observe("fleet_recovery_seconds", dt)

    def heartbeat(self) -> list[bool]:
        """Ping every worker; restart the ones that died or stalled.

        Returns one flag per worker: ``True`` for a healthy pong,
        ``False`` for a worker that needed recovery (it is healthy again
        when this returns, or the restart budget ran out and raised).
        """
        healthy = []
        for w in range(self.n_workers):
            try:
                self.pool.ping(w, timeout=self.config.heartbeat_timeout)
                healthy.append(True)
            except WorkerTimeout as err:
                self._recover(w, err, reason="heartbeat")
                healthy.append(False)
            except WorkerError as err:
                self._recover(w, err, reason="heartbeat")
                healthy.append(False)
        if OBS.enabled:
            OBS.count("fleet_heartbeats_total", amount=len(healthy))
        return healthy

    # -- elasticity ----------------------------------------------------------

    def scale_to(self, n_workers: int, reason: str = "manual") -> int:
        """Resize the pool toward ``n_workers`` (clamped to the bounds).

        Returns the actual new size.  Refused for stateful fleets — a
        VMC shard's walkers live worker-side and cannot be re-sharded.
        """
        if self.stateful:
            raise ValueError("cannot scale a stateful fleet (fixed shards)")
        n_workers = max(self.config.min_workers, min(n_workers, self._max_workers))
        before = self.n_workers
        while self.n_workers < n_workers:
            self.pool.add_worker()
            self.restarts.append(0)
            self._journal.append([])
            if OBS.enabled:
                OBS.count("fleet_scale_events_total", direction="grow")
        while self.n_workers > n_workers:
            self.pool.remove_worker()
            self.restarts.pop()
            self._journal.pop()
            if OBS.enabled:
                OBS.count("fleet_scale_events_total", direction="shrink")
        if self.n_workers != before:
            self.events.append(
                {
                    "kind": "scale",
                    "from": before,
                    "to": self.n_workers,
                    "reason": reason,
                }
            )
            if OBS.enabled:
                OBS.gauge("fleet_workers", self.n_workers)
                OBS.event(
                    "fleet:scale",
                    cat="fleet",
                    n_from=before,
                    n_to=self.n_workers,
                    reason=reason,
                )
        return self.n_workers

    def rss_mb(self) -> float:
        """Total resident memory of the worker fleet, in MiB."""
        return sum(_proc_rss_mb(pid) for pid in self.pool.pids if pid)

    def autoscale(self, last_generation_seconds: float) -> int:
        """Apply the elastic policy after one generation; returns the size.

        Memory pressure wins over latency: an RSS budget breach shrinks
        even when the run is slow.  Otherwise a generation over the
        latency budget grows by one, and one under half the budget
        shrinks by one (hysteresis against flapping).
        """
        if not self.config.elastic:
            return self.n_workers
        n = self.n_workers
        if (
            self.config.rss_budget_mb is not None
            and self.rss_mb() > self.config.rss_budget_mb
            and n > self.config.min_workers
        ):
            return self.scale_to(n - 1, reason="rss_budget")
        if self.config.latency_budget is not None:
            if last_generation_seconds > self.config.latency_budget:
                return self.scale_to(n + 1, reason="latency_budget")
            if (
                last_generation_seconds < 0.5 * self.config.latency_budget
                and n > self.config.min_workers
            ):
                return self.scale_to(n - 1, reason="latency_slack")
        return self.n_workers

    # -- chaos & observability -----------------------------------------------

    def arm_fault(self, worker: int, kind: str, seconds: float = 0.0) -> None:
        """Arm a process-level fault on one worker (testing hook)."""
        self.pool.arm_chaos(worker, kind, seconds)
        self.events.append({"kind": "fault_armed", "worker": worker, "fault": kind})
        if OBS.enabled:
            OBS.count("fleet_faults_armed_total", kind=kind)

    def arm_injector(self, injector, generation: int = 0) -> int:
        """Arm a :class:`~repro.resilience.faults.FaultInjector`'s process
        faults scheduled for ``generation``; returns how many were armed.

        Single-broadcast drivers (population VMC, crowd propagation)
        treat the whole run as generation 0.  Faults aimed at workers
        beyond the live pool are skipped (and recorded in ``events``).
        """
        if injector is None:
            return 0
        armed = 0
        for fault in getattr(injector, "process_faults", ()):
            if fault.generation != generation:
                continue
            if fault.worker >= self.n_workers:
                self.events.append(
                    {
                        "kind": "fault_skipped",
                        "worker": fault.worker,
                        "fault": fault.kind,
                        "note": f"only {self.n_workers} workers live",
                    }
                )
                continue
            self.arm_fault(fault.worker, fault.kind, fault.seconds)
            armed += 1
        return armed

    def merge_metrics(self) -> None:
        """Merge worker registries into the parent's, skipping dead workers.

        Unlike the bare pool's :meth:`~ProcessCrowdPool.merge_metrics`,
        a worker that dies during the pull is skipped (its since-restart
        metrics are lost; supervision metrics live parent-side), so a
        final merge never fails a run that already survived its faults.
        """
        if not OBS.enabled:
            return
        for w in range(self.n_workers):
            try:
                state = self.pool.metrics_state(
                    w, timeout=self.config.heartbeat_timeout
                )
            except WorkerError:
                continue
            OBS.registry.merge_state(state)
        OBS.gauge("crowd_pool_workers", self.n_workers)
        OBS.gauge("fleet_workers", self.n_workers)

    def fleet_summary(self) -> dict:
        """The run's supervision outcome, for results and CLI reporting."""
        return {
            "restarts": self.total_restarts,
            "scale_events": self.scale_events,
            "rebalances": sum(
                1 for e in self.events if e["kind"] == "rebalance"
            ),
            "mttr_seconds": list(self.mttr_seconds),
            "final_workers": self.n_workers,
            "events": list(self.events),
        }

    # -- lifetime ------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        self.pool.close(timeout=timeout)

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
