"""Supervised, elastic, rebalancing DMC — the self-healing twin of
:func:`repro.parallel.run_dmc_sharded`.

Same physics, same loop (:func:`repro.parallel.dmc._run_dmc_loop`),
different executor: walkers carry a sticky ``home`` shard assignment,
the :mod:`repro.fleet.rebalance` planner migrates them when branching
skews the shards, the :class:`~repro.fleet.supervisor.FleetSupervisor`
restarts crashed or hung workers mid-generation, and — because the
parent's walker arrays are the authoritative state and every result is
gathered back in *global walker order* — all of it is invisible in the
traces.  The chaos tests pin this down: SIGKILL a worker mid-run and
the energy/population traces still match the unfaulted sequential run
bit for bit.

Why recovery is free of replay ambiguity: workers are stateless between
generations (the parent re-ships full task dicts each time), so
restarting a worker and re-issuing its scatter *is* the recovery —
there is no partial state to reconcile, no generation to roll back.
The on-disk checkpoint (same ``dmc-sharded`` kind, same contract)
remains the recovery path for parent death.
"""

from __future__ import annotations

from repro.core.coeffs import pad_table_3d
from repro.fleet.rebalance import plan_rebalance, shard_imbalance
from repro.fleet.supervisor import FleetConfig, FleetSupervisor
from repro.obs import OBS
from repro.parallel.crowd import CrowdSpec, solve_spec_table
from repro.parallel.dmc import _init_dmc_shard, _run_dmc_loop, _WalkerState
from repro.parallel.shared_table import SharedTable
from repro.qmc.dmc import DmcResult
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import GuardConfig

__all__ = ["run_dmc_supervised"]


class _FleetExecutor:
    """Sticky-home sharding under a supervisor.

    Unlike the contiguous ``_PoolExecutor`` split, walkers keep their
    ``home`` shard between generations (clones inherit the parent's
    home) and move only when the rebalance planner says so — resident
    walkers stay put, which is what makes migration a measurable,
    bounded event rather than an every-generation reshuffle.
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        step_mode: str,
        injector: FaultInjector | None,
    ):
        self._sup = supervisor
        self._step_mode = step_mode
        self._injector = injector
        self._armed: set[int] = set()  # indices into injector.process_faults

    # -- scheduling ----------------------------------------------------------

    def _shard_indices(self, states: list[_WalkerState]) -> list[list[int]]:
        """Assign every walker a live home; plan migrations; bucket indices."""
        n = self._sup.n_workers
        config = self._sup.config
        threshold = config.rebalance_threshold if config.rebalance else None
        plan = plan_rebalance([s.home for s in states], n, threshold=threshold)
        for mv in plan.moves:
            states[mv.walker].home = mv.dst
        migrations = plan.migrations
        if migrations:
            moved_bytes = sum(
                states[m.walker].positions.nbytes
                + states[m.walker].ion_positions.nbytes
                for m in migrations
            )
            self._sup.events.append(
                {
                    "kind": "rebalance",
                    "walkers": len(migrations),
                    "bytes": moved_bytes,
                    "sizes_before": list(plan.sizes_before),
                    "sizes_after": list(plan.sizes_after),
                }
            )
            if OBS.enabled:
                OBS.count("fleet_rebalances_total")
                OBS.count("fleet_migrated_walkers_total", len(migrations))
                OBS.count("fleet_migrated_bytes_total", moved_bytes)
        if OBS.enabled:
            OBS.gauge("fleet_shard_imbalance", shard_imbalance(plan.sizes_after))
        buckets: list[list[int]] = [[] for _ in range(n)]
        for i, s in enumerate(states):
            buckets[s.home].append(i)
        return buckets

    def _scatter(self, states: list[_WalkerState], method: str, *args) -> list:
        """Shard by home, run supervised, gather in global walker order."""
        buckets = self._shard_indices(states)
        per_worker = [
            ([states[i].task() for i in bucket], *args) for bucket in buckets
        ]
        shards = self._sup.call(method, per_worker)
        merged: list = [None] * len(states)
        for bucket, shard in zip(buckets, shards):
            for i, result in zip(bucket, shard):
                merged[i] = result
        return merged

    def _arm_faults(self, gen: int) -> None:
        if self._injector is None:
            return
        for idx, fault in enumerate(self._injector.process_faults):
            if idx in self._armed or fault.generation != gen:
                continue
            self._armed.add(idx)
            if fault.worker >= self._sup.n_workers:
                self._sup.events.append(
                    {
                        "kind": "fault_skipped",
                        "worker": fault.worker,
                        "fault": fault.kind,
                        "note": f"only {self._sup.n_workers} workers live",
                    }
                )
                continue
            self._sup.arm_fault(fault.worker, fault.kind, fault.seconds)

    # -- executor protocol ---------------------------------------------------

    def measure(self, states: list[_WalkerState], ion_charge: float) -> list[float]:
        # No fault arming here: a fault at generation g fires on that
        # generation's propagate, not the initial measurement pass.
        return self._scatter(states, "measure", ion_charge)

    def propagate(
        self, states: list[_WalkerState], gen: int, tau: float, ion_charge: float
    ) -> list[dict]:
        self._arm_faults(gen)
        return self._scatter(
            states, "propagate", tau, ion_charge, self._step_mode
        )

    def generation_end(
        self, gen: int, states: list[_WalkerState], seconds: float
    ) -> None:
        # Catch workers that died *between* calls (idle crashes) before
        # a later generation dispatches into a closed pipe.  Every
        # scatter/gather already probes liveness, so the sweep runs on a
        # cadence rather than every generation.
        every = self._sup.config.heartbeat_every
        if every and (gen + 1) % every == 0:
            self._sup.heartbeat()
        self._sup.autoscale(seconds)

    def finish(self) -> None:
        self._sup.merge_metrics()

    def summary(self) -> dict:
        return self._sup.fleet_summary()


def run_dmc_supervised(
    spec: CrowdSpec,
    n_workers: int = 1,
    n_generations: int = 20,
    tau: float = 0.05,
    target_population: int | None = None,
    feedback: float = 1.0,
    max_population_factor: int = 4,
    ion_charge: float = 4.0,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
    guard: GuardConfig | None = None,
    start_method: str | None = None,
    step_mode: str | None = None,
    fleet: FleetConfig | None = None,
    injector: FaultInjector | None = None,
) -> DmcResult:
    """Sharded DMC under a :class:`~repro.fleet.supervisor.FleetSupervisor`.

    Accepts everything :func:`repro.parallel.run_dmc_sharded` does plus
    the supervision policy (``fleet``) and an optional chaos
    ``injector`` whose scheduled process faults are armed at their
    target generations.  Traces are bit-identical to the unsupervised
    (and the sequential) run — across worker crashes, hangs, elastic
    resizes and rebalances — and checkpoints interoperate both ways
    (same ``dmc-sharded`` contract).

    The supervision outcome lands on ``result.fleet`` (restart /
    rebalance / scale counts, MTTR samples, final worker count) and, when
    observability is on, in the OBS registry.  ``step_mode=None``
    resolves through the spec's :class:`~repro.config.RunConfig`, then
    ``REPRO_STEP_MODE``.
    """
    from repro.config import effective_step_mode

    step_mode = effective_step_mode(step_mode, spec.config)
    if step_mode not in ("batched", "walker"):
        raise ValueError(
            f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
        )
    fleet = fleet or FleetConfig()
    table = solve_spec_table(spec)
    shared = SharedTable.create(pad_table_3d(table))
    table_spec = dict(shared.spec, n_workers=n_workers)
    try:
        with FleetSupervisor(
            n_workers,
            _init_dmc_shard,
            (spec, table_spec),
            config=fleet,
            stateful=False,
            start_method=start_method,
        ) as supervisor:
            return _run_dmc_loop(
                _FleetExecutor(supervisor, step_mode, injector),
                spec,
                n_generations=n_generations,
                tau=tau,
                target_population=target_population,
                feedback=feedback,
                max_population_factor=max_population_factor,
                ion_charge=ion_charge,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume=resume,
                guard=guard,
            )
    finally:
        shared.close()
        shared.unlink()
