"""Deterministic DMC shard rebalancing plans.

After branching, shard populations skew: a walker that branched into
three copies leaves its home shard three walkers heavier, and the
heaviest shard paces the whole generation (every other worker idles at
the gather barrier).  This module plans walker migrations between
shards — pure arithmetic on the per-walker ``home`` assignments, no
processes involved, so plans are unit-testable and **deterministic**:
the same homes always produce the same plan.

Bit-identity note: walker trajectories are pure functions of their
(positions, ions, rng-state) task dicts, and results are gathered back
in *global walker order* regardless of which shard computed them — so
any assignment of walkers to shards yields the same traces.  Migration
is therefore purely a load-balancing decision; the plan never has to
trade determinism for balance.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Move",
    "RebalancePlan",
    "balanced_sizes",
    "shard_imbalance",
    "plan_rebalance",
]


@dataclass(frozen=True)
class Move:
    """Reassign one walker: global index, source shard, destination.

    ``src`` is ``-1`` for a walker that had no home yet (a fresh clone);
    a non-negative ``src`` — including a shard index beyond the current
    shard count, i.e. a shard removed by elastic shrink — is a real
    migration of resident walker state.
    """

    walker: int
    src: int
    dst: int


@dataclass(frozen=True)
class RebalancePlan:
    """The full outcome of one planning pass.

    ``sizes_before`` counts only walkers whose home was a live shard;
    ``sizes_after`` is what applying ``moves`` yields.  ``moves`` lists
    fresh-clone placements (``src == -1``) and migrations alike, in the
    deterministic order they were planned.
    """

    n_shards: int
    sizes_before: tuple[int, ...]
    sizes_after: tuple[int, ...]
    moves: tuple[Move, ...]

    @property
    def migrations(self) -> tuple[Move, ...]:
        """Moves of resident walker state (excludes fresh-clone placement)."""
        return tuple(m for m in self.moves if m.src >= 0)


def balanced_sizes(total: int, n_shards: int) -> list[int]:
    """The target shard sizes: same split as contiguous ``shard_slices``
    (the first ``total % n_shards`` shards carry one extra walker)."""
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, extra = divmod(total, n_shards)
    return [base + (1 if s < extra else 0) for s in range(n_shards)]


def shard_imbalance(sizes) -> float:
    """Straggler excess of the heaviest shard over the fair share.

    ``0.0`` means perfectly balanced; ``1.0`` means the heaviest shard
    carries twice its fair share (the generation takes ~2x as long as a
    balanced one).  Empty populations are balanced by definition.
    """
    sizes = list(sizes)
    total = sum(sizes)
    if not sizes or total == 0:
        return 0.0
    fair = total / len(sizes)
    return (max(sizes) - fair) / fair


def plan_rebalance(
    homes, n_shards: int, threshold: float | None = 0.25
) -> RebalancePlan:
    """Plan walker moves so no shard is the straggler.

    Parameters
    ----------
    homes:
        Per-walker home shard, in global walker order.  ``-1`` (or any
        index outside ``0..n_shards-1``, e.g. after an elastic shrink)
        marks a walker that *must* be (re)assigned.
    n_shards:
        Live shard count (>= 1).
    threshold:
        Migrate resident walkers only when :func:`shard_imbalance`
        exceeds this after the mandatory placements; ``None`` disables
        migration entirely (placement-only).  ``0.0`` always balances
        fully.

    The plan is deterministic: mandatory placements go to the
    most-deficit shard (lowest index on ties) in walker order; balance
    migrations then move the highest-indexed walkers of the
    lowest-indexed surplus shard to the lowest-indexed deficit shard
    until every shard is at its target size.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if threshold is not None and threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    homes = [int(h) for h in homes]
    target = balanced_sizes(len(homes), n_shards)
    members: list[list[int]] = [[] for _ in range(n_shards)]
    pending: list[int] = []  # walkers needing a home, in global order
    for i, h in enumerate(homes):
        if 0 <= h < n_shards:
            members[h].append(i)
        else:
            pending.append(i)
    sizes = [len(m) for m in members]
    sizes_before = tuple(sizes)
    new_homes = list(homes)
    moves: list[Move] = []

    def move(walker: int, src: int, dst: int) -> None:
        moves.append(Move(walker=walker, src=src, dst=dst))
        new_homes[walker] = dst
        members[dst].append(walker)
        sizes[dst] += 1

    # 1) Mandatory placement: fresh clones and evacuees from removed
    #    shards go to the most-deficit shard (lowest index on ties).
    for i in pending:
        deficits = [target[s] - sizes[s] for s in range(n_shards)]
        dst = max(range(n_shards), key=lambda s: (deficits[s], -s))
        src = homes[i] if homes[i] >= 0 else -1
        move(i, src, dst)

    # 2) Optional balancing: migrate resident walkers only when the
    #    post-placement skew is worth the shipping.
    if threshold is not None and shard_imbalance(sizes) > threshold:
        while True:
            surplus = [s for s in range(n_shards) if sizes[s] > target[s]]
            if not surplus:
                break
            src = surplus[0]
            dst = next(s for s in range(n_shards) if sizes[s] < target[s])
            walker = max(members[src])
            members[src].remove(walker)
            sizes[src] -= 1
            move(walker, src, dst)

    return RebalancePlan(
        n_shards=n_shards,
        sizes_before=sizes_before,
        sizes_after=tuple(sizes),
        moves=tuple(moves),
    )
