"""repro.config — one RunConfig, one documented resolution order.

Every tunable the execution paths grew over eight PRs — chunk and tile
blocking (PR5), kernel backend (PR7), step mode and process count
(PR6), delayed-update rank (PR6) — used to travel as per-call kwargs
with per-module env fallbacks.  :class:`RunConfig` replaces that with a
single frozen dataclass and **one** resolution order, applied per
field:

1. **explicit kwarg** — a value passed by the caller;
2. **environment** — ``REPRO_CHUNK_SIZE``, ``REPRO_TILE_SIZE``,
   ``REPRO_BACKEND``, ``REPRO_STEP_MODE``, ``REPRO_PROCESSES``,
   ``REPRO_ORBITAL_SHARDS``, ``REPRO_DELAY``, ``REPRO_TUNE``;
3. **tuned database entry** — a measured winner from the per-host
   :class:`repro.tune.db.TuneDB`, tier-filtered so a bit-gated path is
   never served an ``allclose``-tier config;
4. **heuristic default** — the PR5 cache-budget planner
   (:func:`repro.tune.planner.plan_tiles`).

Each resolved field remembers which rung it came from
(:meth:`RunConfig.source_of`), so ``python -m repro tune show`` and the
benches can print not just *what* ran but *why*.

Construction never touches the environment — ``RunConfig(...)`` is
plain data.  :meth:`RunConfig.from_env` applies rungs 1-2;
:meth:`RunConfig.resolved_for` applies rungs 3-4 against a concrete
problem shape, returning a config whose ``chunk_size``/``tile_size``
are **concrete ints**.  Entry points resolve once, parent-side, and
hand the resolved config to workers, so a process pool inherits the
parent's decisions bit-identically regardless of worker-side env.

The ``tune`` field selects how rung 3 behaves: ``"off"`` skips the DB
entirely, ``"lookup"`` (the default) serves stored winners but never
measures, ``"search"`` micro-benchmarks on a DB miss and persists the
winner (a few ms per candidate, once per host x shape).
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RunConfig",
    "TUNE_OFF",
    "TUNE_LOOKUP",
    "TUNE_SEARCH",
    "deprecated_kwargs",
    "effective_step_mode",
    "load_run_config",
]

TUNE_OFF = "off"
TUNE_LOOKUP = "lookup"
TUNE_SEARCH = "search"
_TUNE_MODES = (TUNE_OFF, TUNE_LOOKUP, TUNE_SEARCH)

_STEP_MODES = ("batched", "walker")

#: Env var per field (rung 2 of the resolution order).
_ENV_VARS = {
    "chunk_size": "REPRO_CHUNK_SIZE",
    "tile_size": "REPRO_TILE_SIZE",
    "backend": "REPRO_BACKEND",
    "step_mode": "REPRO_STEP_MODE",
    "processes": "REPRO_PROCESSES",
    "orbital_shards": "REPRO_ORBITAL_SHARDS",
    "delay": "REPRO_DELAY",
    "tune": "REPRO_TUNE",
}

_INT_FIELDS = ("chunk_size", "tile_size", "processes", "orbital_shards", "delay")

#: Provenance labels, in resolution order.
SOURCE_KWARG = "kwarg"
SOURCE_ENV = "env"
SOURCE_TUNED = "tuned"
SOURCE_HEURISTIC = "heuristic"
SOURCE_DEFAULT = "default"

_UNSET = object()


def _normalize_tune(value) -> str:
    """Coerce the tune knob to one of the three mode strings."""
    if value is None:
        return TUNE_LOOKUP
    if isinstance(value, str):
        low = value.strip().lower()
        if low in _TUNE_MODES:
            return low
        if low in ("0", "false", "no"):
            return TUNE_OFF
        if low in ("1", "true", "yes", "on"):
            return TUNE_LOOKUP
        raise ValueError(
            f"tune must be one of {_TUNE_MODES} (or a boolean), got {value!r}"
        )
    return TUNE_LOOKUP if value else TUNE_OFF


def _parse_env(field: str, raw: str):
    if field in _INT_FIELDS:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{_ENV_VARS[field]} must be an integer, got {raw!r}"
            ) from None
        return value
    if field == "tune":
        return _normalize_tune(raw)
    return raw


@dataclass(frozen=True)
class RunConfig:
    """The one bag of execution knobs every entry point accepts.

    ``None`` in any field means "not decided yet" — the consumer either
    applies its own default (``step_mode``, ``processes``, ``delay``)
    or, for the blocking parameters, asks :meth:`resolved_for` to walk
    rungs 3-4 of the resolution order.

    Attributes
    ----------
    chunk_size, tile_size:
        Batched-path blocking (positions per gather, splines per
        contraction pass — the paper's Nb).
    backend:
        Kernel-backend spec for :func:`repro.backends.resolve_backend`
        (name, ``"auto"``, or None).
    step_mode:
        Driver stepping: ``"batched"`` (crowd-fused) or ``"walker"``.
    processes:
        Worker-process count for the parallel drivers (None = the
        driver's own default, usually sequential).
    orbital_shards:
        Orbital blocks per walker for the Opt C fan-out
        (:mod:`repro.parallel.orbital`): 1 means walker-only sharding,
        K > 1 splits the spline axis into K contiguous blocks evaluated
        by K cooperating workers (None = not decided; resolved to a
        tuned winner or 1).
    delay:
        Delayed-update rank for :class:`repro.qmc.slater.SlaterDet`.
    tune:
        Rung-3 behaviour: ``"off"`` / ``"lookup"`` / ``"search"``
        (booleans coerce: False → off, True → lookup).
    provenance:
        Sorted tuple of ``(field, source)`` pairs recording which rung
        decided each field so far.  Maintained by :meth:`from_env` /
        :meth:`resolved_for`; empty on a hand-built config.
    """

    chunk_size: int | None = None
    tile_size: int | None = None
    backend: str | None = None
    step_mode: str | None = None
    processes: int | None = None
    orbital_shards: int | None = None
    delay: int | None = None
    tune: bool | str = TUNE_LOOKUP
    provenance: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tune", _normalize_tune(self.tune))
        if self.step_mode is not None and self.step_mode not in _STEP_MODES:
            raise ValueError(
                f"step_mode must be one of {_STEP_MODES}, got {self.step_mode!r}"
            )
        for field in _INT_FIELDS:
            value = getattr(self, field)
            if value is not None and int(value) <= 0:
                raise ValueError(f"{field} must be positive, got {value}")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_env(cls, **explicit) -> "RunConfig":
        """Rungs 1-2: explicit kwargs, then ``REPRO_*`` env vars.

        ``None`` (or omitting a kwarg) means *unset* and falls through
        to the environment — matching every pre-PR9 call signature,
        where ``None`` meant "decide for me".
        """
        values: dict = {}
        prov: dict[str, str] = {}
        for field in _ENV_VARS:
            value = explicit.pop(field, None)
            if value is not None:
                values[field] = value
                prov[field] = SOURCE_KWARG
                continue
            raw = os.environ.get(_ENV_VARS[field])
            if raw is not None and raw != "":
                values[field] = _parse_env(field, raw)
                prov[field] = SOURCE_ENV
            else:
                prov[field] = SOURCE_DEFAULT
        if explicit:
            raise TypeError(
                f"unknown RunConfig fields: {sorted(explicit)}"
            )
        return cls(provenance=tuple(sorted(prov.items())), **values)

    def replace(self, **changes) -> "RunConfig":
        """A copy with ``changes`` applied, marked kwarg-provenance."""
        prov = dict(self.provenance)
        for field in changes:
            if field not in _ENV_VARS:
                raise TypeError(f"unknown RunConfig field: {field!r}")
            prov[field] = SOURCE_KWARG
        return dataclasses.replace(
            self, provenance=tuple(sorted(prov.items())), **changes
        )

    # -- provenance ----------------------------------------------------------

    def source_of(self, field: str) -> str:
        """Which resolution rung decided ``field`` (``"default"`` if none)."""
        return dict(self.provenance).get(field, SOURCE_DEFAULT)

    @property
    def is_resolved(self) -> bool:
        """True once chunk and tile are concrete ints."""
        return self.chunk_size is not None and self.tile_size is not None

    # -- resolution (rungs 3-4) ----------------------------------------------

    def _min_tier(self) -> str:
        """The conformance tier this config's backend is entitled to.

        The NumPy backend (and None, which resolves to it by default)
        carries the bitwise contract, so only ``exact``-tier DB entries
        may serve it; a named compiled backend or ``"auto"`` accepts
        ``allclose`` winners at the backend's declared tolerances.
        """
        from repro.backends import TIER_ALLCLOSE, TIER_EXACT

        spec = self.backend
        cap = getattr(spec, "capability", None)
        if cap is not None:  # an already-constructed KernelBackend
            return cap.tier
        if spec is None or spec == "numpy":
            return TIER_EXACT
        if spec == "auto":
            return TIER_ALLCLOSE
        try:
            from repro.backends import get_backend

            return get_backend(str(spec)).capability.tier
        except Exception:
            return TIER_EXACT

    def resolved_for(
        self,
        n_splines: int,
        batch: int,
        dtype,
        kind: str = "vgh",
        db=None,
    ) -> "RunConfig":
        """Concretize ``chunk_size``/``tile_size`` for one problem shape.

        Fields already set (rungs 1-2) pass through untouched.  For the
        rest: a tier-eligible tuned-DB winner (rung 3, honouring the
        :attr:`tune` mode — ``"search"`` micro-benchmarks on a miss and
        persists), else the cache-budget heuristic (rung 4).  A
        ``backend="auto"`` config additionally adopts the winner's
        measured backend (the tuner's third searched axis).  Also
        fills ``step_mode`` with its documented default (``"batched"``)
        so workers inherit a fully-determined config.

        Resolution happens **parent-side**: the returned config carries
        concrete ints, so shipping it to a worker process reproduces
        the parent's decision bit for bit even if the worker's env or
        tuning DB differs.
        """
        dtype = np.dtype(dtype)
        chunk, tile = self.chunk_size, self.tile_size
        backend = self.backend
        shards = self.orbital_shards
        processes = self.processes
        prov = dict(self.provenance)
        tune_mode = _normalize_tune(self.tune)
        if (
            chunk is None or tile is None or shards is None
        ) and tune_mode != TUNE_OFF:
            from repro.tune.db import TuneDB, TuneShape

            if db is None:
                db = TuneDB()
            hit = db.lookup(
                int(n_splines),
                dtype.name,
                kind=kind,
                batch=int(batch),
                min_tier=self._min_tier(),
            )
            if hit is None and tune_mode == TUNE_SEARCH:
                from repro.tune.search import autotune_shape

                shape = TuneShape(int(n_splines), int(batch), dtype.name, kind)
                outcome = autotune_shape(shape, db=db, backend=self.backend)
                if outcome.config.serves_tier(self._min_tier()):
                    hit = (shape, outcome.config)
            if hit is not None:
                _, cfg = hit
                if chunk is None:
                    chunk, prov["chunk_size"] = cfg.chunk, SOURCE_TUNED
                if tile is None:
                    tile = min(cfg.tile, int(n_splines))
                    prov["tile_size"] = SOURCE_TUNED
                # "auto" delegates the backend choice: concretize it to
                # the measured winner's backend so workers inherit the
                # parent's decision rather than re-resolving "auto".
                if backend == "auto" and cfg.backend:
                    backend, prov["backend"] = cfg.backend, SOURCE_TUNED
                # The v2 schema also measures the parallel axes; adopt
                # them when the caller left them open (processes keeps
                # its None = driver-default meaning unless tuned).
                if shards is None and getattr(cfg, "orbital_shards", 0) > 0:
                    shards = cfg.orbital_shards
                    prov["orbital_shards"] = SOURCE_TUNED
                if processes is None and getattr(cfg, "processes", 0) > 0:
                    processes = cfg.processes
                    prov["processes"] = SOURCE_TUNED
        if chunk is None or tile is None:
            from repro.tune.planner import plan_tiles

            plan = plan_tiles(int(n_splines), dtype.itemsize)
            if chunk is None:
                chunk, prov["chunk_size"] = plan.chunk, SOURCE_HEURISTIC
            if tile is None:
                tile, prov["tile_size"] = plan.tile, SOURCE_HEURISTIC
        if shards is None:
            # Walker-only sharding is the safe heuristic floor: Opt C
            # only pays when walkers < processes, which resolved_for
            # cannot see — the split="auto" planner upgrades this.
            shards, prov["orbital_shards"] = 1, SOURCE_HEURISTIC
        step_mode = self.step_mode if self.step_mode is not None else "batched"
        return dataclasses.replace(
            self,
            chunk_size=int(chunk),
            tile_size=int(tile),
            backend=backend,
            step_mode=step_mode,
            processes=None if processes is None else int(processes),
            orbital_shards=int(shards),
            provenance=tuple(sorted(prov.items())),
        )

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready dict (provenance included)."""
        data = dataclasses.asdict(self)
        data["provenance"] = dict(self.provenance)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        data = dict(data)
        prov = data.pop("provenance", ())
        if isinstance(prov, dict):
            prov = tuple(sorted(prov.items()))
        fields = {k: data[k] for k in _ENV_VARS if k in data}
        return cls(provenance=tuple(prov), **fields)


def load_run_config(path) -> RunConfig:
    """Read a :class:`RunConfig` from a JSON file (``--config FILE``).

    Accepts the :meth:`RunConfig.as_dict` layout; unknown keys are
    ignored so config files survive field additions.  Loaded fields are
    marked kwarg-provenance — a file is an explicit user choice (rung 1).
    """
    import json

    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: RunConfig JSON must be an object")
    data.pop("provenance", None)
    cfg = RunConfig.from_dict(data)
    prov = tuple(
        sorted((f, SOURCE_KWARG) for f in _ENV_VARS if data.get(f) is not None)
    )
    return dataclasses.replace(cfg, provenance=prov)


def effective_step_mode(
    step_mode: str | None = None,
    config: "RunConfig | None" = None,
    default: str = "batched",
) -> str:
    """Step-mode resolution for the run drivers, in rung order.

    Explicit kwarg > ``config.step_mode`` > ``REPRO_STEP_MODE`` >
    ``default``.  Kept as a helper (rather than forcing every driver to
    build a full config) because ``step_mode`` is the one knob the
    walker-path drivers need even when they never touch the batched
    engine.
    """
    if step_mode is not None:
        return step_mode
    if config is not None and config.step_mode is not None:
        return config.step_mode
    return os.environ.get("REPRO_STEP_MODE") or default


def deprecated_kwargs(api: str, replacement: str = "config=RunConfig(...)", **used) -> None:
    """Warn (exactly once per call) about deprecated kwarg spellings.

    ``used`` maps old kwarg names to whether the caller actually passed
    them; nothing happens when none were.  The kept-one-release shims
    across the package all funnel through here so the message — and the
    ``-W error::DeprecationWarning`` CI gate that keeps *internal*
    callers honest — stays uniform.
    """
    passed = sorted(name for name, was_used in used.items() if was_used)
    if not passed:
        return
    warnings.warn(
        f"{api}: {', '.join(passed)} deprecated since PR9, "
        f"use {replacement} instead (removed next release)",
        DeprecationWarning,
        stacklevel=3,
    )
