"""Tiling arithmetic: working sets, tile-size candidates, and auto-tuning.

This module holds the pure arithmetic side of Opt B.  The paper's own
analysis (Sec. V-B and VII) is entirely working-set accounting:

* input working set per active tile:  ``itemsize * Ng * Nb`` bytes
  (the re-blocked coefficient slab; 4 bytes/value in single precision
  gives the paper's ``4 Ng Nb``),
* output working set per walker:      ``streams * itemsize * Nw * Nb``
  bytes, with ``streams`` = 1 (V), 5 (VGL), 10 (VGH SoA) or 13 (VGH AoS),
* with nested threading both scale by ``nth`` — unless the walker count
  is reduced by the same factor, which keeps the output set constant
  (the strong-scaling trick of Sec. V-C).

The machine-aware *model-based* tile selection lives in
:mod:`repro.hwsim.wsmodel` (it needs cache descriptions); here we provide
the arithmetic, the candidate enumeration, and a *measurement-based*
auto-tuner in the spirit of the paper's planned "auto-tuning capability
using miniQMC ... similar to FFTW's solution using wisdom files"
(Sec. VI), including wisdom persistence.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.kinds import Kind

__all__ = [
    "OUTPUT_STREAMS",
    "split_table",
    "input_working_set_bytes",
    "output_working_set_bytes",
    "candidate_tile_sizes",
    "autotune_tile_size",
    "Wisdom",
]

#: Output streams per kernel and layout, from paper Secs. IV & V-A.
OUTPUT_STREAMS = {
    ("v", "aos"): 1,
    ("v", "soa"): 1,
    ("vgl", "aos"): 5,
    ("vgl", "soa"): 5,
    ("vgh", "aos"): 13,
    ("vgh", "soa"): 10,
}


def split_table(coefficients: np.ndarray, tile_size: int) -> list[np.ndarray]:
    """Physically re-block a coefficient table along the spline dimension.

    Returns M contiguous ``(nx, ny, nz, Nb)`` arrays.  The copies are the
    point: after re-blocking, one tile's 64 input streams touch a compact
    ``4*Ng*Nb``-byte slab instead of strided slices of the full table
    (paper Fig. 5b).
    """
    if coefficients.ndim != 4:
        raise ValueError(
            f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
        )
    n_splines = coefficients.shape[3]
    if tile_size <= 0 or n_splines % tile_size != 0:
        raise ValueError(f"tile_size must divide N: N={n_splines}, Nb={tile_size}")
    return [
        np.ascontiguousarray(coefficients[..., t : t + tile_size])
        for t in range(0, n_splines, tile_size)
    ]


def input_working_set_bytes(
    n_grid_points: int, tile_size: int, itemsize: int = 4, nth: int = 1
) -> int:
    """Input (coefficient-slab) working set in bytes: ``itemsize*Ng*Nb*nth``.

    Parameters
    ----------
    n_grid_points:
        ``Ng = nx*ny*nz``.
    tile_size:
        Nb.
    itemsize:
        Bytes per coefficient (4 in the paper's single precision).
    nth:
        Number of nested threads concurrently holding distinct tiles.
    """
    return itemsize * n_grid_points * tile_size * nth


def output_working_set_bytes(
    kernel: str,
    layout: str,
    n_walkers: int,
    tile_size: int,
    itemsize: int = 4,
    nth: int = 1,
) -> int:
    """Output working set in bytes: ``streams*itemsize*Nw*Nb*nth``.

    For VGH/SoA this is the paper's ``40 Nw Nb`` (10 streams x 4 bytes).
    Note the strong-scaling configuration divides ``n_walkers`` by the
    thread count, which exactly cancels ``nth`` here (Sec. V-C).
    """
    try:
        streams = OUTPUT_STREAMS[(kernel, layout)]
    except KeyError:
        raise ValueError(f"unknown kernel/layout {(kernel, layout)!r}") from None
    return streams * itemsize * n_walkers * tile_size * nth


def candidate_tile_sizes(n_splines: int, minimum: int = 16) -> list[int]:
    """Power-of-two tile sizes from ``minimum`` up to N, as in Fig. 7(c).

    "Starting at Nb = 16, we explore tile sizes in the multiple of two
    till Nb = N" (Sec. VI-B).  Only divisors of N are returned so every
    candidate yields an exact blocking.
    """
    if n_splines <= 0:
        raise ValueError(f"n_splines must be positive, got {n_splines}")
    sizes = []
    nb = minimum
    while nb <= n_splines:
        if n_splines % nb == 0:
            sizes.append(nb)
        nb *= 2
    if not sizes:
        sizes = [n_splines]
    return sizes


def autotune_tile_size(
    grid,
    coefficients: np.ndarray,
    kernel: str = "vgh",
    candidates: list[int] | None = None,
    n_samples: int = 8,
    rng: np.random.Generator | None = None,
    repeats: int = 2,
) -> tuple[int, dict[int, float]]:
    """Measure-and-pick the fastest tile size on the *current* host.

    This is the FFTW-wisdom-style tuner the paper plans for production
    runs: run the real tiled kernel at each candidate Nb on a handful of
    random positions and keep the one with the best time.  The result is
    host-specific; persist it with :class:`Wisdom`.

    Returns
    -------
    (best_nb, timings):
        The winning tile size and the per-candidate best-of-``repeats``
        seconds for the whole sample batch.
    """
    from repro.core.layout_aosoa import BsplineAoSoA  # local: avoid cycle

    if rng is None:
        rng = np.random.default_rng(2017)
    n_splines = coefficients.shape[3]
    if candidates is None:
        candidates = candidate_tile_sizes(n_splines)
    positions = grid.random_positions(n_samples, rng)
    timings: dict[int, float] = {}
    kind = kernel if isinstance(kernel, Kind) else Kind(kernel)
    for nb in candidates:
        eng = BsplineAoSoA(grid, coefficients, nb)
        out = eng.new_output(kind)
        kern = getattr(eng, kind.value)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for x, y, z in positions:
                kern(x, y, z, out)
            best = min(best, time.perf_counter() - t0)
        timings[nb] = best
    best_nb = min(timings, key=timings.get)
    return best_nb, timings


class Wisdom:
    """Persisted tile-size choices, keyed by (kernel, N, Ng, dtype).

    A tiny JSON file playing the role of FFTW's wisdom: tune once per
    host/architecture with miniQMC, then production runs just look the
    answer up (paper Sec. VI).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._data: dict[str, int] = {}
        if self.path.exists():
            self._data = json.loads(self.path.read_text())

    @staticmethod
    def _key(kernel: str, n_splines: int, n_grid_points: int, dtype: str) -> str:
        return f"{kernel}:{n_splines}:{n_grid_points}:{dtype}"

    def lookup(
        self, kernel: str, n_splines: int, n_grid_points: int, dtype: str = "float32"
    ) -> int | None:
        """Stored optimal Nb, or None if this configuration was never tuned."""
        return self._data.get(self._key(kernel, n_splines, n_grid_points, dtype))

    def record(
        self,
        kernel: str,
        n_splines: int,
        n_grid_points: int,
        tile_size: int,
        dtype: str = "float32",
    ) -> None:
        """Store an optimal Nb and write the wisdom file."""
        self._data[self._key(kernel, n_splines, n_grid_points, dtype)] = int(tile_size)
        self.path.write_text(json.dumps(self._data, indent=1, sort_keys=True))
