"""Fused tensor-contraction B-spline engine (beyond-paper ablation).

The paper's kernels walk the 4x4x4 stencil point by point because the C++
compiler vectorizes the innermost N loop.  In NumPy the same math can be
restructured as three successive tensor contractions over the separable
weights — contract z, then y, then x — which cuts both the FLOP count
(~300N multiplies for VGH instead of ~1280N) and, far more importantly in
Python, the interpreter-dispatch count (≈20 array operations instead of
≈640 slice updates per evaluation).

This engine is the *production* evaluation path for the QMC substrate
(:mod:`repro.qmc`), where wall-clock matters; the loop-structured
AoS/SoA engines remain the faithful ports used to measure layout effects.
It produces bit-for-bit the same contraction tree for every layout, and
its outputs are validated against :mod:`repro.core.refimpl` like all the
others.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import SinglePositionEngineMixin
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.stencil import gather_block, locate_and_weights
from repro.core.walker import WalkerSoA
from repro.obs import OBS

__all__ = ["BsplineFused"]


class BsplineFused(SinglePositionEngineMixin):
    """Fused-contraction tricubic B-spline SPO evaluator (SoA outputs).

    API-compatible with :class:`~repro.core.layout_soa.BsplineSoA`; only
    the evaluation schedule differs.

    Parameters
    ----------
    grid:
        Interpolation grid.
    coefficients:
        ``(nx, ny, nz, N)`` table ``P``, read-only and shared.
    first_spline:
        Global index of this object's first spline (tile offset).
    """

    layout = "fused"

    def __init__(
        self,
        grid: Grid3D,
        coefficients: np.ndarray,
        first_spline: int = 0,
    ):
        if coefficients.ndim != 4:
            raise ValueError(
                f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
            )
        if coefficients.shape[:3] != grid.shape:
            raise ValueError(
                f"grid {grid.shape} does not match table {coefficients.shape[:3]}"
            )
        self.grid = grid
        self.P = coefficients
        self.first_spline = int(first_spline)
        self.n_splines = coefficients.shape[3]
        self.dtype = coefficients.dtype

    def new_output(self, kind: "Kind | str" = Kind.VGH, n: int = 1) -> WalkerSoA:
        """Allocate a matching SoA output buffer."""
        self._coerce_new_output(kind, n)
        return WalkerSoA(self.n_splines, self.dtype)

    def _setup(self, x: float, y: float, z: float):
        """Common: stencil weights (cast to table dtype) and the 4x4x4 block."""
        pt = locate_and_weights(self.grid, x, y, z)
        block = gather_block(self.grid, self.P, pt)
        cast = lambda w: w.astype(self.dtype)  # noqa: E731 - tiny local
        return (
            tuple(map(cast, pt.wx)),
            tuple(map(cast, pt.wy)),
            tuple(map(cast, pt.wz)),
            block,
        )

    def v(self, x: float, y: float, z: float, out: WalkerSoA) -> None:
        """Kernel ``V`` via z->y->x contraction (3 matmuls total)."""
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="v")
        (ax, _, _), (ay, _, _), (az, _, _), block = self._setup(x, y, z)
        # (4,4,4,N) . (4,) over z -> (4,4,N); then y; then x.
        tz = np.tensordot(block, az, axes=([2], [0]))
        ty = np.tensordot(tz, ay, axes=([1], [0]))
        out.v[...] = ax @ ty

    def vgl(self, x: float, y: float, z: float, out: WalkerSoA) -> None:
        """Kernel ``VGL`` via shared partial contractions."""
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="vgl")
        (ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az), block = self._setup(
            x, y, z
        )
        tz0 = np.tensordot(block, az, axes=([2], [0]))  # value weights in z
        tz1 = np.tensordot(block, daz, axes=([2], [0]))
        tz2 = np.tensordot(block, d2az, axes=([2], [0]))
        u00 = np.tensordot(tz0, ay, axes=([1], [0]))  # (4, N)
        u10 = np.tensordot(tz0, day, axes=([1], [0]))
        u20 = np.tensordot(tz0, d2ay, axes=([1], [0]))
        u01 = np.tensordot(tz1, ay, axes=([1], [0]))
        u02 = np.tensordot(tz2, ay, axes=([1], [0]))
        out.v[...] = ax @ u00
        out.g[0][...] = dax @ u00
        out.g[1][...] = ax @ u10
        out.g[2][...] = ax @ u01
        out.l[...] = (d2ax @ u00) + (ax @ u20) + (ax @ u02)

    def vgh(self, x: float, y: float, z: float, out: WalkerSoA) -> None:
        """Kernel ``VGH`` via shared partial contractions (10 streams)."""
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="vgh")
        (ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az), block = self._setup(
            x, y, z
        )
        tz0 = np.tensordot(block, az, axes=([2], [0]))
        tz1 = np.tensordot(block, daz, axes=([2], [0]))
        tz2 = np.tensordot(block, d2az, axes=([2], [0]))
        u00 = np.tensordot(tz0, ay, axes=([1], [0]))
        u10 = np.tensordot(tz0, day, axes=([1], [0]))
        u20 = np.tensordot(tz0, d2ay, axes=([1], [0]))
        u01 = np.tensordot(tz1, ay, axes=([1], [0]))
        u11 = np.tensordot(tz1, day, axes=([1], [0]))
        u02 = np.tensordot(tz2, ay, axes=([1], [0]))
        out.v[...] = ax @ u00
        out.g[0][...] = dax @ u00
        out.g[1][...] = ax @ u10
        out.g[2][...] = ax @ u01
        out.h[0][...] = d2ax @ u00  # xx
        out.h[1][...] = dax @ u10  # xy
        out.h[2][...] = dax @ u01  # xz
        out.h[3][...] = ax @ u20  # yy
        out.h[4][...] = ax @ u11  # yz
        out.h[5][...] = ax @ u02  # zz
