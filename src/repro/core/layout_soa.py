"""SoA B-spline engine — Opt A of the paper (Fig. 4b).

``BsplineSoA`` keeps the same 4x4x4-stencil / vectorized-over-N structure
as the baseline, but every output component is a separate contiguous
stream: ``gx[N], gy[N], gz[N]`` instead of a 3-strided ``g[3N]``, and six
independent Hessian streams instead of nine strided ones (exploiting
tensor symmetry cuts VGH from 13 to 10 output streams, paper Sec. V-A).

In the paper this turns gather/scatter instructions into aligned unit-
stride vector stores; in this NumPy port it turns strided-view updates
into contiguous-array updates, which is the same memory-system effect at
Python scale.

The VGL kernel additionally carries the baseline-to-SoA "basic
optimizations" the paper mentions: the combined Laplacian weight is
computed once per stencil point (not three separate accumulations), and
the innermost ``z`` pass reuses one gathered row.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import SinglePositionEngineMixin
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.stencil import gather_block, locate_and_weights
from repro.core.walker import WalkerSoA
from repro.obs import OBS

__all__ = ["BsplineSoA"]


class BsplineSoA(SinglePositionEngineMixin):
    """SoA-layout tricubic B-spline SPO evaluator (Opt A).

    Parameters
    ----------
    grid:
        Interpolation grid (read-only, shared).
    coefficients:
        ``(nx, ny, nz, N)`` table ``P``; read-only, shared among threads.
    first_spline:
        Global index of the first spline served by this object; used when
        the engine is one tile of a :class:`~repro.core.layout_aosoa.BsplineAoSoA`.
    report_obs:
        When False, kernel calls are not counted into :data:`repro.obs.OBS`
        — set by :class:`~repro.core.layout_aosoa.BsplineAoSoA` on its
        tiles so a tiled evaluation is counted once (by the owner), not
        once per tile.
    """

    layout = "soa"

    def __init__(
        self,
        grid: Grid3D,
        coefficients: np.ndarray,
        first_spline: int = 0,
        report_obs: bool = True,
    ):
        if coefficients.ndim != 4:
            raise ValueError(
                f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
            )
        if coefficients.shape[:3] != grid.shape:
            raise ValueError(
                f"grid {grid.shape} does not match table {coefficients.shape[:3]}"
            )
        self.grid = grid
        self.P = coefficients
        self.first_spline = int(first_spline)
        self.n_splines = coefficients.shape[3]
        self.dtype = coefficients.dtype
        self._report_obs = bool(report_obs)

    def new_output(self, kind: "Kind | str" = Kind.VGH, n: int = 1) -> WalkerSoA:
        """Allocate a matching SoA output buffer."""
        self._coerce_new_output(kind, n)
        return WalkerSoA(self.n_splines, self.dtype)

    # -- kernels ---------------------------------------------------------

    def v(self, x: float, y: float, z: float, out: WalkerSoA) -> None:
        """Kernel ``V``: identical access pattern to the AoS version.

        V has a single output stream, so Opt A is a no-op for it (paper
        Sec. VI: "AoS-to-SoA transformation does not apply to V").
        """
        if OBS.enabled and self._report_obs:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="v")
        pt = locate_and_weights(self.grid, x, y, z)
        block = gather_block(self.grid, self.P, pt)
        ax, ay, az = pt.wx[0], pt.wy[0], pt.wz[0]
        v = out.v
        v.fill(0)
        for a in range(4):
            for b in range(4):
                wab = ax[a] * ay[b]
                for c in range(4):
                    v += float(wab * az[c]) * block[a, b, c]

    def vgl(self, x: float, y: float, z: float, out: WalkerSoA) -> None:
        """Kernel ``VGL`` with contiguous per-component output streams.

        5 output streams: value, three gradient components, Laplacian.
        The Laplacian weight ``(d2x + d2y + d2z)`` is folded into a single
        accumulation per stencil point.
        """
        if OBS.enabled and self._report_obs:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="vgl")
        pt = locate_and_weights(self.grid, x, y, z)
        block = gather_block(self.grid, self.P, pt)
        (ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az) = pt.wx, pt.wy, pt.wz
        v, l = out.v, out.l
        gx, gy, gz = out.g[0], out.g[1], out.g[2]
        v.fill(0)
        out.g.fill(0)
        l.fill(0)
        for a in range(4):
            for b in range(4):
                # Hoisted per-(a,b) products (the paper's loop-invariant
                # motion + z-unrolling of the VGL baseline).
                w_ab = ax[a] * ay[b]
                w_dab = dax[a] * ay[b]
                w_adb = ax[a] * day[b]
                w_lab = d2ax[a] * ay[b] + ax[a] * d2ay[b]
                for c in range(4):
                    p = block[a, b, c]
                    v += float(w_ab * az[c]) * p
                    gx += float(w_dab * az[c]) * p
                    gy += float(w_adb * az[c]) * p
                    gz += float(w_ab * daz[c]) * p
                    l += float(w_lab * az[c] + w_ab * d2az[c]) * p

    def vgh(self, x: float, y: float, z: float, out: WalkerSoA) -> None:
        """Kernel ``VGH`` with 10 contiguous output streams (Fig. 4b).

        1 value + 3 gradient + 6 independent Hessian components; the
        symmetric entries are never computed twice.
        """
        if OBS.enabled and self._report_obs:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="vgh")
        pt = locate_and_weights(self.grid, x, y, z)
        block = gather_block(self.grid, self.P, pt)
        (ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az) = pt.wx, pt.wy, pt.wz
        v = out.v
        gx, gy, gz = out.g[0], out.g[1], out.g[2]
        hxx, hxy, hxz, hyy, hyz, hzz = (out.h[i] for i in range(6))
        v.fill(0)
        out.g.fill(0)
        out.h.fill(0)
        for a in range(4):
            for b in range(4):
                w_ab = ax[a] * ay[b]
                w_dab = dax[a] * ay[b]
                w_adb = ax[a] * day[b]
                w_d2ab = d2ax[a] * ay[b]
                w_ddab = dax[a] * day[b]
                w_ad2b = ax[a] * d2ay[b]
                for c in range(4):
                    p = block[a, b, c]
                    v += float(w_ab * az[c]) * p
                    gx += float(w_dab * az[c]) * p
                    gy += float(w_adb * az[c]) * p
                    gz += float(w_ab * daz[c]) * p
                    hxx += float(w_d2ab * az[c]) * p
                    hxy += float(w_ddab * az[c]) * p
                    hxz += float(w_dab * daz[c]) * p
                    hyy += float(w_ad2b * az[c]) * p
                    hyz += float(w_adb * daz[c]) * p
                    hzz += float(w_ab * d2az[c]) * p
