"""1D cubic B-spline basis functions and their derivatives.

This is paper Eq. (5) and Fig. 2(a): at any point ``x`` inside a uniform
grid of spacing ``delta`` exactly four piecewise-cubic basis functions are
non-zero.  Writing ``i = floor(x / delta)`` and ``t = x/delta - i`` (the
fractional coordinate, ``0 <= t < 1``), the interpolated value is

    f(x) = a0(t) * p[i-1] + a1(t) * p[i] + a2(t) * p[i+1] + a3(t) * p[i+2]

with the uniform cubic B-spline weights

    a0(t) = (1 - t)^3 / 6
    a1(t) = (3 t^3 - 6 t^2 + 4) / 6
    a2(t) = (-3 t^3 + 3 t^2 + 3 t + 1) / 6
    a3(t) = t^3 / 6

The same four-tap structure applies per dimension in 3D, giving the
64-point tensor-product stencil of paper Eq. (6).

The weights are expressed through the einspline-style coefficient matrix
``A`` such that ``a_m(t) = A[m] @ [t^3, t^2, t, 1]``; ``dA`` and ``d2A``
hold the monomial coefficients of the first and second ``t``-derivatives.
Derivatives with respect to the *physical* coordinate ``x`` carry factors
of ``1/delta`` and ``1/delta^2`` (chain rule), which the callers in
:mod:`repro.core.layout_soa` and friends apply.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BSPLINE_A",
    "BSPLINE_DA",
    "BSPLINE_D2A",
    "bspline_weights",
    "bspline_dweights",
    "bspline_d2weights",
    "bspline_all_weights",
    "bspline_weights_batch",
]

#: Monomial coefficients of the four cubic B-spline basis functions.
#: ``BSPLINE_A[m] @ [t**3, t**2, t, 1] == a_m(t)``.
BSPLINE_A = np.array(
    [
        [-1.0, 3.0, -3.0, 1.0],
        [3.0, -6.0, 0.0, 4.0],
        [-3.0, 3.0, 3.0, 1.0],
        [1.0, 0.0, 0.0, 0.0],
    ]
) / 6.0

#: Monomial coefficients of d a_m / d t (cubic -> quadratic; the constant
#: column keeps the same [t^3,t^2,t,1] monomial vector with a zero cubic
#: coefficient so a single ``@`` evaluates everything).
BSPLINE_DA = np.array(
    [
        [0.0, -3.0, 6.0, -3.0],
        [0.0, 9.0, -12.0, 0.0],
        [0.0, -9.0, 6.0, 3.0],
        [0.0, 3.0, 0.0, 0.0],
    ]
) / 6.0

#: Monomial coefficients of d^2 a_m / d t^2.
BSPLINE_D2A = np.array(
    [
        [0.0, 0.0, -6.0, 6.0],
        [0.0, 0.0, 18.0, -12.0],
        [0.0, 0.0, -18.0, 6.0],
        [0.0, 0.0, 6.0, 0.0],
    ]
) / 6.0


def _monomials(t: float | np.ndarray) -> np.ndarray:
    """Return the monomial vector(s) ``[t^3, t^2, t, 1]``.

    For scalar ``t`` the result has shape ``(4,)``; for an array of shape
    ``(...,)`` the result has shape ``(..., 4)``.
    """
    t = np.asarray(t, dtype=np.float64)
    out = np.empty(t.shape + (4,), dtype=np.float64)
    out[..., 3] = 1.0
    out[..., 2] = t
    out[..., 1] = t * t
    out[..., 0] = out[..., 1] * t
    return out


def bspline_weights(t: float | np.ndarray) -> np.ndarray:
    """Four basis-function values ``a_m(t)`` at fractional coordinate ``t``.

    Parameters
    ----------
    t:
        Fractional coordinate(s) in ``[0, 1)``.  Scalar or array.

    Returns
    -------
    numpy.ndarray
        Shape ``(4,)`` for scalar input, ``(..., 4)`` for array input.
        The four weights always sum to 1 (partition of unity).
    """
    return _monomials(t) @ BSPLINE_A.T


def bspline_dweights(t: float | np.ndarray) -> np.ndarray:
    """First ``t``-derivatives ``a_m'(t)`` of the four basis functions.

    Note the result is a derivative with respect to the *fractional*
    coordinate; divide by the grid spacing to get d/dx.  The four
    derivative weights always sum to 0.
    """
    return _monomials(t) @ BSPLINE_DA.T


def bspline_d2weights(t: float | np.ndarray) -> np.ndarray:
    """Second ``t``-derivatives ``a_m''(t)`` of the four basis functions.

    Divide by the grid spacing squared to get d^2/dx^2.  The four weights
    sum to 0.
    """
    return _monomials(t) @ BSPLINE_D2A.T


def bspline_all_weights(t: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Values, first and second derivative weights in one call.

    This is the per-dimension "prefactor" computation the paper amortizes
    over the N splines (Sec. IV: "The cost of computing {b} at (x,y,z) in
    Eq. 6 is amortized for N").

    Returns
    -------
    (a, da, d2a):
        Three ``(4,)`` arrays: ``a_m(t)``, ``a_m'(t)``, ``a_m''(t)``.
    """
    m = _monomials(float(t))
    return m @ BSPLINE_A.T, m @ BSPLINE_DA.T, m @ BSPLINE_D2A.T


def bspline_weights_batch(
    t: np.ndarray, order: int = 0
) -> np.ndarray:
    """Weights for a batch of fractional coordinates.

    Parameters
    ----------
    t:
        Array of fractional coordinates, any shape.
    order:
        0 for values, 1 for first derivatives, 2 for second derivatives.

    Returns
    -------
    numpy.ndarray
        Shape ``t.shape + (4,)``.

    Notes
    -----
    The contraction is written elementwise (not ``@``) on purpose: BLAS
    matmul kernels pick different accumulation orders for different batch
    sizes, which would make a weight's bits depend on how many positions
    it was computed alongside.  Elementwise ufunc chains are per-element
    deterministic, so a position's weights are identical whether it is
    evaluated alone, inside a chunk, or inside the full batch — the
    foundation of the bitwise chunking/sharding contracts in
    :mod:`repro.core.batched` and :mod:`repro.parallel`.
    """
    if order == 0:
        mat = BSPLINE_A
    elif order == 1:
        mat = BSPLINE_DA
    elif order == 2:
        mat = BSPLINE_D2A
    else:
        raise ValueError(f"order must be 0, 1 or 2, got {order!r}")
    m = _monomials(np.asarray(t))
    out = np.empty(m.shape, dtype=np.float64)
    for j in range(4):
        c3, c2, c1, c0 = mat[j]
        out[..., j] = ((c3 * m[..., 0] + c2 * m[..., 1]) + c1 * m[..., 2]) + c0 * m[..., 3]
    return out
