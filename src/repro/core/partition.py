"""One static partition implementation for every Opt C surface.

The paper's Opt C (Sec. V-C) distributes M objects among nth workers
with "an explicit data partition scheme": a static contiguous split,
computed once, no locks, imbalance bounded at one object.  Three layers
of this repo need exactly that split — the nested thread evaluator
(:mod:`repro.core.nested`), the process-level orbital shard planner
(:mod:`repro.parallel.orbital`), and the tuner's candidate generator —
and they must *agree*, or a thread-side and a process-side run of the
same shape would block the spline axis differently.  This module is the
single home; ``repro.core.nested.partition_tiles`` is a deprecated
alias.

:func:`plan_orbital_blocks` adds the one extra rule the bitwise
contract needs: **no width-1 block**.  NumPy's einsum dispatches a
length-1 contraction axis to a different inner loop whose accumulation
order differs by an ulp (see :meth:`repro.core.batched.BsplineBatched._tiles`),
so a shard planner that emitted a single-column block would break
``assert_array_equal`` between the concatenated blocks and the
single-engine result.  The shard count is therefore clamped so every
block spans at least two splines (the paper's own limit is the same
shape: nth <= N/Nb).
"""

from __future__ import annotations

__all__ = ["partition", "plan_orbital_blocks"]


def partition(n_items: int, n_parts: int) -> list[range]:
    """Static contiguous partition of ``n_items`` among ``n_parts``.

    Extra items (when ``n_items % n_parts != 0``) go to the first
    ``n_items % n_parts`` parts, keeping the imbalance at one item.
    Parts beyond ``n_items`` receive empty ranges (they idle, matching
    the paper's ``nth <= N/Nb`` scaling limit).

    Parameters
    ----------
    n_items:
        M, the number of objects to distribute (> 0).
    n_parts:
        The worker count (> 0).
    """
    if n_items <= 0:
        raise ValueError(f"n_items must be positive, got {n_items}")
    if n_parts <= 0:
        raise ValueError(f"n_parts must be positive, got {n_parts}")
    base, extra = divmod(n_items, n_parts)
    ranges = []
    start = 0
    for part in range(n_parts):
        count = base + (1 if part < extra else 0)
        ranges.append(range(start, start + count))
        start += count
    return ranges


def plan_orbital_blocks(n_splines: int, n_shards: int) -> list[slice]:
    """Contiguous spline-axis blocks for ``n_shards`` orbital shards.

    The blocks cover ``[0, n_splines)`` exactly, in order, with widths
    differing by at most one — and **never narrower than two splines**
    (the einsum width-1 dispatch would break bit-identity; see the
    module docstring).  A shard count too large for that rule is
    clamped, so callers may ask for ``processes`` shards and receive
    however many the spline axis actually supports; a 1-wide table
    yields the single full block.

    Parameters
    ----------
    n_splines:
        N, the padded coefficient table's spline-axis width (> 0).
    n_shards:
        Requested shard count (> 0); clamped to ``n_splines // 2``.
    """
    if n_splines <= 0:
        raise ValueError(f"n_splines must be positive, got {n_splines}")
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n_shards = max(1, min(n_shards, n_splines // 2)) if n_splines > 1 else 1
    return [
        slice(rng.start, rng.stop)
        for rng in partition(n_splines, n_shards)
    ]
