"""Baseline AoS B-spline engine (paper Fig. 4a).

``BsplineAoS`` reproduces the structure of the einspline-derived baseline
in the public QMCPACK distribution: a triple loop over the 4x4x4 stencil
with an inner loop over the N splines, accumulating into interleaved
(array-of-structures) output arrays:

* gradients  ``g[3n + c]``  — 3-strided stores per component,
* Hessians   ``h[9n + rc]`` — 9-strided stores, all nine tensor entries
  (the baseline does not exploit symmetry, hence 13 output streams for
  VGH: 1 value + 3 gradient + 9 Hessian; paper Sec. IV).

In this NumPy port the inner loop over N is a vectorized slice operation;
the AoS stores become genuinely strided NumPy views (``g[c::3]``), which
cost more than contiguous stores for real — the Python analogue of the
gather/scatter instructions the paper eliminates with Opt A.

The engine evaluates one position per call, exactly like the C++ kernel:
QMC's particle-by-particle moves make positions arrive one at a time.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import SinglePositionEngineMixin
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.stencil import gather_block, locate_and_weights
from repro.core.walker import WalkerAoS
from repro.obs import OBS

__all__ = ["BsplineAoS"]


class BsplineAoS(SinglePositionEngineMixin):
    """AoS-layout tricubic B-spline SPO evaluator (the paper's baseline).

    Parameters
    ----------
    grid:
        Interpolation grid (read-only, shared).
    coefficients:
        ``(nx, ny, nz, N)`` table ``P``; read-only and shared among all
        walkers/threads (paper Fig. 3 L8-9).
    first_spline:
        Global index of this object's first spline; nonzero only when the
        engine serves as a tile of a larger set.
    """

    layout = "aos"

    def __init__(
        self,
        grid: Grid3D,
        coefficients: np.ndarray,
        first_spline: int = 0,
    ):
        if coefficients.ndim != 4:
            raise ValueError(
                f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
            )
        if coefficients.shape[:3] != grid.shape:
            raise ValueError(
                f"grid {grid.shape} does not match table {coefficients.shape[:3]}"
            )
        self.grid = grid
        self.P = coefficients
        self.first_spline = int(first_spline)
        self.n_splines = coefficients.shape[3]
        self.dtype = coefficients.dtype

    def new_output(self, kind: "Kind | str" = Kind.VGH, n: int = 1) -> WalkerAoS:
        """Allocate a matching output buffer (``kind`` kept for API parity)."""
        self._coerce_new_output(kind, n)
        return WalkerAoS(self.n_splines, self.dtype)

    # -- kernels ---------------------------------------------------------

    def v(self, x: float, y: float, z: float, out: WalkerAoS) -> None:
        """Kernel ``V``: N orbital values at ``(x, y, z)`` into ``out.v``.

        A single contiguous output stream — which is why the paper notes V
        "does not need SoA data layout and only benefits with the AoSoA
        transformation" (Sec. VI).
        """
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="v")
        pt = locate_and_weights(self.grid, x, y, z)
        block = gather_block(self.grid, self.P, pt)
        ax, ay, az = pt.wx[0], pt.wy[0], pt.wz[0]
        v = out.v
        v.fill(0)
        for a in range(4):
            for b in range(4):
                wab = ax[a] * ay[b]
                for c in range(4):
                    v += float(wab * az[c]) * block[a, b, c]

    def vgl(self, x: float, y: float, z: float, out: WalkerAoS) -> None:
        """Kernel ``VGL``: values, gradients and Laplacians.

        Outputs 5 components per spline: ``v`` contiguous, ``g`` 3-strided
        (AoS), ``l`` contiguous.  Mirrors the baseline's structure,
        including recomputing the three second-derivative weight products
        inside the loop (the temporaries the paper hoists in Opt A's
        "other optimizations").
        """
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="vgl")
        pt = locate_and_weights(self.grid, x, y, z)
        block = gather_block(self.grid, self.P, pt)
        (ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az) = pt.wx, pt.wy, pt.wz
        v, g, l = out.v, out.g, out.l
        v.fill(0)
        g.fill(0)
        l.fill(0)
        gx, gy, gz = g[0::3], g[1::3], g[2::3]  # strided AoS views
        for a in range(4):
            for b in range(4):
                for c in range(4):
                    p = block[a, b, c]
                    v += float(ax[a] * ay[b] * az[c]) * p
                    gx += float(dax[a] * ay[b] * az[c]) * p
                    gy += float(ax[a] * day[b] * az[c]) * p
                    gz += float(ax[a] * ay[b] * daz[c]) * p
                    l += float(
                        d2ax[a] * ay[b] * az[c]
                        + ax[a] * d2ay[b] * az[c]
                        + ax[a] * ay[b] * d2az[c]
                    ) * p

    def vgh(self, x: float, y: float, z: float, out: WalkerAoS) -> None:
        """Kernel ``VGH``: values, gradients and full 3x3 Hessians.

        13 output streams (paper Sec. IV): the value plus 3-strided
        gradient components and 9-strided Hessian components, including
        the redundant symmetric entries the baseline stores.
        """
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="vgh")
        pt = locate_and_weights(self.grid, x, y, z)
        block = gather_block(self.grid, self.P, pt)
        (ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az) = pt.wx, pt.wy, pt.wz
        v, g, h = out.v, out.g, out.h
        v.fill(0)
        g.fill(0)
        h.fill(0)
        gx, gy, gz = g[0::3], g[1::3], g[2::3]
        # Nine 9-strided Hessian views, row-major (xx, xy, xz, yx, ...).
        hv = [h[r::9] for r in range(9)]
        for a in range(4):
            for b in range(4):
                for c in range(4):
                    p = block[a, b, c]
                    wv = float(ax[a] * ay[b] * az[c])
                    wgx = float(dax[a] * ay[b] * az[c])
                    wgy = float(ax[a] * day[b] * az[c])
                    wgz = float(ax[a] * ay[b] * daz[c])
                    wxx = float(d2ax[a] * ay[b] * az[c])
                    wxy = float(dax[a] * day[b] * az[c])
                    wxz = float(dax[a] * ay[b] * daz[c])
                    wyy = float(ax[a] * d2ay[b] * az[c])
                    wyz = float(ax[a] * day[b] * daz[c])
                    wzz = float(ax[a] * ay[b] * d2az[c])
                    v += wv * p
                    gx += wgx * p
                    gy += wgy * p
                    gz += wgz * p
                    hv[0] += wxx * p
                    hv[1] += wxy * p
                    hv[2] += wxz * p
                    hv[3] += wxy * p  # yx, stored redundantly by the baseline
                    hv[4] += wyy * p
                    hv[5] += wyz * p
                    hv[6] += wxz * p  # zx
                    hv[7] += wyz * p  # zy
                    hv[8] += wzz * p
