"""Runtime self-verification of the engine family.

A downstream user swapping in a new layout (or suspecting a platform-
specific NumPy issue) can ask the library to prove all engines agree on
their hardware, QMCPACK-unit-test style:

    from repro.core.verify import verify_engines
    report = verify_engines(grid, coefficients)
    assert report.all_passed, report.summary()

Every engine is checked against the slow reference oracle at random and
adversarial (boundary-wrapping) positions, for all three kernels.

The same report machinery serves the kernel-backend conformance harness:
:func:`verify_backend` (a lazy delegate to
:mod:`repro.backends.conformance`) runs one pluggable backend through
the batched engine against the frozen oracle at the backend's declared
tier, so engine-family and backend checks share one summary format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batched import BsplineBatched
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.layout_aos import BsplineAoS
from repro.core.layout_aosoa import BsplineAoSoA
from repro.core.layout_fused import BsplineFused
from repro.core.layout_soa import BsplineSoA
from repro.core.refimpl import reference_v, reference_vgh, reference_vgl

__all__ = ["EngineCheck", "VerifyReport", "verify_backend", "verify_engines"]


@dataclass(frozen=True)
class EngineCheck:
    """Result of checking one (engine, kernel) pair."""

    engine: str
    kernel: str
    max_error: float
    tolerance: float

    @property
    def passed(self) -> bool:
        return self.max_error <= self.tolerance


@dataclass
class VerifyReport:
    """All checks from one :func:`verify_engines` run."""

    checks: list[EngineCheck] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def summary(self) -> str:
        """Human-readable pass/fail table."""
        lines = ["engine      kernel  max_error   tol       status"]
        for c in self.checks:
            lines.append(
                f"{c.engine:10s}  {c.kernel:6s}  {c.max_error:9.2e}  "
                f"{c.tolerance:.1e}  {'PASS' if c.passed else 'FAIL'}"
            )
        return "\n".join(lines)


def _adversarial_positions(grid: Grid3D, rng: np.random.Generator, count: int):
    """Random positions plus the boundary-wrapping corner cases."""
    pos = list(grid.random_positions(count, rng))
    lx, ly, lz = grid.lengths
    eps = 1e-9
    pos.append(np.array([eps, eps, eps]))
    pos.append(np.array([lx - eps, ly - eps, lz - eps]))
    pos.append(np.array([-0.3 * lx, 1.7 * ly, 0.5 * lz]))
    return pos


def verify_engines(
    grid: Grid3D,
    coefficients: np.ndarray,
    n_positions: int = 5,
    tile_size: int | None = None,
    seed: int = 1,
) -> VerifyReport:
    """Cross-check every engine against the reference oracle.

    Parameters
    ----------
    grid, coefficients:
        The table under test.
    n_positions:
        Random positions (three adversarial ones are always added).
    tile_size:
        Nb for the AoSoA engine; defaults to the largest power-of-two
        divisor of N up to N/2 (falls back to N).
    seed:
        Position stream seed.

    Returns
    -------
    VerifyReport
        Tolerances scale with the table dtype: 1e-10 relative headroom
        for float64, 1e-3 for float32.
    """
    n_splines = coefficients.shape[3]
    if tile_size is None:
        tile_size = n_splines
        for nb in (n_splines // 2, n_splines // 4):
            if nb and n_splines % nb == 0:
                tile_size = nb
                break
    rng = np.random.default_rng(seed)
    positions = _adversarial_positions(grid, rng, n_positions)
    scale = float(np.abs(coefficients).max()) or 1.0
    tol = (1e-3 if coefficients.dtype == np.float32 else 1e-9) * scale * 100

    engines = {
        "aos": BsplineAoS(grid, coefficients),
        "soa": BsplineSoA(grid, coefficients),
        "fused": BsplineFused(grid, coefficients),
        "aosoa": BsplineAoSoA(grid, coefficients, tile_size),
    }
    batched = BsplineBatched(grid, coefficients)

    report = VerifyReport()
    references = {
        "v": [reference_v(grid, coefficients, *p) for p in positions],
        "vgl": [reference_vgl(grid, coefficients, *p) for p in positions],
        "vgh": [reference_vgh(grid, coefficients, *p) for p in positions],
    }
    for name, eng in engines.items():
        for kind in (Kind.V, Kind.VGL, Kind.VGH):
            kernel = kind.value
            out = eng.new_output(kind)
            worst = 0.0
            for i, p in enumerate(positions):
                eng.evaluate(kind, p, out)
                c = out.as_canonical()
                if kernel == "v":
                    worst = max(worst, float(np.abs(c["v"] - references["v"][i]).max()))
                elif kernel == "vgl":
                    rv, rg, rl = references["vgl"][i]
                    worst = max(
                        worst,
                        float(np.abs(c["v"] - rv).max()),
                        float(np.abs(c["g"] - rg).max()),
                        float(np.abs(c["l"] - rl).max()),
                    )
                else:
                    rv, rg, rh = references["vgh"][i]
                    worst = max(
                        worst,
                        float(np.abs(c["v"] - rv).max()),
                        float(np.abs(c["g"] - rg).max()),
                        float(np.abs(c["h"] - rh).max()),
                    )
            report.checks.append(EngineCheck(name, kernel, worst, tol))

    # Batched engine: compare its vgh against the references directly.
    pos_arr = np.asarray(positions)
    bout = batched.new_output(Kind.VGH, n=len(positions))
    batched.evaluate_batch(Kind.VGH, pos_arr, bout)
    worst = 0.0
    for i in range(len(positions)):
        rv, rg, rh = references["vgh"][i]
        worst = max(worst, float(np.abs(bout.v[i] - rv).max()))
        worst = max(worst, float(np.abs(bout.g[i] - rg).max()))
    report.checks.append(EngineCheck("batched", "vgh", worst, tol))
    return report


def verify_backend(backend, grid=None, coefficients=None, **kwargs) -> VerifyReport:
    """Differential-conformance check of one kernel backend.

    Lazy delegate to :func:`repro.backends.conformance.verify_backend`
    (imported here so ``repro.core`` keeps no import-time dependency on
    the backends package, which itself builds on :mod:`repro.core`).
    ``backend`` may be a registered name or a
    :class:`repro.backends.KernelBackend` instance.
    """
    from repro.backends import get_backend
    from repro.backends.base import KernelBackend
    from repro.backends.conformance import verify_backend as _verify

    if not isinstance(backend, KernelBackend):
        backend = get_backend(backend)
    return _verify(backend, grid, coefficients, **kwargs)
