"""SoA particle containers with AoS-style element access.

Paper Sec. V-A (last paragraph): "we only modify the code in performance
critical regions to explicitly use the SoA containers representing
abstractions for particle positions, and overload their square bracket
operators to return the particle positions at an index, in the current
AoS format.  This lets us keep the internal data layout in SoA format and
allows the use in both AoS and SoA formats."

:class:`VectorSoA3D` is the Python rendition: positions are stored as
three contiguous component arrays (the performance-critical kernels slice
``.x``/``.y``/``.z`` directly), while ``container[i]`` still hands
application-level code an ``(x, y, z)`` triple, so non-critical call
sites need no changes at all.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VectorSoA3D"]


class VectorSoA3D:
    """N three-vectors stored component-contiguously (SoA).

    Parameters
    ----------
    size:
        Number of vectors.
    dtype:
        Component dtype (float64 default: particle positions need full
        precision even when spline tables are float32).

    Notes
    -----
    Internal storage is a single ``(3, size)`` C-contiguous array, so each
    Cartesian component is one contiguous stream — the layout distance
    tables and Jastrow kernels vectorize over.
    """

    def __init__(self, size: int, dtype: np.dtype | type = np.float64):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._data = np.zeros((3, size), dtype=dtype)

    # -- SoA access (performance-critical paths) --------------------------

    @property
    def data(self) -> np.ndarray:
        """The raw ``(3, size)`` component-major array (view)."""
        return self._data

    @property
    def x(self) -> np.ndarray:
        """Contiguous x components (view)."""
        return self._data[0]

    @property
    def y(self) -> np.ndarray:
        """Contiguous y components (view)."""
        return self._data[1]

    @property
    def z(self) -> np.ndarray:
        """Contiguous z components (view)."""
        return self._data[2]

    # -- AoS-style access (application-level code) -------------------------

    def __len__(self) -> int:
        return self._data.shape[1]

    def __getitem__(self, i: int) -> np.ndarray:
        """Position ``i`` as an ``(x, y, z)`` triple — the AoS facade.

        Returns a fresh ``(3,)`` array (a gather, not a view: the three
        components are not adjacent in memory, which is exactly the
        trade the SoA layout makes).
        """
        return self._data[:, i].copy()

    def __setitem__(self, i: int, value) -> None:
        """Assign position ``i`` from any length-3 sequence."""
        self._data[:, i] = value

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_aos(cls, positions: np.ndarray, dtype=np.float64) -> "VectorSoA3D":
        """Build from an ``(n, 3)`` AoS array (the conventional R[N][3])."""
        positions = np.asarray(positions)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"expected (n, 3), got {positions.shape}")
        out = cls(positions.shape[0], dtype)
        out._data[...] = positions.T
        return out

    def to_aos(self) -> np.ndarray:
        """Copy out as an ``(n, 3)`` AoS array."""
        return np.ascontiguousarray(self._data.T)

    def copy(self) -> "VectorSoA3D":
        """Deep copy."""
        out = VectorSoA3D(len(self), self._data.dtype)
        out._data[...] = self._data
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorSoA3D(size={len(self)}, dtype={self._data.dtype})"
