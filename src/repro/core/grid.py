"""Uniform periodic 3D grids for tricubic B-spline interpolation.

A :class:`Grid3D` carries the grid dimensions ``(nx, ny, nz)`` (paper's
``Ng``), the physical box lengths, and the index arithmetic every kernel
needs at each random position: the lower-bound grid index
``i = floor(x / delta)`` and the fractional remainder ``t = x/delta - i``
(paper Sec. III, below Eq. 5).

The paper keeps the grid fixed at 48x48x48 (or 48x48x60 for the CORAL
benchmark) while scaling the number of splines N; :class:`Grid3D` is
deliberately independent of N so one grid can serve coefficient tables of
any width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Grid3D"]


@dataclass(frozen=True)
class Grid3D:
    """Uniform periodic grid over an orthorhombic box.

    Parameters
    ----------
    nx, ny, nz:
        Number of grid intervals in each Cartesian direction (paper's
        ``Ng = (nx, ny, nz)``).  Periodic: grid point ``nx`` coincides
        with point 0.
    lengths:
        Physical box edge lengths ``(Lx, Ly, Lz)``.  Defaults to the unit
        box; the kernels only ever see fractional coordinates so the
        physical scale matters only for derivative prefactors.
    """

    nx: int
    ny: int
    nz: int
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0)
    #: Grid spacings (Lx/nx, Ly/ny, Lz/nz); derived, do not pass.
    deltas: tuple[float, float, float] = field(init=False)
    #: Inverse spacings, the ``delta^-1`` of the paper.
    inv_deltas: tuple[float, float, float] = field(init=False)

    def __post_init__(self) -> None:
        for name, n in (("nx", self.nx), ("ny", self.ny), ("nz", self.nz)):
            if n < 4:
                raise ValueError(
                    f"{name}={n}: tricubic interpolation needs >= 4 points "
                    "per periodic dimension"
                )
        lx, ly, lz = self.lengths
        if min(lx, ly, lz) <= 0.0:
            raise ValueError(f"box lengths must be positive, got {self.lengths}")
        object.__setattr__(
            self, "deltas", (lx / self.nx, ly / self.ny, lz / self.nz)
        )
        object.__setattr__(
            self, "inv_deltas", (self.nx / lx, self.ny / ly, self.nz / lz)
        )

    @property
    def shape(self) -> tuple[int, int, int]:
        """Grid dimensions as a tuple ``(nx, ny, nz)``."""
        return (self.nx, self.ny, self.nz)

    @property
    def padded_shape(self) -> tuple[int, int, int]:
        """Grid dimensions of a ghost-padded coefficient table.

        :func:`repro.core.coeffs.pad_table_3d` adds a 3-point periodic
        halo per axis (one layer before, two after), so a padded table
        over this grid is ``(nx+3, ny+3, nz+3, N)``.  The two shapes can
        never collide, which lets the batched engine accept either.
        """
        return (self.nx + 3, self.ny + 3, self.nz + 3)

    @property
    def npoints(self) -> int:
        """Total number of grid points ``nx*ny*nz`` (paper's ``Ng`` as a count)."""
        return self.nx * self.ny * self.nz

    def locate(self, x: float, y: float, z: float) -> tuple[int, int, int, float, float, float]:
        """Lower-bound indices and fractional parts for one position.

        Positions are wrapped periodically into the box first, so any real
        coordinate is valid input (QMC walkers drift outside the cell all
        the time).

        Returns
        -------
        (i0, j0, k0, tx, ty, tz):
            Integer lower-bound indices in ``[0, n)`` and fractional
            coordinates in ``[0, 1)`` per dimension.
        """
        ux = x * self.inv_deltas[0] % self.nx
        uy = y * self.inv_deltas[1] % self.ny
        uz = z * self.inv_deltas[2] % self.nz
        # Python's % can round a tiny negative operand up to exactly n
        # (e.g. -1e-16 % 5 == 5.0); snap that back to the origin so both
        # the index and the fraction stay in range.
        if ux >= self.nx:
            ux = 0.0
        if uy >= self.ny:
            uy = 0.0
        if uz >= self.nz:
            uz = 0.0
        i0 = int(ux)
        j0 = int(uy)
        k0 = int(uz)
        return i0, j0, k0, ux - i0, uy - j0, uz - k0

    def locate_batch(self, pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate` for an ``(n, 3)`` array of positions.

        Returns
        -------
        (idx, frac):
            ``idx`` is ``(n, 3)`` int64 lower-bound indices, ``frac`` is
            ``(n, 3)`` float64 fractional coordinates.
        """
        pos = np.asarray(pos, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"expected (n, 3) positions, got shape {pos.shape}")
        inv = np.asarray(self.inv_deltas)
        n = np.asarray(self.shape, dtype=np.float64)
        u = (pos * inv) % n
        # Same rounding guard as the scalar path, vectorized: % can land
        # exactly on n for tiny negative inputs.
        u[u >= n] = 0.0
        idx = u.astype(np.int64)
        return idx, u - idx

    def stencil_indices(self, i0: int, axis: int) -> np.ndarray:
        """The four periodic grid indices of the interpolation stencil.

        Paper Eq. 5 sums ``i' = i-1 .. i+2``; with ``i0`` the lower bound
        returned by :meth:`locate` the stencil touches
        ``(i0-1, i0, i0+1, i0+2) mod n``.

        Parameters
        ----------
        i0:
            Lower-bound index from :meth:`locate`.
        axis:
            0, 1 or 2 selecting nx/ny/nz for the periodic wrap.
        """
        n = self.shape[axis]
        return (np.arange(i0 - 1, i0 + 3)) % n

    def random_positions(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random positions in the box, shape ``(count, 3)``.

        Mirrors miniQMC's ``generateRandomPos`` (paper Fig 3, L18-19): the
        kernels are exercised at uncorrelated random points to mimic QMC's
        random particle moves.
        """
        lengths = np.asarray(self.lengths)
        return rng.random((count, 3)) * lengths

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Grid3D({self.nx}x{self.ny}x{self.nz}, "
            f"lengths={self.lengths})"
        )
