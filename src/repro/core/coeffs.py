"""Construction of the 4D B-spline coefficient table ``P[nx][ny][nz][N]``.

The interpolation tables {p} of paper Eq. (6) are computed once per
simulation and stay read-only afterwards ("The coefficients {p} are the
interpolation tables for each orbital and remain constant throughout the
simulations", Sec. III).  QMCPACK reads them from a DFT calculation; this
reproduction generates samples from synthetic orbitals
(:mod:`repro.lattice.orbitals`) and solves the periodic interpolation
problem exactly.

For a periodic uniform cubic B-spline that *interpolates* samples ``f_j``
at the grid points, the coefficients solve the cyclic tridiagonal system

    (p[j-1] + 4 p[j] + p[j+1]) / 6 = f[j]        (indices mod n)

per dimension, because at a grid point the basis weights are exactly
(1/6, 4/6, 1/6).  The system matrix is circulant, so we solve it by FFT:
its eigenvalues are ``lambda_k = (4 + 2 cos(2 pi k / n)) / 6`` and the
solve is a pointwise division in Fourier space — exact to rounding, O(n
log n), and trivially applied dimension by dimension for the 3D tensor
product.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "solve_coefficients_1d",
    "solve_coefficients_3d",
    "interpolation_matrix_eigenvalues",
    "pad_spline_count",
    "pad_table_3d",
]

#: Ghost layers added by :func:`pad_table_3d` before/after each grid axis.
#: The tricubic stencil spans ``i0-1 .. i0+2`` around the lower-bound index
#: ``i0 in [0, n)``, so one wrapped row before and two after make every
#: stencil a contiguous slice of the padded table.
HALO_BEFORE = 1
HALO_AFTER = 2


def interpolation_matrix_eigenvalues(n: int) -> np.ndarray:
    """Eigenvalues of the periodic cubic-B-spline interpolation matrix.

    The circulant matrix with first row ``[4/6, 1/6, 0, ..., 0, 1/6]`` has
    eigenvalues ``(4 + 2 cos(2 pi k / n)) / 6`` for ``k = 0..n-1``.  All are
    >= 1/3 > 0, so the periodic interpolation problem is always well posed.

    Parameters
    ----------
    n:
        Number of periodic grid points (>= 4).
    """
    if n < 4:
        raise ValueError(f"need >= 4 periodic points, got {n}")
    k = np.arange(n)
    return (4.0 + 2.0 * np.cos(2.0 * np.pi * k / n)) / 6.0


def solve_coefficients_1d(samples: np.ndarray, axis: int = 0) -> np.ndarray:
    """Solve the periodic interpolation problem along one axis.

    Parameters
    ----------
    samples:
        Real array of function values at the grid points.  Any shape; the
        solve runs along ``axis`` and broadcasts over the rest.
    axis:
        Axis holding the periodic grid dimension.

    Returns
    -------
    numpy.ndarray
        Coefficient array of the same shape and float64 dtype such that
        the cubic B-spline through these coefficients reproduces
        ``samples`` at every grid point.
    """
    samples = np.asarray(samples, dtype=np.float64)
    n = samples.shape[axis]
    lam = interpolation_matrix_eigenvalues(n)
    # rfft keeps everything real-typed; eigenvalues are symmetric so the
    # first n//2+1 of them match the rfft bins exactly.
    spec = np.fft.rfft(samples, axis=axis)
    shape = [1] * samples.ndim
    shape[axis] = spec.shape[axis]
    spec /= lam[: spec.shape[axis]].reshape(shape)
    return np.fft.irfft(spec, n=n, axis=axis)


def solve_coefficients_3d(
    samples: np.ndarray, dtype: np.dtype | type = np.float32
) -> np.ndarray:
    """Build the 4D coefficient table from orbital samples on the grid.

    Parameters
    ----------
    samples:
        ``(nx, ny, nz, N)`` array of orbital values: ``samples[i, j, k, n]``
        is orbital ``n`` evaluated at grid point ``(i, j, k)``.  A 3D array
        is accepted for a single orbital and is reshaped to ``N = 1``.
    dtype:
        Storage dtype of the returned table.  The paper computes in single
        precision ("All the computations in miniQMC are performed in
        single precision", Sec. IV); the solve itself always runs in
        float64 and only the final table is narrowed.

    Returns
    -------
    numpy.ndarray
        C-contiguous ``(nx, ny, nz, N)`` coefficient table ``P`` with the
        spline index innermost — the layout both the paper's einspline
        baseline and every kernel in :mod:`repro.core` assume (Fig. 5).
    """
    samples = np.asarray(samples)
    if samples.ndim == 3:
        samples = samples[..., np.newaxis]
    if samples.ndim != 4:
        raise ValueError(
            f"expected (nx, ny, nz, N) samples, got shape {samples.shape}"
        )
    coeffs = solve_coefficients_1d(samples, axis=0)
    coeffs = solve_coefficients_1d(coeffs, axis=1)
    coeffs = solve_coefficients_1d(coeffs, axis=2)
    return np.ascontiguousarray(coeffs, dtype=dtype)


def pad_table_3d(coefficients: np.ndarray) -> np.ndarray:
    """Ghost-pad a coefficient table with a 3-point periodic halo per axis.

    Returns a C-contiguous ``(nx+3, ny+3, nz+3, N)`` copy whose ghost
    layers replicate the periodic wrap: one layer before each grid axis
    (row ``n-1``) and two after (rows ``0`` and ``1``).  The 4x4x4
    tricubic stencil around a lower-bound index ``i0 in [0, n)`` — which
    spans unpadded rows ``i0-1 .. i0+2`` with modulo wrap — then maps to
    the *contiguous* padded rows ``i0 .. i0+3``, so the batched gather
    needs no modulo arithmetic and no broadcast triple-index fancy
    indexing (the strided-gather pathology the paper's Opt A/Opt B
    remove from the single-position engines).

    Ghost values are exact bit-copies of the wrapped rows, so any
    evaluation against the padded table is bitwise identical to the
    modulo-wrap path.  Build the padded table **once** (it is read-only
    afterwards, like ``P`` itself) and share it across processes through
    :class:`repro.parallel.SharedTable`; :class:`repro.core.BsplineBatched`
    accepts either the raw or the padded shape.

    Parameters
    ----------
    coefficients:
        ``(nx, ny, nz, N)`` coefficient table (any dtype).
    """
    coefficients = np.asarray(coefficients)
    if coefficients.ndim != 4:
        raise ValueError(
            f"expected (nx, ny, nz, N) table, got shape {coefficients.shape}"
        )
    halo = (HALO_BEFORE, HALO_AFTER)
    return np.pad(coefficients, (halo, halo, halo, (0, 0)), mode="wrap")


def pad_spline_count(n_splines: int, lanes: int = 16) -> int:
    """Round the spline count up to a SIMD-friendly multiple.

    The paper pads the innermost dimension of ``P`` so every
    ``P[i][j][k]`` row starts on a 512-bit cache-line boundary (Sec. IV).
    With 4-byte floats a 512-bit line holds 16 values, hence the default.

    Parameters
    ----------
    n_splines:
        Requested number of orbitals N.
    lanes:
        SIMD lane count to pad to (16 for AVX-512 single precision).
    """
    if n_splines <= 0:
        raise ValueError(f"spline count must be positive, got {n_splines}")
    if lanes <= 0:
        raise ValueError(f"lane count must be positive, got {lanes}")
    return ((n_splines + lanes - 1) // lanes) * lanes
