"""The unified engine protocol: one evaluation spelling for every layout.

:class:`Engine` is the structural type drivers program against —
``evaluate(kind, pos, out)`` / ``evaluate_batch(kind, positions, out)`` /
``new_output(kind, n=1)`` — so nothing downstream special-cases the
per-layout method names (``v``/``vgl``/``vgh`` vs ``v_batch``/...).
Those historical names remain the implementation and stay public as thin
aliases; the protocol methods add only kind dispatch.

:class:`SinglePositionEngineMixin` adapts the one-position kernel
signature shared by the AoS/SoA/AoSoA/fused layouts.  ``BsplineBatched``
implements the protocol directly over its ``*_batch`` kernels.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from .kinds import Kind

__all__ = ["Engine", "SinglePositionEngineMixin"]


@runtime_checkable
class Engine(Protocol):
    """Structural protocol implemented by every orbital-evaluation engine."""

    n_splines: int

    def new_output(self, kind=Kind.VGH, n: int = 1):
        """Allocate an output buffer for ``n`` positions of ``kind``."""
        ...

    def evaluate(self, kind, pos, out):
        """Evaluate one position ``pos`` (length-3) into ``out``."""
        ...

    def evaluate_batch(self, kind, positions, out):
        """Evaluate ``(n, 3)`` positions into ``out``."""
        ...


class SinglePositionEngineMixin:
    """Protocol adapter for engines whose kernels take one ``(x, y, z)``.

    ``evaluate_batch`` keeps the kernel-driver semantics of the existing
    single-position engines: positions are evaluated in order into the
    same one-walker buffer, which afterwards holds the last position's
    result.  Use ``BsplineBatched`` when every position's output must be
    retained.
    """

    def evaluate(self, kind, pos, out):
        kind = Kind.coerce(kind)
        x, y, z = np.asarray(pos, dtype=np.float64).reshape(3)
        getattr(self, kind.value)(float(x), float(y), float(z), out)
        return out

    def evaluate_batch(self, kind, positions, out):
        kind = Kind.coerce(kind)
        kernel = getattr(self, kind.value)
        for x, y, z in np.asarray(positions, dtype=np.float64).reshape(-1, 3):
            kernel(float(x), float(y), float(z), out)
        return out

    def _coerce_new_output(self, kind, n: int) -> Kind:
        """Shared argument validation for single-position ``new_output``."""
        # stacklevel 4: warn at the caller of new_output, two frames up.
        kind = Kind.coerce(kind, stacklevel=4)
        if n != 1:
            raise ValueError(
                f"{type(self).__name__} allocates one-walker buffers "
                f"(n=1); use BsplineBatched for n={n} positions"
            )
        return kind
