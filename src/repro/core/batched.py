"""Batched multi-position B-spline evaluation (beyond-paper extension).

The paper evaluates one position at a time because QMC's particle-by-
particle moves arrive serially *within* a walker — but across walkers
(and in later QMCPACK's "crowd" drivers, across the pseudopotential
quadrature points of one walker) many positions are available at once.
Batching amortizes per-call overhead and turns the evaluation into a few
large tensor contractions; it is the evolution of this paper's work that
QMCPACK eventually shipped as multi-walker APIs.

The memory path applies the paper's Opt A/Opt B ideas to the batch axis:

* **Ghost-padded table.**  The coefficient table is extended with a
  3-point periodic halo per grid axis (:func:`repro.core.coeffs.pad_table_3d`),
  so the 4x4x4 stencil needs no modulo arithmetic and no broadcast
  triple-index gather — one flat fancy-index against a precomputed
  64-entry offset cube pulls each position's neighbourhood.  The
  constructor accepts either the raw ``(nx, ny, nz, N)`` table (padded
  internally, once) or a pre-padded ``(nx+3, ny+3, nz+3, N)`` one —
  the zero-copy path for tables attached through
  :class:`repro.parallel.SharedTable`.
* **Cache-sized chunks and spline tiles.**  Positions stream through
  ``chunk``-sized gathers and the contraction cores walk the spline
  axis in ``tile``-wide views (the paper's Nb), both picked by the
  cache-aware auto-tuner (:mod:`repro.tune.planner`) unless overridden via
  ``chunk_size``/``tile_size``.  Ghost values are exact copies and the
  z->y->x einsum order is untouched, so results are **bitwise
  identical** to the unpadded, untiled PR4 path
  (:mod:`repro.core.batched_reference`) for every (chunk, tile).

Two output-correctness contracts:

* **Stream validity.**  Each kernel records which output streams it
  wrote in :attr:`BatchedOutput.valid` and poisons (fills with NaN) any
  stream a *previous* kernel call left behind that this call does not
  refresh — reusing one output buffer across ``vgh_batch`` →
  ``vgl_batch`` → ``v_batch`` can therefore never silently serve stale
  numbers.  Poisoning happens exactly **once per kernel call**, before
  the chunk loop — a chunked call fills a stale stream with NaN a
  single time, never per chunk, and the streams it does write are only
  ever written (per-chunk, disjoint slices), never re-poisoned.
* **Chunking.**  Every position's contraction is independent, so any
  chunk size is bitwise-identical to the unchunked path.  The legacy
  ``max_batch_bytes`` cap keeps its exact semantics: ``chunk =
  max_batch_bytes // (64 * N * itemsize)`` positions per gather.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.basis import bspline_weights_batch
from repro.core.coeffs import pad_table_3d
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.tune.planner import TilePlan, plan_tiles
from repro.core.walker import HESS_COMPONENTS
from repro.obs import OBS

__all__ = ["BatchedOutput", "BsplineBatched"]

#: Output streams written by each batched kernel.
_KERNEL_STREAMS = {
    "v": ("v",),
    "vgl": ("v", "g", "l"),
    "vgh": ("v", "g", "l", "h"),
}


class BatchedOutput:
    """Outputs for a batch of ``ns`` positions over ``N`` splines.

    Attributes
    ----------
    v:
        ``(ns, N)`` values.
    g:
        ``(ns, 3, N)`` gradients.
    l:
        ``(ns, N)`` Laplacians.
    h:
        ``(ns, 6, N)`` symmetric Hessian components (xx, xy, xz, yy,
        yz, zz).
    valid:
        Frozen set naming the streams written by the most recent kernel
        call (``{"v"}`` after ``v_batch``, ``{"v", "g", "l"}`` after
        ``vgl_batch``, all four after ``vgh_batch``; empty on a fresh
        buffer).  Streams that fall *out* of this set on reuse are
        filled with NaN, so reading one is loud rather than silently
        stale.

    Notes
    -----
    The default dtype is ``float64`` — the dtype NumPy itself defaults
    to — so a directly-constructed output never silently downcasts a
    double-precision table.  :meth:`BsplineBatched.new_output` always
    passes the engine's table dtype and is the preferred constructor.
    """

    def __init__(self, n_positions: int, n_splines: int, dtype=np.float64):
        self.n_positions = int(n_positions)
        self.n_splines = int(n_splines)
        self.v = np.zeros((n_positions, n_splines), dtype=dtype)
        self.g = np.zeros((n_positions, 3, n_splines), dtype=dtype)
        self.l = np.zeros((n_positions, n_splines), dtype=dtype)
        self.h = np.zeros((n_positions, 6, n_splines), dtype=dtype)
        self.valid: frozenset[str] = frozenset()

    @classmethod
    def from_views(
        cls,
        v: np.ndarray,
        g: np.ndarray,
        l: np.ndarray,
        h: np.ndarray,
    ) -> "BatchedOutput":
        """An output whose streams alias caller-owned arrays.

        The shared-memory fan-out (:mod:`repro.parallel.orbital`) hands
        each worker views into a :class:`~repro.parallel.orbital.
        SharedOutputRing` slot; the kernels then write their orbital
        block straight into shared memory — no result pickling.  Shapes
        must agree on ``(ns, N)`` / ``(ns, 3, N)`` / ``(ns, N)`` /
        ``(ns, 6, N)``.  ``valid`` starts empty, exactly like a fresh
        buffer, so the stale-stream poisoning contract keeps holding
        per slot reuse.
        """
        ns, n = v.shape
        if g.shape != (ns, 3, n) or l.shape != (ns, n) or h.shape != (ns, 6, n):
            raise ValueError(
                f"stream shapes disagree: v {v.shape}, g {g.shape}, "
                f"l {l.shape}, h {h.shape}"
            )
        out = cls.__new__(cls)
        out.n_positions = int(ns)
        out.n_splines = int(n)
        out.v, out.g, out.l, out.h = v, g, l, h
        out.valid = frozenset()
        return out

    def as_canonical(self, i: int | None = None) -> dict[str, np.ndarray]:
        """Float64 views in the canonical layout the walker buffers use.

        With ``i`` given, returns the single-position dict produced by
        ``WalkerSoA.as_canonical`` for position ``i`` — ``v: (N,)``,
        ``g: (3, N)``, ``l: (N,)``, ``h: (3, 3, N)`` — so conformance
        tests compare batched against single-position outputs without
        ad-hoc slicing.  Without ``i``, the same dict with a leading
        batch axis on every stream.

        Streams the last kernel call did not write (see :attr:`valid`)
        come back NaN-poisoned, exactly as stored.
        """
        v = np.asarray(self.v, dtype=np.float64)
        g = np.asarray(self.g, dtype=np.float64)
        lap = np.asarray(self.l, dtype=np.float64)
        h6 = np.asarray(self.h, dtype=np.float64)
        hfull = np.empty(
            (self.n_positions, 3, 3, self.n_splines), dtype=np.float64
        )
        axes = {"x": 0, "y": 1, "z": 2}
        for k, name in enumerate(HESS_COMPONENTS):
            a, b = axes[name[0]], axes[name[1]]
            hfull[:, a, b] = h6[:, k]
            hfull[:, b, a] = h6[:, k]
        full = {"v": v, "g": g, "l": lap, "h": hfull}
        if i is None:
            return full
        return {key: val[i] for key, val in full.items()}


class BsplineBatched:
    """Evaluate all three kernels for many positions in one call.

    Parameters
    ----------
    grid:
        The interpolation grid.
    coefficients:
        ``(nx, ny, nz, N)`` table, shared and read-only — ghost-padded
        internally (one copy at construction) — **or** an already
        padded ``(nx+3, ny+3, nz+3, N)`` table from
        :func:`repro.core.coeffs.pad_table_3d`, adopted zero-copy (the
        shared-memory path: the parent pads once, workers attach).
    max_batch_bytes:
        Legacy cap on the gather temporary of one kernel call: positions
        stream through chunks of ``max_batch_bytes // (64 * N *
        itemsize)`` (>= 1).  Mutually exclusive with ``chunk_size``.
    chunk_size:
        Positions per gather pass.  ``None`` lets the cache-aware
        auto-tuner (:mod:`repro.tune.planner`) pick.
    tile_size:
        Splines per contraction-core pass (the paper's Nb), applied as
        views of the chunk's gathered blocks.  ``None`` auto-tunes
        (full ``N`` unless the table is very wide); values above ``N``
        are clamped.
    backend:
        Which compiled implementation serves the chunk-level cores: a
        registered name (``"numpy"``, ``"numba"``, ``"cc"``), ``"auto"``
        (best available compiled backend, degrading to NumPy with a
        warning), a :class:`repro.backends.KernelBackend` instance
        (used as-is — the conformance harness's hook), or ``None`` —
        the ``REPRO_BACKEND`` environment variable if set, else the
        exact-tier NumPy path.  See :func:`repro.backends.resolve_backend`.
    config:
        A :class:`repro.config.RunConfig` supplying defaults for
        ``chunk_size``/``tile_size``/``backend``; an explicit kwarg
        still wins.  Pass a config resolved via
        :meth:`~repro.config.RunConfig.resolved_for` to get tuned-DB
        blocking; an unresolved config behaves like its raw fields.
    spline_range:
        ``(lo, hi)`` half-open spline-axis window: the engine evaluates
        only orbitals ``lo..hi-1`` and its outputs are ``hi - lo``
        wide.  The window is a **zero-copy column view** of the (full)
        padded table — the whole contiguous table is flat-reshaped
        first and the 2D view column-sliced, so a shared-memory table
        stays shared; the per-chunk fancy-index gather then touches
        only the window's columns.  The Opt C orbital shards
        (:mod:`repro.parallel.orbital`) are built this way, one engine
        per block.  Width-1 windows are refused (the einsum width-1
        dispatch breaks bit-identity; see
        :func:`repro.core.partition.plan_orbital_blocks`).

    Notes
    -----
    The 4x4x4 neighbourhoods of each chunk are gathered with one flat
    fancy-index into the padded table (``(chunk, 64, N)`` reshaped to
    ``(chunk, 4, 4, 4, N)``), then contracted axis by axis with the
    per-position weight matrices — every (chunk, tile) produces the
    same bits (see the module docstring).  The resolved decision is
    exposed as :attr:`plan` and reported through the obs layer.
    """

    layout = "batched"

    def __init__(
        self,
        grid: Grid3D,
        coefficients: np.ndarray,
        max_batch_bytes: int | None = None,
        chunk_size: int | None = None,
        tile_size: int | None = None,
        backend=None,
        config=None,
        spline_range: tuple[int, int] | None = None,
    ):
        # ``config`` (a repro.config.RunConfig) supplies defaults for the
        # low-level knobs; an explicit kwarg still wins (rung 1 of the
        # documented resolution order).  The kwargs themselves are NOT
        # deprecated here — BsplineBatched is the primitive the resolved
        # config is ultimately spelled in.
        if config is not None:
            if chunk_size is None:
                chunk_size = config.chunk_size
            if tile_size is None:
                tile_size = config.tile_size
            if backend is None:
                backend = config.backend
        if coefficients.ndim != 4:
            raise ValueError(
                f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
            )
        if coefficients.shape[:3] == grid.shape:
            padded = pad_table_3d(coefficients)
            unpadded = coefficients
        elif coefficients.shape[:3] == grid.padded_shape:
            padded = coefficients
            nx, ny, nz = grid.shape
            unpadded = padded[1 : nx + 1, 1 : ny + 1, 1 : nz + 1]
        else:
            raise ValueError(
                f"grid {grid.shape} (padded {grid.padded_shape}) does not "
                f"match table {coefficients.shape[:3]}"
            )
        self.grid = grid
        n_total = coefficients.shape[3]
        if spline_range is None:
            lo, hi = 0, n_total
        else:
            lo, hi = (int(spline_range[0]), int(spline_range[1]))
            if not (0 <= lo < hi <= n_total):
                raise ValueError(
                    f"spline_range {spline_range} outside [0, {n_total})"
                )
            if hi - lo < 2 and n_total > 1:
                raise ValueError(
                    f"spline_range {spline_range} is 1 wide; width-1 "
                    "blocks break the einsum bitwise contract "
                    "(plan via repro.core.partition.plan_orbital_blocks)"
                )
        #: Half-open spline-axis window this engine evaluates.
        self.spline_range = (lo, hi)
        #: The unpadded table view — the engine-protocol ``P`` attribute.
        self.P = unpadded[..., lo:hi] if spline_range is not None else unpadded
        self._padded = padded
        self.n_splines = hi - lo
        self.dtype = coefficients.dtype
        # Flat (nxp*nyp*nzp, N) alias of the padded table plus the 64
        # stencil offsets: lower-bound index i0 maps to padded rows
        # i0..i0+3 (halo of 1 before), so base + cube covers the stencil
        # with plain addition — no modulo.  Reshape the full contiguous
        # table FIRST, then column-slice: a sliced-then-reshaped table
        # would silently copy (the slice is non-contiguous), losing the
        # zero-copy shared-memory property.
        nxp, nyp, nzp = padded.shape[:3]
        self._row_strides = (nyp * nzp, nzp)
        flat = padded.reshape(nxp * nyp * nzp, n_total)
        self._flat = flat[:, lo:hi] if spline_range is not None else flat
        off = np.arange(4, dtype=np.int64)
        self._cube = (
            (off[:, None] * nyp + off[None, :])[:, :, None] * nzp
            + off[None, None, :]
        ).ravel()

        if max_batch_bytes is not None:
            if chunk_size is not None:
                raise ValueError(
                    "pass either max_batch_bytes or chunk_size, not both"
                )
            if max_batch_bytes <= 0:
                raise ValueError(
                    f"max_batch_bytes must be positive, got {max_batch_bytes}"
                )
            per_position = 64 * self.n_splines * self.dtype.itemsize
            chunk = max(1, int(max_batch_bytes) // per_position)
            plan = dataclasses.replace(
                plan_tiles(
                    self.n_splines, self.dtype.itemsize,
                    chunk=chunk, tile=tile_size,
                ),
                source="max_batch_bytes",
            )
        else:
            plan = plan_tiles(
                self.n_splines,
                self.dtype.itemsize,
                chunk=chunk_size,
                tile=tile_size,
            )
        self.max_batch_bytes = max_batch_bytes
        #: The resolved :class:`repro.tune.planner.TilePlan`.
        self.plan: TilePlan = plan
        self._chunk = plan.chunk
        self._tile = plan.tile
        # The satellite fix: kernel methods resolved once per Kind, and
        # a reusable (1, 3) staging row, instead of a fresh allocation
        # plus getattr-string dispatch on every single-position call.
        self._kernels = {
            Kind.V: self.v_batch,
            Kind.VGL: self.vgl_batch,
            Kind.VGH: self.vgh_batch,
        }
        self._pos1 = np.empty((1, 3), dtype=np.float64)
        # Backend dispatch: names/None resolve through the registry
        # (activation runs the conformance gate once per process); an
        # already-constructed KernelBackend instance is used as-is —
        # that is how the conformance harness itself drives a candidate
        # backend without requiring it to be registered first.
        from repro.backends import KernelBackend, resolve_backend

        if not isinstance(backend, KernelBackend):
            backend = resolve_backend(backend)
        #: The active :class:`repro.backends.KernelBackend`.
        self.backend = backend
        self._cores = backend.make_cores(self)
        if OBS.enabled:
            OBS.count("batched_engine_builds_total", backend=backend.name)
            OBS.gauge(
                "batched_chunk_positions", plan.chunk, source=plan.source
            )
            OBS.gauge("batched_tile_splines", plan.tile, source=plan.source)
            OBS.gauge(
                "batched_working_set_bytes",
                plan.working_set_bytes,
                source=plan.source,
            )

    def new_output(
        self, kind: "Kind | str | int" = Kind.VGH, n: int | None = None
    ) -> BatchedOutput:
        """Allocate outputs for a batch of ``n`` positions.

        Preferred spelling is ``new_output(Kind.VGH, n=ns)``.  The
        original positional spelling ``new_output(ns)`` (batch size as
        the single argument) stays as a silent alias.  The buffer always
        carries all four streams; ``kind`` is validated for API parity
        with the single-position engines.
        """
        if isinstance(kind, (int, np.integer)):
            if n is not None:
                raise TypeError(
                    "pass either new_output(n_positions) or "
                    "new_output(kind, n=...), not both"
                )
            n = int(kind)
        else:
            Kind.coerce(kind)
            n = 1 if n is None else int(n)
        if n <= 0:
            raise ValueError(f"n_positions must be positive, got {n}")
        return BatchedOutput(n, self.n_splines, self.dtype)

    # -- unified Engine protocol ---------------------------------------------

    def evaluate(self, kind: "Kind | str", pos, out: BatchedOutput) -> BatchedOutput:
        """Evaluate one position through the batched kernels (batch of 1)."""
        self._pos1[0] = pos
        self._kernels[Kind.coerce(kind)](self._pos1, out)
        return out

    def evaluate_batch(
        self, kind: "Kind | str", positions, out: BatchedOutput
    ) -> BatchedOutput:
        """Evaluate ``(ns, 3)`` positions, retaining every position's result."""
        self._kernels[Kind.coerce(kind)](positions, out)
        return out

    # -- shared plumbing -----------------------------------------------------

    def _check(self, positions: np.ndarray, out: BatchedOutput) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"expected (ns, 3) positions, got {positions.shape}")
        if out.v.shape != (len(positions), self.n_splines):
            raise ValueError(
                f"output holds ({out.n_positions}, {out.n_splines}), "
                f"batch needs ({len(positions)}, {self.n_splines})"
            )
        return positions

    @staticmethod
    def _begin(out: BatchedOutput, written: tuple[str, ...]) -> None:
        """Poison previously-valid streams this kernel will not refresh.

        A reused output whose ``.h`` (say) still holds an earlier
        ``vgh_batch`` result must not let a caller read it after a
        ``vgl_batch`` — the untouched stream is filled with NaN and
        dropped from :attr:`BatchedOutput.valid`.  Fresh (all-zero)
        buffers pay nothing: only streams marked valid are rewritten.

        Called exactly once per kernel call, *before* the chunk loop —
        chunked calls poison a stale stream one single time, not once
        per chunk (the fill count is part of the tested contract).
        """
        for name in out.valid:
            if name not in written:
                getattr(out, name).fill(np.nan)
        out.valid = frozenset()

    def _chunks(self, n_positions: int):
        step = self._chunk if self._chunk is not None else n_positions
        for lo in range(0, n_positions, step):
            yield slice(lo, min(lo + step, n_positions))

    def _tiles(self):
        """Spline-axis slices of width ``tile`` (one full slice if untiled).

        Never yields a width-1 slice: numpy's einsum dispatches a length-1
        axis to a different inner loop whose accumulation order differs by
        an ulp, which would break the bitwise-identity contract.  A tile of
        1 is widened to 2 and a trailing orphan column is absorbed into the
        final tile instead of getting its own.
        """
        n = self.n_splines
        if self._tile >= n:
            yield slice(None)
            return
        t = max(self._tile, 2)
        lo = 0
        while lo < n:
            hi = lo + t
            if n - hi == 1:
                hi = n
            yield slice(lo, min(hi, n))
            lo = hi

    def _locate_weights(self, positions: np.ndarray):
        """Flat stencil base rows + per-axis ``(w, dw, d2w)`` weight triples.

        ``base`` is each position's lower-bound row in the flattened
        padded table (int64, contiguous); a backend reads the 4x4x4
        neighbourhood as rows ``base + a*sy + b*sz .. +3`` with plain
        addition — no modulo wrap.  The weight matrices are ``(ns, 4)``
        contiguous arrays in the table dtype, derivative weights
        pre-scaled by the grid's inverse deltas — the shared front half
        of every backend's chunk kernel.
        """
        idx, frac = self.grid.locate_batch(positions)
        sy, sz = self._row_strides
        base = np.ascontiguousarray(
            idx[:, 0] * sy + idx[:, 1] * sz + idx[:, 2], dtype=np.int64
        )
        weights = []
        for axis in range(3):
            a = bspline_weights_batch(frac[:, axis], 0).astype(self.dtype)
            da = bspline_weights_batch(frac[:, axis], 1).astype(self.dtype)
            d2a = bspline_weights_batch(frac[:, axis], 2).astype(self.dtype)
            inv = self.grid.inv_deltas[axis]
            weights.append((a, da * self.dtype.type(inv), d2a * self.dtype.type(inv * inv)))
        return base, tuple(weights)

    def _gather(self, positions: np.ndarray):
        """Blocks ``(ns, 4, 4, 4, N)`` + per-axis weight triples.

        One flat fancy-index against the ghost-padded table: ``base``
        plus the 64-entry ``_cube`` offset pulls each position's whole
        neighbourhood — no modulo wrap, no broadcast triple-index.
        Ghost rows are exact copies, so the gathered bits equal the
        modulo path's.  (The NumPy cores' front end; compiled backends
        skip the gather temporary and read the stencil in-loop from
        :meth:`_locate_weights`'s base rows.)
        """
        base, weights = self._locate_weights(positions)
        blocks = self._flat[base[:, None] + self._cube[None, :]].reshape(
            len(positions), 4, 4, 4, self.n_splines
        )
        return blocks, weights

    # -- kernels -------------------------------------------------------------

    def _run(self, kern: str, positions: np.ndarray, out: BatchedOutput) -> None:
        """Shared kernel loop: poison once, then stream cache-sized chunks.

        The chunk-level arithmetic is served by the active backend's
        cores (:class:`repro.backends.BackendCores`): ``v`` for the V
        kernel, ``vgh`` for both VGL (``h=None``) and VGH.  A backend
        whose capability record omits the requested kind is refused
        here with an actionable error rather than producing NaNs.
        """
        kind = Kind(kern)
        if kind not in self.backend.capability.kinds:
            from repro.backends import BackendUnavailable

            raise BackendUnavailable(
                f"backend {self.backend.name!r} does not serve kernel "
                f"{kind.value!r}; it declares "
                f"{tuple(k.value for k in self.backend.capability.kinds)}"
            )
        self._begin(out, _KERNEL_STREAMS[kern])
        observe = OBS.enabled
        for sl in self._chunks(len(positions)):
            t0 = time.perf_counter() if observe else 0.0
            if kern == "v":
                self._cores.v(positions[sl], out.v[sl])
            elif kern == "vgl":
                self._cores.vgh(
                    positions[sl], out.v[sl], out.g[sl], out.l[sl], None
                )
            else:
                self._cores.vgh(
                    positions[sl], out.v[sl], out.g[sl], out.l[sl], out.h[sl]
                )
            if observe:
                OBS.observe(
                    "batched_chunk_seconds",
                    time.perf_counter() - t0,
                    kernel=kern,
                    backend=self.backend.name,
                )
        out.valid = frozenset(_KERNEL_STREAMS[kern])

    def v_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``V`` for the whole batch into ``out.v``."""
        self._run("v", self._check(positions, out), out)

    def vgl_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``VGL`` for the whole batch."""
        self._run("vgl", self._check(positions, out), out)

    def vgh_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``VGH`` for the whole batch (fills ``l`` too, for free)."""
        self._run("vgh", self._check(positions, out), out)

    # -- NumPy contraction cores (one chunk; outputs are array views) --------
    # Served to the engine by repro.backends.NumpyBackend; kept on the
    # engine so the exact-tier arithmetic has a single home.

    def _numpy_v_core(self, positions: np.ndarray, v: np.ndarray) -> None:
        blocks, ((ax, _, _), (ay, _, _), (az, _, _)) = self._gather(positions)
        for ts in self._tiles():
            b = blocks[..., ts]
            tz = np.einsum("sabcn,sc->sabn", b, az)
            ty = np.einsum("sabn,sb->san", tz, ay)
            np.einsum("san,sa->sn", ty, ax, out=v[:, ts])

    def _numpy_vgh_core(
        self,
        positions: np.ndarray,
        v: np.ndarray,
        g: np.ndarray,
        l: np.ndarray,
        h: np.ndarray | None,
    ) -> None:
        blocks, ((ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az)) = self._gather(
            positions
        )
        for ts in self._tiles():
            b = blocks[..., ts]
            tz0 = np.einsum("sabcn,sc->sabn", b, az)
            tz1 = np.einsum("sabcn,sc->sabn", b, daz)
            tz2 = np.einsum("sabcn,sc->sabn", b, d2az)
            u00 = np.einsum("sabn,sb->san", tz0, ay)
            u10 = np.einsum("sabn,sb->san", tz0, day)
            u20 = np.einsum("sabn,sb->san", tz0, d2ay)
            u01 = np.einsum("sabn,sb->san", tz1, ay)
            u11 = np.einsum("sabn,sb->san", tz1, day)
            u02 = np.einsum("sabn,sb->san", tz2, ay)
            v[:, ts] = np.einsum("san,sa->sn", u00, ax)
            g[:, 0, ts] = np.einsum("san,sa->sn", u00, dax)
            g[:, 1, ts] = np.einsum("san,sa->sn", u10, ax)
            g[:, 2, ts] = np.einsum("san,sa->sn", u01, ax)
            hxx = np.einsum("san,sa->sn", u00, d2ax)
            hyy = np.einsum("san,sa->sn", u20, ax)
            hzz = np.einsum("san,sa->sn", u02, ax)
            l[:, ts] = hxx + hyy + hzz
            if h is not None:
                h[:, 0, ts] = hxx
                h[:, 1, ts] = np.einsum("san,sa->sn", u10, dax)
                h[:, 2, ts] = np.einsum("san,sa->sn", u01, dax)
                h[:, 3, ts] = hyy
                h[:, 4, ts] = np.einsum("san,sa->sn", u11, ax)
                h[:, 5, ts] = hzz
