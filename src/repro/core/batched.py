"""Batched multi-position B-spline evaluation (beyond-paper extension).

The paper evaluates one position at a time because QMC's particle-by-
particle moves arrive serially *within* a walker — but across walkers
(and in later QMCPACK's "crowd" drivers, across the pseudopotential
quadrature points of one walker) many positions are available at once.
Batching amortizes per-call overhead and turns the evaluation into a few
large tensor contractions; it is the evolution of this paper's work that
QMCPACK eventually shipped as multi-walker APIs.

The batched engine is SoA-layout (batch-major outputs) and validated
against the per-position engines.
"""

from __future__ import annotations

import numpy as np

from repro.core.basis import bspline_weights_batch
from repro.core.grid import Grid3D

__all__ = ["BatchedOutput", "BsplineBatched"]


class BatchedOutput:
    """Outputs for a batch of ``ns`` positions over ``N`` splines.

    Attributes
    ----------
    v:
        ``(ns, N)`` values.
    g:
        ``(ns, 3, N)`` gradients.
    l:
        ``(ns, N)`` Laplacians.
    h:
        ``(ns, 6, N)`` symmetric Hessian components (xx, xy, xz, yy,
        yz, zz).
    """

    def __init__(self, n_positions: int, n_splines: int, dtype=np.float32):
        self.n_positions = int(n_positions)
        self.n_splines = int(n_splines)
        self.v = np.zeros((n_positions, n_splines), dtype=dtype)
        self.g = np.zeros((n_positions, 3, n_splines), dtype=dtype)
        self.l = np.zeros((n_positions, n_splines), dtype=dtype)
        self.h = np.zeros((n_positions, 6, n_splines), dtype=dtype)


class BsplineBatched:
    """Evaluate all three kernels for many positions in one call.

    Parameters
    ----------
    grid:
        The interpolation grid.
    coefficients:
        ``(nx, ny, nz, N)`` table, shared and read-only.

    Notes
    -----
    The 4x4x4 neighbourhoods of the whole batch are gathered into one
    ``(ns, 4, 4, 4, N)`` array (a copy — batching trades memory for
    dispatch), then contracted axis by axis with the per-position weight
    matrices.  Peak temporary memory is ``64 * ns * N`` elements; callers
    with huge batches should chunk.
    """

    layout = "batched"

    def __init__(self, grid: Grid3D, coefficients: np.ndarray):
        if coefficients.ndim != 4:
            raise ValueError(
                f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
            )
        if coefficients.shape[:3] != grid.shape:
            raise ValueError(
                f"grid {grid.shape} does not match table {coefficients.shape[:3]}"
            )
        self.grid = grid
        self.P = coefficients
        self.n_splines = coefficients.shape[3]
        self.dtype = coefficients.dtype

    def new_output(self, n_positions: int) -> BatchedOutput:
        """Allocate outputs for a batch of ``n_positions``."""
        if n_positions <= 0:
            raise ValueError(f"n_positions must be positive, got {n_positions}")
        return BatchedOutput(n_positions, self.n_splines, self.dtype)

    def _gather(self, positions: np.ndarray):
        """Blocks ``(ns, 4, 4, 4, N)`` + per-axis weight triples."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"expected (ns, 3) positions, got {positions.shape}")
        idx, frac = self.grid.locate_batch(positions)
        offsets = np.arange(-1, 3)
        nx, ny, nz = self.grid.shape
        ix = (idx[:, 0:1] + offsets) % nx  # (ns, 4)
        jy = (idx[:, 1:2] + offsets) % ny
        kz = (idx[:, 2:3] + offsets) % nz
        blocks = self.P[
            ix[:, :, None, None], jy[:, None, :, None], kz[:, None, None, :]
        ]  # (ns, 4, 4, 4, N)
        weights = []
        for axis in range(3):
            a = bspline_weights_batch(frac[:, axis], 0).astype(self.dtype)
            da = bspline_weights_batch(frac[:, axis], 1).astype(self.dtype)
            d2a = bspline_weights_batch(frac[:, axis], 2).astype(self.dtype)
            inv = self.grid.inv_deltas[axis]
            weights.append((a, da * self.dtype.type(inv), d2a * self.dtype.type(inv * inv)))
        return blocks, weights

    def v_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``V`` for the whole batch into ``out.v``."""
        blocks, ((ax, _, _), (ay, _, _), (az, _, _)) = self._gather(positions)
        tz = np.einsum("sabcn,sc->sabn", blocks, az)
        ty = np.einsum("sabn,sb->san", tz, ay)
        np.einsum("san,sa->sn", ty, ax, out=out.v)

    def vgl_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``VGL`` for the whole batch."""
        self._vgh_core(positions, out, want_hessian=False)

    def vgh_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``VGH`` for the whole batch (fills ``l`` too, for free)."""
        self._vgh_core(positions, out, want_hessian=True)

    def _vgh_core(
        self, positions: np.ndarray, out: BatchedOutput, want_hessian: bool
    ) -> None:
        blocks, ((ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az)) = self._gather(
            positions
        )
        tz0 = np.einsum("sabcn,sc->sabn", blocks, az)
        tz1 = np.einsum("sabcn,sc->sabn", blocks, daz)
        tz2 = np.einsum("sabcn,sc->sabn", blocks, d2az)
        u00 = np.einsum("sabn,sb->san", tz0, ay)
        u10 = np.einsum("sabn,sb->san", tz0, day)
        u20 = np.einsum("sabn,sb->san", tz0, d2ay)
        u01 = np.einsum("sabn,sb->san", tz1, ay)
        u11 = np.einsum("sabn,sb->san", tz1, day)
        u02 = np.einsum("sabn,sb->san", tz2, ay)
        out.v[...] = np.einsum("san,sa->sn", u00, ax)
        out.g[:, 0] = np.einsum("san,sa->sn", u00, dax)
        out.g[:, 1] = np.einsum("san,sa->sn", u10, ax)
        out.g[:, 2] = np.einsum("san,sa->sn", u01, ax)
        hxx = np.einsum("san,sa->sn", u00, d2ax)
        hyy = np.einsum("san,sa->sn", u20, ax)
        hzz = np.einsum("san,sa->sn", u02, ax)
        out.l[...] = hxx + hyy + hzz
        if want_hessian:
            out.h[:, 0] = hxx
            out.h[:, 1] = np.einsum("san,sa->sn", u10, dax)
            out.h[:, 2] = np.einsum("san,sa->sn", u01, dax)
            out.h[:, 3] = hyy
            out.h[:, 4] = np.einsum("san,sa->sn", u11, ax)
            out.h[:, 5] = hzz
