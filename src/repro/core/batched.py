"""Batched multi-position B-spline evaluation (beyond-paper extension).

The paper evaluates one position at a time because QMC's particle-by-
particle moves arrive serially *within* a walker — but across walkers
(and in later QMCPACK's "crowd" drivers, across the pseudopotential
quadrature points of one walker) many positions are available at once.
Batching amortizes per-call overhead and turns the evaluation into a few
large tensor contractions; it is the evolution of this paper's work that
QMCPACK eventually shipped as multi-walker APIs.

The batched engine is SoA-layout (batch-major outputs) and validated
against the per-position engines.  Two output-correctness contracts:

* **Stream validity.**  Each kernel records which output streams it
  wrote in :attr:`BatchedOutput.valid` and poisons (fills with NaN) any
  stream a *previous* kernel call left behind that this call does not
  refresh — reusing one output buffer across ``vgh_batch`` →
  ``vgl_batch`` → ``v_batch`` can therefore never silently serve stale
  numbers.
* **Chunking.**  Peak temporary memory of an unchunked call is
  ``64 * ns * N`` elements; construct the engine with
  ``max_batch_bytes`` to stream arbitrarily large position batches
  through bounded temporaries (bitwise-identical results — each
  position's contraction is independent).
"""

from __future__ import annotations

import numpy as np

from repro.core.basis import bspline_weights_batch
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.walker import HESS_COMPONENTS

__all__ = ["BatchedOutput", "BsplineBatched"]

#: Output streams written by each batched kernel.
_KERNEL_STREAMS = {
    "v": ("v",),
    "vgl": ("v", "g", "l"),
    "vgh": ("v", "g", "l", "h"),
}


class BatchedOutput:
    """Outputs for a batch of ``ns`` positions over ``N`` splines.

    Attributes
    ----------
    v:
        ``(ns, N)`` values.
    g:
        ``(ns, 3, N)`` gradients.
    l:
        ``(ns, N)`` Laplacians.
    h:
        ``(ns, 6, N)`` symmetric Hessian components (xx, xy, xz, yy,
        yz, zz).
    valid:
        Frozen set naming the streams written by the most recent kernel
        call (``{"v"}`` after ``v_batch``, ``{"v", "g", "l"}`` after
        ``vgl_batch``, all four after ``vgh_batch``; empty on a fresh
        buffer).  Streams that fall *out* of this set on reuse are
        filled with NaN, so reading one is loud rather than silently
        stale.

    Notes
    -----
    The default dtype is ``float64`` — the dtype NumPy itself defaults
    to — so a directly-constructed output never silently downcasts a
    double-precision table.  :meth:`BsplineBatched.new_output` always
    passes the engine's table dtype and is the preferred constructor.
    """

    def __init__(self, n_positions: int, n_splines: int, dtype=np.float64):
        self.n_positions = int(n_positions)
        self.n_splines = int(n_splines)
        self.v = np.zeros((n_positions, n_splines), dtype=dtype)
        self.g = np.zeros((n_positions, 3, n_splines), dtype=dtype)
        self.l = np.zeros((n_positions, n_splines), dtype=dtype)
        self.h = np.zeros((n_positions, 6, n_splines), dtype=dtype)
        self.valid: frozenset[str] = frozenset()

    def as_canonical(self, i: int | None = None) -> dict[str, np.ndarray]:
        """Float64 views in the canonical layout the walker buffers use.

        With ``i`` given, returns the single-position dict produced by
        ``WalkerSoA.as_canonical`` for position ``i`` — ``v: (N,)``,
        ``g: (3, N)``, ``l: (N,)``, ``h: (3, 3, N)`` — so conformance
        tests compare batched against single-position outputs without
        ad-hoc slicing.  Without ``i``, the same dict with a leading
        batch axis on every stream.

        Streams the last kernel call did not write (see :attr:`valid`)
        come back NaN-poisoned, exactly as stored.
        """
        v = np.asarray(self.v, dtype=np.float64)
        g = np.asarray(self.g, dtype=np.float64)
        lap = np.asarray(self.l, dtype=np.float64)
        h6 = np.asarray(self.h, dtype=np.float64)
        hfull = np.empty(
            (self.n_positions, 3, 3, self.n_splines), dtype=np.float64
        )
        axes = {"x": 0, "y": 1, "z": 2}
        for k, name in enumerate(HESS_COMPONENTS):
            a, b = axes[name[0]], axes[name[1]]
            hfull[:, a, b] = h6[:, k]
            hfull[:, b, a] = h6[:, k]
        full = {"v": v, "g": g, "l": lap, "h": hfull}
        if i is None:
            return full
        return {key: val[i] for key, val in full.items()}


class BsplineBatched:
    """Evaluate all three kernels for many positions in one call.

    Parameters
    ----------
    grid:
        The interpolation grid.
    coefficients:
        ``(nx, ny, nz, N)`` table, shared and read-only.
    max_batch_bytes:
        Optional cap on the peak temporary allocation of one kernel
        call.  The 4x4x4 neighbourhood gather is the dominant temporary
        (``64 * ns * N`` elements); with a cap set, positions stream
        through chunks small enough to respect it instead of being
        gathered all at once.  Results are bitwise-identical to the
        unchunked path.  ``None`` (default) never chunks.

    Notes
    -----
    The 4x4x4 neighbourhoods of a (chunk of a) batch are gathered into
    one ``(ns, 4, 4, 4, N)`` array (a copy — batching trades memory for
    dispatch), then contracted axis by axis with the per-position weight
    matrices.
    """

    layout = "batched"

    def __init__(
        self,
        grid: Grid3D,
        coefficients: np.ndarray,
        max_batch_bytes: int | None = None,
    ):
        if coefficients.ndim != 4:
            raise ValueError(
                f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
            )
        if coefficients.shape[:3] != grid.shape:
            raise ValueError(
                f"grid {grid.shape} does not match table {coefficients.shape[:3]}"
            )
        self.grid = grid
        self.P = coefficients
        self.n_splines = coefficients.shape[3]
        self.dtype = coefficients.dtype
        if max_batch_bytes is not None:
            if max_batch_bytes <= 0:
                raise ValueError(
                    f"max_batch_bytes must be positive, got {max_batch_bytes}"
                )
            per_position = 64 * self.n_splines * self.dtype.itemsize
            self._chunk = max(1, int(max_batch_bytes) // per_position)
        else:
            self._chunk = None
        self.max_batch_bytes = max_batch_bytes

    def new_output(
        self, kind: "Kind | str | int" = Kind.VGH, n: int | None = None
    ) -> BatchedOutput:
        """Allocate outputs for a batch of ``n`` positions.

        Preferred spelling is ``new_output(Kind.VGH, n=ns)``.  The
        original positional spelling ``new_output(ns)`` (batch size as
        the single argument) stays as a silent alias.  The buffer always
        carries all four streams; ``kind`` is validated for API parity
        with the single-position engines.
        """
        if isinstance(kind, (int, np.integer)):
            if n is not None:
                raise TypeError(
                    "pass either new_output(n_positions) or "
                    "new_output(kind, n=...), not both"
                )
            n = int(kind)
        else:
            Kind.coerce(kind)
            n = 1 if n is None else int(n)
        if n <= 0:
            raise ValueError(f"n_positions must be positive, got {n}")
        return BatchedOutput(n, self.n_splines, self.dtype)

    # -- unified Engine protocol ---------------------------------------------

    def evaluate(self, kind: "Kind | str", pos, out: BatchedOutput) -> BatchedOutput:
        """Evaluate one position through the batched kernels (batch of 1)."""
        kind = Kind.coerce(kind)
        positions = np.asarray(pos, dtype=np.float64).reshape(1, 3)
        getattr(self, f"{kind.value}_batch")(positions, out)
        return out

    def evaluate_batch(
        self, kind: "Kind | str", positions, out: BatchedOutput
    ) -> BatchedOutput:
        """Evaluate ``(ns, 3)`` positions, retaining every position's result."""
        kind = Kind.coerce(kind)
        getattr(self, f"{kind.value}_batch")(positions, out)
        return out

    # -- shared plumbing -----------------------------------------------------

    def _check(self, positions: np.ndarray, out: BatchedOutput) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"expected (ns, 3) positions, got {positions.shape}")
        if out.v.shape != (len(positions), self.n_splines):
            raise ValueError(
                f"output holds ({out.n_positions}, {out.n_splines}), "
                f"batch needs ({len(positions)}, {self.n_splines})"
            )
        return positions

    @staticmethod
    def _begin(out: BatchedOutput, written: tuple[str, ...]) -> None:
        """Poison previously-valid streams this kernel will not refresh.

        A reused output whose ``.h`` (say) still holds an earlier
        ``vgh_batch`` result must not let a caller read it after a
        ``vgl_batch`` — the untouched stream is filled with NaN and
        dropped from :attr:`BatchedOutput.valid`.  Fresh (all-zero)
        buffers pay nothing: only streams marked valid are rewritten.
        """
        for name in out.valid:
            if name not in written:
                getattr(out, name).fill(np.nan)
        out.valid = frozenset()

    def _chunks(self, n_positions: int):
        step = self._chunk if self._chunk is not None else n_positions
        for lo in range(0, n_positions, step):
            yield slice(lo, min(lo + step, n_positions))

    def _gather(self, positions: np.ndarray):
        """Blocks ``(ns, 4, 4, 4, N)`` + per-axis weight triples."""
        idx, frac = self.grid.locate_batch(positions)
        offsets = np.arange(-1, 3)
        nx, ny, nz = self.grid.shape
        ix = (idx[:, 0:1] + offsets) % nx  # (ns, 4)
        jy = (idx[:, 1:2] + offsets) % ny
        kz = (idx[:, 2:3] + offsets) % nz
        blocks = self.P[
            ix[:, :, None, None], jy[:, None, :, None], kz[:, None, None, :]
        ]  # (ns, 4, 4, 4, N)
        weights = []
        for axis in range(3):
            a = bspline_weights_batch(frac[:, axis], 0).astype(self.dtype)
            da = bspline_weights_batch(frac[:, axis], 1).astype(self.dtype)
            d2a = bspline_weights_batch(frac[:, axis], 2).astype(self.dtype)
            inv = self.grid.inv_deltas[axis]
            weights.append((a, da * self.dtype.type(inv), d2a * self.dtype.type(inv * inv)))
        return blocks, weights

    # -- kernels -------------------------------------------------------------

    def v_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``V`` for the whole batch into ``out.v``."""
        positions = self._check(positions, out)
        self._begin(out, _KERNEL_STREAMS["v"])
        for sl in self._chunks(len(positions)):
            self._v_core(positions[sl], out.v[sl])
        out.valid = frozenset(_KERNEL_STREAMS["v"])

    def vgl_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``VGL`` for the whole batch."""
        positions = self._check(positions, out)
        self._begin(out, _KERNEL_STREAMS["vgl"])
        for sl in self._chunks(len(positions)):
            self._vgh_core(
                positions[sl], out.v[sl], out.g[sl], out.l[sl], None
            )
        out.valid = frozenset(_KERNEL_STREAMS["vgl"])

    def vgh_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        """Kernel ``VGH`` for the whole batch (fills ``l`` too, for free)."""
        positions = self._check(positions, out)
        self._begin(out, _KERNEL_STREAMS["vgh"])
        for sl in self._chunks(len(positions)):
            self._vgh_core(
                positions[sl], out.v[sl], out.g[sl], out.l[sl], out.h[sl]
            )
        out.valid = frozenset(_KERNEL_STREAMS["vgh"])

    # -- contraction cores (one chunk; outputs are array views) --------------

    def _v_core(self, positions: np.ndarray, v: np.ndarray) -> None:
        blocks, ((ax, _, _), (ay, _, _), (az, _, _)) = self._gather(positions)
        tz = np.einsum("sabcn,sc->sabn", blocks, az)
        ty = np.einsum("sabn,sb->san", tz, ay)
        np.einsum("san,sa->sn", ty, ax, out=v)

    def _vgh_core(
        self,
        positions: np.ndarray,
        v: np.ndarray,
        g: np.ndarray,
        l: np.ndarray,
        h: np.ndarray | None,
    ) -> None:
        blocks, ((ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az)) = self._gather(
            positions
        )
        tz0 = np.einsum("sabcn,sc->sabn", blocks, az)
        tz1 = np.einsum("sabcn,sc->sabn", blocks, daz)
        tz2 = np.einsum("sabcn,sc->sabn", blocks, d2az)
        u00 = np.einsum("sabn,sb->san", tz0, ay)
        u10 = np.einsum("sabn,sb->san", tz0, day)
        u20 = np.einsum("sabn,sb->san", tz0, d2ay)
        u01 = np.einsum("sabn,sb->san", tz1, ay)
        u11 = np.einsum("sabn,sb->san", tz1, day)
        u02 = np.einsum("sabn,sb->san", tz2, ay)
        v[...] = np.einsum("san,sa->sn", u00, ax)
        g[:, 0] = np.einsum("san,sa->sn", u00, dax)
        g[:, 1] = np.einsum("san,sa->sn", u10, ax)
        g[:, 2] = np.einsum("san,sa->sn", u01, ax)
        hxx = np.einsum("san,sa->sn", u00, d2ax)
        hyy = np.einsum("san,sa->sn", u20, ax)
        hzz = np.einsum("san,sa->sn", u02, ax)
        l[...] = hxx + hyy + hzz
        if h is not None:
            h[:, 0] = hxx
            h[:, 1] = np.einsum("san,sa->sn", u10, dax)
            h[:, 2] = np.einsum("san,sa->sn", u01, dax)
            h[:, 3] = hyy
            h[:, 4] = np.einsum("san,sa->sn", u11, ax)
            h[:, 5] = hzz
