"""Slow, obviously-correct reference evaluation of paper Eq. (6).

Every optimized kernel in :mod:`repro.core` is validated against this
module.  The reference evaluates the tensor-product sum

    phi_n(x,y,z) = sum_{i'} bx_{i'}(x) sum_{j'} by_{j'}(y)
                   sum_{k'} bz_{k'}(z) P[i', j', k', n]

by explicit Python loops over the 4x4x4 stencil, computing derivatives
from the analytic basis-function derivatives.  It is O(64 N) per call like
the production kernels but makes no layout or vectorization choices at
all, so it cannot share a bug with them.

Everything here runs in float64 regardless of the table dtype, giving the
tests a higher-precision oracle than the single-precision kernels under
test (mirroring how the paper's SP results are validated against DP).
"""

from __future__ import annotations

import numpy as np

from repro.core.basis import bspline_all_weights
from repro.core.grid import Grid3D

__all__ = ["reference_v", "reference_vgl", "reference_vgh"]


def _stencil(grid: Grid3D, x: float, y: float, z: float):
    """Shared setup: periodic stencil indices and per-axis weight triples."""
    i0, j0, k0, tx, ty, tz = grid.locate(x, y, z)
    ix = grid.stencil_indices(i0, 0)
    jy = grid.stencil_indices(j0, 1)
    kz = grid.stencil_indices(k0, 2)
    wx = bspline_all_weights(tx)
    wy = bspline_all_weights(ty)
    wz = bspline_all_weights(tz)
    return ix, jy, kz, wx, wy, wz


def reference_v(
    grid: Grid3D, P: np.ndarray, x: float, y: float, z: float
) -> np.ndarray:
    """Orbital values ``phi_n(x, y, z)`` for all N splines, float64.

    Parameters
    ----------
    grid:
        The interpolation grid.
    P:
        ``(nx, ny, nz, N)`` coefficient table.
    x, y, z:
        Evaluation position (wrapped periodically).
    """
    ix, jy, kz, (ax, _, _), (ay, _, _), (az, _, _) = _stencil(grid, x, y, z)
    v = np.zeros(P.shape[3], dtype=np.float64)
    for a in range(4):
        for b in range(4):
            for c in range(4):
                w = ax[a] * ay[b] * az[c]
                v += w * P[ix[a], jy[b], kz[c]].astype(np.float64)
    return v


def reference_vgl(
    grid: Grid3D, P: np.ndarray, x: float, y: float, z: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Values, gradients and Laplacians; the oracle for the VGL kernel.

    Returns
    -------
    (v, g, lap):
        ``v`` is ``(N,)``, ``g`` is ``(3, N)`` with Cartesian component
        first, ``lap`` is ``(N,)`` — all float64.
    """
    v, g, h = reference_vgh(grid, P, x, y, z)
    lap = h[0, 0] + h[1, 1] + h[2, 2]
    return v, g, lap


def reference_vgh(
    grid: Grid3D, P: np.ndarray, x: float, y: float, z: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Values, gradients and full 3x3 Hessians; the oracle for VGH.

    Returns
    -------
    (v, g, h):
        ``v`` is ``(N,)``, ``g`` is ``(3, N)``, ``h`` is ``(3, 3, N)``
        (symmetric in the first two axes) — all float64.

    Notes
    -----
    Derivatives are taken with respect to the physical coordinates, i.e.
    the fractional-coordinate derivatives are scaled by ``1/delta`` per
    differentiation order (chain rule through ``t = x/delta - i``).
    """
    ix, jy, kz, (ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az) = _stencil(
        grid, x, y, z
    )
    inv_dx, inv_dy, inv_dz = grid.inv_deltas
    n_spl = P.shape[3]
    v = np.zeros(n_spl, dtype=np.float64)
    g = np.zeros((3, n_spl), dtype=np.float64)
    h = np.zeros((3, 3, n_spl), dtype=np.float64)
    for a in range(4):
        for b in range(4):
            for c in range(4):
                p = P[ix[a], jy[b], kz[c]].astype(np.float64)
                v += ax[a] * ay[b] * az[c] * p
                g[0] += dax[a] * ay[b] * az[c] * inv_dx * p
                g[1] += ax[a] * day[b] * az[c] * inv_dy * p
                g[2] += ax[a] * ay[b] * daz[c] * inv_dz * p
                h[0, 0] += d2ax[a] * ay[b] * az[c] * inv_dx * inv_dx * p
                h[1, 1] += ax[a] * d2ay[b] * az[c] * inv_dy * inv_dy * p
                h[2, 2] += ax[a] * ay[b] * d2az[c] * inv_dz * inv_dz * p
                h[0, 1] += dax[a] * day[b] * az[c] * inv_dx * inv_dy * p
                h[0, 2] += dax[a] * ay[b] * daz[c] * inv_dx * inv_dz * p
                h[1, 2] += ax[a] * day[b] * daz[c] * inv_dy * inv_dz * p
    h[1, 0] = h[0, 1]
    h[2, 0] = h[0, 2]
    h[2, 1] = h[1, 2]
    return v, g, h
