"""AoSoA ("tiled") B-spline engine — Opt B of the paper (Sec. V-B, Fig. 5b/6).

``BsplineAoSoA`` splits the spline dimension N into ``M = N / Nb`` tiles
and owns an array of :class:`~repro.core.layout_soa.BsplineSoA` objects,
each with its *own contiguous* ``(nx, ny, nz, Nb)`` coefficient table —
this is the actual memory-layout change, not just an index partition: the
4D table is physically re-blocked so that one tile's 64 input streams and
its output streams form a working set of ``4*Ng*Nb`` + ``40*Nw*Nb`` bytes
that can fit in cache (paper's working-set arithmetic, Sec. V-B).

Tiles share nothing and synchronize nothing; evaluating a position is a
plain loop over tiles (Fig. 6 L11-13), which is exactly the parallelism
Opt C (nested threading, :mod:`repro.core.nested`) exploits.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import SinglePositionEngineMixin
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.layout_soa import BsplineSoA
from repro.core.tiling import split_table
from repro.core.walker import WalkerTiled
from repro.obs import OBS

__all__ = ["BsplineAoSoA"]


class BsplineAoSoA(SinglePositionEngineMixin):
    """Tiled (array-of-SoA) tricubic B-spline SPO evaluator (Opt B).

    Parameters
    ----------
    grid:
        Interpolation grid shared by all tiles.
    coefficients:
        Full ``(nx, ny, nz, N)`` table; it is *copied* tile-by-tile into M
        contiguous blocks (the re-blocking is the optimization).
    tile_size:
        Nb, the number of splines per tile; must divide N.  The optimal
        value is architecture-dependent (paper Fig. 7c: 64 on BDW/BG/Q,
        512 on KNC/KNL); see :mod:`repro.core.tiling` for selection.
    """

    layout = "aosoa"

    def __init__(self, grid: Grid3D, coefficients: np.ndarray, tile_size: int):
        if coefficients.ndim != 4:
            raise ValueError(
                f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
            )
        n_splines = coefficients.shape[3]
        if tile_size <= 0 or n_splines % tile_size != 0:
            raise ValueError(
                f"tile_size must divide N: N={n_splines}, Nb={tile_size}"
            )
        self.grid = grid
        self.n_splines = n_splines
        self.tile_size = int(tile_size)
        self.n_tiles = n_splines // tile_size
        self.dtype = coefficients.dtype
        # Tiles report nothing to OBS themselves: a tiled evaluation is
        # one logical kernel call, counted once by this engine.
        self.tiles = [
            BsplineSoA(grid, tile, first_spline=t * tile_size, report_obs=False)
            for t, tile in enumerate(split_table(coefficients, tile_size))
        ]

    def __len__(self) -> int:
        return self.n_tiles

    def __getitem__(self, t: int) -> BsplineSoA:
        return self.tiles[t]

    def new_output(self, kind: "Kind | str" = Kind.VGH, n: int = 1) -> WalkerTiled:
        """Allocate a tiled output buffer matching this engine's blocking."""
        self._coerce_new_output(kind, n)
        return WalkerTiled(self.n_splines, self.tile_size, self.dtype)

    # -- kernels ---------------------------------------------------------

    def v(self, x: float, y: float, z: float, out: WalkerTiled) -> None:
        """Kernel ``V`` over all tiles (paper Fig. 6 inner loop)."""
        self._check(out)
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="v")
        for eng, buf in zip(self.tiles, out.tiles):
            eng.v(x, y, z, buf)

    def vgl(self, x: float, y: float, z: float, out: WalkerTiled) -> None:
        """Kernel ``VGL`` over all tiles."""
        self._check(out)
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="vgl")
        for eng, buf in zip(self.tiles, out.tiles):
            eng.vgl(x, y, z, buf)

    def vgh(self, x: float, y: float, z: float, out: WalkerTiled) -> None:
        """Kernel ``VGH`` over all tiles."""
        self._check(out)
        if OBS.enabled:
            OBS.count("kernel_calls_total", engine=self.layout, kernel="vgh")
        for eng, buf in zip(self.tiles, out.tiles):
            eng.vgh(x, y, z, buf)

    def eval_tiles(
        self,
        kind: "Kind | str",
        tile_ids: range | list[int],
        positions: np.ndarray,
        out: WalkerTiled,
    ) -> None:
        """Evaluate a *subset* of tiles for a batch of positions.

        This is the unit of work handed to one nested thread (Opt C): one
        thread owns a contiguous range of tiles and runs every position
        through them with no synchronization.

        Parameters
        ----------
        kind:
            :class:`~repro.core.kinds.Kind` (legacy strings accepted with
            a deprecation warning).
        tile_ids:
            Tile indices this call is responsible for.
        positions:
            ``(ns, 3)`` evaluation positions.
        out:
            The walker's tiled output buffer; only tiles in ``tile_ids``
            are written.
        """
        kind = Kind.coerce(kind)
        self._check(out)
        positions = np.asarray(positions, dtype=np.float64)
        if OBS.enabled:
            OBS.count(
                "tile_evals_total",
                len(tile_ids) * len(positions),
                engine=self.layout,
                kernel=kind.value,
            )
        for t in tile_ids:
            eng = self.tiles[t]
            buf = out.tiles[t]
            kern = getattr(eng, kind.value)
            for x, y, z in positions:
                kern(x, y, z, buf)

    def _check(self, out: WalkerTiled) -> None:
        if out.n_tiles != self.n_tiles or out.tile_size != self.tile_size:
            raise ValueError(
                f"output blocking ({out.n_tiles} x {out.tile_size}) does not "
                f"match engine ({self.n_tiles} x {self.tile_size})"
            )
