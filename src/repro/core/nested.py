"""Nested threading over AoSoA tiles — Opt C of the paper (Sec. V-C).

The common QMC parallelization gives each OpenMP thread one walker; Opt C
instead assigns ``nth`` threads *per walker* and distributes the M tiles
of the AoSoA engine among them.  miniQMC uses "an explicit data partition
scheme ... distributing M objects among nth threads.  This avoids any
potential overhead from OpenMP nested run time environment" — we mirror
that exactly: a static contiguous partition computed once, then each
thread runs its tile range for every sample with no locks, no shared
mutable state, and no synchronization until the final join.

Python-specific note: NumPy array arithmetic releases the GIL, so tile
work genuinely overlaps on multi-core hosts.  On a single-core host the
code path is identical but wall-clock speedup is impossible; the
hardware-model results for paper Fig. 9 come from
:mod:`repro.hwsim.perfmodel`, with this module providing the functional
(correctness) side of Opt C.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.kinds import Kind
from repro.core.layout_aosoa import BsplineAoSoA
from repro.core.partition import partition
from repro.core.walker import WalkerTiled
from repro.obs import OBS

__all__ = ["partition_tiles", "NestedEvaluator"]

_PARTITION_TILES_WARNED = False


def partition_tiles(n_tiles: int, n_threads: int) -> list[range]:
    """Deprecated alias of :func:`repro.core.partition.partition`.

    The thread-side (Opt C nested) and process-side (orbital shard)
    partitions now share one implementation in
    :mod:`repro.core.partition`; this spelling is kept one release for
    external callers and warns once per process.
    """
    global _PARTITION_TILES_WARNED
    if not _PARTITION_TILES_WARNED:
        _PARTITION_TILES_WARNED = True
        warnings.warn(
            "repro.core.nested.partition_tiles is deprecated since PR10, "
            "use repro.core.partition.partition instead "
            "(removed next release)",
            DeprecationWarning,
            stacklevel=2,
        )
    return partition(n_tiles, n_threads)


class NestedEvaluator:
    """Evaluate one walker's B-spline kernels with ``nth`` worker threads.

    Parameters
    ----------
    engine:
        A tiled :class:`~repro.core.layout_aosoa.BsplineAoSoA` engine.
    n_threads:
        Threads cooperating on each walker (the paper's nth).  The pool
        is created once and reused across evaluations, matching the
        persistent OpenMP team of the C++ implementation.

    Notes
    -----
    The partition is computed in the constructor; each ``evaluate_*``
    call submits one task per worker covering that worker's tile range
    for *all* positions, then joins.  Tiles never migrate between
    threads, so each thread's input slab and output blocks stay in that
    thread's (modelled) cache — the locality property Sec. V-C relies on.
    """

    def __init__(self, engine: BsplineAoSoA, n_threads: int):
        if n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        self.engine = engine
        self.n_threads = int(n_threads)
        self.partition = partition(engine.n_tiles, n_threads)
        self._pool = ThreadPoolExecutor(
            max_workers=n_threads, thread_name_prefix="walker-nested"
        )
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; a closed evaluator never revives."""
        return self._closed

    def close(self) -> None:
        """Shut the worker pool down; the evaluator is unusable afterwards."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "NestedEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def evaluate(
        self, kind: "Kind | str", positions: np.ndarray, out: WalkerTiled
    ) -> None:
        """Run kernel ``kind`` at every position, tiles split across threads.

        Parameters
        ----------
        kind:
            :class:`~repro.core.kinds.Kind` (legacy strings accepted with
            a deprecation warning).
        positions:
            ``(ns, 3)`` batch of evaluation positions (one walker's random
            sample set, paper Fig. 3 L18).
        out:
            The walker's tiled output buffer; after return it holds the
            results *of the last position* in every tile, matching the
            sequential driver's semantics.
        """
        kind = Kind.coerce(kind)
        if self._closed:
            raise RuntimeError(
                "NestedEvaluator is closed; create a new evaluator "
                "(worker pools do not restart after close())"
            )
        positions = np.asarray(positions, dtype=np.float64)
        if OBS.enabled:
            # Occupancy: threads with a non-empty tile range actually work;
            # the rest idle (the paper's nth <= N/Nb scaling limit).
            active = sum(1 for rng in self.partition if len(rng))
            OBS.gauge("nested_threads", self.n_threads)
            OBS.gauge("nested_active_workers", active)
            OBS.gauge("nested_occupancy", active / self.n_threads)
            OBS.count(
                "nested_evaluations_total", engine="aosoa", kernel=kind.value
            )
        with OBS.span(
            f"nested:{kind.value}",
            cat="nested",
            n_positions=len(positions),
            n_threads=self.n_threads,
        ):
            futures = [
                self._pool.submit(
                    self.engine.eval_tiles, kind, rng, positions, out
                )
                for rng in self.partition
                if len(rng)
            ]
            for fut in futures:
                fut.result()  # re-raises worker exceptions

    def evaluate_v(self, positions: np.ndarray, out: WalkerTiled) -> None:
        """Convenience wrapper for :meth:`evaluate` with ``Kind.V``."""
        self.evaluate(Kind.V, positions, out)

    def evaluate_vgl(self, positions: np.ndarray, out: WalkerTiled) -> None:
        """Convenience wrapper for :meth:`evaluate` with ``Kind.VGL``."""
        self.evaluate(Kind.VGL, positions, out)

    def evaluate_vgh(self, positions: np.ndarray, out: WalkerTiled) -> None:
        """Convenience wrapper for :meth:`evaluate` with ``Kind.VGH``."""
        self.evaluate(Kind.VGH, positions, out)
