"""Cache-line-aligned NumPy allocation.

The paper allocates the coefficient table "as 1D array and uses an aligned
allocator and includes padding to ensure the alignment of P[i][j][k] to a
512-bit cache-line boundary" (Sec. IV).  NumPy gives no alignment
guarantee beyond 16 bytes, so we over-allocate a byte buffer and slice at
the first aligned offset — the standard trick, kept here so every kernel
container can request properly aligned storage and the address-trace
generator in :mod:`repro.hwsim.trace` can assume line-aligned rows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CACHE_LINE_BYTES", "aligned_empty", "aligned_zeros", "is_aligned"]

#: 512 bits — the cache-line size of every machine in paper Table I.
CACHE_LINE_BYTES = 64


def aligned_empty(
    shape: int | tuple[int, ...],
    dtype: np.dtype | type = np.float32,
    alignment: int = CACHE_LINE_BYTES,
) -> np.ndarray:
    """Uninitialized C-contiguous array whose first byte is aligned.

    Parameters
    ----------
    shape:
        Array shape.
    dtype:
        Element dtype.
    alignment:
        Required byte alignment; must be a power of two.
    """
    if alignment <= 0 or (alignment & (alignment - 1)) != 0:
        raise ValueError(f"alignment must be a positive power of two, got {alignment}")
    dtype = np.dtype(dtype)
    size = int(np.prod(shape)) if not np.isscalar(shape) else int(shape)
    nbytes = size * dtype.itemsize
    buf = np.empty(nbytes + alignment, dtype=np.uint8)
    offset = (-buf.ctypes.data) % alignment
    view = buf[offset : offset + nbytes].view(dtype)
    return view.reshape(shape)


def aligned_zeros(
    shape: int | tuple[int, ...],
    dtype: np.dtype | type = np.float32,
    alignment: int = CACHE_LINE_BYTES,
) -> np.ndarray:
    """Zero-initialized aligned array; see :func:`aligned_empty`."""
    out = aligned_empty(shape, dtype, alignment)
    out.fill(0)
    return out


def is_aligned(arr: np.ndarray, alignment: int = CACHE_LINE_BYTES) -> bool:
    """True if the array's data pointer is aligned to ``alignment`` bytes."""
    return arr.ctypes.data % alignment == 0
