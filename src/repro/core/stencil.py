"""Shared stencil machinery for the B-spline evaluation engines.

Every kernel, whatever its output layout, starts an evaluation the same
way (paper Fig. 4, first two comment lines):

1. locate the lower-bound grid indices ``(i0, j0, k0)`` and fractional
   coordinates of the position,
2. compute the per-axis basis "prefactors" (values and derivatives of the
   four 1D basis functions), and
3. read the 4x4x4 neighbourhood of the coefficient table ``P``.

Step 3 is the part with the memory personality the paper studies: 64
stride-one streams of N values each, starting at a random grid point.
:func:`gather_block` returns a zero-copy *view* whenever the stencil does
not wrap around the periodic boundary (the overwhelmingly common case for
production grid sizes) and a fancy-indexed copy otherwise — "use views,
and not copies" is both the NumPy guideline and what einspline's pointer
arithmetic does in C.
"""

from __future__ import annotations

import numpy as np

from repro.core.basis import bspline_all_weights
from repro.core.grid import Grid3D

__all__ = ["EvalPoint", "locate_and_weights", "gather_block"]


class EvalPoint:
    """Everything an engine needs about one evaluation position.

    Attributes
    ----------
    i0, j0, k0:
        Lower-bound grid indices.
    wx, wy, wz:
        Per-axis ``(a, da, d2a)`` weight triples, each a ``(4,)`` float64
        array.  Derivative weights are *already scaled* to physical
        coordinates (multiplied by ``1/delta`` per derivative order), so
        engines combine them with plain products.
    """

    __slots__ = ("i0", "j0", "k0", "wx", "wy", "wz")

    def __init__(self, i0, j0, k0, wx, wy, wz):
        self.i0 = i0
        self.j0 = j0
        self.k0 = k0
        self.wx = wx
        self.wy = wy
        self.wz = wz


def locate_and_weights(grid: Grid3D, x: float, y: float, z: float) -> EvalPoint:
    """Compute stencil location and physically-scaled weight triples.

    This is the per-evaluation prefactor work whose cost is amortized
    over the N splines (paper Sec. IV).
    """
    i0, j0, k0, tx, ty, tz = grid.locate(x, y, z)
    inv_dx, inv_dy, inv_dz = grid.inv_deltas
    ax, dax, d2ax = bspline_all_weights(tx)
    ay, day, d2ay = bspline_all_weights(ty)
    az, daz, d2az = bspline_all_weights(tz)
    return EvalPoint(
        i0,
        j0,
        k0,
        (ax, dax * inv_dx, d2ax * (inv_dx * inv_dx)),
        (ay, day * inv_dy, d2ay * (inv_dy * inv_dy)),
        (az, daz * inv_dz, d2az * (inv_dz * inv_dz)),
    )


def gather_block(grid: Grid3D, P: np.ndarray, pt: EvalPoint) -> np.ndarray:
    """The ``(4, 4, 4, N)`` coefficient neighbourhood of an eval point.

    Returns a view into ``P`` when the stencil ``[i0-1, i0+3)`` lies
    inside the array in all three dimensions, otherwise a periodic
    fancy-indexed copy.  Callers must treat the result as read-only.
    """
    i0, j0, k0 = pt.i0, pt.j0, pt.k0
    nx, ny, nz = grid.shape
    if (
        1 <= i0 <= nx - 3
        and 1 <= j0 <= ny - 3
        and 1 <= k0 <= nz - 3
    ):
        return P[i0 - 1 : i0 + 3, j0 - 1 : j0 + 3, k0 - 1 : k0 + 3]
    ix = grid.stencil_indices(i0, 0)
    jy = grid.stencil_indices(j0, 1)
    kz = grid.stencil_indices(k0, 2)
    return P[np.ix_(ix, jy, kz)]
