"""repro.core — B-spline orbital evaluation kernels, the paper's contribution.

Public surface:

* Grids and tables: :class:`Grid3D`, :func:`solve_coefficients_3d`,
  :func:`solve_coefficients_1d`, :func:`pad_spline_count`.
* Engines (one per data layout):

  ========================  =========================================
  :class:`BsplineAoS`       baseline, interleaved outputs (paper Fig 4a)
  :class:`BsplineSoA`       Opt A, contiguous streams (paper Fig 4b)
  :class:`BsplineAoSoA`     Opt B, tiled / cache-blocked (paper Fig 6)
  :class:`BsplineFused`     tensor-contraction schedule (Python-fast path)
  ========================  =========================================

* Output buffers: :class:`WalkerAoS`, :class:`WalkerSoA`,
  :class:`WalkerTiled`.
* Unified evaluation API: :class:`Kind` (V/VGL/VGH selector) and the
  :class:`Engine` protocol every engine implements —
  ``evaluate(kind, pos, out)`` / ``evaluate_batch(kind, positions, out)``
  / ``new_output(kind, n=1)``.
* Nested threading (Opt C): :class:`NestedEvaluator`,
  :func:`partition_tiles`.
* Tiling arithmetic and auto-tuning: :mod:`repro.core.tiling`.
* Batched-path cache planning: :func:`pad_table_3d` (ghost-padded
  tables), :func:`detect_caches` / :func:`plan_tiles` and their result
  types :class:`CacheInfo` / :class:`TilePlan` (:mod:`repro.tune.planner`).
* Reference oracles: :mod:`repro.core.refimpl` (single-position),
  :mod:`repro.core.batched_reference` (pre-padding batched path).
"""

from repro.core.alloc import aligned_empty, aligned_zeros, is_aligned
from repro.core.batched import BatchedOutput, BsplineBatched
from repro.core.basis import (
    bspline_all_weights,
    bspline_d2weights,
    bspline_dweights,
    bspline_weights,
    bspline_weights_batch,
)
from repro.core.coeffs import (
    pad_spline_count,
    pad_table_3d,
    solve_coefficients_1d,
    solve_coefficients_3d,
)
from repro.core.containers import VectorSoA3D
from repro.core.engine import Engine, SinglePositionEngineMixin
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.layout_aos import BsplineAoS
from repro.core.layout_aosoa import BsplineAoSoA
from repro.core.layout_fused import BsplineFused
from repro.core.layout_soa import BsplineSoA
from repro.core.nested import NestedEvaluator, partition_tiles
from repro.core.spline1d import CubicBspline1D
from repro.tune.planner import CacheInfo, TilePlan, detect_caches, plan_tiles
from repro.core.tiling import (
    autotune_tile_size,
    candidate_tile_sizes,
    input_working_set_bytes,
    output_working_set_bytes,
    split_table,
    Wisdom,
)
from repro.core.verify import (
    EngineCheck,
    VerifyReport,
    verify_backend,
    verify_engines,
)
from repro.core.walker import WalkerAoS, WalkerSoA, WalkerTiled

__all__ = [
    "Grid3D",
    "Kind",
    "Engine",
    "SinglePositionEngineMixin",
    "solve_coefficients_1d",
    "solve_coefficients_3d",
    "pad_spline_count",
    "pad_table_3d",
    "CacheInfo",
    "TilePlan",
    "detect_caches",
    "plan_tiles",
    "BsplineAoS",
    "BsplineSoA",
    "BsplineAoSoA",
    "BsplineFused",
    "BsplineBatched",
    "BatchedOutput",
    "WalkerAoS",
    "WalkerSoA",
    "WalkerTiled",
    "NestedEvaluator",
    "partition_tiles",
    "VectorSoA3D",
    "CubicBspline1D",
    "aligned_empty",
    "aligned_zeros",
    "is_aligned",
    "bspline_weights",
    "bspline_dweights",
    "bspline_d2weights",
    "bspline_all_weights",
    "bspline_weights_batch",
    "split_table",
    "candidate_tile_sizes",
    "autotune_tile_size",
    "input_working_set_bytes",
    "output_working_set_bytes",
    "Wisdom",
    "verify_backend",
    "verify_engines",
    "VerifyReport",
    "EngineCheck",
]
