"""Evaluation kinds: the paper's V/VGL/VGH kernel selector as an enum.

Every engine entry point — ``new_output``, ``evaluate``, ``evaluate_batch``,
:meth:`NestedEvaluator.evaluate`, and the miniqmc drivers — accepts a
:class:`Kind`.  The legacy bare-string spelling (``"v"``, ``"vgl"``,
``"vgh"``) keeps working through :meth:`Kind.coerce`, which emits a
:class:`DeprecationWarning` attributed to the caller; CI escalates that
warning to an error on the package's own modules so ``repro`` itself can
never regress to the old spelling.
"""

from __future__ import annotations

import enum
import warnings

__all__ = ["Kind"]


class Kind(enum.Enum):
    """Which derivative streams an orbital evaluation produces.

    ``Kind("vgl")`` (lookup by value) stays silent — it is how normalized
    configuration strings (CLI flags, JSON configs) become members.  Only
    :meth:`coerce` warns, because it marks an API call site still using
    the deprecated string spelling.
    """

    V = "v"
    VGL = "vgl"
    VGH = "vgh"

    @classmethod
    def coerce(cls, kind: "Kind | str", stacklevel: int = 3) -> "Kind":
        """Normalize ``kind`` to a member, warning on the string spelling.

        ``stacklevel`` attributes the warning to the *external* call site;
        the default suits a one-frame wrapper (``coerce`` called directly
        inside the public method).  Wrappers one level deeper pass 4.
        """
        if isinstance(kind, cls):
            return kind
        if isinstance(kind, str):
            try:
                member = cls(kind)
            except ValueError:
                valid = ", ".join(repr(m.value) for m in cls)
                raise ValueError(
                    f"unknown kernel kind {kind!r}; expected one of {valid}"
                ) from None
            warnings.warn(
                f"passing kind={kind!r} as a bare string is deprecated; "
                f"pass Kind.{member.name} instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
            return member
        raise TypeError(
            f"kind must be a Kind or str, got {type(kind).__name__}"
        )

    @property
    def streams(self) -> tuple[str, ...]:
        """Output streams this kind fills (matches the batched engine)."""
        return _STREAMS[self]


_STREAMS = {
    Kind.V: ("v",),
    Kind.VGL: ("v", "g", "l"),
    Kind.VGH: ("v", "g", "l", "h"),
}
