"""1D cubic B-splines on a finite interval, for Jastrow radial functions.

The Jastrow factors of the QMC substrate (:mod:`repro.qmc.jastrow`) use
short-ranged radial functions u(r) with a finite cutoff, represented —
exactly as in QMCPACK — by 1D cubic B-splines.  Unlike the periodic 3D
orbital tables, these use a *bounded* knot grid on ``[0, rcut]`` with
boundary conditions, so the coefficient solve is a small dense system
rather than a circulant one.

Two boundary conditions are supported:

* ``"natural"`` — zero second derivative at both ends;
* ``"clamped"`` — prescribed first derivatives at both ends (QMCPACK's
  choice for e-e Jastrows is a cusp-condition derivative at r=0 and zero
  slope at the cutoff).

Evaluation is vectorized over arrays of radii; values beyond the cutoff
are zero (short-rangedness), and the helper returns value/first/second
derivatives together because the QMC kernels always need all three.
"""

from __future__ import annotations

import numpy as np

from repro.core.basis import (
    bspline_weights_batch,
)

__all__ = ["CubicBspline1D"]


class CubicBspline1D:
    """Interpolating cubic B-spline on ``[0, rcut]`` with boundary conditions.

    Parameters
    ----------
    samples:
        Function values at the ``n`` uniformly spaced knots
        ``r_j = j * rcut / (n-1)`` (so the first knot is 0 and the last is
        exactly ``rcut``).  Needs ``n >= 4``.
    rcut:
        Interval length / cutoff radius.
    bc:
        ``"natural"`` or ``"clamped"``.
    deriv0, deriv1:
        End-point first derivatives, used only with ``bc="clamped"``.
    """

    def __init__(
        self,
        samples: np.ndarray,
        rcut: float,
        bc: str = "natural",
        deriv0: float = 0.0,
        deriv1: float = 0.0,
    ):
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 1 or samples.size < 4:
            raise ValueError(
                f"need a 1D array of >= 4 samples, got shape {samples.shape}"
            )
        if rcut <= 0:
            raise ValueError(f"rcut must be positive, got {rcut}")
        if bc not in ("natural", "clamped"):
            raise ValueError(f"bc must be 'natural' or 'clamped', got {bc!r}")
        n = samples.size
        self.n_knots = n
        self.rcut = float(rcut)
        self.delta = self.rcut / (n - 1)
        self.inv_delta = 1.0 / self.delta
        self.bc = bc
        # Unknowns c[-1] .. c[n]  (n + 2 coefficients), stored with +1 offset.
        m = n + 2
        A = np.zeros((m, m))
        rhs = np.zeros(m)
        # Interpolation rows: (c[j-1] + 4 c[j] + c[j+1]) / 6 = f[j].
        for j in range(n):
            A[j, j] = 1.0 / 6.0
            A[j, j + 1] = 4.0 / 6.0
            A[j, j + 2] = 1.0 / 6.0
            rhs[j] = samples[j]
        if bc == "natural":
            # f''(0) = 0 and f''(rcut) = 0:
            # second-derivative weights at t=0 are (1, -2, 1, 0)/delta^2.
            A[n, 0:3] = (1.0, -2.0, 1.0)
            A[n + 1, n - 1 : n + 2] = (1.0, -2.0, 1.0)
        else:
            # f'(0) = deriv0, f'(rcut) = deriv1:
            # first-derivative weights at t=0 are (-1/2, 0, 1/2, 0)/delta.
            A[n, 0:3] = (-0.5, 0.0, 0.5)
            rhs[n] = deriv0 * self.delta
            A[n + 1, n - 1 : n + 2] = (-0.5, 0.0, 0.5)
            rhs[n + 1] = deriv1 * self.delta
        self.coeffs = np.linalg.solve(A, rhs)

    def _locate(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interval index (clipped), fractional coordinate, in-range mask."""
        r = np.asarray(r, dtype=np.float64)
        inside = (r >= 0.0) & (r < self.rcut)
        u = np.clip(r, 0.0, self.rcut) * self.inv_delta
        i = np.minimum(u.astype(np.int64), self.n_knots - 2)
        return i, u - i, inside

    def _combine(self, i: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Weighted sum of the four coefficients at each interval."""
        c = self.coeffs
        # Storage offset: coefficient c[i-1] lives at index i (offset +1),
        # so the stencil for interval i is c[i : i+4].
        return (
            w[..., 0] * c[i]
            + w[..., 1] * c[i + 1]
            + w[..., 2] * c[i + 2]
            + w[..., 3] * c[i + 3]
        )

    def evaluate(self, r: np.ndarray | float) -> np.ndarray:
        """Spline values; zero at and beyond the cutoff.

        Accepts scalars or arrays; returns float64 of the broadcast shape.
        """
        i, t, inside = self._locate(np.atleast_1d(r))
        v = self._combine(i, bspline_weights_batch(t, 0))
        v = np.where(inside, v, 0.0)
        return v if np.ndim(r) else v[0]

    def evaluate_vgl(
        self, r: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Value, first derivative and second derivative at each radius.

        Beyond the cutoff all three are zero (the short-ranged convention
        of QMC Jastrow factors).
        """
        scalar = not np.ndim(r)
        i, t, inside = self._locate(np.atleast_1d(r))
        v = self._combine(i, bspline_weights_batch(t, 0))
        dv = self._combine(i, bspline_weights_batch(t, 1)) * self.inv_delta
        d2v = self._combine(i, bspline_weights_batch(t, 2)) * self.inv_delta**2
        v = np.where(inside, v, 0.0)
        dv = np.where(inside, dv, 0.0)
        d2v = np.where(inside, d2v, 0.0)
        if scalar:
            return v[0], dv[0], d2v[0]
        return v, dv, d2v

    @classmethod
    def fit_function(
        cls,
        func,
        rcut: float,
        n_knots: int = 12,
        bc: str = "natural",
        deriv0: float = 0.0,
        deriv1: float = 0.0,
    ) -> "CubicBspline1D":
        """Fit a callable ``func(r)`` by sampling it at the knots.

        The convenience constructor used by the Jastrow builders.
        """
        r = np.linspace(0.0, rcut, n_knots)
        return cls(func(r), rcut, bc=bc, deriv0=deriv0, deriv1=deriv1)
