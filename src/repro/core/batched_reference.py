"""The pre-padding batched evaluation path, frozen as a bit-identity oracle.

This module is a faithful copy of the PR4 ``BsplineBatched`` memory path:
one modulo-wrapped broadcast triple-index gather of the whole batch into
a ``(ns, 4, 4, 4, N)`` temporary, then the z->y->x einsum contractions.
The production engine (:mod:`repro.core.batched`) replaced that gather
with a ghost-padded flat-index gather plus cache-sized position chunks
and spline tiles; **every** optimized configuration must reproduce this
path bit for bit (``np.testing.assert_array_equal``), which is what the
hypothesis suite (``tests/core/test_padded_gather.py``) and the
``benchmarks/bench_pr5.py`` gate check against this class.

Not part of the public API — an oracle and benchmark baseline only; it
is deliberately untuned and allocates the full-batch temporary.
"""

from __future__ import annotations

import numpy as np

from repro.core.basis import bspline_weights_batch
from repro.core.batched import _KERNEL_STREAMS, BatchedOutput
from repro.core.grid import Grid3D
from repro.core.kinds import Kind

__all__ = ["ReferenceBatched"]


class ReferenceBatched:
    """Modulo-wrap gather + monolithic contraction (the PR4 hot path)."""

    layout = "batched-reference"

    def __init__(self, grid: Grid3D, coefficients: np.ndarray):
        if coefficients.ndim != 4:
            raise ValueError(
                f"coefficients must be (nx, ny, nz, N), got {coefficients.shape}"
            )
        if coefficients.shape[:3] != grid.shape:
            raise ValueError(
                f"grid {grid.shape} does not match table {coefficients.shape[:3]}"
            )
        self.grid = grid
        self.P = coefficients
        self.n_splines = coefficients.shape[3]
        self.dtype = coefficients.dtype

    def new_output(self, kind=Kind.VGH, n: int | None = None) -> BatchedOutput:
        if isinstance(kind, (int, np.integer)):
            n = int(kind)
        else:
            Kind.coerce(kind)
            n = 1 if n is None else int(n)
        if n <= 0:
            raise ValueError(f"n_positions must be positive, got {n}")
        return BatchedOutput(n, self.n_splines, self.dtype)

    def evaluate_batch(self, kind, positions, out: BatchedOutput) -> BatchedOutput:
        kind = Kind.coerce(kind)
        getattr(self, f"{kind.value}_batch")(positions, out)
        return out

    def _check(self, positions: np.ndarray, out: BatchedOutput) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"expected (ns, 3) positions, got {positions.shape}")
        if out.v.shape != (len(positions), self.n_splines):
            raise ValueError(
                f"output holds ({out.n_positions}, {out.n_splines}), "
                f"batch needs ({len(positions)}, {self.n_splines})"
            )
        return positions

    def _gather(self, positions: np.ndarray):
        """Blocks ``(ns, 4, 4, 4, N)`` + per-axis weight triples."""
        idx, frac = self.grid.locate_batch(positions)
        offsets = np.arange(-1, 3)
        nx, ny, nz = self.grid.shape
        ix = (idx[:, 0:1] + offsets) % nx  # (ns, 4)
        jy = (idx[:, 1:2] + offsets) % ny
        kz = (idx[:, 2:3] + offsets) % nz
        blocks = self.P[
            ix[:, :, None, None], jy[:, None, :, None], kz[:, None, None, :]
        ]  # (ns, 4, 4, 4, N)
        weights = []
        for axis in range(3):
            a = bspline_weights_batch(frac[:, axis], 0).astype(self.dtype)
            da = bspline_weights_batch(frac[:, axis], 1).astype(self.dtype)
            d2a = bspline_weights_batch(frac[:, axis], 2).astype(self.dtype)
            inv = self.grid.inv_deltas[axis]
            weights.append(
                (a, da * self.dtype.type(inv), d2a * self.dtype.type(inv * inv))
            )
        return blocks, weights

    def v_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        positions = self._check(positions, out)
        blocks, ((ax, _, _), (ay, _, _), (az, _, _)) = self._gather(positions)
        tz = np.einsum("sabcn,sc->sabn", blocks, az)
        ty = np.einsum("sabn,sb->san", tz, ay)
        np.einsum("san,sa->sn", ty, ax, out=out.v)
        out.valid = frozenset(_KERNEL_STREAMS["v"])

    def vgl_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        positions = self._check(positions, out)
        self._vgh_core(positions, out.v, out.g, out.l, None)
        out.valid = frozenset(_KERNEL_STREAMS["vgl"])

    def vgh_batch(self, positions: np.ndarray, out: BatchedOutput) -> None:
        positions = self._check(positions, out)
        self._vgh_core(positions, out.v, out.g, out.l, out.h)
        out.valid = frozenset(_KERNEL_STREAMS["vgh"])

    def _vgh_core(self, positions, v, g, l, h) -> None:
        blocks, ((ax, dax, d2ax), (ay, day, d2ay), (az, daz, d2az)) = self._gather(
            positions
        )
        tz0 = np.einsum("sabcn,sc->sabn", blocks, az)
        tz1 = np.einsum("sabcn,sc->sabn", blocks, daz)
        tz2 = np.einsum("sabcn,sc->sabn", blocks, d2az)
        u00 = np.einsum("sabn,sb->san", tz0, ay)
        u10 = np.einsum("sabn,sb->san", tz0, day)
        u20 = np.einsum("sabn,sb->san", tz0, d2ay)
        u01 = np.einsum("sabn,sb->san", tz1, ay)
        u11 = np.einsum("sabn,sb->san", tz1, day)
        u02 = np.einsum("sabn,sb->san", tz2, ay)
        v[...] = np.einsum("san,sa->sn", u00, ax)
        g[:, 0] = np.einsum("san,sa->sn", u00, dax)
        g[:, 1] = np.einsum("san,sa->sn", u10, ax)
        g[:, 2] = np.einsum("san,sa->sn", u01, ax)
        hxx = np.einsum("san,sa->sn", u00, d2ax)
        hyy = np.einsum("san,sa->sn", u20, ax)
        hzz = np.einsum("san,sa->sn", u02, ax)
        l[...] = hxx + hyy + hzz
        if h is not None:
            h[:, 0] = hxx
            h[:, 1] = np.einsum("san,sa->sn", u10, dax)
            h[:, 2] = np.einsum("san,sa->sn", u01, dax)
            h[:, 3] = hyy
            h[:, 4] = np.einsum("san,sa->sn", u11, ax)
            h[:, 5] = hzz
