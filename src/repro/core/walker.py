"""Per-walker output buffers in AoS, SoA and tiled layouts.

Each QMC walker owns private output arrays that the B-spline kernels fill
at every random position (paper Fig. 3 L14-16: "Contains private copy of
outputs").  The three classes here mirror the paper exactly:

* :class:`WalkerAoS` — paper Fig. 3 L6: ``{T v[N], g[3*N], l[N], h[9*N]}``.
  Gradients are interleaved ``[x y z | x y z | ...]`` and Hessians are the
  full row-major 3x3 per spline; the 3- and 9-strided accumulations into
  these arrays are what Opt A removes.
* :class:`WalkerSoA` — paper Fig. 6 L2: ``{T v[Nb], g[3*Nb], l[Nb],
  h[6*Nb]}``.  Each derivative component is a separate contiguous stream;
  the Hessian keeps only the 6 independent components (symmetric tensor),
  reducing the output streams from 13 to 10 for VGH (Sec. V-A).
* :class:`WalkerTiled` — an array of ``WalkerSoA`` blocks of width ``Nb``
  matching a tiled coefficient table (Opt B); tiles are independent so
  nested threads can fill them without synchronization (Opt C).

All buffers use cache-line-aligned storage (:mod:`repro.core.alloc`) so
each component stream starts on a 64-byte boundary, as the paper requires
for aligned vector loads/stores.
"""

from __future__ import annotations

import numpy as np

from repro.core.alloc import aligned_zeros

__all__ = ["WalkerAoS", "WalkerSoA", "WalkerTiled", "HESS_COMPONENTS"]

#: Order of the 6 independent Hessian components in SoA storage.
HESS_COMPONENTS = ("xx", "xy", "xz", "yy", "yz", "zz")


class WalkerAoS:
    """AoS output buffers: interleaved gradients and full 3x3 Hessians.

    Attributes
    ----------
    v:
        ``(N,)`` orbital values.
    g:
        ``(3N,)`` gradients interleaved as ``[gx0, gy0, gz0, gx1, ...]``.
    l:
        ``(N,)`` Laplacians.
    h:
        ``(9N,)`` Hessians interleaved as the row-major 3x3 tensor per
        spline: ``[hxx0, hxy0, hxz0, hyx0, ..., hzz0, hxx1, ...]``.
    """

    layout = "aos"

    def __init__(self, n_splines: int, dtype: np.dtype | type = np.float32):
        if n_splines <= 0:
            raise ValueError(f"n_splines must be positive, got {n_splines}")
        self.n_splines = int(n_splines)
        self.dtype = np.dtype(dtype)
        self.v = aligned_zeros(n_splines, dtype)
        self.g = aligned_zeros(3 * n_splines, dtype)
        self.l = aligned_zeros(n_splines, dtype)
        self.h = aligned_zeros(9 * n_splines, dtype)

    def zero(self) -> None:
        """Reset all output streams in place (no reallocation)."""
        self.v.fill(0)
        self.g.fill(0)
        self.l.fill(0)
        self.h.fill(0)

    def gradient_view(self) -> np.ndarray:
        """Gradients as an ``(N, 3)`` view (no copy) for inspection."""
        return self.g.reshape(self.n_splines, 3)

    def hessian_view(self) -> np.ndarray:
        """Hessians as an ``(N, 3, 3)`` view (no copy) for inspection."""
        return self.h.reshape(self.n_splines, 3, 3)

    def as_canonical(self) -> dict[str, np.ndarray]:
        """Layout-independent copies for cross-layout comparison in tests.

        Returns ``{"v": (N,), "g": (3, N), "l": (N,), "h": (3, 3, N)}``
        in float64.
        """
        return {
            "v": self.v.astype(np.float64),
            "g": self.gradient_view().T.astype(np.float64),
            "l": self.l.astype(np.float64),
            "h": self.hessian_view().transpose(1, 2, 0).astype(np.float64),
        }

    @property
    def output_bytes(self) -> dict[str, int]:
        """Bytes of output state touched per kernel, for working-set math."""
        itm = self.dtype.itemsize
        n = self.n_splines
        return {
            "v": n * itm,
            "vgl": 5 * n * itm,
            "vgh": 13 * n * itm,
        }


class WalkerSoA:
    """SoA output buffers: one contiguous stream per derivative component.

    Attributes
    ----------
    v:
        ``(N,)`` orbital values.
    g:
        ``(3, N)`` gradients; rows ``gx``/``gy``/``gz`` are each contiguous.
    l:
        ``(N,)`` Laplacians.
    h:
        ``(6, N)`` independent Hessian components in the order of
        :data:`HESS_COMPONENTS`; each row contiguous.
    """

    layout = "soa"

    def __init__(self, n_splines: int, dtype: np.dtype | type = np.float32):
        if n_splines <= 0:
            raise ValueError(f"n_splines must be positive, got {n_splines}")
        self.n_splines = int(n_splines)
        self.dtype = np.dtype(dtype)
        self.v = aligned_zeros(n_splines, dtype)
        self.g = aligned_zeros((3, n_splines), dtype)
        self.l = aligned_zeros(n_splines, dtype)
        self.h = aligned_zeros((6, n_splines), dtype)

    def zero(self) -> None:
        """Reset all output streams in place (no reallocation)."""
        self.v.fill(0)
        self.g.fill(0)
        self.l.fill(0)
        self.h.fill(0)

    @property
    def gx(self) -> np.ndarray:
        """Contiguous x-gradient stream (view)."""
        return self.g[0]

    @property
    def gy(self) -> np.ndarray:
        """Contiguous y-gradient stream (view)."""
        return self.g[1]

    @property
    def gz(self) -> np.ndarray:
        """Contiguous z-gradient stream (view)."""
        return self.g[2]

    def hess(self, name: str) -> np.ndarray:
        """Contiguous Hessian component stream by name, e.g. ``"xy"``."""
        return self.h[HESS_COMPONENTS.index(name)]

    def as_canonical(self) -> dict[str, np.ndarray]:
        """Layout-independent copies; see :meth:`WalkerAoS.as_canonical`."""
        hfull = np.empty((3, 3, self.n_splines), dtype=np.float64)
        hxx, hxy, hxz, hyy, hyz, hzz = (self.h[i].astype(np.float64) for i in range(6))
        hfull[0, 0] = hxx
        hfull[0, 1] = hfull[1, 0] = hxy
        hfull[0, 2] = hfull[2, 0] = hxz
        hfull[1, 1] = hyy
        hfull[1, 2] = hfull[2, 1] = hyz
        hfull[2, 2] = hzz
        return {
            "v": self.v.astype(np.float64),
            "g": self.g.astype(np.float64),
            "l": self.l.astype(np.float64),
            "h": hfull,
        }

    @property
    def output_bytes(self) -> dict[str, int]:
        """Bytes of output state touched per kernel, for working-set math."""
        itm = self.dtype.itemsize
        n = self.n_splines
        return {
            "v": n * itm,
            "vgl": 5 * n * itm,
            "vgh": 10 * n * itm,
        }


class WalkerTiled:
    """Tiled (AoSoA) output buffers: M independent ``WalkerSoA`` blocks.

    Paper Fig. 6 L8: ``WalkerSoA w[M](Nb)``.  Tile ``t`` covers splines
    ``[t*Nb, (t+1)*Nb)``; tiles share nothing, which is exactly the
    property nested threading exploits.

    Parameters
    ----------
    n_splines:
        Total spline count N; must be divisible by ``tile_size``.
    tile_size:
        Width Nb of each tile.
    """

    layout = "aosoa"

    def __init__(
        self,
        n_splines: int,
        tile_size: int,
        dtype: np.dtype | type = np.float32,
    ):
        if n_splines <= 0:
            raise ValueError(f"n_splines must be positive, got {n_splines}")
        if tile_size <= 0 or n_splines % tile_size != 0:
            raise ValueError(
                f"tile_size must divide n_splines: N={n_splines}, Nb={tile_size}"
            )
        self.n_splines = int(n_splines)
        self.tile_size = int(tile_size)
        self.n_tiles = self.n_splines // self.tile_size
        self.dtype = np.dtype(dtype)
        self.tiles = [WalkerSoA(tile_size, dtype) for _ in range(self.n_tiles)]

    def __len__(self) -> int:
        return self.n_tiles

    def __getitem__(self, t: int) -> WalkerSoA:
        return self.tiles[t]

    def zero(self) -> None:
        """Reset every tile's output streams in place."""
        for tile in self.tiles:
            tile.zero()

    def as_canonical(self) -> dict[str, np.ndarray]:
        """Concatenate tile outputs back into full-N canonical arrays."""
        parts = [tile.as_canonical() for tile in self.tiles]
        return {
            "v": np.concatenate([p["v"] for p in parts]),
            "g": np.concatenate([p["g"] for p in parts], axis=1),
            "l": np.concatenate([p["l"] for p in parts]),
            "h": np.concatenate([p["h"] for p in parts], axis=2),
        }

    @property
    def output_bytes(self) -> dict[str, int]:
        """Bytes touched per kernel across all tiles (same totals as SoA)."""
        per = self.tiles[0].output_bytes
        return {k: val * self.n_tiles for k, val in per.items()}
