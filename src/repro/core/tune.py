"""Deprecated alias for :mod:`repro.tune.planner` (moved in PR9).

The cache-budget heuristic grew an empirical, persistent tier and was
promoted to its own package, :mod:`repro.tune`.  This shim keeps every
old spelling importable for one release:

* ``from repro.core.tune import plan_tiles``  → still works, warns once;
* ``from repro.core import plan_tiles``       → unchanged, no warning
  (the :mod:`repro.core` re-exports are the supported spelling).

New code should import from :mod:`repro.tune` (or, for the full
empirical tier, :mod:`repro.tune.search`).
"""

from __future__ import annotations

import warnings

from repro.tune.planner import *  # noqa: F401,F403
from repro.tune.planner import (  # noqa: F401  (private helpers some tests poke)
    CHUNK_MAX,
    CHUNK_MIN,
    TILE_MIN,
    __all__,
)

warnings.warn(
    "repro.core.tune moved to repro.tune.planner in PR9; this alias will be "
    "removed next release. Import from repro.tune instead.",
    DeprecationWarning,
    stacklevel=2,
)
