"""miniQMC benchmark configurations.

The paper's configurations do not fit a laptop-class Python host (a
48^3 x 4096 single-precision table alone is 1.8 GB and one C++ kernel
eval is ~microseconds; the Python port is ~10^3 slower).  Every config
therefore comes in two flavours:

* ``paper_*`` — the exact paper parameters, consumed by the *model*
  benches (:mod:`repro.hwsim`), which never allocate the table;
* ``live_*`` — scaled-down parameters for wall-clock measurements of the
  real NumPy kernels on this host, preserving the structural knobs
  (layouts, tile ratios, sample batching) while shrinking N and the grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MiniQmcConfig",
    "paper_sweep_sizes",
    "paper_coral",
    "live_kernel_config",
    "live_app_config",
    "random_coefficients",
]

#: The paper's N sweep (Sec. VI): 128 to 4096 splines.
PAPER_SWEEP_SIZES = (128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class MiniQmcConfig:
    """Everything a miniQMC kernel driver needs.

    Attributes
    ----------
    n_splines:
        N, the spline count.
    grid_shape:
        Coefficient grid dimensions.
    n_samples:
        Random positions per walker per kernel per iteration (paper ns=512).
    n_iters:
        Outer Monte Carlo generations (paper Fig. 3 L21).
    n_walkers:
        Walkers; on this single-core host walkers are sequential
        repetitions, which measures the same per-eval cost.
    tile_size:
        Nb for tiled runs (None = untiled); also the spline-tile width
        of the batched engine.  This is the paper's *physical* blocking
        parameter (AoSoA layouts, the hwsim model, the roofline plots
        all consume it), so it is **not** deprecated — but for the
        batched drivers a ``config.tile_size`` serves the same role and
        an explicit ``tile_size`` wins.
    dtype:
        Table precision (paper: float32).
    seed:
        RNG seed for positions and coefficients.
    config:
        :class:`repro.config.RunConfig` for the batched drivers
        (chunk/tile/backend/tune mode).  ``None`` consults the
        environment at driver time.
    chunk_size, backend:
        .. deprecated:: PR9
           Pre-config spellings; a non-None value overrides the
           matching ``config`` field and warns.  Use
           ``config=RunConfig(...)``.
    """

    n_splines: int
    grid_shape: tuple[int, int, int]
    n_samples: int = 512
    n_iters: int = 1
    n_walkers: int = 1
    tile_size: int | None = None
    dtype: type = np.float32
    seed: int = 2017
    chunk_size: int | None = None
    backend: str | None = None
    config: "object | None" = None

    def __post_init__(self) -> None:
        from repro.config import deprecated_kwargs

        deprecated_kwargs(
            "MiniQmcConfig",
            chunk_size=self.chunk_size is not None,
            backend=self.backend is not None,
        )

    def run_config(self):
        """The effective :class:`~repro.config.RunConfig` for batched runs.

        Deprecated field spellings (and the physical ``tile_size``)
        override the matching ``config`` fields — rung 1 of the
        documented resolution order; with no ``config`` the environment
        is consulted (rung 2).
        """
        from repro.config import RunConfig

        cfg = self.config if self.config is not None else RunConfig.from_env()
        overrides = {
            k: v
            for k, v in (
                ("tile_size", self.tile_size),
                ("chunk_size", self.chunk_size),
                ("backend", self.backend),
            )
            if v is not None
        }
        return cfg.replace(**overrides) if overrides else cfg

    @property
    def n_grid_points(self) -> int:
        nx, ny, nz = self.grid_shape
        return nx * ny * nz

    @property
    def table_bytes(self) -> int:
        """Size of the full coefficient table."""
        return self.n_grid_points * self.n_splines * np.dtype(self.dtype).itemsize


def paper_sweep_sizes() -> tuple[int, ...]:
    """The paper's N values, 128..4096."""
    return PAPER_SWEEP_SIZES


def paper_coral() -> MiniQmcConfig:
    """The CORAL 4x4x1 baseline problem (Sec. IV) at paper scale."""
    return MiniQmcConfig(
        n_splines=128, grid_shape=(48, 48, 60), n_samples=512, n_walkers=36
    )


def live_kernel_config(
    n_splines: int = 128,
    grid: tuple[int, int, int] = (24, 24, 24),
    n_samples: int = 16,
    tile_size: int | None = None,
) -> MiniQmcConfig:
    """Host-sized kernel-driver config (seconds, not hours)."""
    return MiniQmcConfig(
        n_splines=n_splines,
        grid_shape=grid,
        n_samples=n_samples,
        tile_size=tile_size,
    )


def live_app_config(n_orbitals: int = 16) -> MiniQmcConfig:
    """Host-sized full-app config: N orbitals => 2N electrons."""
    return MiniQmcConfig(
        n_splines=n_orbitals,
        grid_shape=(14, 14, 14),
        n_samples=0,  # the app drives moves, not random sample batches
    )


def random_coefficients(config: MiniQmcConfig) -> np.ndarray:
    """A random read-only coefficient table for kernel-only drivers.

    Kernel performance is independent of coefficient *values* (paper
    Sec. IV uses whatever the CORAL problem provides; miniQMC only needs
    the right array shape, dtype and alignment), so kernel benches skip
    the interpolation solve and fill the table with Gaussian noise.
    """
    rng = np.random.default_rng(config.seed)
    nx, ny, nz = config.grid_shape
    return rng.standard_normal((nx, ny, nz, config.n_splines)).astype(config.dtype)
