"""The full miniQMC application: profiled Slater-Jastrow propagation.

This is the measurement vehicle for the paper's Tables II and III and the
">4.5x full miniQMC" claim of Sec. VII: a real drift-diffusion QMC run
whose component groups — B-splines, distance tables, Jastrow, and the
rest (determinant updates, estimator assembly) — are timed separately via
transparent proxies, so the profile is *measured*, not asserted.

Layouts are configurable independently, matching the paper's sequence:

* Table II  = everything AoS (the public QMCPACK baseline);
* Table III = SoA distance tables + Jastrow, B-spline still baseline;
* the 4.5x configuration = SoA containers + optimized B-spline engine.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.lattice.cell import Cell
from repro.lattice.orbitals import PlaneWaveOrbitalSet
from repro.lattice.pbc import wigner_seitz_radius
from repro.obs import OBS
from repro.perf.timer import SectionTimers
from repro.qmc.batched_step import CrowdState, batched_sweep
from repro.qmc.drift_diffusion import sweep
from repro.qmc.estimators import LocalEnergy
from repro.qmc.jastrow import make_polynomial_radial
from repro.qmc.pseudopotential import NonlocalPseudopotential
from repro.qmc.particleset import ParticleSet
from repro.qmc.rng import WalkerRngPool
from repro.qmc.slater import SplineOrbitalSet
from repro.qmc.wavefunction import SlaterJastrow
from repro.resilience.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    set_rng_state,
    rng_state,
)

__all__ = [
    "TimedProxy",
    "AppInstance",
    "build_app",
    "run_profiled",
    "profile_shares",
    "main",
]


class TimedProxy:
    """Transparent proxy that times selected methods into a section.

    Everything not listed in ``methods`` passes straight through, so the
    proxied object remains a drop-in replacement (attributes, properties,
    untimed methods).
    """

    def __init__(self, target, timers: SectionTimers, section: str, methods: tuple[str, ...]):
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_timers", timers)
        object.__setattr__(self, "_section", section)
        object.__setattr__(self, "_methods", frozenset(methods))

    def __getattr__(self, name):
        attr = getattr(self._target, name)
        if name in self._methods and callable(attr):
            timers, section = self._timers, self._section

            def timed(*args, **kwargs):
                t0 = time.perf_counter()
                try:
                    return attr(*args, **kwargs)
                finally:
                    dt = time.perf_counter() - t0
                    timers.add(section, dt)
                    if OBS.enabled:
                        OBS.observe("section_seconds", dt, section=section)

            return timed
        return attr

    def __setattr__(self, name, value):
        setattr(self._target, name, value)

    def __len__(self):
        return len(self._target)

    def __getitem__(self, i):
        return self._target[i]


@dataclass
class AppInstance:
    """A runnable miniQMC problem: wavefunction + stream + timers."""

    wf: SlaterJastrow
    rng: np.random.Generator
    timers: SectionTimers
    n_orbitals: int
    pseudopotential: NonlocalPseudopotential | None = None


def build_app(
    n_orbitals: int = 16,
    grid_shape: tuple[int, int, int] = (14, 14, 14),
    layout: str = "soa",
    engine: str = "fused",
    box: float = 8.0,
    seed: int = 2017,
    profile: bool = True,
    with_pseudopotential: bool = False,
    tile_size: int | None = None,
    chunk_size: int | None = None,
    backend: str | None = None,
    config=None,
) -> AppInstance:
    """Assemble a miniQMC problem on a cubic cell.

    Parameters
    ----------
    n_orbitals:
        N; electron count is 2N, ion count N/2 (the carbon 4:1 ratio).
    grid_shape:
        B-spline grid.
    layout:
        Distance-table / Jastrow layout ("aos" baseline or "soa").
    engine:
        B-spline engine ("aos" baseline, "soa", or "fused").
    box:
        Cubic cell edge (bohr).
    profile:
        Wrap components in :class:`TimedProxy` sections.
    with_pseudopotential:
        Attach a nonlocal pseudopotential channel, whose quadrature is
        the application's consumer of the V kernel (paper Sec. IV).
    config:
        :class:`repro.config.RunConfig` for the batched B-spline cores
        (chunk/tile blocking, kernel backend, tune mode).  ``None``
        consults the ``REPRO_*`` environment, then the tuned DB, then
        the cache heuristic.  Exact-tier backends keep trajectories
        bitwise invariant; allclose-tier backends shift them within the
        declared tolerance.
    tile_size, chunk_size, backend:
        .. deprecated:: PR9
           Pre-config spellings; a non-None value overrides the
           matching ``config`` field and warns.  Use
           ``config=RunConfig(...)``.
    """
    from repro.config import RunConfig, deprecated_kwargs

    deprecated_kwargs(
        "build_app",
        tile_size=tile_size is not None,
        chunk_size=chunk_size is not None,
        backend=backend is not None,
    )
    if config is None:
        config = RunConfig.from_env(
            tile_size=tile_size, chunk_size=chunk_size, backend=backend
        )
    else:
        overrides = {
            k: v
            for k, v in (
                ("tile_size", tile_size),
                ("chunk_size", chunk_size),
                ("backend", backend),
            )
            if v is not None
        }
        if overrides:
            config = config.replace(**overrides)
    pool = WalkerRngPool(seed)
    rng = pool.next_rng()
    cell = Cell.cubic(box)
    orbitals = PlaneWaveOrbitalSet(cell, n_orbitals)
    spos = SplineOrbitalSet.from_orbital_functions(
        cell,
        orbitals,
        grid_shape,
        engine=engine,
        config=config,
    )
    n_ions = max(n_orbitals // 2, 2)
    ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((n_ions, 3))))
    electrons = ParticleSet.random("e", cell, 2 * n_orbitals, rng)
    rcut = 0.9 * wigner_seitz_radius(cell)
    j1 = make_polynomial_radial(0.4, rcut)
    j2 = make_polynomial_radial(0.6, rcut)

    timers = SectionTimers()
    if profile:
        spos_proxy = TimedProxy(
            spos,
            timers,
            "bspline",
            ("vgl", "vgh", "values", "values_batch", "vgl_batch"),
        )
    else:
        spos_proxy = spos
    wf = SlaterJastrow(electrons, ions, spos_proxy, j1, j2, layout=layout)
    if profile:
        ee_proxy = TimedProxy(
            wf.ee_table,
            timers,
            "distance_tables",
            ("propose_row", "rebuild", "accept_move"),
        )
        ei_proxy = TimedProxy(
            wf.ei_table,
            timers,
            "distance_tables",
            ("propose_row", "rebuild", "accept_move"),
        )
        wf.ee_table = ee_proxy
        wf.ei_table = ei_proxy
        if wf.j2 is not None:
            wf.j2.table = ee_proxy
            wf.j2 = TimedProxy(
                wf.j2,
                timers,
                "jastrow",
                ("ratio", "grad", "grad_temp", "grad_lap", "accept_move", "recompute"),
            )
        if wf.j1 is not None:
            wf.j1.table = ei_proxy
            wf.j1 = TimedProxy(
                wf.j1,
                timers,
                "jastrow",
                ("ratio", "grad", "grad_temp", "grad_lap", "accept_move", "recompute"),
            )
    pp = None
    if with_pseudopotential:
        pp = NonlocalPseudopotential(
            make_polynomial_radial(0.3, 0.6 * rcut),
            l=0,
            rng=pool.next_rng(),
        )
    return AppInstance(
        wf=wf, rng=rng, timers=timers, n_orbitals=n_orbitals,
        pseudopotential=pp,
    )


def run_profiled(
    app: AppInstance,
    n_sweeps: int = 5,
    tau: float = 0.15,
    measure: bool = False,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
    step_mode: str | None = None,
    config=None,
) -> tuple[float, SectionTimers]:
    """Run drift-diffusion sweeps; returns (total wall seconds, timers).

    With ``measure=True`` each sweep is followed by a local-energy
    evaluation (the paper's "measurement stage"), which — when the app
    carries a pseudopotential — drives the V kernel through the
    quadrature spheres.

    ``step_mode="batched"`` advances the walker through the batched
    population kernels (a crowd of one) — bit-identical trajectory, but
    the per-component sections (distance tables, Jastrow) are bypassed
    by fused batched stages, so their profile shares collapse toward
    zero.  The library default therefore stays ``"walker"``, the mode
    whose attribution reproduces the paper's Tables II/III; the CLI
    defaults to ``"batched"`` (the hot path).  ``step_mode=None``
    resolves through ``config.step_mode``, then ``REPRO_STEP_MODE``,
    then ``"walker"``.

    The untimed remainder (determinant algebra, particle bookkeeping) is
    recorded as the ``other`` section, matching the paper's "Rest of the
    time is mostly spent on the assembly of SPOs ... determinant updates
    and inverses" (Sec. IV).

    ``checkpoint_every`` sweeps, the walker state (positions + exact RNG
    state) and the profile accumulated so far are snapshotted to
    ``checkpoint_path``; ``resume`` continues a killed run on an app
    rebuilt with the same :func:`build_app` arguments — the propagation
    trajectory continues exactly (timings, being wall clock, simply
    accumulate).
    """
    from repro.config import effective_step_mode

    step_mode = effective_step_mode(step_mode, config, default="walker")
    if step_mode not in ("batched", "walker"):
        raise ValueError(
            f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
        )
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
    estimator = (
        LocalEnergy(app.wf, pseudopotential=app.pseudopotential)
        if measure
        else None
    )
    start_sweep = 0
    prior_seconds = 0.0
    if resume is not None:
        ckpt = load_checkpoint(resume, expect_kind="miniqmc_app")
        if ckpt.manifest["params"] != {"tau": tau, "measure": measure}:
            raise CheckpointError(
                f"checkpoint parameters {ckpt.manifest['params']!r} do not "
                f"match this run (tau={tau!r}, measure={measure!r})"
            )
        try:
            app.wf.electrons.load_positions(ckpt.arrays["positions"], wrap=False)
            app.wf.ions.load_positions(ckpt.arrays["ion_positions"], wrap=False)
        except ValueError as exc:
            raise CheckpointError(
                f"app does not match checkpoint shape: {exc}"
            ) from exc
        app.wf.recompute()
        set_rng_state(app.rng, ckpt.manifest["rng_state"])
        start_sweep = int(ckpt.manifest["sweep"])
        prior_seconds = float(ckpt.manifest["seconds"])
        for section, secs in ckpt.manifest["timers"].items():
            app.timers.add(section, secs)
        if estimator is not None:
            estimator = LocalEnergy(app.wf, pseudopotential=app.pseudopotential)
    # Built after any resume so the crowd sees the restored configuration.
    crowd = CrowdState([app.wf], [app.rng]) if step_mode == "batched" else None
    t0 = time.perf_counter()
    for sweep_idx in range(start_sweep, n_sweeps):
        with OBS.span("miniqmc:sweep", cat="miniqmc", sweep=sweep_idx):
            if crowd is not None:
                batched_sweep(crowd, tau)
            else:
                sweep(app.wf, tau, app.rng)
            if estimator is not None:
                estimator.total()
        OBS.count("miniqmc_sweeps_total")
        if checkpoint_every is not None and (sweep_idx + 1) % checkpoint_every == 0:
            app.wf.recompute()
            save_checkpoint(
                checkpoint_path,
                {
                    "kind": "miniqmc_app",
                    "sweep": sweep_idx + 1,
                    "seconds": prior_seconds + time.perf_counter() - t0,
                    "rng_state": rng_state(app.rng),
                    "timers": app.timers.elapsed,
                    "params": {"tau": tau, "measure": measure},
                },
                {
                    "positions": app.wf.electrons.positions,
                    "ion_positions": app.wf.ions.positions,
                },
            )
    total = prior_seconds + time.perf_counter() - t0
    known = app.timers.total
    # B-spline time is nested inside jastrow/distance sections never (the
    # proxies are disjoint), but proxied calls do nest inside the sweep
    # total, so "other" is the remainder.
    app.timers.add("other", max(total - known, 0.0))
    return total, app.timers


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.miniqmc.app`` — a profiled, restartable run.

    Builds the app deterministically from ``--seed`` and friends, runs
    ``--sweeps`` drift-diffusion sweeps, and prints the profile shares.
    ``--checkpoint-every N --checkpoint-path DIR`` makes the run
    restartable; after a kill, the same command plus ``--resume DIR``
    continues where the last checkpoint left off.  ``--metrics-out`` /
    ``--trace-out`` turn observability on: the run dumps a metrics JSON
    and/or a Chrome ``trace_event`` JSON and prints the metrics summary
    table after the profile shares.

    ``--walkers W [--processes K]`` switches to population mode: W
    lock-step crowd walkers sharded over K worker processes attaching
    one shared-memory coefficient table (:mod:`repro.parallel`).  The
    propagated population is bit-identical for every K.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.miniqmc.app",
        description="Profiled miniQMC run with checkpoint/resume support.",
    )
    parser.add_argument("--n-orbitals", type=int, default=8)
    parser.add_argument("--sweeps", type=int, default=5)
    parser.add_argument("--tau", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--layout", default="soa", choices=("aos", "soa"))
    parser.add_argument("--engine", default="fused", choices=("aos", "soa", "fused"))
    parser.add_argument("--measure", action="store_true")
    parser.add_argument(
        "--tile-size",
        type=int,
        default=None,
        metavar="NB",
        help="splines per batched contraction tile (default: auto-tuned "
        "from detected cache sizes; results are bit-identical either way)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        metavar="NS",
        help="positions per batched gather chunk (default: auto-tuned)",
    )
    parser.add_argument(
        "--step-mode",
        default=None,
        choices=("batched", "walker"),
        help="advance walkers through the batched crowd kernels (default) "
        "or the per-walker sweep; trajectories are bit-identical either "
        "way (in profiled mode, 'walker' restores the per-component "
        "attribution of the paper's tables); unset resolves through "
        "--config / REPRO_STEP_MODE",
    )
    parser.add_argument(
        "--walkers",
        type=int,
        default=None,
        metavar="W",
        help="population mode: propagate W crowd walkers instead of "
        "profiling one",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="K",
        help="shard the population over K worker processes sharing one "
        "coefficient table (implies --walkers; default K=1)",
    )
    parser.add_argument(
        "--split",
        default="walkers",
        choices=("walkers", "orbitals", "auto"),
        help="population-mode sharding axis: 'walkers' (one walker range "
        "per process), 'orbitals' (every process cooperates on each "
        "walker's spline blocks — Opt C), or 'auto' (perf-model choice); "
        "trajectories are bit-identical either way",
    )
    parser.add_argument(
        "--orbital-shards",
        type=int,
        default=None,
        metavar="K",
        help="split the spline axis into K contiguous blocks when the "
        "orbital axis is sharded (default: planner choice; clamped so "
        "no block is narrower than 2 splines)",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help="supervise the population workers (crash/hang recovery); "
        "elastic *resizing* applies to the sharded DMC driver "
        "(python -m repro dmc --processes K --elastic) — crowd shards "
        "are fixed at start",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="K",
        help="accepted for CLI symmetry with 'python -m repro dmc'; crowd "
        "shards never resize, so this only bounds the supervisor",
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-call reply deadline for population workers; a worker "
        "that misses it is restarted and its shard re-run "
        "(bit-identical)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for the batched B-spline cores: 'auto', a "
        "registered name (numpy, numba, cc), or unset for the "
        "REPRO_BACKEND env var / exact-tier numpy default",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="JSON RunConfig file (repro.config.RunConfig.as_dict layout); "
        "explicit flags like --tile-size/--chunk/--backend still win",
    )
    parser.add_argument(
        "--no-tune",
        action="store_true",
        help="skip the per-host tuned-config DB (rung 3 of the resolution "
        "order); blocking falls back to the cache heuristic",
    )
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N")
    parser.add_argument("--checkpoint-path", default=None, metavar="DIR")
    parser.add_argument("--resume", default=None, metavar="DIR")
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable observability and dump the metrics registry as JSON",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="enable observability and dump a Chrome trace_event JSON",
    )
    args = parser.parse_args(argv)
    if args.checkpoint_every is not None and args.checkpoint_path is None:
        parser.error("--checkpoint-every requires --checkpoint-path")
    if args.backend is not None:
        # Validate up front (and pin 'auto' to a concrete name so every
        # population worker lands on the same backend); workers still
        # re-resolve with the degrade-to-numpy fallback policy.
        from repro.backends import BackendConformanceError, BackendUnavailable
        from repro.backends import resolve_backend

        try:
            args.backend = resolve_backend(args.backend).name
        except (BackendUnavailable, BackendConformanceError) as exc:
            parser.error(str(exc))
    fleet_flags = (
        args.elastic
        or args.max_workers is not None
        or args.worker_timeout is not None
    )
    if fleet_flags and args.walkers is None and args.processes is None:
        parser.error(
            "--elastic/--max-workers/--worker-timeout require population "
            "mode (--walkers/--processes)"
        )
    if args.split != "walkers" or args.orbital_shards is not None:
        if args.walkers is None and args.processes is None:
            parser.error(
                "--split/--orbital-shards require population mode "
                "(--walkers/--processes)"
            )
        if args.orbital_shards is not None and args.orbital_shards < 1:
            parser.error("--orbital-shards must be a positive block count")
    observe = args.metrics_out is not None or args.trace_out is not None
    try:
        cfg = _cli_run_config(args)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    if args.walkers is not None or args.processes is not None:
        if args.checkpoint_every is not None or args.resume is not None:
            parser.error(
                "population mode (--walkers/--processes) does not support "
                "checkpointing; use the single-walker profiled mode"
            )
        return _population_main(args, observe, cfg)
    from repro.config import effective_step_mode

    if observe:
        OBS.reset()
        OBS.enable()
    app = build_app(
        n_orbitals=args.n_orbitals,
        layout=args.layout,
        engine=args.engine,
        seed=args.seed,
        config=cfg,
    )
    try:
        total, timers = run_profiled(
            app,
            n_sweeps=args.sweeps,
            tau=args.tau,
            measure=args.measure,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
            resume=args.resume,
            step_mode=effective_step_mode(args.step_mode, cfg),
            config=cfg,
        )
    except CheckpointError as exc:
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 1
    finally:
        if observe:
            OBS.disable()
    print(f"ran {args.sweeps} sweeps in {total:.3f} s (N={args.n_orbitals})")
    for section, share in sorted(timers.shares().items()):
        print(f"  {section:16s} {share:6.2f} %")
    if observe:
        OBS.write(metrics_out=args.metrics_out, trace_out=args.trace_out)
        print()
        print(OBS.summary_table())
    return 0


def _cli_run_config(args):
    """Build the CLI's :class:`~repro.config.RunConfig` from its flags.

    ``--config FILE`` seeds the config; individual flags
    (``--tile-size``/``--chunk``/``--backend``) override it; ``--no-tune``
    forces rung 3 off.  With no flags at all this is just
    ``RunConfig.from_env()``.
    """
    from repro.config import TUNE_OFF, RunConfig, load_run_config

    cfg = load_run_config(args.config) if args.config else RunConfig.from_env()
    overrides = {
        k: v
        for k, v in (
            ("tile_size", getattr(args, "tile_size", None)),
            ("chunk_size", getattr(args, "chunk", None)),
            ("backend", getattr(args, "backend", None)),
        )
        if v is not None
    }
    if args.no_tune:
        overrides["tune"] = TUNE_OFF
    return cfg.replace(**overrides) if overrides else cfg


def _population_main(args, observe: bool, cfg) -> int:
    """The ``--walkers/--processes`` population mode of :func:`main`."""
    from repro.parallel import CrowdSpec, run_crowd_parallel

    n_walkers = args.walkers if args.walkers is not None else 8
    n_workers = args.processes if args.processes is not None else 1
    fleet = None
    if args.elastic or args.max_workers is not None or args.worker_timeout is not None:
        from repro.fleet import FleetConfig

        # Crowd shards are stateful (walkers live worker-side), so the
        # supervisor provides recovery only — never elastic resizing.
        try:
            fleet = FleetConfig(
                max_workers=args.max_workers,
                worker_timeout=args.worker_timeout,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if observe:
        OBS.reset()
        OBS.enable()
    try:
        spec = CrowdSpec(
            n_walkers=n_walkers,
            n_orbitals=args.n_orbitals,
            engine=args.engine,
            seed=args.seed,
            config=cfg,
        )
        result = run_crowd_parallel(
            spec,
            n_workers=n_workers,
            n_sweeps=args.sweeps,
            tau=args.tau,
            step_mode=args.step_mode,
            fleet=fleet,
            split=args.split,
            orbital_shards=args.orbital_shards,
        )
    finally:
        if observe:
            OBS.disable()
    print(
        f"propagated {n_walkers} walkers x {args.sweeps} sweeps over "
        f"{n_workers} process(es) in {result.seconds:.3f} s"
    )
    print(f"  acceptance      {result.acceptance:.4f}")
    print(f"  walker-sweeps/s {result.walkers_per_second:.3f}")
    if observe:
        OBS.write(metrics_out=args.metrics_out, trace_out=args.trace_out)
        print()
        print(OBS.summary_table())
    return 0


def profile_shares(
    n_orbitals: int = 16,
    layout: str = "aos",
    engine: str = "aos",
    n_sweeps: int = 4,
    grid_shape: tuple[int, int, int] = (14, 14, 14),
    seed: int = 2017,
) -> dict[str, float]:
    """Percent run-time shares per component group (Table II/III rows)."""
    app = build_app(
        n_orbitals=n_orbitals,
        grid_shape=grid_shape,
        layout=layout,
        engine=engine,
        seed=seed,
    )
    run_profiled(app, n_sweeps=n_sweeps)
    return app.timers.shares()


if __name__ == "__main__":
    raise SystemExit(main())
