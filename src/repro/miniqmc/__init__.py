"""repro.miniqmc — the miniQMC drivers (paper Figs. 3/6) and the full app.

* :mod:`repro.miniqmc.config` — paper-scale and host-scale configurations;
* :mod:`repro.miniqmc.driver` — kernel-only drivers for layout studies;
* :mod:`repro.miniqmc.app` — the profiled full application (Tables II/III
  and the miniQMC speedup headline).
"""

from repro.miniqmc.app import (
    AppInstance,
    TimedProxy,
    build_app,
    profile_shares,
    run_profiled,
)
from repro.miniqmc.config import (
    MiniQmcConfig,
    live_app_config,
    live_kernel_config,
    paper_coral,
    paper_sweep_sizes,
    random_coefficients,
)
from repro.miniqmc.driver import DriverResult, run_kernel_driver, run_tiled_driver
from repro.miniqmc.ensemble import EnsembleResult, WalkerEnsemble

__all__ = [
    "MiniQmcConfig",
    "paper_coral",
    "paper_sweep_sizes",
    "live_kernel_config",
    "live_app_config",
    "random_coefficients",
    "DriverResult",
    "run_kernel_driver",
    "run_tiled_driver",
    "WalkerEnsemble",
    "EnsembleResult",
    "AppInstance",
    "TimedProxy",
    "build_app",
    "run_profiled",
    "profile_shares",
]
