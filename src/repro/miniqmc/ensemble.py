"""Walker-ensemble driver — the paper's outer parallelism level.

Paper Fig. 3, L12-13: independent walkers are created in an
``omp parallel`` region, each with private outputs, sharing only the
read-only coefficient table.  This module is that outer level: it owns
``Nw`` walkers, runs their sample batches (optionally on a thread pool —
walker-level threading is the *conventional* QMC parallelization the
paper contrasts with Opt C), and accounts the memory the paper worries
about: "the overall memory usage on a node increase[s] as O(Nw N^2)".
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.layout_fused import BsplineFused
from repro.core.layout_soa import BsplineSoA
from repro.core.layout_aos import BsplineAoS
from repro.perf.throughput import throughput
from repro.resilience.guards import GuardedEngine

__all__ = ["EnsembleResult", "WalkerEnsemble"]

_ENGINES = {"aos": BsplineAoS, "soa": BsplineSoA, "fused": BsplineFused}


@dataclass
class EnsembleResult:
    """Outcome of one ensemble batch run."""

    n_walkers: int
    n_samples: int
    kernel: str
    seconds: float
    throughput: float
    output_bytes_per_walker: int
    table_bytes: int

    @property
    def total_output_bytes(self) -> int:
        """The O(Nw * N) walker-private output footprint."""
        return self.n_walkers * self.output_bytes_per_walker


class WalkerEnsemble:
    """Nw independent walkers over one shared read-only table.

    Parameters
    ----------
    grid:
        The interpolation grid.
    coefficients:
        The shared table (never copied; sharing it is the point —
        "all the threads share the read only coefficient table", Sec. III).
    n_walkers:
        Ensemble size.
    engine:
        ``"aos"``, ``"soa"`` or ``"fused"``.
    seed:
        Master seed; each walker draws its own position stream.
    guard_policy:
        When set (``"raise"``, ``"recompute"`` or ``"count"``), every
        kernel output is validated for NaN/Inf through a
        :class:`~repro.resilience.guards.GuardedEngine` — a corrupted
        shared table poisons *every* walker, so the ensemble is where
        loud detection pays off.  ``None`` (default) adds no overhead.
    reference_table:
        Pristine float64 table for the ``"recompute"`` repair path.
    """

    def __init__(
        self,
        grid: Grid3D,
        coefficients: np.ndarray,
        n_walkers: int,
        engine: str = "soa",
        seed: int = 2017,
        guard_policy: str | None = None,
        reference_table: np.ndarray | None = None,
    ):
        if n_walkers <= 0:
            raise ValueError(f"n_walkers must be positive, got {n_walkers}")
        if engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        self.grid = grid
        self.engine_kind = engine
        self.n_walkers = int(n_walkers)
        # ONE engine object: the table is shared; outputs are per walker.
        self.engine = _ENGINES[engine](grid, coefficients)
        if guard_policy is not None:
            self.engine = GuardedEngine(
                self.engine, guard_policy, reference_table=reference_table
            )
        self.outputs = [self.engine.new_output(Kind.VGH) for _ in range(n_walkers)]
        seqs = np.random.SeedSequence(seed).spawn(n_walkers)
        self.rngs = [np.random.default_rng(s) for s in seqs]
        self.table_bytes = coefficients.nbytes

    def run_batch(
        self,
        kernel: str = "vgh",
        n_samples: int = 8,
        walker_threads: int = 1,
    ) -> EnsembleResult:
        """Every walker evaluates ``kernel`` at ``n_samples`` fresh points.

        Parameters
        ----------
        walker_threads:
            Size of the walker-level thread pool (the conventional QMC
            parallelization; 1 = sequential walkers).
        """
        kind = kernel if isinstance(kernel, Kind) else Kind(kernel)
        kernel = kind.value
        kern = getattr(self.engine, kernel)

        def one_walker(w: int) -> None:
            positions = self.grid.random_positions(n_samples, self.rngs[w])
            out = self.outputs[w]
            for x, y, z in positions:
                kern(x, y, z, out)

        t0 = time.perf_counter()
        if walker_threads > 1:
            with ThreadPoolExecutor(max_workers=walker_threads) as pool:
                list(pool.map(one_walker, range(self.n_walkers)))
        else:
            for w in range(self.n_walkers):
                one_walker(w)
        secs = time.perf_counter() - t0

        per_walker = self.outputs[0].output_bytes[kernel]
        return EnsembleResult(
            n_walkers=self.n_walkers,
            n_samples=n_samples,
            kernel=kernel,
            seconds=secs,
            throughput=throughput(
                self.n_walkers, self.engine.n_splines, secs, n_samples
            ),
            output_bytes_per_walker=per_walker,
            table_bytes=self.table_bytes,
        )
