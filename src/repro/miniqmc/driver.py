"""miniQMC kernel drivers — the Python port of paper Figs. 3 and 6.

``run_kernel_driver`` is Fig. 3: per walker, generate ns random positions
and push them through V, VGL and VGH against a shared read-only table.
``run_tiled_driver`` is Fig. 6: the same samples against an AoSoA engine,
optionally with nested threads per walker (Opt C).

On this host walkers execute sequentially (one core); since walkers share
nothing but the read-only table, per-eval cost — and therefore every
layout *comparison* — is unaffected.  The returned
:class:`DriverResult` carries the paper's throughput metric per kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.grid import Grid3D
from repro.core.layout_aos import BsplineAoS
from repro.core.layout_aosoa import BsplineAoSoA
from repro.core.layout_fused import BsplineFused
from repro.core.layout_soa import BsplineSoA
from repro.core.nested import NestedEvaluator
from repro.miniqmc.config import MiniQmcConfig, random_coefficients
from repro.perf.throughput import throughput

__all__ = ["DriverResult", "run_kernel_driver", "run_tiled_driver"]

_ENGINES = {"aos": BsplineAoS, "soa": BsplineSoA, "fused": BsplineFused}


@dataclass
class DriverResult:
    """Timings and throughputs of one driver run.

    Attributes
    ----------
    seconds:
        Wall time per kernel ("v"/"vgl"/"vgh"), summed over walkers and
        iterations.
    throughputs:
        The paper's T = Nw*N*evals/t per kernel.
    evals:
        Kernel calls per kernel name.
    """

    config: MiniQmcConfig
    engine: str
    seconds: dict[str, float] = field(default_factory=dict)
    throughputs: dict[str, float] = field(default_factory=dict)
    evals: dict[str, int] = field(default_factory=dict)


def _finalize(result: DriverResult) -> DriverResult:
    cfg = result.config
    for kern, secs in result.seconds.items():
        n_evals = result.evals[kern]
        if secs > 0:
            result.throughputs[kern] = throughput(
                1, cfg.n_splines, secs, n_evals
            )
    return result


def run_kernel_driver(
    config: MiniQmcConfig,
    engine: str = "soa",
    kernels: tuple[str, ...] = ("v", "vgl", "vgh"),
    coefficients: np.ndarray | None = None,
) -> DriverResult:
    """Paper Fig. 3: the flat (untiled) miniQMC kernel loop.

    Parameters
    ----------
    config:
        Problem and batch sizes.
    engine:
        ``"aos"``, ``"soa"`` or ``"fused"``.
    kernels:
        Which kernels to time.
    coefficients:
        Reuse a prebuilt table (avoids rebuilding across engine
        comparisons); defaults to a fresh random table.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    nx, ny, nz = config.grid_shape
    grid = Grid3D(nx, ny, nz)
    P = coefficients if coefficients is not None else random_coefficients(config)
    eng = _ENGINES[engine](grid, P)
    result = DriverResult(config=config, engine=engine)
    rng = np.random.default_rng(config.seed + 1)
    for kern in kernels:
        out = eng.new_output(kern)
        kern_fn = getattr(eng, kern)
        total = 0.0
        count = 0
        for _walker in range(config.n_walkers):
            positions = grid.random_positions(config.n_samples, rng)
            t0 = time.perf_counter()
            for _ in range(config.n_iters):
                for x, y, z in positions:
                    kern_fn(x, y, z, out)
            total += time.perf_counter() - t0
            count += config.n_iters * config.n_samples
        result.seconds[kern] = total
        result.evals[kern] = count
    return _finalize(result)


def run_tiled_driver(
    config: MiniQmcConfig,
    n_threads: int = 1,
    kernels: tuple[str, ...] = ("v", "vgl", "vgh"),
    coefficients: np.ndarray | None = None,
) -> DriverResult:
    """Paper Fig. 6: the AoSoA driver, optionally nested (Opt C).

    Requires ``config.tile_size``; with ``n_threads > 1`` the tiles of
    each walker are distributed over a thread pool exactly as Sec. V-C
    describes.
    """
    if not config.tile_size:
        raise ValueError("run_tiled_driver requires config.tile_size")
    nx, ny, nz = config.grid_shape
    grid = Grid3D(nx, ny, nz)
    P = coefficients if coefficients is not None else random_coefficients(config)
    eng = BsplineAoSoA(grid, P, config.tile_size)
    result = DriverResult(config=config, engine=f"aosoa{config.tile_size}")
    rng = np.random.default_rng(config.seed + 1)
    nested = NestedEvaluator(eng, n_threads) if n_threads > 1 else None
    try:
        for kern in kernels:
            out = eng.new_output(kern)
            total = 0.0
            count = 0
            for _walker in range(config.n_walkers):
                positions = grid.random_positions(config.n_samples, rng)
                t0 = time.perf_counter()
                for _ in range(config.n_iters):
                    if nested is not None:
                        nested.evaluate(kern, positions, out)
                    else:
                        kern_fn = getattr(eng, kern)
                        for x, y, z in positions:
                            kern_fn(x, y, z, out)
                total += time.perf_counter() - t0
                count += config.n_iters * config.n_samples
            result.seconds[kern] = total
            result.evals[kern] = count
    finally:
        if nested is not None:
            nested.close()
    return _finalize(result)
