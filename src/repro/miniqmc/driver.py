"""miniQMC kernel drivers — the Python port of paper Figs. 3 and 6.

``run_kernel_driver`` is Fig. 3: per walker, generate ns random positions
and push them through V, VGL and VGH against a shared read-only table.
``run_tiled_driver`` is Fig. 6: the same samples against an AoSoA engine,
optionally with nested threads per walker (Opt C).

On this host walkers execute sequentially (one core); since walkers share
nothing but the read-only table, per-eval cost — and therefore every
layout *comparison* — is unaffected.  The returned
:class:`DriverResult` carries the paper's throughput metric per kernel.

Resilience: both drivers accept ``checkpoint_every`` (walkers) /
``checkpoint_path`` / ``resume`` so a killed benchmark run does not
repeat completed work — the checkpoint carries accumulated per-kernel
seconds/evals plus the exact RNG state, so the resumed run consumes the
same position stream the uninterrupted run would have.
``run_tiled_driver`` additionally takes a
:class:`~repro.resilience.retry.RetryPolicy` that wraps the nested
evaluator in bounded retry-with-backoff and single-threaded fallback
(:class:`~repro.resilience.retry.ResilientEvaluator`).

Process parallelism: both drivers accept ``processes`` — walkers are
sharded over a :class:`~repro.parallel.pool.ProcessCrowdPool` whose
workers attach the coefficient table through a
:class:`~repro.parallel.shared_table.SharedTable` (one physical copy, as
in paper Fig. 3, at process scope).  In process mode each walker draws
its positions from its own ``SeedSequence(seed+1, spawn_key=(walker,))``
stream, so per-kernel eval counts and position streams are identical for
any process count (including ``processes=1``); the sequential
``processes=None`` path keeps its historical single-stream behaviour.
Checkpointing is a sequential-mode feature — combining it with
``processes`` raises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.batched import BsplineBatched
from repro.core.coeffs import pad_table_3d
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.layout_aos import BsplineAoS
from repro.core.layout_aosoa import BsplineAoSoA
from repro.core.layout_fused import BsplineFused
from repro.core.layout_soa import BsplineSoA
from repro.core.nested import NestedEvaluator
from repro.miniqmc.config import MiniQmcConfig, random_coefficients
from repro.obs import OBS, kernel_bytes_moved
from repro.perf.throughput import throughput
from repro.resilience.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.resilience.retry import ResilientEvaluator, RetryPolicy

__all__ = ["DriverResult", "run_kernel_driver", "run_tiled_driver"]

_ENGINES = {"aos": BsplineAoS, "soa": BsplineSoA, "fused": BsplineFused}


def _as_kinds(kernels) -> tuple[Kind, ...]:
    """Normalise a driver ``kernels`` argument to :class:`Kind` members.

    Configuration-style normalisation (silent): the drivers' own defaults
    are spelled as strings, and result dictionaries keep string keys.
    """
    return tuple(k if isinstance(k, Kind) else Kind(k) for k in kernels)


@dataclass
class DriverResult:
    """Timings and throughputs of one driver run.

    Attributes
    ----------
    seconds:
        Wall time per kernel ("v"/"vgl"/"vgh"), summed over walkers and
        iterations.
    throughputs:
        The paper's T = Nw*N*evals/t per kernel.
    evals:
        Kernel calls per kernel name.
    retries, fallbacks:
        Worker-failure retries absorbed and single-threaded fallbacks
        taken by the nested evaluator (tiled driver with a retry policy).
    """

    config: MiniQmcConfig
    engine: str
    seconds: dict[str, float] = field(default_factory=dict)
    throughputs: dict[str, float] = field(default_factory=dict)
    evals: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    fallbacks: int = 0


def _finalize(result: DriverResult) -> DriverResult:
    cfg = result.config
    for kern, secs in result.seconds.items():
        n_evals = result.evals[kern]
        if secs > 0 and n_evals > 0:
            result.throughputs[kern] = throughput(
                1, cfg.n_splines, secs, n_evals
            )
        else:
            # Unmeasurably fast (timer granularity) or nothing evaluated:
            # downstream reporting still needs the key present.
            result.throughputs[kern] = float("inf") if n_evals > 0 else 0.0
    return result


def _driver_fingerprint(config: MiniQmcConfig, engine: str, kernels) -> dict:
    """What must match for a driver checkpoint to be resumable."""
    return {
        "engine": engine,
        "n_splines": config.n_splines,
        "grid_shape": list(config.grid_shape),
        "n_samples": config.n_samples,
        "n_iters": config.n_iters,
        "n_walkers": config.n_walkers,
        "tile_size": config.tile_size,
        "chunk_size": config.chunk_size,
        "backend": config.backend,
        "seed": config.seed,
        "kernels": [k.value for k in _as_kinds(kernels)],
    }


def _save_driver_checkpoint(
    path, fingerprint: dict, result: DriverResult, ki: int, walker: int, rng
) -> None:
    save_checkpoint(
        path,
        {
            "kind": "kernel_driver",
            "fingerprint": fingerprint,
            "kernel_index": ki,
            "walkers_done": walker,
            "seconds": result.seconds,
            "evals": result.evals,
            "rng_state": rng_state(rng),
        },
    )


def _resume_driver(resume, fingerprint: dict, result: DriverResult):
    """Restore progress counters; returns (kernel_index, walkers_done, rng)."""
    ckpt = load_checkpoint(resume, expect_kind="kernel_driver")
    if ckpt.manifest["fingerprint"] != fingerprint:
        raise CheckpointError(
            f"driver checkpoint does not match this run: saved "
            f"{ckpt.manifest['fingerprint']!r}, requested {fingerprint!r}"
        )
    result.seconds.update(ckpt.manifest["seconds"])
    result.evals.update({k: int(v) for k, v in ckpt.manifest["evals"].items()})
    return (
        int(ckpt.manifest["kernel_index"]),
        int(ckpt.manifest["walkers_done"]),
        restore_rng(ckpt.manifest["rng_state"]),
    )


def _batched_run_config(config: MiniQmcConfig):
    """The batched engine's :class:`~repro.config.RunConfig`, resolved
    parent-side (rungs 1-4) so process shards inherit identical blocking.
    """
    cfg = config.run_config()
    if not cfg.is_resolved:
        cfg = cfg.resolved_for(
            config.n_splines,
            batch=max(config.n_samples, 1),
            dtype=config.dtype,
        )
    return cfg


def _checkpoint_args_ok(checkpoint_every: int | None, checkpoint_path) -> None:
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")


# -- process-parallel walker sharding ----------------------------------------


class _DriverShard:
    """Worker-process state for the process-parallel kernel drivers.

    Attaches the shared coefficient table, builds its engine once, and
    evaluates its contiguous walker range per ``run(kern)`` call.  Each
    walker's positions come from ``SeedSequence(seed+1, spawn_key=(w,))``
    — a function of the global walker index only, so shard boundaries
    cannot change what gets evaluated.
    """

    def __init__(self, worker_id: int, table_spec: dict, payload: dict):
        from repro.parallel.shared_table import SharedTable
        from repro.parallel.sharding import shard_slices

        self._table = SharedTable.attach(table_spec)
        config: MiniQmcConfig = payload["config"]
        nx, ny, nz = config.grid_shape
        self.grid = Grid3D(nx, ny, nz)
        if payload["engine"].startswith("aosoa"):
            self.eng = BsplineAoSoA(self.grid, self._table.array, config.tile_size)
        elif payload["engine"] == "batched":
            # The parent shared a ghost-padded table; adopt it zero-copy.
            # Blocking comes pre-resolved from the parent; only the
            # backend resolves here — fleet-worker policy, degrading to
            # NumPy (warned + counted) if this process can't serve it.
            cfg = payload["run_config"]
            if cfg.backend is not None and not hasattr(cfg.backend, "capability"):
                from repro.backends import resolve_backend

                cfg = cfg.replace(
                    backend=resolve_backend(cfg.backend, fallback=True)
                )
            self.eng = BsplineBatched(self.grid, self._table.array, config=cfg)
        else:
            self.eng = _ENGINES[payload["engine"]](self.grid, self._table.array)
        self.engine_name = payload["engine"]
        self.config = config
        shard = shard_slices(config.n_walkers, payload["n_workers"])[worker_id]
        self.walkers = range(shard.start, shard.stop)

    def run(self, kern: str) -> dict:
        """Evaluate kernel ``kern`` for every walker of this shard."""
        config = self.config
        kind = Kind(kern)
        batched = isinstance(self.eng, BsplineBatched)
        if batched:
            out = self.eng.new_output(kind, n=config.n_samples)
        else:
            out = self.eng.new_output(kind)
            kern_fn = getattr(self.eng, kind.value)
        count = 0
        t0 = time.perf_counter()
        for w in self.walkers:
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=config.seed + 1, spawn_key=(w,))
            )
            positions = self.grid.random_positions(config.n_samples, rng)
            for _ in range(config.n_iters):
                if batched:
                    self.eng.evaluate_batch(kind, positions, out)
                else:
                    for x, y, z in positions:
                        kern_fn(x, y, z, out)
            count += config.n_iters * config.n_samples
        dt = time.perf_counter() - t0
        if OBS.enabled and count:
            layout = "aos" if self.engine_name == "aos" else "soa"
            OBS.kernel_eval(
                self.engine_name,
                kern,
                count,
                dt,
                count
                * kernel_bytes_moved(
                    kern, layout, config.n_splines, self._table.dtype.itemsize
                ),
            )
        return {"evals": count, "seconds": dt}

    def close(self) -> None:
        self.eng = None
        try:
            self._table.close()
        except BufferError:
            pass


def _init_driver_shard(worker_id: int, table_spec: dict, payload: dict):
    return _DriverShard(worker_id, table_spec, payload)


def _run_sharded(
    config: MiniQmcConfig,
    engine_name: str,
    kernels,
    P: np.ndarray,
    processes: int,
    start_method: str | None = None,
) -> DriverResult:
    """The shared process-mode loop behind both kernel drivers.

    Per kernel, one scatter/gather round over the pool; the recorded
    seconds are parent wall-clock (the number speedups come from), and
    the eval counts are the sum over shards — identical for any
    ``processes``.
    """
    from repro.parallel.pool import ProcessCrowdPool
    from repro.parallel.shared_table import SharedTable

    result = DriverResult(config=config, engine=engine_name)
    # The batched engine wants the ghost-padded table in the shared
    # segment so every worker attaches the halo zero-copy.
    shared = SharedTable.create(
        pad_table_3d(P) if engine_name == "batched" else P
    )
    table_spec = dict(shared.spec, n_workers=processes)
    payload = {
        "config": config,
        "engine": engine_name,
        "n_workers": processes,
        "run_config": (
            _batched_run_config(config) if engine_name == "batched" else None
        ),
    }
    try:
        with ProcessCrowdPool(
            processes,
            _init_driver_shard,
            (table_spec, payload),
            start_method=start_method,
        ) as pool:
            for kind in _as_kinds(kernels):
                kern = kind.value
                t0 = time.perf_counter()
                shards = pool.broadcast("run", kern)
                result.seconds[kern] = time.perf_counter() - t0
                result.evals[kern] = sum(s["evals"] for s in shards)
            pool.merge_metrics()
    finally:
        shared.close()
        shared.unlink()
    if OBS.enabled:
        OBS.gauge("driver_processes", processes)
    return _finalize(result)


def run_kernel_driver(
    config: MiniQmcConfig,
    engine: str = "soa",
    kernels: tuple[str, ...] = ("v", "vgl", "vgh"),
    coefficients: np.ndarray | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
    processes: int | None = None,
) -> DriverResult:
    """Paper Fig. 3: the flat (untiled) miniQMC kernel loop.

    Parameters
    ----------
    config:
        Problem and batch sizes.
    engine:
        ``"aos"``, ``"soa"``, ``"fused"`` or ``"batched"``.  The
        batched engine evaluates each walker's whole sample batch in
        one call through the ghost-padded, cache-tiled path
        (:mod:`repro.core.batched`), with its blocking resolved through
        ``config.run_config()`` — explicit fields, then ``REPRO_*``
        env, then the per-host tuned DB, then the cache heuristic.
    kernels:
        Which kernels to time.
    coefficients:
        Reuse a prebuilt table (avoids rebuilding across engine
        comparisons); defaults to a fresh random table.
    checkpoint_every:
        Checkpoint progress every this many walkers (per kernel).
    checkpoint_path:
        Checkpoint directory (required with ``checkpoint_every``).
    resume:
        Checkpoint to continue from; the run configuration must match.
    processes:
        Shard walkers over this many worker processes sharing the table
        through shared memory (see the module docstring).  ``None``
        keeps the sequential in-process loop.  Mutually exclusive with
        checkpointing.
    """
    if engine not in _ENGINES and engine != "batched":
        raise ValueError(f"unknown engine {engine!r}")
    _checkpoint_args_ok(checkpoint_every, checkpoint_path)
    P = coefficients if coefficients is not None else random_coefficients(config)
    if processes is not None:
        if checkpoint_every is not None or resume is not None:
            raise ValueError(
                "checkpoint/resume is a sequential-mode feature; "
                "run with processes=None to checkpoint"
            )
        return _run_sharded(config, engine, kernels, P, processes)
    nx, ny, nz = config.grid_shape
    grid = Grid3D(nx, ny, nz)
    if engine == "batched":
        eng = BsplineBatched(grid, P, config=_batched_run_config(config))
    else:
        eng = _ENGINES[engine](grid, P)
    batched = engine == "batched"
    result = DriverResult(config=config, engine=engine)
    fingerprint = _driver_fingerprint(config, engine, kernels)
    if resume is not None:
        start_ki, start_walker, rng = _resume_driver(resume, fingerprint, result)
    else:
        start_ki, start_walker = 0, 0
        rng = np.random.default_rng(config.seed + 1)
    for ki, kind in enumerate(_as_kinds(kernels)):
        if ki < start_ki:
            continue  # fully recorded in the restored result
        kern = kind.value
        if batched:
            out = eng.new_output(kind, n=config.n_samples)
        else:
            out = eng.new_output(kind)
            kern_fn = getattr(eng, kind.value)
        if ki == start_ki and start_walker:
            total = result.seconds.get(kern, 0.0)
            count = result.evals.get(kern, 0)
            first_walker = start_walker
        else:
            total = 0.0
            count = 0
            first_walker = 0
        for walker in range(first_walker, config.n_walkers):
            positions = grid.random_positions(config.n_samples, rng)
            t0 = time.perf_counter()
            for _ in range(config.n_iters):
                if batched:
                    eng.evaluate_batch(kind, positions, out)
                else:
                    for x, y, z in positions:
                        kern_fn(x, y, z, out)
            dt = time.perf_counter() - t0
            total += dt
            n_batch = config.n_iters * config.n_samples
            count += n_batch
            result.seconds[kern] = total
            result.evals[kern] = count
            if OBS.enabled:
                OBS.kernel_eval(
                    engine,
                    kern,
                    n_batch,
                    dt,
                    n_batch
                    * kernel_bytes_moved(
                        kern, eng.layout, config.n_splines, P.itemsize
                    ),
                )
                OBS.complete(
                    f"kernel:{kern}",
                    t0,
                    dt,
                    cat="miniqmc",
                    engine=engine,
                    walker=walker,
                )
            if checkpoint_every is not None and (walker + 1) % checkpoint_every == 0:
                _save_driver_checkpoint(
                    checkpoint_path, fingerprint, result, ki, walker + 1, rng
                )
    return _finalize(result)


def run_tiled_driver(
    config: MiniQmcConfig,
    n_threads: int = 1,
    kernels: tuple[str, ...] = ("v", "vgl", "vgh"),
    coefficients: np.ndarray | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
    retry_policy: RetryPolicy | None = None,
    processes: int | None = None,
) -> DriverResult:
    """Paper Fig. 6: the AoSoA driver, optionally nested (Opt C).

    Requires ``config.tile_size``; with ``n_threads > 1`` the tiles of
    each walker are distributed over a thread pool exactly as Sec. V-C
    describes.  With ``retry_policy`` set, nested worker failures are
    retried with backoff and, once exhausted, the evaluation degrades to
    single-threaded — the run completes either way, and the result
    carries the retry/fallback counts.

    ``processes`` shards *walkers* over worker processes (the outer
    level, complementing the within-walker tile threads); it requires
    ``n_threads == 1`` and no checkpointing/retry policy (those are
    sequential-mode features).
    """
    if not config.tile_size:
        raise ValueError("run_tiled_driver requires config.tile_size")
    _checkpoint_args_ok(checkpoint_every, checkpoint_path)
    P = coefficients if coefficients is not None else random_coefficients(config)
    if processes is not None:
        if checkpoint_every is not None or resume is not None:
            raise ValueError(
                "checkpoint/resume is a sequential-mode feature; "
                "run with processes=None to checkpoint"
            )
        if n_threads != 1 or retry_policy is not None:
            raise ValueError(
                "processes shards walkers over worker processes; nested "
                "threads/retry policies apply to the sequential path only"
            )
        return _run_sharded(
            config, f"aosoa{config.tile_size}", kernels, P, processes
        )
    nx, ny, nz = config.grid_shape
    grid = Grid3D(nx, ny, nz)
    eng = BsplineAoSoA(grid, P, config.tile_size)
    result = DriverResult(config=config, engine=f"aosoa{config.tile_size}")
    fingerprint = _driver_fingerprint(config, result.engine, kernels)
    if resume is not None:
        start_ki, start_walker, rng = _resume_driver(resume, fingerprint, result)
    else:
        start_ki, start_walker = 0, 0
        rng = np.random.default_rng(config.seed + 1)
    nested = NestedEvaluator(eng, n_threads) if n_threads > 1 else None
    evaluator = nested
    if nested is not None and retry_policy is not None:
        evaluator = ResilientEvaluator(nested, retry_policy)
    if OBS.enabled:
        OBS.gauge("driver_tiles", eng.n_tiles)
        OBS.gauge("driver_threads", n_threads)
        OBS.gauge(
            "driver_tile_occupancy", min(n_threads, eng.n_tiles) / n_threads
        )
    try:
        for ki, kind in enumerate(_as_kinds(kernels)):
            if ki < start_ki:
                continue
            kern = kind.value
            out = eng.new_output(kind)
            if ki == start_ki and start_walker:
                total = result.seconds.get(kern, 0.0)
                count = result.evals.get(kern, 0)
                first_walker = start_walker
            else:
                total = 0.0
                count = 0
                first_walker = 0
            for walker in range(first_walker, config.n_walkers):
                positions = grid.random_positions(config.n_samples, rng)
                t0 = time.perf_counter()
                for _ in range(config.n_iters):
                    if evaluator is not None:
                        evaluator.evaluate(kind, positions, out)
                    else:
                        kern_fn = getattr(eng, kind.value)
                        for x, y, z in positions:
                            kern_fn(x, y, z, out)
                dt = time.perf_counter() - t0
                total += dt
                n_batch = config.n_iters * config.n_samples
                count += n_batch
                result.seconds[kern] = total
                result.evals[kern] = count
                if OBS.enabled:
                    OBS.kernel_eval(
                        result.engine,
                        kern,
                        n_batch,
                        dt,
                        n_batch
                        * kernel_bytes_moved(
                            kern, "soa", config.n_splines, P.itemsize
                        ),
                    )
                    OBS.complete(
                        f"kernel:{kern}",
                        t0,
                        dt,
                        cat="miniqmc",
                        engine=result.engine,
                        walker=walker,
                        n_threads=n_threads,
                    )
                if checkpoint_every is not None and (walker + 1) % checkpoint_every == 0:
                    _save_driver_checkpoint(
                        checkpoint_path, fingerprint, result, ki, walker + 1, rng
                    )
    finally:
        if nested is not None:
            nested.close()
    if isinstance(evaluator, ResilientEvaluator):
        result.retries = evaluator.retries
        result.fallbacks = evaluator.fallbacks
    return _finalize(result)
