"""miniQMC kernel drivers — the Python port of paper Figs. 3 and 6.

``run_kernel_driver`` is Fig. 3: per walker, generate ns random positions
and push them through V, VGL and VGH against a shared read-only table.
``run_tiled_driver`` is Fig. 6: the same samples against an AoSoA engine,
optionally with nested threads per walker (Opt C).

On this host walkers execute sequentially (one core); since walkers share
nothing but the read-only table, per-eval cost — and therefore every
layout *comparison* — is unaffected.  The returned
:class:`DriverResult` carries the paper's throughput metric per kernel.

Resilience: both drivers accept ``checkpoint_every`` (walkers) /
``checkpoint_path`` / ``resume`` so a killed benchmark run does not
repeat completed work — the checkpoint carries accumulated per-kernel
seconds/evals plus the exact RNG state, so the resumed run consumes the
same position stream the uninterrupted run would have.
``run_tiled_driver`` additionally takes a
:class:`~repro.resilience.retry.RetryPolicy` that wraps the nested
evaluator in bounded retry-with-backoff and single-threaded fallback
(:class:`~repro.resilience.retry.ResilientEvaluator`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.grid import Grid3D
from repro.core.layout_aos import BsplineAoS
from repro.core.layout_aosoa import BsplineAoSoA
from repro.core.layout_fused import BsplineFused
from repro.core.layout_soa import BsplineSoA
from repro.core.nested import NestedEvaluator
from repro.miniqmc.config import MiniQmcConfig, random_coefficients
from repro.obs import OBS, kernel_bytes_moved
from repro.perf.throughput import throughput
from repro.resilience.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.resilience.retry import ResilientEvaluator, RetryPolicy

__all__ = ["DriverResult", "run_kernel_driver", "run_tiled_driver"]

_ENGINES = {"aos": BsplineAoS, "soa": BsplineSoA, "fused": BsplineFused}


@dataclass
class DriverResult:
    """Timings and throughputs of one driver run.

    Attributes
    ----------
    seconds:
        Wall time per kernel ("v"/"vgl"/"vgh"), summed over walkers and
        iterations.
    throughputs:
        The paper's T = Nw*N*evals/t per kernel.
    evals:
        Kernel calls per kernel name.
    retries, fallbacks:
        Worker-failure retries absorbed and single-threaded fallbacks
        taken by the nested evaluator (tiled driver with a retry policy).
    """

    config: MiniQmcConfig
    engine: str
    seconds: dict[str, float] = field(default_factory=dict)
    throughputs: dict[str, float] = field(default_factory=dict)
    evals: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    fallbacks: int = 0


def _finalize(result: DriverResult) -> DriverResult:
    cfg = result.config
    for kern, secs in result.seconds.items():
        n_evals = result.evals[kern]
        if secs > 0 and n_evals > 0:
            result.throughputs[kern] = throughput(
                1, cfg.n_splines, secs, n_evals
            )
        else:
            # Unmeasurably fast (timer granularity) or nothing evaluated:
            # downstream reporting still needs the key present.
            result.throughputs[kern] = float("inf") if n_evals > 0 else 0.0
    return result


def _driver_fingerprint(config: MiniQmcConfig, engine: str, kernels) -> dict:
    """What must match for a driver checkpoint to be resumable."""
    return {
        "engine": engine,
        "n_splines": config.n_splines,
        "grid_shape": list(config.grid_shape),
        "n_samples": config.n_samples,
        "n_iters": config.n_iters,
        "n_walkers": config.n_walkers,
        "tile_size": config.tile_size,
        "seed": config.seed,
        "kernels": list(kernels),
    }


def _save_driver_checkpoint(
    path, fingerprint: dict, result: DriverResult, ki: int, walker: int, rng
) -> None:
    save_checkpoint(
        path,
        {
            "kind": "kernel_driver",
            "fingerprint": fingerprint,
            "kernel_index": ki,
            "walkers_done": walker,
            "seconds": result.seconds,
            "evals": result.evals,
            "rng_state": rng_state(rng),
        },
    )


def _resume_driver(resume, fingerprint: dict, result: DriverResult):
    """Restore progress counters; returns (kernel_index, walkers_done, rng)."""
    ckpt = load_checkpoint(resume, expect_kind="kernel_driver")
    if ckpt.manifest["fingerprint"] != fingerprint:
        raise CheckpointError(
            f"driver checkpoint does not match this run: saved "
            f"{ckpt.manifest['fingerprint']!r}, requested {fingerprint!r}"
        )
    result.seconds.update(ckpt.manifest["seconds"])
    result.evals.update({k: int(v) for k, v in ckpt.manifest["evals"].items()})
    return (
        int(ckpt.manifest["kernel_index"]),
        int(ckpt.manifest["walkers_done"]),
        restore_rng(ckpt.manifest["rng_state"]),
    )


def _checkpoint_args_ok(checkpoint_every: int | None, checkpoint_path) -> None:
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")


def run_kernel_driver(
    config: MiniQmcConfig,
    engine: str = "soa",
    kernels: tuple[str, ...] = ("v", "vgl", "vgh"),
    coefficients: np.ndarray | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
) -> DriverResult:
    """Paper Fig. 3: the flat (untiled) miniQMC kernel loop.

    Parameters
    ----------
    config:
        Problem and batch sizes.
    engine:
        ``"aos"``, ``"soa"`` or ``"fused"``.
    kernels:
        Which kernels to time.
    coefficients:
        Reuse a prebuilt table (avoids rebuilding across engine
        comparisons); defaults to a fresh random table.
    checkpoint_every:
        Checkpoint progress every this many walkers (per kernel).
    checkpoint_path:
        Checkpoint directory (required with ``checkpoint_every``).
    resume:
        Checkpoint to continue from; the run configuration must match.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    _checkpoint_args_ok(checkpoint_every, checkpoint_path)
    nx, ny, nz = config.grid_shape
    grid = Grid3D(nx, ny, nz)
    P = coefficients if coefficients is not None else random_coefficients(config)
    eng = _ENGINES[engine](grid, P)
    result = DriverResult(config=config, engine=engine)
    fingerprint = _driver_fingerprint(config, engine, kernels)
    if resume is not None:
        start_ki, start_walker, rng = _resume_driver(resume, fingerprint, result)
    else:
        start_ki, start_walker = 0, 0
        rng = np.random.default_rng(config.seed + 1)
    for ki, kern in enumerate(kernels):
        if ki < start_ki:
            continue  # fully recorded in the restored result
        out = eng.new_output(kern)
        kern_fn = getattr(eng, kern)
        if ki == start_ki and start_walker:
            total = result.seconds.get(kern, 0.0)
            count = result.evals.get(kern, 0)
            first_walker = start_walker
        else:
            total = 0.0
            count = 0
            first_walker = 0
        for walker in range(first_walker, config.n_walkers):
            positions = grid.random_positions(config.n_samples, rng)
            t0 = time.perf_counter()
            for _ in range(config.n_iters):
                for x, y, z in positions:
                    kern_fn(x, y, z, out)
            dt = time.perf_counter() - t0
            total += dt
            n_batch = config.n_iters * config.n_samples
            count += n_batch
            result.seconds[kern] = total
            result.evals[kern] = count
            if OBS.enabled:
                OBS.kernel_eval(
                    engine,
                    kern,
                    n_batch,
                    dt,
                    n_batch
                    * kernel_bytes_moved(
                        kern, eng.layout, config.n_splines, P.itemsize
                    ),
                )
                OBS.complete(
                    f"kernel:{kern}",
                    t0,
                    dt,
                    cat="miniqmc",
                    engine=engine,
                    walker=walker,
                )
            if checkpoint_every is not None and (walker + 1) % checkpoint_every == 0:
                _save_driver_checkpoint(
                    checkpoint_path, fingerprint, result, ki, walker + 1, rng
                )
    return _finalize(result)


def run_tiled_driver(
    config: MiniQmcConfig,
    n_threads: int = 1,
    kernels: tuple[str, ...] = ("v", "vgl", "vgh"),
    coefficients: np.ndarray | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
    retry_policy: RetryPolicy | None = None,
) -> DriverResult:
    """Paper Fig. 6: the AoSoA driver, optionally nested (Opt C).

    Requires ``config.tile_size``; with ``n_threads > 1`` the tiles of
    each walker are distributed over a thread pool exactly as Sec. V-C
    describes.  With ``retry_policy`` set, nested worker failures are
    retried with backoff and, once exhausted, the evaluation degrades to
    single-threaded — the run completes either way, and the result
    carries the retry/fallback counts.
    """
    if not config.tile_size:
        raise ValueError("run_tiled_driver requires config.tile_size")
    _checkpoint_args_ok(checkpoint_every, checkpoint_path)
    nx, ny, nz = config.grid_shape
    grid = Grid3D(nx, ny, nz)
    P = coefficients if coefficients is not None else random_coefficients(config)
    eng = BsplineAoSoA(grid, P, config.tile_size)
    result = DriverResult(config=config, engine=f"aosoa{config.tile_size}")
    fingerprint = _driver_fingerprint(config, result.engine, kernels)
    if resume is not None:
        start_ki, start_walker, rng = _resume_driver(resume, fingerprint, result)
    else:
        start_ki, start_walker = 0, 0
        rng = np.random.default_rng(config.seed + 1)
    nested = NestedEvaluator(eng, n_threads) if n_threads > 1 else None
    evaluator = nested
    if nested is not None and retry_policy is not None:
        evaluator = ResilientEvaluator(nested, retry_policy)
    if OBS.enabled:
        OBS.gauge("driver_tiles", eng.n_tiles)
        OBS.gauge("driver_threads", n_threads)
        OBS.gauge(
            "driver_tile_occupancy", min(n_threads, eng.n_tiles) / n_threads
        )
    try:
        for ki, kern in enumerate(kernels):
            if ki < start_ki:
                continue
            out = eng.new_output(kern)
            if ki == start_ki and start_walker:
                total = result.seconds.get(kern, 0.0)
                count = result.evals.get(kern, 0)
                first_walker = start_walker
            else:
                total = 0.0
                count = 0
                first_walker = 0
            for walker in range(first_walker, config.n_walkers):
                positions = grid.random_positions(config.n_samples, rng)
                t0 = time.perf_counter()
                for _ in range(config.n_iters):
                    if evaluator is not None:
                        evaluator.evaluate(kern, positions, out)
                    else:
                        kern_fn = getattr(eng, kern)
                        for x, y, z in positions:
                            kern_fn(x, y, z, out)
                dt = time.perf_counter() - t0
                total += dt
                n_batch = config.n_iters * config.n_samples
                count += n_batch
                result.seconds[kern] = total
                result.evals[kern] = count
                if OBS.enabled:
                    OBS.kernel_eval(
                        result.engine,
                        kern,
                        n_batch,
                        dt,
                        n_batch
                        * kernel_bytes_moved(
                            kern, "soa", config.n_splines, P.itemsize
                        ),
                    )
                    OBS.complete(
                        f"kernel:{kern}",
                        t0,
                        dt,
                        cat="miniqmc",
                        engine=result.engine,
                        walker=walker,
                        n_threads=n_threads,
                    )
                if checkpoint_every is not None and (walker + 1) % checkpoint_every == 0:
                    _save_driver_checkpoint(
                        checkpoint_path, fingerprint, result, ki, walker + 1, rng
                    )
    finally:
        if nested is not None:
            nested.close()
    if isinstance(evaluator, ResilientEvaluator):
        result.retries = evaluator.retries
        result.fallbacks = evaluator.fallbacks
    return _finalize(result)
