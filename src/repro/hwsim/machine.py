"""Machine descriptions for the paper's four processors (Table I).

Each :class:`MachineSpec` carries the published Table-I parameters
(cores, SMT, SIMD width, frequency, cache sizes, STREAM bandwidth) plus a
small set of modelling parameters that Table I does not list but the
paper's analysis relies on (LLC bandwidth, gather/scatter penalty,
single-precision lane counts, KNL's DDR-vs-MCDRAM distinction).  The
extra parameters are *architectural* constants taken from vendor
documentation, not per-experiment fudge factors; the execution-time model
(:mod:`repro.hwsim.perfmodel`) consumes them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "BDW", "KNC", "KNL", "BGQ", "MACHINES"]

KB = 1024
MB = 1024 * 1024
GB = 1.0e9  # bandwidth GB/s are decimal


@dataclass(frozen=True)
class MachineSpec:
    """One shared-memory node of a paper Table-I system.

    Attributes
    ----------
    name:
        Short identifier used throughout the benches ("BDW", "KNL", ...).
    cores:
        Physical cores used for compute (paper Table II row "# cores used"
        can be smaller; the model takes the cores actually used per run).
    smt:
        Hardware threads per core.
    simd_bits:
        Vector register width.
    freq_ghz:
        Nominal clock.
    l1d_bytes:
        Per-core L1 data cache.
    l2_bytes:
        L2 capacity per L2 domain (per core on BDW/KNC, per 2-core tile
        on KNL, the single shared 32 MB on BG/Q).
    l2_cores_per_domain:
        How many cores share one L2 domain.
    llc_bytes:
        Shared last-level cache (0 when absent: KNC/KNL; on BG/Q the big
        L2 *is* the shared LLC and is listed in both roles).
    stream_bw:
        Measured STREAM bandwidth in bytes/s (paper Table I).
    llc_bw:
        Aggregate shared-LLC bandwidth in bytes/s (0 when no shared LLC).
    ddr_bw:
        Secondary (DDR) bandwidth for KNL's flat-mode comparison; equals
        ``stream_bw`` elsewhere.
    fma_per_cycle:
        FMA issue ports per core (2 on BDW/KNL, 1 on KNC/BG/Q).
    gather_penalty:
        Model cost multiplier for strided/gathered vector memory ops
        relative to contiguous ones (large on in-order KNC and on BG/Q,
        whose QPX has no gather at all).
    smt_efficiency:
        Fraction of linear SMT scaling realized by the memory-latency-
        bound B-spline kernels (hyperthreading helps but sublinearly).
    accum_budget_bytes:
        Cache budget per hardware thread inside which in-cache output
        accumulation over the 64-point stencil stays fast; beyond it the
        64 read-modify-write passes start spilling a level down.
    nested_overhead:
        Per-extra-thread efficiency tax of nested threading (fork/join,
        tile handoff, reduced memory-level parallelism per walker);
        applied as ``1 + nested_overhead * (nth - 1)`` on walker time.
    """

    name: str
    cores: int
    smt: int
    simd_bits: int
    freq_ghz: float
    l1d_bytes: int
    l2_bytes: int
    l2_cores_per_domain: int
    llc_bytes: int
    stream_bw: float
    llc_bw: float
    ddr_bw: float
    fma_per_cycle: int
    gather_penalty: float
    smt_efficiency: float
    accum_budget_bytes: int
    nested_overhead: float

    @property
    def sp_lanes(self) -> int:
        """Single-precision SIMD lanes (BG/Q's QPX stays 4-wide in SP)."""
        if self.name == "BGQ":
            return 4
        return self.simd_bits // 32

    @property
    def dp_lanes(self) -> int:
        """Double-precision SIMD lanes."""
        return self.simd_bits // 64

    @property
    def hw_threads(self) -> int:
        """Total hardware threads on the node."""
        return self.cores * self.smt

    @property
    def peak_sp_gflops(self) -> float:
        """Peak single-precision GFLOP/s of the node (FMA counted as 2)."""
        return self.cores * self.freq_ghz * self.sp_lanes * 2.0 * self.fma_per_cycle

    @property
    def l2_total_bytes(self) -> int:
        """Aggregate L2 capacity across the node."""
        domains = max(self.cores // self.l2_cores_per_domain, 1)
        return self.l2_bytes * domains

    @property
    def has_shared_llc(self) -> bool:
        """True for BDW (L3) and BG/Q (shared L2), false for KNC/KNL."""
        return self.llc_bytes > 0

    def cache_per_thread(self) -> int:
        """Private cache budget per hardware thread (L1 + L2 share)."""
        l2_share = self.l2_bytes // (self.l2_cores_per_domain * self.smt)
        return self.l1d_bytes // self.smt + l2_share


#: 18-core Intel Xeon E5-2697v4 (Broadwell), paper Table I column 1.
BDW = MachineSpec(
    name="BDW",
    cores=18,
    smt=2,
    simd_bits=256,
    freq_ghz=2.3,
    l1d_bytes=32 * KB,
    l2_bytes=256 * KB,
    l2_cores_per_domain=1,
    llc_bytes=45 * MB,
    stream_bw=64 * GB,
    llc_bw=150 * GB,  # effective L3 bandwidth for the random stencil streams
    ddr_bw=64 * GB,
    fma_per_cycle=2,
    gather_penalty=3.0,
    smt_efficiency=0.65,
    accum_budget_bytes=40 * KB,
    nested_overhead=0.16,
)

#: 61-core Intel Xeon Phi 7120P (Knights Corner), column 2.
KNC = MachineSpec(
    name="KNC",
    cores=61,
    smt=4,
    simd_bits=512,
    freq_ghz=1.238,
    l1d_bytes=32 * KB,
    l2_bytes=512 * KB,
    l2_cores_per_domain=1,
    llc_bytes=0,
    stream_bw=177 * GB,
    llc_bw=0.0,
    ddr_bw=177 * GB,
    fma_per_cycle=1,
    gather_penalty=24.0,  # no HW scatter: strided stores serialize ~per lane
    smt_efficiency=0.55,
    accum_budget_bytes=24 * KB,
    nested_overhead=0.035,
)

#: 68-core Intel Xeon Phi 7250P (Knights Landing), column 3.
KNL = MachineSpec(
    name="KNL",
    cores=68,
    smt=4,
    simd_bits=512,
    freq_ghz=1.4,
    l1d_bytes=32 * KB,
    l2_bytes=1 * MB,
    l2_cores_per_domain=2,
    llc_bytes=0,
    stream_bw=490 * GB,  # MCDRAM flat mode, the paper's configuration
    llc_bw=0.0,
    ddr_bw=90 * GB,  # the DDR comparison point of Fig. 10
    fma_per_cycle=2,
    gather_penalty=3.5,
    smt_efficiency=0.60,
    accum_budget_bytes=24 * KB,
    nested_overhead=0.010,
)

#: 16+1-core IBM Blue Gene/Q (PowerPC A2), column 4.
BGQ = MachineSpec(
    name="BGQ",
    cores=16,
    smt=4,
    simd_bits=256,
    freq_ghz=1.6,
    l1d_bytes=16 * KB,
    l2_bytes=32 * MB,
    l2_cores_per_domain=16,
    llc_bytes=32 * MB,  # the shared L2 plays the LLC role
    stream_bw=28 * GB,
    llc_bw=30 * GB,  # high-latency shared L2: little random-read headroom
    ddr_bw=28 * GB,
    fma_per_cycle=1,
    gather_penalty=8.0,  # QPX has no gather; strided access goes scalar
    smt_efficiency=0.70,
    accum_budget_bytes=8 * KB,  # 16 KB L1 shared by 4 threads
    nested_overhead=0.16,
)

#: All four paper machines, keyed by name.
MACHINES = {m.name: m for m in (BDW, KNC, KNL, BGQ)}


def host_machine_spec(
    l2_bytes: int,
    llc_bytes: int,
    cpu_count: int = 1,
    name: str = "HOST",
) -> MachineSpec:
    """A :class:`MachineSpec` describing *this* host, for model-guided tuning.

    The empirical tuner (:mod:`repro.tune.search`) uses the execution-time
    model only to *rank* candidate blockings before measuring the
    survivors, so the spec needs the host's real cache hierarchy (the
    term the ranking is sensitive to) but can carry conservative
    laptop-class constants everywhere the model needs an absolute number
    — those cancel in the ranking.  Never used for paper figures.
    """
    llc = max(int(llc_bytes), int(l2_bytes))
    return MachineSpec(
        name=name,
        cores=max(int(cpu_count), 1),
        smt=1,
        simd_bits=256,
        freq_ghz=2.5,
        l1d_bytes=32 * KB,
        l2_bytes=max(int(l2_bytes), 64 * KB),
        l2_cores_per_domain=1,
        llc_bytes=llc,
        stream_bw=20 * GB,
        llc_bw=60 * GB,
        ddr_bw=20 * GB,
        fma_per_cycle=2,
        gather_penalty=3.0,
        smt_efficiency=0.6,
        accum_budget_bytes=32 * KB,
        nested_overhead=0.1,
    )

#: Walkers per node used throughout the paper's experiments (Sec. VI):
#: one per hardware thread actually used.
PAPER_WALKERS = {"BDW": 36, "KNC": 240, "KNL": 256, "BGQ": 64}

#: Cores actually used in the paper's runs (Table II footer).
PAPER_CORES_USED = {"BDW": 18, "KNC": 60, "KNL": 64, "BGQ": 16}
