"""Working-set arithmetic bound to machine descriptions.

The paper's Secs. V-B, VI-B and VII reason about performance exclusively
through working-set sizes vs cache capacities; this module packages that
arithmetic against :class:`~repro.hwsim.machine.MachineSpec` so the
benches (and the tests that cross-check the trace-driven cache simulator)
can ask the paper's own questions directly:

* does the Nb-slab (+ outputs) fit the shared LLC? (BDW Fig. 7c peak)
* does the per-thread output set fit the accumulation budget?
  (KNC/KNL Fig. 7c peak)
* what is the largest Nb passing each test?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tiling import (
    OUTPUT_STREAMS,
    candidate_tile_sizes,
    input_working_set_bytes,
    output_working_set_bytes,
)
from repro.hwsim.machine import MachineSpec, PAPER_WALKERS

__all__ = ["WorkingSetReport", "working_set_report", "max_llc_fitting_tile", "max_accum_fitting_tile"]


@dataclass(frozen=True)
class WorkingSetReport:
    """All working-set numbers for one configuration (bytes)."""

    machine: str
    kernel: str
    n_splines: int
    tile_size: int
    n_walkers: int
    nth: int
    input_ws: int
    output_ws_node: int
    output_ws_thread: int
    fits_llc: bool
    fits_accum: bool


def working_set_report(
    machine: MachineSpec,
    kernel: str,
    n_splines: int,
    tile_size: int,
    n_walkers: int | None = None,
    nth: int = 1,
    layout: str = "soa",
    itemsize: int = 4,
) -> WorkingSetReport:
    """Evaluate the paper's two cache-fit predicates for one configuration."""
    walkers = n_walkers if n_walkers is not None else PAPER_WALKERS.get(
        machine.name, machine.hw_threads
    )
    input_ws = input_working_set_bytes(
        48 * 48 * 48, tile_size, itemsize, nth
    )
    output_node = output_working_set_bytes(
        kernel, layout, walkers, tile_size, itemsize, nth
    )
    streams = OUTPUT_STREAMS[(kernel, layout)]
    output_thread = streams * itemsize * tile_size
    return WorkingSetReport(
        machine=machine.name,
        kernel=kernel,
        n_splines=n_splines,
        tile_size=tile_size,
        n_walkers=walkers,
        nth=nth,
        input_ws=input_ws,
        output_ws_node=output_node,
        output_ws_thread=output_thread,
        fits_llc=machine.has_shared_llc
        and input_ws + output_node <= machine.llc_bytes,
        fits_accum=output_thread <= machine.accum_budget_bytes,
    )


def max_llc_fitting_tile(
    machine: MachineSpec,
    kernel: str,
    n_splines: int,
    nth: int = 1,
    n_grid_points: int = 48 * 48 * 48,
    itemsize: int = 4,
) -> int | None:
    """Largest candidate Nb whose slab + outputs fit the shared LLC.

    Returns None on machines without a shared LLC (KNC/KNL) — where the
    paper's optimal tile is set by the accumulation budget instead.
    """
    if not machine.has_shared_llc:
        return None
    walkers = PAPER_WALKERS.get(machine.name, machine.hw_threads) // nth
    best = None
    for nb in candidate_tile_sizes(n_splines):
        input_ws = input_working_set_bytes(n_grid_points, nb, itemsize, nth)
        output_ws = output_working_set_bytes(
            kernel, "soa", max(walkers, 1), nb, itemsize, nth
        )
        if input_ws + output_ws <= machine.llc_bytes:
            best = nb
    return best


def max_accum_fitting_tile(
    machine: MachineSpec,
    kernel: str,
    n_splines: int,
    layout: str = "soa",
    itemsize: int = 4,
) -> int | None:
    """Largest candidate Nb whose per-thread outputs fit the accum budget."""
    streams = OUTPUT_STREAMS[(kernel, layout)]
    best = None
    for nb in candidate_tile_sizes(n_splines):
        if streams * itemsize * nb <= machine.accum_budget_bytes:
            best = nb
    return best
