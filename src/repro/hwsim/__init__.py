"""repro.hwsim — hardware substitution layer (see DESIGN.md).

The paper's results live on four processors this reproduction cannot run
on; this package replaces them with:

* :mod:`repro.hwsim.machine` — the Table-I machine descriptions;
* :mod:`repro.hwsim.counters` — exact FLOP/byte counts per kernel;
* :mod:`repro.hwsim.perfmodel` — the calibrated execution-time model
  that regenerates Figs. 7-9 and Table IV;
* :mod:`repro.hwsim.cache` + :mod:`repro.hwsim.trace` — a trace-driven
  set-associative cache simulator validating the working-set arithmetic;
* :mod:`repro.hwsim.wsmodel` — the paper's cache-fit predicates.
"""

from repro.hwsim.appmodel import AppWorkload, MiniQmcProfileModel
from repro.hwsim.cache import CacheStats, SetAssociativeCache
from repro.hwsim.cluster import (
    RecoveryOverheadPoint,
    StrongScalingPoint,
    recovery_overhead_curve,
    strong_scaling_curve,
)
from repro.hwsim.hierarchy import CacheHierarchy, LevelStats
from repro.hwsim.hostcal import (
    HostProfile,
    predict_fused_vgh_seconds,
    profile_host,
)
from repro.hwsim.counters import STENCIL_POINTS, KernelCounts, kernel_counts
from repro.hwsim.machine import (
    BDW,
    BGQ,
    KNC,
    KNL,
    MACHINES,
    PAPER_CORES_USED,
    PAPER_WALKERS,
    MachineSpec,
    host_machine_spec,
)
from repro.hwsim.perfmodel import (
    DEFAULT_CONFIG,
    BsplinePerfModel,
    ModelConfig,
    ModelResult,
)
from repro.hwsim.trace import TraceBuilder
from repro.hwsim.validate import (
    ValidationCase,
    validate_all,
    validate_slab_residency,
    validate_tiling_benefit,
)
from repro.hwsim.wsmodel import (
    WorkingSetReport,
    max_accum_fitting_tile,
    max_llc_fitting_tile,
    working_set_report,
)

__all__ = [
    "MachineSpec",
    "BDW",
    "KNC",
    "KNL",
    "BGQ",
    "MACHINES",
    "PAPER_WALKERS",
    "PAPER_CORES_USED",
    "host_machine_spec",
    "KernelCounts",
    "kernel_counts",
    "STENCIL_POINTS",
    "BsplinePerfModel",
    "ModelConfig",
    "ModelResult",
    "DEFAULT_CONFIG",
    "SetAssociativeCache",
    "AppWorkload",
    "MiniQmcProfileModel",
    "CacheStats",
    "CacheHierarchy",
    "LevelStats",
    "StrongScalingPoint",
    "strong_scaling_curve",
    "RecoveryOverheadPoint",
    "recovery_overhead_curve",
    "TraceBuilder",
    "ValidationCase",
    "validate_all",
    "validate_slab_residency",
    "validate_tiling_benefit",
    "HostProfile",
    "profile_host",
    "predict_fused_vgh_seconds",
    "WorkingSetReport",
    "working_set_report",
    "max_llc_fitting_tile",
    "max_accum_fitting_tile",
]
