"""Multi-level cache hierarchy simulation.

Extends the single-level simulator of :mod:`repro.hwsim.cache` to the
L1 → L2 → LLC → memory chains of the paper's machines, so tests can ask
level-resolved questions the analytical model only asserts:

* where do the output accumulators live for a given tile size?  (the
  KNC/KNL Fig. 7c mechanism: in L1/L2 up to Nb=512, spilling beyond)
* what fraction of coefficient reads is served by a shared LLC once the
  slab fits?  (the BDW/BG-Q mechanism)

The hierarchy is modelled as exclusive-of-nothing/inclusive-of-nothing
("look-aside"): each miss at level i probes level i+1, and the line is
installed at every probed level on the way back — the standard simple
multi-level model, sufficient for working-set questions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hwsim.cache import SetAssociativeCache
from repro.hwsim.machine import MachineSpec

__all__ = ["LevelStats", "CacheHierarchy"]


@dataclass(frozen=True)
class LevelStats:
    """Per-level outcome of a trace run."""

    name: str
    hits: int
    misses: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """A chain of caches; accesses fall through on miss.

    Parameters
    ----------
    levels:
        Ordered ``(name, cache)`` pairs from closest (L1) to farthest
        (LLC).  Anything missing every level counts as a memory access.
    """

    def __init__(self, levels: list[tuple[str, SetAssociativeCache]]):
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = levels
        self.memory_accesses = 0

    @classmethod
    def for_machine(
        cls, machine: MachineSpec, assoc: tuple[int, int, int] = (8, 8, 16)
    ) -> "CacheHierarchy":
        """Build the per-thread view of a paper machine's hierarchy.

        Private capacities are divided by the threads sharing them (the
        paper runs 1 walker per hardware thread), which is how the
        working-set analysis reasons about budgets.
        """
        levels: list[tuple[str, SetAssociativeCache]] = []

        def pow2_floor(x: int) -> int:
            return 1 << (max(x, 1).bit_length() - 1)

        l1 = pow2_floor(machine.l1d_bytes // machine.smt)
        levels.append(("L1", SetAssociativeCache(l1, assoc[0])))
        l2_share = pow2_floor(
            machine.l2_bytes // (machine.l2_cores_per_domain * machine.smt)
        )
        levels.append(("L2", SetAssociativeCache(l2_share, assoc[1])))
        if machine.has_shared_llc and machine.llc_bytes != machine.l2_bytes:
            llc = pow2_floor(machine.llc_bytes)
            levels.append(("LLC", SetAssociativeCache(llc, assoc[2])))
        return cls(levels)

    def access_lines(self, lines: np.ndarray) -> None:
        """Run a line trace through the hierarchy.

        Implementation note: each level filters the miss stream of the
        previous one; ``SetAssociativeCache.access_lines`` does not
        expose per-line outcomes, so misses are re-derived by running
        the level twice over the trace segment — instead we process
        line-by-line through the chain, which is exact.
        """
        lines = np.asarray(lines, dtype=np.int64)
        for line in lines:
            self._access_one(int(line))

    def _access_one(self, line: int) -> str:
        for name, cache in self.levels:
            if cache.access(line * cache.line_bytes):
                return name
        self.memory_accesses += 1
        return "MEM"

    def stats(self) -> list[LevelStats]:
        """Per-level statistics plus the memory fall-through count."""
        out = [
            LevelStats(name, cache.stats.hits, cache.stats.misses)
            for name, cache in self.levels
        ]
        out.append(LevelStats("MEM", self.memory_accesses, 0))
        return out

    def served_fraction(self, level_name: str) -> float:
        """Fraction of *total* accesses served by the named level."""
        known = {name for name, _ in self.levels} | {"MEM"}
        if level_name not in known:
            raise KeyError(f"no level named {level_name!r}")
        total = self.levels[0][1].stats.accesses
        if total == 0:
            return 0.0
        if level_name == "MEM":
            return self.memory_accesses / total
        cache = dict(self.levels)[level_name]
        return cache.stats.hits / total

    def flush(self) -> None:
        """Invalidate every level and zero all counters."""
        for _, cache in self.levels:
            cache.flush()
        self.memory_accesses = 0
