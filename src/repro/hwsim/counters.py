"""FLOP and byte counters for the B-spline kernels.

Paper Sec. IV fixes the traffic picture this module encodes: per random
input point, "64 input streams are issued to access N coefficient values.
In total, 64N stride-one reads and 13N mixed-strided accumulations are
executed", and the arithmetic intensity "is low at 1 FMA for each
accumulation of the output value".  Sec. VII adds the steady-state
main-memory truth: "the bytes transferred from the main memory are the
same, 64N reads and 10N writes" for every VGH variant once outputs are
cache-resident.

All counts are *per evaluation* (one position, all N splines) and in
single precision by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tiling import OUTPUT_STREAMS

__all__ = ["KernelCounts", "kernel_counts", "STENCIL_POINTS"]

#: The tricubic stencil size: 4 x 4 x 4 grid points per evaluation.
STENCIL_POINTS = 64

#: Cycles' worth of scalar prefactor work per evaluation (computing the
#: 3 x (4+4+4) basis weights and products; amortized over N, paper Sec. IV).
SETUP_FLOPS = 250


@dataclass(frozen=True)
class KernelCounts:
    """Static operation counts for one kernel evaluation.

    Attributes
    ----------
    flops:
        Floating-point operations (FMA = 2) for the accumulation loops
        plus prefactor setup.
    read_values:
        Coefficient values read (64N regardless of layout).
    write_values:
        Output values produced (streams * N).
    accumulations:
        Read-modify-write accumulator updates (64 * streams * N): the
        quantity that must stay in cache for the kernel to be fast.
    strided_streams:
        Output streams written with non-unit stride (what Opt A removes).
    """

    kernel: str
    layout: str
    n_splines: int
    flops: int
    read_values: int
    write_values: int
    accumulations: int
    strided_streams: int

    def read_bytes(self, itemsize: int = 4) -> int:
        """Main-memory read traffic per eval, steady state."""
        return self.read_values * itemsize

    def write_bytes(self, itemsize: int = 4) -> int:
        """Main-memory write traffic per eval, steady state (cache-resident
        accumulators: only the final values travel)."""
        return self.write_values * itemsize

    def ideal_bytes(self, itemsize: int = 4) -> int:
        """Total steady-state DRAM bytes (the Sec. VII '64N reads + 10N writes')."""
        return self.read_bytes(itemsize) + self.write_bytes(itemsize)

    def arithmetic_intensity(self, itemsize: int = 4) -> float:
        """Cache-aware AI = flops / ideal DRAM bytes (paper Fig. 10 x-axis)."""
        return self.flops / self.ideal_bytes(itemsize)


def kernel_counts(kernel: str, layout: str, n_splines: int) -> KernelCounts:
    """Operation counts for one evaluation of ``kernel`` in ``layout``.

    Parameters
    ----------
    kernel:
        ``"v"``, ``"vgl"`` or ``"vgh"``.
    layout:
        ``"aos"`` or ``"soa"`` (AoSoA tiles count as SoA per tile; tiling
        changes *where* bytes come from, not how many operations run).
    n_splines:
        N (or the tile size Nb when counting per tile).
    """
    try:
        streams = OUTPUT_STREAMS[(kernel, layout)]
    except KeyError:
        raise ValueError(f"unknown kernel/layout {(kernel, layout)!r}") from None
    n = int(n_splines)
    accum = STENCIL_POINTS * streams * n
    # Useful work: 1 FMA (2 flops) per *independent* output accumulation —
    # the AoS baseline's 3 redundant symmetric-Hessian streams are extra
    # traffic and extra instructions but not extra useful FLOPs, which is
    # why its cache-aware AI sits *below* the SoA point in paper Fig. 10.
    useful_streams = OUTPUT_STREAMS[(kernel, "soa")]
    useful = STENCIL_POINTS * useful_streams * n
    flops = 2 * useful + 2 * useful_streams * STENCIL_POINTS + SETUP_FLOPS
    strided = {
        ("v", "aos"): 0,
        ("v", "soa"): 0,
        ("vgl", "aos"): 3,  # the 3-strided gradient components
        ("vgl", "soa"): 0,
        ("vgh", "aos"): 12,  # 3 gradient + 9 Hessian strided streams
        ("vgh", "soa"): 0,
    }[(kernel, layout)]
    return KernelCounts(
        kernel=kernel,
        layout=layout,
        n_splines=n,
        flops=flops,
        read_values=STENCIL_POINTS * n,
        write_values=streams * n,
        accumulations=accum,
        strided_streams=strided,
    )
