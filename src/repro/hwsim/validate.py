"""Systematic model-vs-trace validation of the cache mechanisms.

The execution-time model rests on two working-set claims the paper
asserts and this module verifies mechanically, at scaled-down sizes,
with the exact LRU cache simulator:

1. **Slab residency**: the tiled coefficient slab stays cache-resident
   iff its working set fits the capacity (the LLC/Fig-7c mechanism);
2. **Tiling benefit**: at fixed cache capacity and fixed total work,
   smaller tiles raise the hit rate (the Opt-B mechanism).

``validate_all`` runs a grid of scaled scenarios and returns a report
the tests assert on and the CLI can print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hwsim.cache import SetAssociativeCache
from repro.hwsim.trace import TraceBuilder

__all__ = ["ValidationCase", "validate_slab_residency", "validate_tiling_benefit", "validate_all"]


@dataclass(frozen=True)
class ValidationCase:
    """One scaled scenario: predicted fit vs simulated hit rate."""

    description: str
    slab_bytes: int
    cache_bytes: int
    predicted_fits: bool
    hit_rate: float
    passed: bool


def validate_slab_residency(
    grid_shape: tuple[int, int, int] = (10, 10, 10),
    cache_bytes: int = 1 << 19,
    tile_sizes: tuple[int, ...] = (16, 32, 64, 256, 512),
    n_samples: int = 50,
    seed: int = 4,
    hit_threshold: float = 0.8,
) -> list[ValidationCase]:
    """Check: slab fits cache <=> steady-state hit rate is high.

    For every tile size, the working-set prediction (``4*Ng*Nb`` vs the
    capacity) must agree with what the LRU simulator measures, with a
    margin band (cases within 2x of capacity are skipped as inherently
    marginal — associativity and output interleaving blur the edge).
    """
    rng = np.random.default_rng(seed)
    ng = int(np.prod(grid_shape))
    cases = []
    for nb in tile_sizes:
        slab = 4 * ng * nb
        if 0.5 * cache_bytes <= slab <= 2.0 * cache_bytes:
            continue  # marginal band: no sharp prediction either way
        predicted = slab < cache_bytes
        tb = TraceBuilder(grid_shape, nb)
        cache = SetAssociativeCache(cache_bytes, assoc=16)
        idx = tb.random_position_indices(n_samples, rng)
        cache.access_lines(tb.walker_trace(idx, "vgh", "soa"))
        rate = cache.stats.hit_rate
        passed = (rate >= hit_threshold) == predicted
        cases.append(
            ValidationCase(
                description=f"slab-residency Nb={nb}",
                slab_bytes=slab,
                cache_bytes=cache_bytes,
                predicted_fits=predicted,
                hit_rate=rate,
                passed=passed,
            )
        )
    return cases


def validate_tiling_benefit(
    grid_shape: tuple[int, int, int] = (8, 8, 8),
    n_splines: int = 128,
    cache_bytes: int = 1 << 17,
    n_samples: int = 30,
    seed: int = 5,
) -> ValidationCase:
    """Check: re-blocking raises the hit rate at fixed cache and work."""
    rng = np.random.default_rng(seed)
    rates = {}
    for nb in (n_splines, 16):
        tb = TraceBuilder(grid_shape, n_splines, tile_size=nb)
        cache = SetAssociativeCache(cache_bytes, assoc=16)
        idx = tb.random_position_indices(n_samples, rng)
        cache.access_lines(tb.walker_trace(idx, "vgh", "soa"))
        rates[nb] = cache.stats.hit_rate
    ng = int(np.prod(grid_shape))
    return ValidationCase(
        description=f"tiling-benefit N={n_splines} Nb=16 vs untiled",
        slab_bytes=4 * ng * 16,
        cache_bytes=cache_bytes,
        predicted_fits=True,
        hit_rate=rates[16] - rates[n_splines],
        passed=rates[16] > rates[n_splines],
    )


def validate_all() -> list[ValidationCase]:
    """The full validation battery (tests assert every case passes)."""
    cases = validate_slab_residency()
    cases.append(validate_tiling_benefit())
    return cases
