"""Cache-line address traces for B-spline kernel evaluations.

Generates the exact line-touch sequence one walker produces against a
(possibly tiled) coefficient table: per evaluation, 64 stride-one read
streams through ``P[i][j][k][0..Nb)`` plus the output-accumulator
read-modify-write traffic (paper Sec. IV).  Feeding these traces through
:mod:`repro.hwsim.cache` validates the working-set arithmetic the
performance model relies on — e.g. the Fig. 7c claim that a Nb=64 slab is
LLC-resident on BDW while Nb=128 is not shows up directly as a hit-rate
cliff.

Address space layout (line granularity, 64-byte lines):

* the coefficient table starts at 0; tile ``t`` occupies its own
  contiguous region (AoSoA re-blocking is physical);
* output buffers live far above the table (no false conflicts).
"""

from __future__ import annotations

import numpy as np

from repro.core.tiling import OUTPUT_STREAMS

__all__ = ["TraceBuilder"]

LINE = 64


class TraceBuilder:
    """Builds per-walker line traces for a tiled B-spline table.

    Parameters
    ----------
    grid_shape:
        ``(nx, ny, nz)`` of the coefficient grid.
    n_splines:
        Total N.
    tile_size:
        Nb (= N for untiled).
    itemsize:
        4 for the paper's single precision.
    """

    def __init__(
        self,
        grid_shape: tuple[int, int, int],
        n_splines: int,
        tile_size: int | None = None,
        itemsize: int = 4,
    ):
        self.nx, self.ny, self.nz = grid_shape
        self.n_splines = int(n_splines)
        self.tile_size = int(tile_size or n_splines)
        if self.n_splines % self.tile_size:
            raise ValueError(
                f"tile size {self.tile_size} must divide N={self.n_splines}"
            )
        self.n_tiles = self.n_splines // self.tile_size
        self.itemsize = itemsize
        self.row_bytes = self.tile_size * itemsize
        self.tile_bytes = self.nx * self.ny * self.nz * self.row_bytes
        # Output region starts on a fresh 1 GiB boundary above the table.
        self.output_base = ((self.tile_bytes * self.n_tiles) // 2**30 + 1) * 2**30

    def _row_lines(self, tile: int, i: int, j: int, k: int) -> np.ndarray:
        """Line ids of one stride-one read stream P[i][j][k][:Nb]."""
        base = tile * self.tile_bytes + (
            (i * self.ny + j) * self.nz + k
        ) * self.row_bytes
        first = base // LINE
        last = (base + self.row_bytes - 1) // LINE
        return np.arange(first, last + 1, dtype=np.int64)

    def read_lines_for_eval(
        self, tile: int, i0: int, j0: int, k0: int
    ) -> np.ndarray:
        """All 64 input streams of one evaluation against one tile."""
        chunks = []
        for di in range(4):
            for dj in range(4):
                for dk in range(4):
                    chunks.append(
                        self._row_lines(
                            tile,
                            (i0 - 1 + di) % self.nx,
                            (j0 - 1 + dj) % self.ny,
                            (k0 - 1 + dk) % self.nz,
                        )
                    )
        return np.concatenate(chunks)

    def output_lines(self, tile: int, kernel: str, layout: str) -> np.ndarray:
        """Line ids of the output accumulators for one tile.

        SoA streams are contiguous per component; AoS interleaving spans
        the same lines (strides < line size), so at line granularity both
        cover ``streams * Nb * itemsize`` bytes — the layout difference is
        an instruction-level effect, which is exactly why the *cache*
        simulator validates working sets while the SIMD penalty lives in
        the execution-time model instead.
        """
        streams = OUTPUT_STREAMS[(kernel, layout)]
        nbytes = streams * self.tile_size * self.itemsize
        base = self.output_base + tile * (nbytes + LINE)
        return np.arange(base // LINE, (base + nbytes - 1) // LINE + 1, dtype=np.int64)

    def eval_trace(
        self,
        tile: int,
        i0: int,
        j0: int,
        k0: int,
        kernel: str = "vgh",
        layout: str = "soa",
        accumulate_passes: int = 4,
    ) -> np.ndarray:
        """Full line trace of one evaluation: reads interleaved with
        accumulator traffic.

        ``accumulate_passes`` controls how often the output lines are
        re-touched across the 64-point loop (the real kernel touches them
        64 times; 4 interleaved passes reproduce the same residency
        behaviour at a fraction of the trace length).
        """
        reads = self.read_lines_for_eval(tile, i0, j0, k0)
        outs = self.output_lines(tile, kernel, layout)
        pieces = []
        read_chunks = np.array_split(reads, accumulate_passes)
        for chunk in read_chunks:
            pieces.append(chunk)
            pieces.append(outs)
        return np.concatenate(pieces)

    def walker_trace(
        self,
        positions_idx: np.ndarray,
        kernel: str = "vgh",
        layout: str = "soa",
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Trace of a walker running all tiles for a batch of evaluations.

        Parameters
        ----------
        positions_idx:
            ``(ns, 3)`` integer grid indices (i0, j0, k0) of the random
            positions, e.g. from ``rng.integers``.
        """
        pieces = []
        for tile in range(self.n_tiles):
            for i0, j0, k0 in np.asarray(positions_idx):
                pieces.append(
                    self.eval_trace(tile, int(i0), int(j0), int(k0), kernel, layout)
                )
        return np.concatenate(pieces)

    def random_position_indices(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform random grid indices, shape ``(count, 3)``."""
        return np.stack(
            [
                rng.integers(0, self.nx, count),
                rng.integers(0, self.ny, count),
                rng.integers(0, self.nz, count),
            ],
            axis=1,
        )
