"""Set-associative LRU cache simulation.

The analytical model in :mod:`repro.hwsim.perfmodel` asserts things like
"a 4*Ng*Nb-byte slab fits a 45 MB L3" — this module lets the tests *check*
such claims mechanically: feed the address trace of a kernel through a
faithful set-associative LRU cache and observe the hit rate jump exactly
where the working-set arithmetic predicts.

Addresses are processed at cache-line granularity.  The implementation
favours clarity over raw speed (it is a test oracle, not a production
simulator), but uses flat NumPy arrays for the tag/LRU state so traces of
a few million lines remain tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "SetAssociativeCache"]


@dataclass
class CacheStats:
    """Hit/miss counters for one simulated cache."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit; 0.0 before any access."""
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A classic set-associative cache with true-LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be ``assoc * line_bytes * n_sets`` with a
        power-of-two set count.
    assoc:
        Ways per set.  ``assoc >= size/line`` gives a fully-associative
        cache.
    line_bytes:
        Cache-line size (64 on every paper machine).
    """

    def __init__(self, size_bytes: int, assoc: int = 8, line_bytes: int = 64):
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("size, associativity and line size must be positive")
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"size {size_bytes} not divisible by assoc*line "
                f"({assoc}*{line_bytes})"
            )
        n_sets = size_bytes // (assoc * line_bytes)
        if n_sets & (n_sets - 1):
            raise ValueError(f"set count {n_sets} must be a power of two")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        # tags[set, way]; -1 = invalid.  stamp[set, way] = last-use time.
        self._tags = np.full((n_sets, assoc), -1, dtype=np.int64)
        self._stamp = np.zeros((n_sets, assoc), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset_stats(self) -> None:
        """Zero the counters without flushing cache contents."""
        self.stats = CacheStats()

    def flush(self) -> None:
        """Invalidate all lines and zero the counters."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.reset_stats()

    def access(self, addr: int) -> bool:
        """Touch one byte address; returns True on hit.

        Misses install the line, evicting the LRU way of its set.
        """
        line = addr >> self._line_shift
        s = line & self._set_mask
        tag = line >> 0  # full line id as tag (set bits redundant but harmless)
        self._clock += 1
        tags = self._tags[s]
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            self._stamp[s, hit_ways[0]] = self._clock
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        victim = int(np.argmin(self._stamp[s]))
        empty = np.nonzero(tags == -1)[0]
        if empty.size:
            victim = int(empty[0])
        self._tags[s, victim] = tag
        self._stamp[s, victim] = self._clock
        return False

    def access_lines(self, lines: np.ndarray) -> int:
        """Touch a sequence of *line ids* (not byte addresses); returns hits.

        The bulk entry point for trace simulation; semantically identical
        to calling :meth:`access` per line.
        """
        lines = np.asarray(lines, dtype=np.int64)
        hits = 0
        tags = self._tags
        stamp = self._stamp
        mask = self._set_mask
        clock = self._clock
        for line in lines:
            s = line & mask
            clock += 1
            row = tags[s]
            w = -1
            for way in range(self.assoc):  # small, fixed trip count
                if row[way] == line:
                    w = way
                    break
            if w >= 0:
                stamp[s, w] = clock
                hits += 1
                continue
            srow = stamp[s]
            victim = 0
            best = srow[0]
            for way in range(self.assoc):
                if row[way] == -1:
                    victim = way
                    break
                if srow[way] < best:
                    best = srow[way]
                    victim = way
            row[victim] = line
            srow[victim] = clock
        self._clock = clock
        self.stats.hits += hits
        self.stats.misses += len(lines) - hits
        return hits
