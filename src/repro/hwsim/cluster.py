"""Multi-node strong-scaling model (paper's 16-KNL-node claim).

Paper Sec. I: "We provide an efficient nested threading implementation
for each walker … and demonstrate more than 14x reduction in the
time-to-solution on 16 KNL nodes."  The recipe (Sec. V-C / VI-C): keep
the *total* walker population fixed, spread it over ``n_nodes`` nodes,
and use ``nth = n_nodes`` threads per walker so each node still fills its
hardware threads; MPI efficiency is taken as perfect, "well justified
since the MPI efficiency remains perfect up to 1000s of nodes" (Sec.
V-C, ref [12]).

Time-to-solution for a fixed population then scales as the per-walker
rate, i.e. the Opt-C curve of :class:`~repro.hwsim.perfmodel.BsplinePerfModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.machine import MachineSpec
from repro.hwsim.perfmodel import BsplinePerfModel

__all__ = ["StrongScalingPoint", "strong_scaling_curve"]


@dataclass(frozen=True)
class StrongScalingPoint:
    """One node count on the strong-scaling curve."""

    n_nodes: int
    nth: int
    tile_size: int
    time_reduction: float  # vs the 1-node AoSoA optimum
    parallel_efficiency: float


def strong_scaling_curve(
    machine: MachineSpec,
    kernel: str = "vgh",
    n_splines: int = 2048,
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[StrongScalingPoint]:
    """Model the fixed-population multi-node scaling of the paper.

    Each point uses ``nth = n_nodes`` threads per walker (the paper's
    configuration: population divided among nodes, each walker sped up
    by nested threading), with the model choosing the best admissible
    tile size per nth.

    Returns
    -------
    list of StrongScalingPoint
        ``time_reduction`` is relative to 1 node running the AoSoA
        optimum; the paper's headline is the 16-node value (>14x).
    """
    model = BsplinePerfModel(machine)
    ref = model.speedups(kernel, n_splines, 1)
    points = []
    for nodes in node_counts:
        s = model.speedups(kernel, n_splines, nodes)
        reduction = s["C"] / ref["B"]
        points.append(
            StrongScalingPoint(
                n_nodes=nodes,
                nth=nodes,
                tile_size=s["nb_nested"],
                time_reduction=reduction,
                parallel_efficiency=reduction / nodes,
            )
        )
    return points
