"""Multi-node strong-scaling model (paper's 16-KNL-node claim).

Paper Sec. I: "We provide an efficient nested threading implementation
for each walker … and demonstrate more than 14x reduction in the
time-to-solution on 16 KNL nodes."  The recipe (Sec. V-C / VI-C): keep
the *total* walker population fixed, spread it over ``n_nodes`` nodes,
and use ``nth = n_nodes`` threads per walker so each node still fills its
hardware threads; MPI efficiency is taken as perfect, "well justified
since the MPI efficiency remains perfect up to 1000s of nodes" (Sec.
V-C, ref [12]).

Time-to-solution for a fixed population then scales as the per-walker
rate, i.e. the Opt-C curve of :class:`~repro.hwsim.perfmodel.BsplinePerfModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.machine import MachineSpec
from repro.hwsim.perfmodel import BsplinePerfModel

__all__ = [
    "StrongScalingPoint",
    "strong_scaling_curve",
    "RecoveryOverheadPoint",
    "recovery_overhead_curve",
]


@dataclass(frozen=True)
class StrongScalingPoint:
    """One node count on the strong-scaling curve."""

    n_nodes: int
    nth: int
    tile_size: int
    time_reduction: float  # vs the 1-node AoSoA optimum
    parallel_efficiency: float


def strong_scaling_curve(
    machine: MachineSpec,
    kernel: str = "vgh",
    n_splines: int = 2048,
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[StrongScalingPoint]:
    """Model the fixed-population multi-node scaling of the paper.

    Each point uses ``nth = n_nodes`` threads per walker (the paper's
    configuration: population divided among nodes, each walker sped up
    by nested threading), with the model choosing the best admissible
    tile size per nth.

    Returns
    -------
    list of StrongScalingPoint
        ``time_reduction`` is relative to 1 node running the AoSoA
        optimum; the paper's headline is the 16-node value (>14x).
    """
    model = BsplinePerfModel(machine)
    ref = model.speedups(kernel, n_splines, 1)
    points = []
    for nodes in node_counts:
        s = model.speedups(kernel, n_splines, nodes)
        reduction = s["C"] / ref["B"]
        points.append(
            StrongScalingPoint(
                n_nodes=nodes,
                nth=nodes,
                tile_size=s["nb_nested"],
                time_reduction=reduction,
                parallel_efficiency=reduction / nodes,
            )
        )
    return points


@dataclass(frozen=True)
class RecoveryOverheadPoint:
    """Modeled cost of worker recovery at one node count.

    ``expected_failures`` is the mean failure count over the run
    (exponential failures, node-hours / MTBF); ``recovery_overhead`` is
    the fraction of run time spent re-doing work after those failures;
    ``effective_time_reduction`` is the strong-scaling reduction after
    paying it.
    """

    n_nodes: int
    run_seconds: float
    expected_failures: float
    recovery_overhead: float
    time_reduction: float
    effective_time_reduction: float


def recovery_overhead_curve(
    machine: MachineSpec,
    mttr_seconds: float,
    single_node_run_seconds: float,
    node_mtbf_hours: float = 2000.0,
    kernel: str = "vgh",
    n_splines: int = 2048,
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[RecoveryOverheadPoint]:
    """Extrapolate measured recovery cost to the multi-node machine model.

    The fleet supervisor's MTTR is measured on one host (the
    ``bench_pr6`` driver); this folds it into the strong-scaling model:
    at ``n`` nodes the run shrinks along the Opt-C curve, but the
    failure rate grows with the node count — the classic checkpoint/
    restart tension.  Expected failures over a run of length ``T`` on
    ``n`` nodes are ``n * T / MTBF``; each costs one MTTR (restart +
    deterministic replay of the in-flight generation), so the overhead
    fraction is ``failures * mttr / T``, and the *effective* time
    reduction divides the ideal one by ``1 + overhead``.

    Parameters
    ----------
    machine:
        The modeled machine (e.g. :data:`~repro.hwsim.KNL`).
    mttr_seconds:
        Measured mean time to recovery of one worker failure.
    single_node_run_seconds:
        Wall time of the whole run on one node.
    node_mtbf_hours:
        Mean time between failures of a single node (2000 h ~ a
        commodity cluster node's hardware failure rate).
    """
    if mttr_seconds < 0:
        raise ValueError(f"mttr_seconds must be >= 0, got {mttr_seconds}")
    if single_node_run_seconds <= 0:
        raise ValueError(
            f"single_node_run_seconds must be positive, got "
            f"{single_node_run_seconds}"
        )
    if node_mtbf_hours <= 0:
        raise ValueError(f"node_mtbf_hours must be positive, got {node_mtbf_hours}")
    scaling = strong_scaling_curve(machine, kernel, n_splines, node_counts)
    points = []
    for p in scaling:
        # time_reduction is 1.0 at one node, so this is the 1-node time
        # shrunk along the strong-scaling curve.
        run_seconds = single_node_run_seconds / p.time_reduction
        expected_failures = p.n_nodes * run_seconds / (node_mtbf_hours * 3600.0)
        overhead = (
            expected_failures * mttr_seconds / run_seconds if run_seconds else 0.0
        )
        points.append(
            RecoveryOverheadPoint(
                n_nodes=p.n_nodes,
                run_seconds=run_seconds,
                expected_failures=expected_failures,
                recovery_overhead=overhead,
                time_reduction=p.time_reduction,
                effective_time_reduction=p.time_reduction / (1.0 + overhead),
            )
        )
    return points
