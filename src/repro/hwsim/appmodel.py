"""Application-level cost model: the Table II/III profiles on paper hardware.

The kernel model (:mod:`repro.hwsim.perfmodel`) covers B-splines; the QMC
profile also contains distance tables, Jastrow evaluation and the "rest"
(determinant updates, SPO assembly — paper Sec. IV).  This module adds
per-move cost models for those groups so the *profiles* of Tables II/III
can be produced for the paper's machines, not just measured on this host.

Per particle move the application executes:

* one B-spline VGH evaluation over the N orbitals (modelled exactly by
  :class:`BsplinePerfModel`);
* two distance-table row updates (e-e over Nel entries, e-ion over Nion)
  — vectorizable arithmetic whose AoS form suffers the same strided-
  access penalty as the kernels;
* Jastrow ratio/gradient work over the same rows (1D spline evaluations);
* a Sherman-Morrison rank-1 update of the (N x N) inverse on acceptance
  plus ratio assembly — the "rest".

Cycle/byte constants per table entry were calibrated once against Table
II's BDW/KNL columns and frozen; Table III then follows with *no further
freedom* by switching the DT/Jastrow layouts to SoA and renormalizing
over the three miniQMC groups (miniQMC drops most of the "rest").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hwsim.machine import MachineSpec, PAPER_WALKERS
from repro.hwsim.perfmodel import BsplinePerfModel

__all__ = ["AppWorkload", "MiniQmcProfileModel"]


@dataclass(frozen=True)
class AppWorkload:
    """Problem sizes of the profiled application (CORAL 4x4x1 defaults)."""

    n_orbitals: int = 128
    n_electrons: int = 256
    n_ions: int = 64
    n_grid_points: int = 48 * 48 * 60

    @property
    def entries_per_move(self) -> int:
        """Distance-table entries touched per particle move."""
        return self.n_electrons + self.n_ions


#: Calibrated *effective* cycles per distance-table entry (vectorization
#: and strided-access penalties already folded in per layout).
DT_CYCLES = {"aos": 240.0, "soa": 47.0}
#: Effective cycles per Jastrow entry (1D spline eval + reduction).
J_CYCLES = {"aos": 125.0, "soa": 19.0}
#: Bytes moved per table entry (positions in, displacement+distance out).
DT_BYTES = {"aos": 40.0, "soa": 24.0}
J_BYTES = {"aos": 16.0, "soa": 8.0}
#: Sherman-Morrison + assembly cost per move, per N^2 element: the rank-1
#: inverse update streams the whole (N x N) inverse through memory.
REST_CYCLES_PER_N2 = 1.0
REST_BYTES_PER_N2 = 8.0


class MiniQmcProfileModel:
    """Per-move component times and profile shares for one machine.

    Parameters
    ----------
    machine:
        Target machine.
    workload:
        Application sizes (defaults to CORAL 4x4x1).
    """

    def __init__(self, machine: MachineSpec, workload: AppWorkload | None = None):
        self.machine = machine
        self.workload = workload or AppWorkload()
        self.kernel_model = BsplinePerfModel(
            machine, n_grid_points=self.workload.n_grid_points
        )

    def _vector_time(self, cycles: float, bytes_: float) -> float:
        """Node-serialized seconds for a vectorizable per-move chunk."""
        m = self.machine
        walkers = PAPER_WALKERS.get(m.name, m.hw_threads)
        tpc = max(1, math.ceil(walkers / m.cores))
        t_cpu = cycles / self.kernel_model.node_cycle_capacity(tpc)
        t_mem = bytes_ / (m.stream_bw * 0.8)
        return t_cpu + t_mem

    def component_times(
        self, bspline_layout: str = "aos", other_layout: str = "aos"
    ) -> dict[str, float]:
        """Node-serialized seconds per particle move, by component group.

        Parameters
        ----------
        bspline_layout:
            ``"aos"`` (public-QMCPACK baseline), ``"soa"`` or ``"aosoa"``.
        other_layout:
            Layout of distance tables + Jastrow (``"aos"`` or ``"soa"``).
        """
        w = self.workload
        m = self.machine
        lanes = m.sp_lanes
        if bspline_layout == "aosoa":
            nb, _ = self.kernel_model.best_tile_size("vgh", w.n_orbitals)
            bs = self.kernel_model.evaluate("vgh", "aosoa", w.n_orbitals, nb)
        else:
            bs = self.kernel_model.evaluate("vgh", bspline_layout, w.n_orbitals)
        entries = w.entries_per_move
        t_dt = self._vector_time(
            DT_CYCLES[other_layout] * entries, DT_BYTES[other_layout] * entries
        )
        t_j = self._vector_time(
            J_CYCLES[other_layout] * entries, J_BYTES[other_layout] * entries
        )
        n2 = float(w.n_orbitals) ** 2
        t_rest = self._vector_time(
            REST_CYCLES_PER_N2 * n2 / lanes, REST_BYTES_PER_N2 * n2
        )
        return {
            "bspline": bs.t_eval,
            "distance_tables": t_dt,
            "jastrow": t_j,
            "rest": t_rest,
        }

    def table2_profile(self) -> dict[str, float]:
        """Table II: percentage shares with everything AoS, rest included."""
        t = self.component_times("aos", "aos")
        total = sum(t.values())
        return {k: 100.0 * v / total for k, v in t.items()}

    def table3_profile(self) -> dict[str, float]:
        """Table III: SoA DT/Jastrow, AoS B-spline, shares over the three
        miniQMC groups (the miniapp has no full determinant machinery)."""
        t = self.component_times("aos", "soa")
        groups = {k: t[k] for k in ("bspline", "distance_tables", "jastrow")}
        total = sum(groups.values())
        return {k: 100.0 * v / total for k, v in groups.items()}
