"""Execution-time model for B-spline kernels on the paper's machines.

This is the substitution layer for hardware we do not have (DESIGN.md):
an additive compute + memory time model whose terms implement exactly the
mechanisms the paper describes, evaluated per kernel/layout/tile-size:

Compute term (cycles):
    * per-tile prefactor setup (amortized over Nb — the paper's reason
      small tiles lose: "the amortized cost of redundant computations of
      the prefactors", Sec. VI-B);
    * 64 stencil points x Nb/lanes vector groups x per-stream cost: one
      FMA for contiguous streams, a gather/scatter penalty for strided
      (AoS) streams — the Opt-A mechanism;
    * the baseline VGL multi-pass/temporary-array overhead that Opt A's
      "basic optimizations" remove (paper Sec. V-A);
    * node capacity = cores x freq x SMT boost (hyperthreading hides
      latency sublinearly).

Memory term (bytes / bandwidth):
    * 64 Nb reads per tile per eval, from DRAM — or from the shared LLC
      when the paper's working-set test ``4 Ng Nb nth + outputs <= LLC``
      passes (BDW L3 / BG/Q L2), with a DRAM refetch of the slab
      amortized over the samples processed per tile visit;
    * ``streams x Nb`` ideal writes, multiplied by a spill factor when
      the per-thread output working set exceeds the accumulation budget
      (the large-N collapse of Fig. 7a and its cure in Fig. 7b);
    * random access reaches a fraction of STREAM bandwidth; tiling
      shortens strides and recovers most of it (Sec. V-B "shortens the
      stride for outer dimensions").

Nested threading (Opt C) adds tile-partition imbalance, a per-eval join
cost, and the nth-scaled input working set that shrinks the optimal tile
on shared-LLC machines (Sec. V-C) — while the walker count drops by nth,
keeping the output set constant.

Calibration: the architectural constants live in
:class:`~repro.hwsim.machine.MachineSpec`; the model-shape constants live
in :class:`ModelConfig` with a single default instance used everywhere.
EXPERIMENTS.md records model-vs-paper for every figure this model feeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.tiling import (
    OUTPUT_STREAMS,
    candidate_tile_sizes,
    input_working_set_bytes,
)
from repro.hwsim.counters import STENCIL_POINTS, kernel_counts
from repro.hwsim.machine import MachineSpec, PAPER_WALKERS

__all__ = ["ModelConfig", "ModelResult", "BsplinePerfModel", "DEFAULT_CONFIG"]

#: Default grid for the paper's sweep (48^3, Sec. VI).
DEFAULT_NG = 48 * 48 * 48


@dataclass(frozen=True)
class ModelConfig:
    """Shape constants of the execution-time model (machine-independent).

    Attributes
    ----------
    setup_cycles:
        Prefactor + loop-entry cost per tile per evaluation.
    load_cost:
        Vector-load issue cost per Nb/lanes group per stencil point.
    spill_k:
        Strength of the write-spill multiplier once the output working
        set exceeds the accumulation budget (calibrated so the untiled
        N=4096 write-traffic blowup matches the paper's VTune ratio of
        ~4x, Sec. VI-B).
    random_read_eff:
        Fraction of STREAM bandwidth achieved by the untiled random
        64-stream access pattern.
    tiled_read_eff:
        Same with tiling (shorter strides, better pages/TLB).
    samples_per_tile_visit:
        Evaluations a walker performs against one tile before moving on
        (miniQMC's ns; amortizes the slab refetch on LLC machines).
    vgl_baseline_passes:
        How many sweeps over the coefficients the *baseline* (pre-Opt-A)
        VGL makes (einspline's non-unrolled z loop), per machine — the
        distributions shipped different VGL code paths per platform, so
        the baseline's badness is platform-specific (paper Sec. V-A
        "basic optimizations ... provide greater overall speedup").
    vgl_baseline_temp_factor:
        Extra traffic factor for the baseline VGL's in-loop temporaries,
        in units of one 64*Nb read stream.
    sync_cycles:
        Per-thread join cost per evaluation under nested threading.
    """

    setup_cycles: float = 600.0
    load_cost: float = 0.5
    spill_k: float = 6.0
    random_read_eff: float = 0.75
    tiled_read_eff: float = 0.95
    samples_per_tile_visit: int = 512
    vgl_baseline_passes: tuple = (("BDW", 2.6), ("KNC", 1.7), ("KNL", 3.3), ("BGQ", 5.5))
    vgl_baseline_temp_factor: float = 2.0
    sync_cycles: float = 400.0


DEFAULT_CONFIG = ModelConfig()


@dataclass(frozen=True)
class ModelResult:
    """Modelled performance of one configuration.

    Attributes
    ----------
    evals_per_sec:
        Node-level kernel evaluations per second (all walkers).
    throughput:
        The paper's T = evals/sec x N, in spline-values per second.
    t_eval:
        Node-serialized seconds per evaluation (1 / evals_per_sec).
    t_compute, t_read, t_write:
        Additive components of ``t_eval``.
    bound:
        ``"compute"`` or ``"memory"`` — the larger component.
    dram_bytes, llc_bytes:
        Per-evaluation traffic by source.
    flops:
        Per-evaluation FLOPs (for roofline points).
    """

    machine: str
    kernel: str
    layout: str
    n_splines: int
    tile_size: int
    n_threads: int
    evals_per_sec: float
    throughput: float
    t_eval: float
    t_compute: float
    t_read: float
    t_write: float
    dram_bytes: float
    llc_bytes: float
    flops: float

    @property
    def bound(self) -> str:
        return "compute" if self.t_compute >= self.t_read + self.t_write else "memory"


class BsplinePerfModel:
    """The additive compute+memory model for one machine.

    Parameters
    ----------
    machine:
        The target :class:`~repro.hwsim.machine.MachineSpec`.
    config:
        Model-shape constants; the defaults are used for every result in
        EXPERIMENTS.md.
    n_grid_points:
        Ng of the coefficient grid (48^3 default, the paper's sweep).
    """

    def __init__(
        self,
        machine: MachineSpec,
        config: ModelConfig = DEFAULT_CONFIG,
        n_grid_points: int = DEFAULT_NG,
    ):
        self.machine = machine
        self.config = config
        self.ng = int(n_grid_points)

    # -- elementary terms ----------------------------------------------------

    def node_cycle_capacity(self, threads_per_core: int | None = None) -> float:
        """Aggregate cycles/second with SMT latency hiding.

        ``1 + smt_eff * (t - 1)`` of linear scaling for t threads/core.
        """
        m = self.machine
        t = threads_per_core if threads_per_core is not None else m.smt
        t = max(1, min(t, m.smt))
        boost = 1.0 + m.smt_efficiency * (t - 1)
        return m.cores * m.freq_ghz * 1e9 * boost

    def tile_cycles(self, kernel: str, layout: str, tile_size: int) -> float:
        """Compute cycles for one evaluation of one tile."""
        m, cfg = self.machine, self.config
        streams = OUTPUT_STREAMS[(kernel, layout)]
        lanes = m.sp_lanes
        groups = max(tile_size / lanes, 1.0)
        if layout == "aos":
            strided = {"v": 0, "vgl": 3, "vgh": 12}[kernel]
        else:
            strided = 0
        contiguous = streams - min(strided, streams)
        per_group = (
            cfg.load_cost
            + contiguous / m.fma_per_cycle
            + strided * m.gather_penalty
        )
        cycles = cfg.setup_cycles + STENCIL_POINTS * groups * per_group
        if kernel == "vgl" and layout == "aos":
            # The pre-Opt-A einspline VGL sweeps the stencil multiple
            # times (no z unrolling) — scale the loop body accordingly.
            cycles = cfg.setup_cycles + (cycles - cfg.setup_cycles) * (
                self.vgl_passes
            )
        return cycles

    @property
    def vgl_passes(self) -> float:
        """Baseline-VGL sweep count for this machine."""
        return dict(self.config.vgl_baseline_passes).get(self.machine.name, 3.0)

    def write_spill_multiplier(self, kernel: str, layout: str, tile_size: int) -> float:
        """Traffic inflation when per-thread outputs exceed the accum budget."""
        m, cfg = self.machine, self.config
        streams = OUTPUT_STREAMS[(kernel, layout)]
        ws = streams * 4 * tile_size
        budget = m.accum_budget_bytes
        if ws <= budget:
            return 1.0
        return 1.0 + cfg.spill_k * (1.0 - budget / ws)

    def slab_fits_llc(self, tile_size: int, n_walkers: int, kernel: str, layout: str, nth: int) -> bool:
        """The paper's working-set test: active slab(s) + outputs <= LLC."""
        m = self.machine
        if not m.has_shared_llc:
            return False
        input_ws = input_working_set_bytes(self.ng, tile_size, 4, nth)
        streams = OUTPUT_STREAMS[(kernel, layout)]
        output_ws = streams * 4 * n_walkers * tile_size * nth
        return input_ws + output_ws <= m.llc_bytes

    # -- the model ----------------------------------------------------------------

    def evaluate(
        self,
        kernel: str,
        layout: str,
        n_splines: int,
        tile_size: int | None = None,
        n_walkers: int | None = None,
        nth: int = 1,
    ) -> ModelResult:
        """Model one configuration; see :class:`ModelResult`.

        Parameters
        ----------
        kernel:
            ``"v"``, ``"vgl"`` or ``"vgh"``.
        layout:
            ``"aos"``, ``"soa"`` or ``"aosoa"`` (aosoa = SoA + tiling).
        n_splines:
            Total N.
        tile_size:
            Nb; None means untiled (Nb = N).  Required != N only for
            ``layout="aosoa"``.
        n_walkers:
            Defaults to the paper's per-machine walker count, divided by
            ``nth`` (the strong-scaling rule of Sec. V-C).
        nth:
            Threads per walker (Opt C); 1 reproduces Opts A/B.
        """
        m, cfg = self.machine, self.config
        if layout == "aosoa":
            counts_layout = "soa"
            tiled = True
        elif layout in ("aos", "soa"):
            counts_layout = layout
            tiled = tile_size is not None and tile_size < n_splines
        else:
            raise ValueError(f"unknown layout {layout!r}")
        nb = int(tile_size) if tile_size else int(n_splines)
        if n_splines % nb:
            raise ValueError(f"tile size {nb} must divide N={n_splines}")
        n_tiles = n_splines // nb
        nth = max(1, min(nth, n_tiles))
        base_walkers = n_walkers if n_walkers is not None else PAPER_WALKERS.get(
            m.name, m.hw_threads
        )
        walkers = max(1, base_walkers // nth) if n_walkers is None else base_walkers

        # ---- compute time (node-serialized seconds per evaluation) ----
        per_tile = self.tile_cycles(kernel, counts_layout, nb)
        tiles_per_thread = math.ceil(n_tiles / nth)
        imbalance = tiles_per_thread * nth / n_tiles  # >= 1
        cycles_eval = per_tile * n_tiles * imbalance
        if nth > 1:
            cycles_eval += cfg.sync_cycles * nth
        threads_used = walkers * nth
        tpc = max(1, math.ceil(threads_used / m.cores))
        t_compute = cycles_eval / self.node_cycle_capacity(tpc)

        # ---- memory traffic per evaluation (all tiles) ----
        counts = kernel_counts(kernel, counts_layout, nb)
        read_bytes = counts.read_bytes(4) * n_tiles
        write_bytes = (
            counts.write_bytes(4)
            * self.write_spill_multiplier(kernel, counts_layout, nb)
            * n_tiles
        )
        if kernel == "vgl" and counts_layout == "aos":
            # Baseline VGL: multiple coefficient sweeps + temp traffic.
            read_bytes *= self.vgl_passes
            read_bytes += cfg.vgl_baseline_temp_factor * counts.read_bytes(4) * n_tiles

        if tiled:
            read_eff = cfg.tiled_read_eff
        else:
            # Untiled reads degrade further as the coefficient rows grow
            # past ~2 pages (N > 2048 in SP): the 64 streams touch 64
            # distant row starts per eval and TLB reach runs out — the
            # reason V (pure reads) still gains 1.85x from tiling at
            # N=4096 (paper Fig. 8) while gaining only 1.3x at N=2048.
            row_bytes = 4.0 * n_splines
            degrade = min(1.0, 8192.0 / row_bytes) ** 0.35
            read_eff = cfg.random_read_eff * degrade
        llc_bytes = 0.0
        dram_read = read_bytes
        refetch_bytes = 0.0
        if tiled and self.slab_fits_llc(nb, walkers, kernel, counts_layout, nth):
            # Reads come from the shared LLC; the slab itself streams in
            # from DRAM once per tile visit, amortized over the samples a
            # walker runs against the tile *and* over the co-phased
            # walkers sharing the resident slab (the paper counts one
            # slab for the whole node, Sec. VI-B).
            llc_bytes = read_bytes
            dram_read = 0.0
            # One pass over the whole table per ns samples per walker
            # group: the nth concurrently-active slabs are *different*
            # tiles, so the per-generation DRAM traffic is the full table
            # once (4*Ng*N), independent of nth.
            table_bytes = input_working_set_bytes(self.ng, nb, 4, 1) * n_tiles
            refetch_bytes = table_bytes / (
                cfg.samples_per_tile_visit * max(walkers, 1)
            )
        t_read = (
            dram_read / (m.stream_bw * read_eff)
            + (llc_bytes / (m.llc_bw * read_eff) if llc_bytes else 0.0)
            + refetch_bytes / m.stream_bw
        )
        t_write = write_bytes / m.stream_bw

        # Bandwidth is a node resource; with fewer active threads than the
        # node has, a single walker cannot saturate it — but the paper's
        # configurations always fill the node, so no undersubscription
        # correction is applied.  Nested threading pays a per-extra-thread
        # efficiency tax (fork/join, tile handoff, reduced per-walker MLP).
        t_eval = t_compute + t_read + t_write
        if nth > 1:
            t_eval *= 1.0 + m.nested_overhead * (nth - 1)
        evals = 1.0 / t_eval
        return ModelResult(
            machine=m.name,
            kernel=kernel,
            layout=layout,
            n_splines=n_splines,
            tile_size=nb,
            n_threads=nth,
            evals_per_sec=evals,
            throughput=evals * n_splines,
            t_eval=t_eval,
            t_compute=t_compute,
            t_read=t_read,
            t_write=t_write,
            dram_bytes=dram_read + refetch_bytes + write_bytes,
            llc_bytes=llc_bytes,
            flops=counts.flops * n_tiles,
        )

    # -- derived sweeps -------------------------------------------------------------

    def best_tile_size(
        self,
        kernel: str,
        n_splines: int,
        nth: int = 1,
        minimum: int = 16,
    ) -> tuple[int, dict[int, float]]:
        """Model-optimal Nb (argmax throughput) over the Fig. 7c candidates."""
        sweep: dict[int, float] = {}
        for nb in candidate_tile_sizes(n_splines, minimum):
            if nth > 1 and n_splines // nb < nth:
                continue  # every thread needs at least one tile
            res = self.evaluate(kernel, "aosoa", n_splines, nb, nth=nth)
            sweep[nb] = res.throughput
        if not sweep:
            raise ValueError(
                f"no admissible tile size for N={n_splines}, nth={nth}"
            )
        return max(sweep, key=sweep.get), sweep

    def speedups(self, kernel: str, n_splines: int, nth: int) -> dict[str, float]:
        """Opt A/B/C time speedups vs the AoS baseline (paper Table IV).

        The C entry includes the strong-scaling factor nth: with nth
        threads per walker and Nw/nth walkers, each walker's time drops
        by ~nth on top of the single-walker AoSoA gain.
        """
        base = self.evaluate(kernel, "aos", n_splines)
        soa = self.evaluate(kernel, "soa", n_splines)
        nb_opt, _ = self.best_tile_size(kernel, n_splines)
        aosoa = self.evaluate(kernel, "aosoa", n_splines, nb_opt)
        nb_nested, _ = self.best_tile_size(kernel, n_splines, nth=nth)
        nested = self.evaluate(kernel, "aosoa", n_splines, nb_nested, nth=nth)
        # Per-walker rate: node evals/sec divided by walkers on the node.
        walkers_base = PAPER_WALKERS.get(self.machine.name, self.machine.hw_threads)
        per_walker_base = base.evals_per_sec / walkers_base
        per_walker_nested = nested.evals_per_sec / max(1, walkers_base // nth)
        return {
            "A": soa.evals_per_sec / base.evals_per_sec,
            "B": aosoa.evals_per_sec / base.evals_per_sec,
            "C": per_walker_nested / per_walker_base,
            "nb_opt": nb_opt,
            "nb_nested": nb_nested,
        }

    def evaluate_threaded_over_n(
        self, kernel: str, n_splines: int, nth: int
    ) -> ModelResult:
        """The rejected alternative of Sec. V-C: threads split the inner N
        loop *without* re-blocking the table.

        Differences vs the tiled nested path, per the paper's reasoning
        ("does not reap the benefits of smaller working sets"):

        * reads keep the untiled random-access efficiency — each thread
          strides through a slice of every full-width row, so no page/TLB
          or LLC-residency benefit appears;
        * the per-thread output slice does shrink (that part is free),
          but the shared input set never fits anywhere;
        * the same sync and nested-overhead costs apply.
        """
        m, cfg = self.machine, self.config
        nth = max(1, nth)
        res = self.evaluate(kernel, "soa", n_splines)
        # Remove the single-walker serialization: same node-level compute
        # and traffic, but per-walker time drops ~nth with the nested tax.
        slice_n = max(n_splines // nth, 1)
        spill = self.write_spill_multiplier(kernel, "soa", slice_n)
        counts = kernel_counts(kernel, "soa", n_splines)
        write_bytes = counts.write_bytes(4) * spill
        row_bytes = 4.0 * n_splines
        degrade = min(1.0, 8192.0 / row_bytes) ** 0.35
        t_read = counts.read_bytes(4) / (m.stream_bw * cfg.random_read_eff * degrade)
        t_write = write_bytes / m.stream_bw
        cycles = self.tile_cycles(kernel, "soa", n_splines) + cfg.sync_cycles * nth
        walkers = max(1, PAPER_WALKERS.get(m.name, m.hw_threads) // nth)
        tpc = max(1, math.ceil(walkers * nth / m.cores))
        t_compute = cycles / self.node_cycle_capacity(tpc)
        t_eval = (t_compute + t_read + t_write) * (
            1.0 + m.nested_overhead * (nth - 1)
        )
        evals = 1.0 / t_eval
        return ModelResult(
            machine=m.name,
            kernel=kernel,
            layout="threaded-over-N",
            n_splines=n_splines,
            tile_size=n_splines,
            n_threads=nth,
            evals_per_sec=evals,
            throughput=evals * n_splines,
            t_eval=t_eval,
            t_compute=t_compute,
            t_read=t_read,
            t_write=t_write,
            dram_bytes=counts.read_bytes(4) + write_bytes,
            llc_bytes=0.0,
            flops=counts.flops,
        )

    def nested_efficiency(self, kernel: str, n_splines: int, nth: int) -> float:
        """Parallel efficiency of Opt C vs the nth=1 AoSoA optimum (Fig. 9)."""
        s = self.speedups(kernel, n_splines, nth)
        b = self.speedups(kernel, n_splines, 1)
        return (s["C"] / b["B"]) / nth
