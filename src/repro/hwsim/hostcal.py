"""Host calibration: measure THIS machine and validate the model on it.

The execution-time model is calibrated against the paper's published
numbers — which leaves the question of whether its *mechanisms* predict
real hardware.  This module closes that loop on the only hardware we do
have: the host.  It measures

* sustained memory bandwidth (a STREAM-triad analogue on NumPy arrays),
* NumPy dispatch overhead (the host's analogue of instruction issue —
  in interpreted kernels the per-call cost is a first-class term),

and predicts the fused VGH kernel's per-evaluation time from first
principles (traffic of the contraction chain / bandwidth + per-call
dispatch), to be compared against live measurements by the validation
bench.  No fitting against the kernel being predicted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "HostProfile",
    "measure_stream_bandwidth",
    "measure_dispatch_overhead",
    "profile_host",
    "predict_fused_vgh_seconds",
]

#: NumPy calls the fused VGH path makes per evaluation: locate/weights
#: (~6 small ops), 3 tensordots, 6 (4,N) contractions, 10 output matmuls
#: + assignments.  Counted from repro.core.layout_fused.
FUSED_VGH_CALLS = 28

#: Bytes moved per spline per evaluation by the fused chain, counted from
#: the contraction tree: 3 tensordots each stream the (4,4,4,N) block in
#: and a (4,4,N) result out (tensordot's internal copy doubles the
#: input); 6 contractions of (4,4,N) -> (4,N); 10 final (4,N) -> (N)
#: products + stores.  In float32 units of 4 bytes:
#: 3*(2*256 + 16) + 6*(16 + 4) + 10*(4 + 1) = 1754 values/spline.
FUSED_VGH_VALUES_PER_SPLINE = 1754


@dataclass(frozen=True)
class HostProfile:
    """Measured characteristics of the host."""

    stream_bw: float  # bytes/second
    dispatch_overhead: float  # seconds per NumPy call


def measure_stream_bandwidth(size_mb: int = 32, repeats: int = 5) -> float:
    """Sustained triad bandwidth ``a = b + s*c`` in bytes/second.

    Counts 3 array touches (two reads, one write) per element, the
    STREAM convention.
    """
    n = size_mb * 1024 * 1024 // 8
    b = np.random.default_rng(0).random(n)
    c = np.random.default_rng(1).random(n)
    a = np.empty_like(b)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.multiply(c, 3.0, out=a)
        a += b
        best = min(best, time.perf_counter() - t0)
    # NumPy cannot fuse the triad, so the two passes touch five arrays'
    # worth of memory: read c, write a, then read a, read b, write a.
    return 5.0 * n * 8 / best


def measure_dispatch_overhead(repeats: int = 20000) -> float:
    """Per-call cost of a tiny NumPy operation (seconds)."""
    x = np.zeros(8)
    t0 = time.perf_counter()
    for _ in range(repeats):
        x += 1.0
    return (time.perf_counter() - t0) / repeats


def profile_host() -> HostProfile:
    """Measure the host once; ~0.5 s."""
    return HostProfile(
        stream_bw=measure_stream_bandwidth(),
        dispatch_overhead=measure_dispatch_overhead(),
    )


def predict_fused_vgh_seconds(
    n_splines: int, host: HostProfile, itemsize: int = 4
) -> float:
    """First-principles prediction of one fused-VGH evaluation's time.

    ``t = calls * dispatch + traffic / bandwidth`` — the host analogue of
    the paper machines' compute + memory decomposition, with interpreter
    dispatch playing the role of instruction issue.
    """
    traffic = FUSED_VGH_VALUES_PER_SPLINE * n_splines * itemsize
    return FUSED_VGH_CALLS * host.dispatch_overhead + traffic / host.stream_bw
