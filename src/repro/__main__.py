"""Command-line entry point: ``python -m repro <target>``.

Targets are the paper's tables and figures (see ``python -m repro list``);
``all`` prints everything.  Live measurements and shape assertions live in
the pytest benchmark suite; this CLI is the quick model-only view.

``python -m repro dmc`` runs a small live DMC ensemble with the
fault-tolerant driver: ``--checkpoint-every N --checkpoint-path DIR``
makes the run restartable, and after a kill the same command plus
``--resume DIR`` continues from the last checkpoint — the combined
energy/population trace is bit-identical to the uninterrupted run.
With ``--processes K``, ``--elastic``/``--worker-timeout`` put the
worker fleet under a supervisor (:mod:`repro.fleet`): crashed or hung
workers are restarted and replayed, and the pool may grow/shrink
between generations — all without disturbing the trace.
"""

from __future__ import annotations

import argparse
import sys

from repro.reproduce import ALL_TARGETS


def _dmc_main(argv: list[str]) -> int:
    """The ``dmc`` subcommand: a restartable, observable live DMC run."""
    from repro.obs import OBS
    from repro.qmc.dmc import build_dmc_ensemble, run_dmc
    from repro.qmc.rng import WalkerRngPool
    from repro.resilience.checkpoint import CheckpointError
    from repro.resilience.guards import GuardConfig

    parser = argparse.ArgumentParser(
        prog="python -m repro dmc",
        description="Run a small live DMC ensemble with checkpoint/resume.",
    )
    parser.add_argument("--walkers", type=int, default=4)
    parser.add_argument("--generations", type=int, default=10)
    parser.add_argument("--tau", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--n-orbitals", type=int, default=4)
    parser.add_argument(
        "--tile-size",
        type=int,
        default=None,
        metavar="NB",
        help="splines per batched contraction tile (default: auto-tuned "
        "from detected cache sizes; traces are bit-identical either way)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        metavar="NS",
        help="positions per batched gather chunk (default: auto-tuned)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for the batched B-spline cores: 'auto' "
        "(best available compiled backend, falling back to numpy), a "
        "registered name (numpy, numba, cc), or unset for the "
        "REPRO_BACKEND env var / exact-tier numpy default; validated "
        "up front — an unavailable explicit backend is a clean error, "
        "not a mid-run crash",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="K",
        help="run the sharded multiprocess driver "
        "(repro.parallel.run_dmc_sharded) over K workers; traces are "
        "bit-identical for any K, and checkpoints resume under any K",
    )
    parser.add_argument(
        "--split",
        default="walkers",
        choices=("walkers", "orbitals", "auto"),
        help="axis sharded across --processes workers: 'walkers' "
        "(default), 'orbitals' (Opt C: the population stays in the "
        "parent and every kernel call is split along the spline axis), "
        "or 'auto' (config/perf-model policy); traces are bit-identical "
        "either way",
    )
    parser.add_argument(
        "--orbital-shards",
        type=int,
        default=None,
        metavar="K",
        help="orbital blocks per kernel call under --split "
        "orbitals/auto (default: REPRO_ORBITAL_SHARDS / tuned DB / one "
        "block per process, clamped by the planner)",
    )
    parser.add_argument(
        "--step-mode",
        default=None,
        choices=("batched", "walker"),
        help="advance the population through the batched crowd kernels "
        "(default) or the per-walker sweep; trajectories are "
        "bit-identical either way; unset resolves through --config / "
        "REPRO_STEP_MODE",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="JSON RunConfig file (repro.config.RunConfig.as_dict "
        "layout); explicit flags like --tile-size/--chunk/--backend "
        "still win",
    )
    parser.add_argument(
        "--no-tune",
        action="store_true",
        help="skip the per-host tuned-config DB (rung 3 of the "
        "resolution order); blocking falls back to the cache heuristic",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help="supervise the worker fleet and let it grow/shrink between "
        "generations under the latency budget (requires --processes; "
        "traces stay bit-identical at any size)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="K",
        help="upper bound for --elastic growth (default: the host's CPU "
        "count)",
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-call reply deadline; a worker that misses it is treated "
        "as hung, restarted, and its generation replayed (requires "
        "--processes)",
    )
    parser.add_argument(
        "--latency-budget",
        type=float,
        default=None,
        metavar="SEC",
        help="target seconds per generation for --elastic scaling",
    )
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N")
    parser.add_argument("--checkpoint-path", default=None, metavar="DIR")
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume from a checkpoint directory; with --processes, "
        "'auto' resumes from --checkpoint-path when a checkpoint exists "
        "and starts fresh otherwise",
    )
    parser.add_argument(
        "--on-bad-energy",
        default="raise",
        choices=("raise", "recompute", "drop", "ignore"),
        help="policy for walkers with NaN/Inf local energy",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable observability and dump the metrics registry as JSON",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="enable observability and dump a Chrome trace_event JSON",
    )
    args = parser.parse_args(argv)
    if args.checkpoint_every is not None and args.checkpoint_path is None:
        parser.error("--checkpoint-every requires --checkpoint-path")
    fleet_flags = (
        args.elastic
        or args.max_workers is not None
        or args.worker_timeout is not None
        or args.latency_budget is not None
    )
    if fleet_flags and args.processes is None:
        parser.error(
            "--elastic/--max-workers/--worker-timeout/--latency-budget "
            "require --processes"
        )
    if args.resume == "auto" and args.checkpoint_path is None:
        parser.error("--resume auto requires --checkpoint-path")
    if (
        args.split != "walkers" or args.orbital_shards is not None
    ) and args.processes is None:
        parser.error("--split orbitals/auto and --orbital-shards require --processes")
    if args.orbital_shards is not None and args.orbital_shards < 1:
        parser.error("--orbital-shards must be a positive block count")
    backend = args.backend
    if backend is not None:
        # Strict parent-side validation: resolve (and conformance-gate)
        # the request here so a typo or missing toolchain surfaces as
        # one actionable line.  'auto' resolves to a concrete name so
        # every worker lands on the same backend instead of each
        # re-running auto selection.  Workers still resolve the name
        # themselves with the degrade-to-numpy fallback policy.
        from repro.backends import BackendConformanceError, BackendUnavailable
        from repro.backends import resolve_backend

        try:
            backend = resolve_backend(backend).name
        except (BackendUnavailable, BackendConformanceError) as exc:
            parser.error(str(exc))
    from repro.config import TUNE_OFF, RunConfig, load_run_config

    try:
        run_config = (
            load_run_config(args.config) if args.config else RunConfig.from_env()
        )
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    overrides = {
        k: v
        for k, v in (
            ("tile_size", args.tile_size),
            ("chunk_size", args.chunk),
            ("backend", backend),
        )
        if v is not None
    }
    if args.no_tune:
        overrides["tune"] = TUNE_OFF
    if overrides:
        run_config = run_config.replace(**overrides)
    observe = args.metrics_out is not None or args.trace_out is not None
    if observe:
        OBS.reset()
        OBS.enable()

    try:
        if args.processes is not None:
            from repro.parallel import CrowdSpec, run_dmc_sharded

            fleet = None
            if fleet_flags:
                from repro.fleet import FleetConfig

                try:
                    fleet = FleetConfig(
                        elastic=args.elastic,
                        max_workers=args.max_workers,
                        worker_timeout=args.worker_timeout,
                        latency_budget=args.latency_budget,
                    )
                except ValueError as exc:
                    parser.error(str(exc))
            spec = CrowdSpec(
                n_walkers=args.walkers,
                n_orbitals=args.n_orbitals,
                seed=args.seed,
                config=run_config,
            )
            result = run_dmc_sharded(
                spec,
                n_workers=args.processes,
                n_generations=args.generations,
                tau=args.tau,
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=args.checkpoint_path,
                resume=args.resume,
                guard=GuardConfig(on_nonfinite_energy=args.on_bad_energy),
                step_mode=args.step_mode,
                fleet=fleet,
                split=args.split,
                orbital_shards=args.orbital_shards,
            )
        else:
            # The ensemble is rebuilt deterministically from the seed; on
            # resume it serves as the structural template the checkpoint
            # loads into.
            pool = WalkerRngPool(args.seed)
            walkers = build_dmc_ensemble(
                pool,
                args.walkers,
                n_orbitals=args.n_orbitals,
                config=run_config,
            )
            result = run_dmc(
                walkers,
                pool,
                n_generations=args.generations,
                tau=args.tau,
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=args.checkpoint_path,
                resume=args.resume,
                guard=GuardConfig(on_nonfinite_energy=args.on_bad_energy),
                step_mode=args.step_mode,
                config=run_config,
            )
    except CheckpointError as exc:
        print(f"python -m repro dmc: error: {exc}", file=sys.stderr)
        return 1
    finally:
        if observe:
            OBS.disable()
    print(f"generations: {len(result.energy_trace)}")
    print(f"acceptance:  {result.acceptance:.4f}")
    print(f"energy mean: {result.energy_mean:.10f}")
    for g, (e, p) in enumerate(zip(result.energy_trace, result.population_trace)):
        print(f"  gen {g:3d}  E = {e:+.12f}  pop = {p}")
    if result.rescues or result.truncations or result.dropped_walkers:
        print(
            f"guard interventions: {result.rescues} rescues, "
            f"{result.truncations} truncations, "
            f"{result.dropped_walkers} dropped walkers"
        )
    if result.fleet is not None:
        if result.fleet.get("split") == "orbitals":
            print(
                f"split: orbitals ({result.fleet['orbital_shards']} blocks "
                f"x {result.fleet['n_workers']} workers)"
            )
        if "restarts" in result.fleet:
            mttr = result.fleet["mttr_seconds"]
            mttr_txt = (
                f", mean MTTR {sum(mttr) / len(mttr):.3f} s" if mttr else ""
            )
            print(
                f"fleet: {result.fleet['restarts']} restarts, "
                f"{result.fleet.get('rebalances', 0)} rebalances, "
                f"{result.fleet.get('scale_events', 0)} scale events, "
                f"{result.fleet.get('final_workers', 0)} final workers{mttr_txt}"
            )
    if observe:
        OBS.write(metrics_out=args.metrics_out, trace_out=args.trace_out)
        print()
        print(OBS.summary_table())
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "dmc":
        return _dmc_main(argv[1:])
    if argv and argv[0] == "tune":
        from repro.tune.cli import main as tune_main

        return tune_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "serve-client":
        from repro.serve.client import main as serve_client_main

        return serve_client_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables/figures of Mathuriya et al. "
        "(IPDPS 2017) from the calibrated hardware model.",
    )
    parser.add_argument(
        "target",
        help="one of: " + ", ".join(ALL_TARGETS) + ", all, list, "
        "dmc (restartable live DMC run; see 'dmc --help'), "
        "tune (the per-host auto-tuner DB; see 'tune --help'), "
        "serve / serve-client (the QMC service; see 'serve --help')",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        for name, (_, desc) in ALL_TARGETS.items():
            print(f"  {name:10s} {desc}")
        print("  dmc        restartable live DMC run (--checkpoint-every/--resume)")
        print("  tune       measure/show/clear the per-host tuned-config DB")
        print("  serve      multi-tenant QMC service with cross-request batching")
        print("  serve-client  talk to a running serve instance")
        return 0
    if args.target == "all":
        for name, (func, _) in ALL_TARGETS.items():
            print(func())
            print()
        return 0
    if args.target not in ALL_TARGETS:
        print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
        return 2
    print(ALL_TARGETS[args.target][0]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
