"""Command-line entry point: ``python -m repro <target>``.

Targets are the paper's tables and figures (see ``python -m repro list``);
``all`` prints everything.  Live measurements and shape assertions live in
the pytest benchmark suite; this CLI is the quick model-only view.
"""

from __future__ import annotations

import argparse
import sys

from repro.reproduce import ALL_TARGETS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables/figures of Mathuriya et al. "
        "(IPDPS 2017) from the calibrated hardware model.",
    )
    parser.add_argument(
        "target",
        help="one of: " + ", ".join(ALL_TARGETS) + ", all, list",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        for name, (_, desc) in ALL_TARGETS.items():
            print(f"  {name:10s} {desc}")
        return 0
    if args.target == "all":
        for name, (func, _) in ALL_TARGETS.items():
            print(func())
            print()
        return 0
    if args.target not in ALL_TARGETS:
        print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
        return 2
    print(ALL_TARGETS[args.target][0]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
