"""repro — reproduction of "Optimization and parallelization of B-spline based
orbital evaluations in QMC on multi/many-core shared memory processors"
(Mathuriya, Luo, Benali, Shulenburger, Kim — IPDPS 2017, arXiv:1611.02665).

The package is organised as one subpackage per subsystem:

``repro.core``
    The paper's primary contribution: tricubic B-spline single-particle
    orbital (SPO) evaluation kernels ``V``/``VGL``/``VGH`` in three data
    layouts — AoS (baseline), SoA (Opt A) and AoSoA/tiled (Opt B) — plus
    nested threading over tiles (Opt C).
``repro.lattice``
    Crystal cells, periodic boundary conditions, the AB-graphite CORAL
    benchmark geometry, and synthetic periodic orbitals.
``repro.qmc``
    The miniQMC substrate: Slater determinants with Sherman-Morrison
    updates, Jastrow factors, distance tables, drift-diffusion moves and
    DMC/VMC drivers.
``repro.hwsim``
    Hardware substitution layer: machine specs for the paper's four
    processors, a trace-driven cache simulator, the analytical working-set
    model, and the execution-time model that reproduces the paper's
    figures on hardware this host does not have.
``repro.roofline``
    Cache-aware roofline model (paper Fig 10).
``repro.perf``
    Timing, throughput (T = Nw*N/t), profiling and sweep harnesses.
``repro.miniqmc``
    The miniQMC drivers of paper Figs 3 and 6 and the full miniapp used
    for the profile tables.

Quickstart::

    import numpy as np
    from repro.core import Grid3D, Kind, solve_coefficients_3d, BsplineSoA

    grid = Grid3D(24, 24, 24, (1.0, 1.0, 1.0))
    samples = np.random.default_rng(7).standard_normal((24, 24, 24, 8))
    P = solve_coefficients_3d(samples)
    spo = BsplineSoA(grid, P)
    out = spo.new_output(Kind.VGH)
    spo.evaluate(Kind.VGH, (0.3, 0.1, 0.9), out)
    print(out.v[:4])
"""

from repro._version import __version__

__all__ = ["__version__"]
