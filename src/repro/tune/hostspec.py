"""Declarative hardware spec + stable fingerprint for the tuning DB.

A measured (chunk, tile, backend) winner is only meaningful on the
hardware it was measured on, so every tuning-database entry is keyed by
a :class:`HostSpec`: the cache hierarchy (:func:`repro.tune.planner
.detect_caches`), the core count, and the ISA/platform identity.  The
spec is *declarative* — a flat dict of small values, the knob-based
hardware-description style of QMCkl's tuned-kernel registry — so a DB
written on one host can be read (and its entries deliberately ignored)
on another, and benchmark reports can print exactly which hardware a
config was tuned for.

The fingerprint is a short sha256 over the sorted spec items.  It
excludes everything volatile (load average, frequency scaling, free
memory) and everything process-local (env overrides are *included* via
the cache sizes they produce, which is intentional: ``REPRO_L2_BYTES=x``
describes a different effective machine and must not collide with the
real one).
"""

from __future__ import annotations

import hashlib
import os
import platform
from dataclasses import asdict, dataclass

from repro.tune.planner import CacheInfo, detect_caches

__all__ = ["HostSpec", "current_host"]


@dataclass(frozen=True)
class HostSpec:
    """The declarative hardware identity a tuned config is keyed by.

    Attributes
    ----------
    l2_bytes, llc_bytes, cache_source:
        The cache hierarchy as :func:`detect_caches` resolved it
        (``cache_source`` keeps provenance: env / sysfs / default).
    cpu_count:
        Logical CPUs visible to this process.
    machine:
        ``platform.machine()`` — the ISA family (x86_64, aarch64, ...).
    system:
        ``platform.system()`` — kernels differ in allocator/THP
        behaviour enough to matter for measured winners.
    """

    l2_bytes: int
    llc_bytes: int
    cache_source: str
    cpu_count: int
    machine: str
    system: str

    @property
    def fingerprint(self) -> str:
        """Stable 16-hex-digit digest of the declarative spec."""
        payload = ";".join(
            f"{k}={v}" for k, v in sorted(self.as_dict().items())
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def as_dict(self) -> dict:
        """The flat JSON-ready spec (what the DB stores verbatim)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HostSpec":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__})


def current_host(caches: CacheInfo | None = None) -> HostSpec:
    """The :class:`HostSpec` of this process's host."""
    if caches is None:
        caches = detect_caches()
    return HostSpec(
        l2_bytes=int(caches.l2_bytes),
        llc_bytes=int(caches.llc_bytes),
        cache_source=caches.source,
        cpu_count=os.cpu_count() or 1,
        machine=platform.machine(),
        system=platform.system(),
    )
