"""Cache-aware (chunk, tile) planning for the batched B-spline kernels.

This is the *heuristic* tier of the tuner (promoted from
``repro.core.tune`` in PR9): a static cache-size policy that needs no
measurements.  The empirical tier — micro-benchmarked, persisted,
model-guided — lives in :mod:`repro.tune.search` and supersedes these
defaults whenever the tuning database holds a measured winner for the
shape at hand (see :mod:`repro.config` for the resolution order).

The batched engine's dominant temporary is the gathered stencil block,
``chunk x 64 x Nb`` coefficients, plus the z/y contraction temporaries
and the output slabs.  Left unbounded (the PR4 behaviour: one gather for
the whole batch), the working set of a production-shaped call — 512
positions x 64 x 512 splines in double precision is 8 GB-scale traffic
through ~MB-scale caches — overflows the last-level cache and every
einsum pass re-streams the blocks from DRAM.  This module picks a
``(chunk, tile)`` pair so the per-chunk working set stays cache-resident,
the same arithmetic the paper's Opt B applies to the AoSoA tile size
(Sec. IV-B), applied to the batched path.

Policy (measured on the reproduction host, where it recovers 2.4-3x on
the VGH kernel at N >= 256):

* **budget** — the per-chunk byte target: ``min(max(4*L2, 4 MiB),
  max(LLC/4, 2 MiB))``.  A few L2-sized chunks in flight keep the
  gather + three einsum passes inside the private cache plus a thin
  LLC slice; overridable via ``REPRO_BATCHED_BUDGET_BYTES``.
* **chunk** — positions per gather: ``budget // (64 * tile * itemsize)``
  clamped to ``[CHUNK_MIN, CHUNK_MAX]``.  Below ~16 positions Python
  dispatch overhead dominates; above ~256 there is nothing left to win.
* **tile** — splines per contraction core pass (the paper's Nb): the
  full ``N`` unless even a ``CHUNK_MIN``-position gather would overflow
  the budget (very wide tables), in which case the spline axis is
  blocked too.  Tiles are views of the chunk's gathered blocks, so the
  z->y->x einsum order — and therefore every output bit — is unchanged.

Cache sizes come from ``/sys/devices/system/cpu`` when readable, with
``REPRO_L2_BYTES`` / ``REPRO_LLC_BYTES`` environment overrides for
containers and cross-host reproducibility, and conservative defaults
otherwise.  The chosen plan is reported through the observability layer
by :class:`repro.core.BsplineBatched` (gauges ``batched_chunk_positions``,
``batched_tile_splines``, ``batched_working_set_bytes``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

__all__ = ["CacheInfo", "TilePlan", "detect_caches", "plan_tiles"]

KiB = 1024
MiB = 1024 * KiB

#: Position-chunk clamp: below CHUNK_MIN per-chunk Python overhead wins,
#: above CHUNK_MAX the working set is past every private cache anyway.
CHUNK_MIN = 16
CHUNK_MAX = 256
#: Smallest spline tile worth a separate core pass.
TILE_MIN = 16

#: Conservative fallbacks when /sys is unreadable and no env override set.
DEFAULT_L2_BYTES = 1 * MiB
DEFAULT_LLC_BYTES = 16 * MiB

_SYS_CACHE_DIR = "/sys/devices/system/cpu/cpu0/cache"


@dataclass(frozen=True)
class CacheInfo:
    """Detected (or configured) cache sizes in bytes.

    ``source`` records where the numbers came from: ``"env"`` (the
    ``REPRO_L2_BYTES``/``REPRO_LLC_BYTES`` overrides), ``"sysfs"``, or
    ``"default"`` — so benchmark reports stay honest about provenance.
    """

    l2_bytes: int
    llc_bytes: int
    source: str


def _parse_size(text: str) -> int | None:
    """Parse a sysfs cache size like ``'2048K'`` / ``'260M'`` to bytes."""
    text = text.strip()
    if not text:
        return None
    mult = 1
    if text[-1] in "Kk":
        mult, text = KiB, text[:-1]
    elif text[-1] in "Mm":
        mult, text = MiB, text[:-1]
    try:
        return int(text) * mult
    except ValueError:
        return None


def _read_sysfs_caches(root: str = _SYS_CACHE_DIR) -> dict[int, int]:
    """Data/unified cache size per level from sysfs; empty if unreadable."""
    sizes: dict[int, int] = {}
    try:
        entries = sorted(os.listdir(root))
    except OSError:
        return sizes
    for entry in entries:
        if not entry.startswith("index"):
            continue
        base = os.path.join(root, entry)
        try:
            with open(os.path.join(base, "type")) as f:
                ctype = f.read().strip()
            if ctype == "Instruction":
                continue
            with open(os.path.join(base, "level")) as f:
                level = int(f.read().strip())
            with open(os.path.join(base, "size")) as f:
                size = _parse_size(f.read())
        except (OSError, ValueError):
            continue
        if size:
            sizes[level] = max(sizes.get(level, 0), size)
    return sizes


@lru_cache(maxsize=None)
def _detect_caches_cached(env_l2: str | None, env_llc: str | None) -> CacheInfo:
    l2 = int(env_l2) if env_l2 else None
    llc = int(env_llc) if env_llc else None
    source = "env" if (l2 or llc) else None
    if l2 is None or llc is None:
        sizes = _read_sysfs_caches()
        if sizes:
            if l2 is None:
                l2 = sizes.get(2)
            if llc is None:
                llc = sizes.get(max(sizes))
            source = source or "sysfs"
    if l2 is None:
        l2 = DEFAULT_L2_BYTES
    if llc is None:
        llc = DEFAULT_LLC_BYTES
    return CacheInfo(
        l2_bytes=l2, llc_bytes=max(llc, l2), source=source or "default"
    )


def detect_caches() -> CacheInfo:
    """L2 and last-level cache sizes for this host.

    Environment overrides ``REPRO_L2_BYTES`` / ``REPRO_LLC_BYTES`` win
    over sysfs; the result is cached per override pair (cache sizes do
    not change under a running process).
    """
    return _detect_caches_cached(
        os.environ.get("REPRO_L2_BYTES") or None,
        os.environ.get("REPRO_LLC_BYTES") or None,
    )


def gather_bytes(chunk: int, tile: int, itemsize: int) -> int:
    """Bytes of one gathered stencil block, ``chunk x 64 x tile``."""
    return 64 * chunk * tile * itemsize


def working_set_bytes(chunk: int, tile: int, itemsize: int) -> int:
    """Peak per-chunk working set of the VGH core at ``(chunk, tile)``.

    Gathered blocks (``64 c t``) + three z-pass temporaries (``16 c t``
    each) + six y-pass temporaries (``4 c t`` each) + the eleven output
    streams (v, 3 gradient, laplacian, 6 Hessian components): 147
    elements per (position, spline) pair.
    """
    return (64 + 3 * 16 + 6 * 4 + 11) * chunk * tile * itemsize


@dataclass(frozen=True)
class TilePlan:
    """A resolved (chunk, tile) decision plus the inputs that drove it.

    Attributes
    ----------
    chunk:
        Positions gathered and contracted per pass.
    tile:
        Splines per contraction-core pass (the paper's Nb); ``tile ==
        n_splines`` means the spline axis is not blocked.
    n_splines, itemsize:
        The table geometry the plan was computed for.
    budget_bytes:
        The per-chunk byte target the sizes were fitted to.
    working_set_bytes:
        Modeled peak per-chunk VGH working set at (chunk, tile).
    source:
        ``"auto"`` (cache-derived), ``"override"`` (explicit
        chunk/tile), or ``"max_batch_bytes"`` (legacy cap semantics).
    caches:
        The :class:`CacheInfo` consulted (None for pure overrides).
    """

    chunk: int
    tile: int
    n_splines: int
    itemsize: int
    budget_bytes: int
    working_set_bytes: int
    source: str
    caches: CacheInfo | None = None


def plan_budget_bytes(caches: CacheInfo) -> int:
    """The per-chunk byte target for a host's cache hierarchy."""
    return min(max(4 * caches.l2_bytes, 4 * MiB), max(caches.llc_bytes // 4, 2 * MiB))


def plan_tiles(
    n_splines: int,
    itemsize: int,
    chunk: int | None = None,
    tile: int | None = None,
    caches: CacheInfo | None = None,
    budget_bytes: int | None = None,
) -> TilePlan:
    """Pick (chunk, tile) for a batched engine over an ``N``-spline table.

    With ``chunk``/``tile`` given they are taken verbatim (clamped to
    valid ranges) and the plan is marked ``"override"``; otherwise both
    are derived from the cache budget as described in the module
    docstring.  ``budget_bytes`` (or ``REPRO_BATCHED_BUDGET_BYTES``)
    replaces the cache-derived target.
    """
    if n_splines <= 0:
        raise ValueError(f"n_splines must be positive, got {n_splines}")
    if chunk is not None and chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    if tile is not None and tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    override = chunk is not None or tile is not None
    if budget_bytes is None:
        env = os.environ.get("REPRO_BATCHED_BUDGET_BYTES")
        budget_bytes = int(env) if env else None
    if budget_bytes is None:
        if caches is None:
            caches = detect_caches()
        budget_bytes = plan_budget_bytes(caches)
    if tile is None:
        if gather_bytes(CHUNK_MIN, n_splines, itemsize) <= budget_bytes:
            tile = n_splines
        else:
            # Even the smallest worthwhile chunk overflows at full N:
            # block the spline axis down to a budget-sized tile.
            tile = budget_bytes // (64 * CHUNK_MIN * itemsize)
            tile = max(TILE_MIN, (tile // TILE_MIN) * TILE_MIN)
    tile = min(tile, n_splines)
    if chunk is None:
        chunk = budget_bytes // (64 * tile * itemsize)
        chunk = min(max(chunk, CHUNK_MIN), CHUNK_MAX)
    return TilePlan(
        chunk=int(chunk),
        tile=int(tile),
        n_splines=int(n_splines),
        itemsize=int(itemsize),
        budget_bytes=int(budget_bytes),
        working_set_bytes=working_set_bytes(chunk, tile, itemsize),
        source="override" if override else "auto",
        caches=caches,
    )
