"""The per-host tuning database: measured winners, persisted as JSON.

One file (``REPRO_TUNE_DB`` or ``~/.cache/repro/tunedb.json``) holds
every tuned configuration this machine has ever measured, keyed two
levels deep:

* by **host fingerprint** (:class:`repro.tune.hostspec.HostSpec`) — a
  DB copied between machines never serves a foreign winner;
* by **problem shape** (:class:`TuneShape`): ``(n_splines, batch,
  dtype, kind)`` — the paper's finding that the right blocking depends
  on N (Sec. VI-B) applied literally.

Every stored entry is a :class:`TunedConfig` carrying its conformance
**tier** — ``"exact"`` means the configuration reproduced the frozen
:class:`~repro.core.batched_reference.ReferenceBatched` oracle bit for
bit during the search, ``"allclose"`` means it matched within the
recorded ``(rtol, atol)`` — and lookups filter by the tier the caller
can accept, so a bit-gated serving path can never be handed an
allclose-tier config.

Writes are atomic (temp file + ``os.replace``) and last-writer-wins:
concurrent tuners may race, but the file is never torn, and a lost
entry merely costs one re-measurement.  A corrupt or foreign-schema
file is treated as empty rather than fatal.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.tune.hostspec import HostSpec, current_host

__all__ = [
    "TuneShape",
    "TunedConfig",
    "TuneDB",
    "default_db_path",
    "TIER_EXACT",
    "TIER_ALLCLOSE",
]

TIER_EXACT = "exact"
TIER_ALLCLOSE = "allclose"
_TIERS = (TIER_EXACT, TIER_ALLCLOSE)

#: Schema version of the on-disk file; bump on incompatible change.
#: v2 (PR10) added the measured parallel axes (``processes``,
#: ``orbital_shards``) to :class:`TunedConfig`.
SCHEMA_VERSION = 2

#: Versions :meth:`TuneDB._load` accepts.  v1 entries simply lack the
#: parallel axes; :meth:`TunedConfig.from_dict` fills their defaults
#: (1/1 — sequential), so a v1 file reads forward-compatibly and is
#: upgraded to v2 on the next write.
_READ_VERSIONS = (1, SCHEMA_VERSION)


def default_db_path() -> Path:
    """``REPRO_TUNE_DB`` if set, else ``~/.cache/repro/tunedb.json``.

    Honours ``XDG_CACHE_HOME`` like every other well-behaved cache.
    """
    env = os.environ.get("REPRO_TUNE_DB")
    if env:
        return Path(env)
    cache_root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(cache_root) / "repro" / "tunedb.json"


@dataclass(frozen=True)
class TuneShape:
    """The problem shape a tuned config applies to.

    ``batch`` is the number of positions per kernel call (walkers in the
    crowd drivers, ``n_samples`` in the miniQMC drivers, the fused batch
    in the serving layer); ``kind`` is the kernel (``"v"``/``"vgl"``/
    ``"vgh"``); ``dtype`` the coefficient-table dtype name.
    """

    n_splines: int
    batch: int
    dtype: str
    kind: str = "vgh"

    def __post_init__(self) -> None:
        if self.n_splines <= 0:
            raise ValueError(f"n_splines must be positive, got {self.n_splines}")
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")

    @property
    def key(self) -> str:
        return f"{self.n_splines}x{self.batch}:{self.dtype}:{self.kind}"

    @classmethod
    def from_key(cls, key: str) -> "TuneShape":
        dims, dtype, kind = key.split(":")
        n, batch = dims.split("x")
        return cls(int(n), int(batch), dtype, kind)


@dataclass(frozen=True)
class TunedConfig:
    """One measured winner plus the evidence behind it.

    Attributes
    ----------
    chunk, tile:
        The winning blocking parameters.
    backend:
        The kernel-backend name the measurement ran under (``"numpy"``
        unless the search was asked to sweep backends).
    processes:
        Worker-process count the winner was measured at (1 =
        sequential; v1 entries read as 1).
    orbital_shards:
        Orbital blocks per walker the winner was measured at (1 =
        walker-only sharding; v1 entries read as 1).  See
        :mod:`repro.parallel.orbital`.
    tier:
        ``"exact"`` (bitwise vs the frozen oracle) or ``"allclose"``.
    rtol, atol:
        The tolerances an ``allclose``-tier config was verified at
        (both 0.0 for exact tier).
    seconds:
        Best measured seconds for one kernel call at the shape.
    baseline_seconds:
        Same measurement under the static heuristic plan — the honest
        denominator of :attr:`speedup`.
    speedup:
        ``baseline_seconds / seconds``.
    candidates:
        How many configurations the search actually timed.
    tuned_at:
        Unix timestamp of the measurement.
    """

    chunk: int
    tile: int
    backend: str = "numpy"
    processes: int = 1
    orbital_shards: int = 1
    tier: str = TIER_EXACT
    rtol: float = 0.0
    atol: float = 0.0
    seconds: float = 0.0
    baseline_seconds: float = 0.0
    speedup: float = 1.0
    candidates: int = 0
    tuned_at: float = field(default_factory=time.time)

    def __post_init__(self) -> None:
        if self.tier not in _TIERS:
            raise ValueError(f"tier must be one of {_TIERS}, got {self.tier!r}")
        if self.chunk <= 0 or self.tile <= 0:
            raise ValueError(
                f"chunk/tile must be positive, got ({self.chunk}, {self.tile})"
            )
        if self.processes <= 0 or self.orbital_shards <= 0:
            raise ValueError(
                f"processes/orbital_shards must be positive, got "
                f"({self.processes}, {self.orbital_shards})"
            )

    def serves_tier(self, min_tier: str) -> bool:
        """Whether a caller demanding ``min_tier`` may be served this.

        ``min_tier="exact"`` (the bit-gated paths) accepts only exact
        entries; ``min_tier="allclose"`` accepts both.
        """
        if min_tier not in _TIERS:
            raise ValueError(f"min_tier must be one of {_TIERS}, got {min_tier!r}")
        return self.tier == TIER_EXACT or min_tier == TIER_ALLCLOSE

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TunedConfig":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})


class TuneDB:
    """Load/store tuned configs; one instance per path, reloaded lazily.

    Parameters
    ----------
    path:
        The JSON file; defaults to :func:`default_db_path` (so the
        ``REPRO_TUNE_DB`` override is read at construction time).
    host:
        The :class:`HostSpec` entries are read and written under;
        defaults to :func:`~repro.tune.hostspec.current_host`.
    """

    def __init__(self, path: os.PathLike | str | None = None, host: HostSpec | None = None):
        self.path = Path(path) if path is not None else default_db_path()
        self.host = host if host is not None else current_host()
        self._data: dict | None = None
        self._mtime: float | None = None

    # -- persistence ---------------------------------------------------------

    def _load(self) -> dict:
        """The parsed file, re-read when it changed on disk."""
        try:
            mtime = self.path.stat().st_mtime_ns
        except OSError:
            self._data = {"version": SCHEMA_VERSION, "hosts": {}}
            self._mtime = None
            return self._data
        if self._data is not None and mtime == self._mtime:
            return self._data
        try:
            with open(self.path) as f:
                data = json.load(f)
            if not isinstance(data, dict) or data.get("version") not in _READ_VERSIONS:
                raise ValueError("unknown schema")
            data["version"] = SCHEMA_VERSION
            data.setdefault("hosts", {})
        except (OSError, ValueError):
            # A torn write cannot happen (os.replace), but a foreign or
            # hand-edited file can; treat it as empty, never as fatal.
            data = {"version": SCHEMA_VERSION, "hosts": {}}
        self._data = data
        self._mtime = mtime
        return data

    def _save(self, data: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(data, f, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._data = data
        try:
            self._mtime = self.path.stat().st_mtime_ns
        except OSError:
            self._mtime = None

    def _host_entries(self, data: dict) -> dict:
        return data["hosts"].get(self.host.fingerprint, {}).get("entries", {})

    # -- API -----------------------------------------------------------------

    def get(self, shape: TuneShape) -> TunedConfig | None:
        """The stored winner for exactly this shape, or None."""
        raw = self._host_entries(self._load()).get(shape.key)
        return TunedConfig.from_dict(raw) if raw else None

    def lookup(
        self,
        n_splines: int,
        dtype: str,
        kind: str = "vgh",
        batch: int | None = None,
        min_tier: str = TIER_EXACT,
    ) -> tuple[TuneShape, TunedConfig] | None:
        """Best tier-eligible entry for the shape, batch-nearest.

        An exact ``(n_splines, batch, dtype, kind)`` hit wins; otherwise
        the entry whose batch is nearest on a log scale (blocking
        behaviour shifts with the *magnitude* of the batch, not its
        exact value).  ``batch=None`` accepts any batch, largest first.
        Entries whose tier fails ``min_tier`` are invisible.
        """
        entries = self._host_entries(self._load())
        matches: list[tuple[float, TuneShape, TunedConfig]] = []
        for key, raw in entries.items():
            try:
                shape = TuneShape.from_key(key)
                cfg = TunedConfig.from_dict(raw)
            except (ValueError, TypeError, KeyError):
                continue
            if (shape.n_splines, shape.dtype, shape.kind) != (
                int(n_splines),
                str(dtype),
                str(kind),
            ):
                continue
            if not cfg.serves_tier(min_tier):
                continue
            if batch is None:
                rank = -float(shape.batch)
            else:
                import math

                rank = abs(math.log(shape.batch / batch))
            matches.append((rank, shape, cfg))
        if not matches:
            return None
        rank, shape, cfg = min(matches, key=lambda m: (m[0], m[1].key))
        if batch is not None and rank > 0.0 and shape.batch != batch:
            # Only serve a neighbour within ~4x; a 64-position winner
            # says nothing about a 100k-position call.
            import math

            if rank > math.log(4.0):
                return None
        return shape, cfg

    def put(self, shape: TuneShape, config: TunedConfig) -> None:
        """Store (replace) the winner for ``shape`` under this host."""
        data = self._load()
        # Re-read under no lock: last writer wins, file never torn.
        host = data["hosts"].setdefault(
            self.host.fingerprint, {"spec": self.host.as_dict(), "entries": {}}
        )
        host["entries"][shape.key] = config.as_dict()
        self._save(data)

    def entries(self, all_hosts: bool = False) -> list[tuple[str, TuneShape, TunedConfig]]:
        """Stored ``(host_fingerprint, shape, config)`` rows."""
        data = self._load()
        rows = []
        for fp, host in sorted(data["hosts"].items()):
            if not all_hosts and fp != self.host.fingerprint:
                continue
            for key, raw in sorted(host.get("entries", {}).items()):
                try:
                    rows.append(
                        (fp, TuneShape.from_key(key), TunedConfig.from_dict(raw))
                    )
                except (ValueError, TypeError, KeyError):
                    continue
        return rows

    def clear(self, all_hosts: bool = False) -> int:
        """Drop this host's entries (or every host's); returns how many."""
        data = self._load()
        if all_hosts:
            dropped = sum(
                len(h.get("entries", {})) for h in data["hosts"].values()
            )
            data["hosts"] = {}
        else:
            host = data["hosts"].pop(self.host.fingerprint, None)
            dropped = len(host.get("entries", {})) if host else 0
        self._save(data)
        return dropped
