"""Empirical auto-tuning: measure candidates, gate them, persist winners.

The PR5 planner (:mod:`repro.tune.planner`) picks (chunk, tile) from
cache sizes alone — a good default, but the paper's own message
(Sec. VI-B) is that the best blocking is an *empirical* property of the
(hardware, N) pair.  This module closes that loop:

1. **Candidates.** :func:`candidate_configs` crosses a small set of
   chunk sizes (powers of two around the heuristic pick, plus the whole
   batch — the Python-dispatch-free extreme the static planner's
   ``CHUNK_MAX`` clamp can never reach) with spline tiles ranked by the
   execution-time model (:class:`repro.hwsim.perfmodel.BsplinePerfModel`
   over a :func:`~repro.hwsim.machine.host_machine_spec` of this host's
   measured cache hierarchy).  The model prunes, it never decides: only
   measured time picks the winner.
2. **Gate.** Every candidate is verified against the frozen PR4 oracle
   (:class:`repro.core.batched_reference.ReferenceBatched`) **before**
   it is timed: bit-for-bit equality (``np.testing.assert_array_equal``)
   earns the ``exact`` tier; otherwise agreement at the backend's
   declared ``(rtol, atol)`` earns ``allclose``; anything else is
   discarded.  The stored :class:`~repro.tune.db.TunedConfig` carries
   the tier, so lookups can refuse to serve an allclose winner to a
   bit-gated path.
3. **Measure.** Each survivor is timed best-of-``repeats`` on a real
   kernel call at the exact problem shape (a few ms per candidate); the
   static heuristic plan is always among the candidates, so the stored
   ``speedup`` is an honest measured ratio against PR5, never < ~1.
4. **Persist.** The winner lands in the per-host
   :class:`~repro.tune.db.TuneDB`; the next process (or host reboot)
   resolves it with zero measurements.

Tuning is *value*-independent (kernel cost depends on shapes and
dtypes, not coefficients — the same argument as
:func:`repro.miniqmc.config.random_coefficients`), so
:func:`autotune_shape` synthesizes a Gaussian table when the caller has
no real one at hand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.obs import OBS
from repro.tune.db import (
    TIER_ALLCLOSE,
    TIER_EXACT,
    TuneDB,
    TunedConfig,
    TuneShape,
)
from repro.tune.planner import detect_caches, plan_tiles

__all__ = [
    "TuneOutcome",
    "autotune_shape",
    "autotune_table",
    "autotune_parallel",
    "candidate_configs",
    "parallel_candidates",
]

#: Timing repeats per candidate (best-of; the minimum is the estimator
#: least sensitive to scheduler noise for sub-ms kernels).
DEFAULT_REPEATS = 3

#: Cap on gated-and-timed candidates per search.
DEFAULT_MAX_CANDIDATES = 16

#: Synthetic-table grid for shape-only tuning: large enough that the
#: gather walks realistic strides, small enough to build in ~ms.
_SYNTH_GRID = (16, 16, 16)


@dataclass(frozen=True)
class TuneOutcome:
    """What a tuning request did.

    ``from_db`` is True when the config was served from the database
    without any micro-benchmark; ``measured`` counts the candidate
    configurations actually timed (0 on a warm hit — the property the
    CI round-trip job asserts).
    """

    shape: TuneShape
    config: TunedConfig
    from_db: bool
    measured: int


def _pow2_below(n: int) -> list[int]:
    out, p = [], 1
    while p <= n:
        out.append(p)
        p *= 2
    return out


def _model_ranked_tiles(n_splines: int, caches, batch: int) -> list[int]:
    """Spline tiles ranked by modeled VGH throughput on this host.

    The model speaks the paper's dialect — tiles that divide N — so
    non-divisor candidates are scored by their nearest divisor.  Model
    failure (tiny N, degenerate spec) falls back to the unranked list.
    """
    candidates = sorted(
        {t for t in _pow2_below(n_splines) if t >= 8} | {n_splines}
    )
    try:
        from repro.hwsim.machine import host_machine_spec
        from repro.hwsim.perfmodel import BsplinePerfModel

        spec = host_machine_spec(caches.l2_bytes, caches.llc_bytes)
        model = BsplinePerfModel(spec)
        divisors = [d for d in range(1, n_splines + 1) if n_splines % d == 0]

        def score(tile: int) -> float:
            nb = min(divisors, key=lambda d: abs(d - tile))
            res = model.evaluate("vgh", "aosoa", n_splines, nb, n_walkers=batch)
            return -res.throughput

        candidates.sort(key=score)
    except Exception:
        pass
    return candidates


def candidate_configs(
    shape: TuneShape,
    itemsize: int,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> list[tuple[int, int]]:
    """Pruned (chunk, tile) candidates for a shape, heuristic included.

    Chunks: powers of two from 16 to the batch, the whole batch itself,
    and the heuristic pick.  Tiles: the top model-ranked widths plus the
    heuristic's.  The cross product is clipped to ``max_candidates``,
    always keeping the heuristic plan (the measured baseline) first.
    """
    caches = detect_caches()
    heuristic = plan_tiles(shape.n_splines, itemsize, caches=caches)
    batch = shape.batch
    chunks = sorted(
        {c for c in _pow2_below(batch) if c >= 16}
        | {batch, heuristic.chunk, min(heuristic.chunk, batch)}
    )
    chunks = [min(c, batch) for c in chunks]
    tiles = _model_ranked_tiles(shape.n_splines, caches, batch)[:4]
    tiles = list(
        dict.fromkeys([heuristic.tile] + [min(t, shape.n_splines) for t in tiles])
    )
    tiles = [max(t, 2) if shape.n_splines > 1 else 1 for t in tiles]
    configs = [(heuristic.chunk, heuristic.tile)]
    # Explore chunks nearest the heuristic pick first (log-space): the
    # best blocking is usually a small factor off the static plan, so
    # under the candidate cap the 2x/4x neighbours must be measured
    # before the extremes, not clipped away by them.
    anchor = np.log2(max(heuristic.chunk, 1))
    ordered_chunks = sorted(
        set(chunks), key=lambda c: (abs(np.log2(max(c, 1)) - anchor), -c)
    )
    for chunk in ordered_chunks:
        for tile in tiles:
            pair = (int(chunk), int(tile))
            if pair not in configs:
                configs.append(pair)
    return configs[:max_candidates]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _gate(candidate_out, reference_out, kind: str, backend) -> tuple[str, float, float] | None:
    """Tier of a candidate's output vs the oracle's, or None if neither.

    Returns ``(tier, rtol, atol)`` — ``("exact", 0, 0)`` for bitwise
    equality across every stream the kind writes, the backend's declared
    per-dtype tolerances for allclose, None for a failure.
    """
    from repro.core.batched import _KERNEL_STREAMS

    streams = _KERNEL_STREAMS[kind]
    exact = all(
        np.array_equal(
            getattr(candidate_out, s), getattr(reference_out, s), equal_nan=True
        )
        for s in streams
    )
    if exact:
        return TIER_EXACT, 0.0, 0.0
    dtype = reference_out.v.dtype
    try:
        rtol, atol = backend.capability.tolerance_for(dtype)
    except (AttributeError, KeyError):
        return None
    ok = all(
        np.allclose(
            getattr(candidate_out, s), getattr(reference_out, s),
            rtol=rtol, atol=atol, equal_nan=True,
        )
        for s in streams
    )
    return (TIER_ALLCLOSE, float(rtol), float(atol)) if ok else None


def autotune_table(
    grid,
    table: np.ndarray,
    shape: TuneShape,
    db: TuneDB | None = None,
    backend: str | None = None,
    repeats: int = DEFAULT_REPEATS,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    force: bool = False,
    persist: bool = True,
) -> TuneOutcome:
    """Search (chunk, tile) for a concrete table; persist the winner.

    A warm database hit (same host, same shape, tier-eligible) returns
    immediately with zero measurements unless ``force``.  Positions are
    seeded from the shape, so two searches at the same shape time the
    same work.

    ``backend`` selects the third searched axis: a concrete name (or
    None, the engine default) restricts the search to that backend;
    ``"auto"`` sweeps every *available* backend — the candidate grid is
    measured once per backend, each candidate gated at the tier it can
    actually earn, and the stored winner records which backend it ran
    under.  The measured baseline is always the heuristic plan on the
    default (exact-tier) backend, so ``speedup`` stays an honest
    ratio against PR5 even when an ``allclose`` backend wins.
    """
    from repro.core.batched import BsplineBatched
    from repro.core.batched_reference import ReferenceBatched
    from repro.core.kinds import Kind

    if db is None:
        db = TuneDB()
    if not force:
        stored = db.get(shape)
        if stored is not None:
            if OBS.enabled:
                OBS.count("tune_db_hits_total")
            return TuneOutcome(shape, stored, from_db=True, measured=0)

    kind = Kind(shape.kind)  # shape.kind is already normalized
    rng = np.random.default_rng(shape.n_splines * 1_000_003 + shape.batch)
    positions = rng.random((shape.batch, 3))
    # The gate's truth: the frozen PR4 oracle over the unpadded table.
    nx, ny, nz = grid.shape
    unpadded = (
        table[1 : nx + 1, 1 : ny + 1, 1 : nz + 1]
        if table.shape[:3] == grid.padded_shape
        else table
    )
    reference = ReferenceBatched(grid, unpadded)
    ref_out = reference.new_output(kind, n=shape.batch)
    reference.evaluate_batch(kind, positions, ref_out)

    itemsize = np.dtype(table.dtype).itemsize
    candidates = candidate_configs(shape, itemsize, max_candidates)
    if backend == "auto":
        from repro.backends import available_backends

        # Default (exact-tier) backend first: its heuristic-plan row is
        # the measured PR5 baseline every speedup is quoted against.
        backend_specs = sorted(
            available_backends(), key=lambda name: name != "numpy"
        )
    else:
        backend_specs = [backend]
    measured = 0
    rows: list[tuple[float, int, int, str, tuple[str, float, float]]] = []
    baseline_seconds = None
    for spec in backend_specs:
        for i, (chunk, tile) in enumerate(candidates):
            engine = BsplineBatched(
                grid, table, chunk_size=chunk, tile_size=tile, backend=spec
            )
            out = engine.new_output(kind, n=shape.batch)
            engine.evaluate_batch(kind, positions, out)
            tier = _gate(out, ref_out, kind.value, engine.backend)
            if tier is None:
                continue  # a config that cannot reproduce the oracle is dead
            secs = _best_of(
                lambda: engine.evaluate_batch(kind, positions, out), repeats
            )
            measured += 1
            if OBS.enabled:
                OBS.count("tune_measurements_total")
                OBS.observe("tune_candidate_seconds", secs, kind=kind.value)
            if i == 0 and baseline_seconds is None:
                baseline_seconds = secs  # candidates[0] is the heuristic plan
            rows.append((secs, chunk, tile, engine.backend.name, tier))
    if not rows:
        raise RuntimeError(
            f"no candidate configuration passed the conformance gate for "
            f"{shape.key} (backend={backend!r})"
        )
    secs, chunk, tile, backend_name, (tier, rtol, atol) = min(
        rows, key=lambda r: r[0]
    )
    if baseline_seconds is None:
        baseline_seconds = secs
    config = TunedConfig(
        chunk=chunk,
        tile=tile,
        backend=backend_name,
        tier=tier,
        rtol=rtol,
        atol=atol,
        seconds=secs,
        baseline_seconds=baseline_seconds,
        speedup=baseline_seconds / secs if secs > 0 else 1.0,
        candidates=measured,
    )
    if persist:
        db.put(shape, config)
    if OBS.enabled:
        OBS.count("tune_searches_total")
        OBS.gauge("tune_winner_chunk", chunk)
        OBS.gauge("tune_winner_tile", tile)
    return TuneOutcome(shape, config, from_db=False, measured=measured)


def autotune_shape(
    shape: TuneShape,
    db: TuneDB | None = None,
    backend: str | None = None,
    grid_shape: tuple[int, int, int] = _SYNTH_GRID,
    repeats: int = DEFAULT_REPEATS,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    force: bool = False,
    persist: bool = True,
) -> TuneOutcome:
    """Like :func:`autotune_table`, over a synthetic Gaussian table.

    The path the CLI (``python -m repro tune run``) and the
    on-first-use hook take when no real table is in scope; kernel cost
    is coefficient-value independent, so the measured winner transfers.
    """
    if db is None:
        db = TuneDB()
    if not force:
        stored = db.get(shape)
        if stored is not None:
            if OBS.enabled:
                OBS.count("tune_db_hits_total")
            return TuneOutcome(shape, stored, from_db=True, measured=0)
    from repro.core.grid import Grid3D

    nx, ny, nz = grid_shape
    rng = np.random.default_rng(2017)
    table = rng.standard_normal((nx, ny, nz, shape.n_splines)).astype(shape.dtype)
    grid = Grid3D(nx, ny, nz, (1.0, 1.0, 1.0))
    return autotune_table(
        grid,
        table,
        shape,
        db=db,
        backend=backend,
        repeats=repeats,
        max_candidates=max_candidates,
        force=force,
        persist=persist,
    )


def parallel_candidates(processes: int, n_splines: int) -> list[tuple[int, int]]:
    """Deduplicated ``(processes, orbital_shards)`` candidates.

    Always starts with the sequential baseline ``(1, 1)`` (the honest
    denominator), then the walker-only parallel row ``(processes, 1)``,
    then orbital-shard counts at powers of two up to ``processes`` —
    each clamped through :func:`~repro.core.partition.plan_orbital_blocks`
    so every stored candidate is a shard count the planner can realize.
    """
    from repro.core.partition import plan_orbital_blocks

    if processes <= 0:
        raise ValueError(f"processes must be positive, got {processes}")
    pairs: list[tuple[int, int]] = [(1, 1)]
    if processes > 1:
        pairs.append((processes, 1))
        for shards in _pow2_below(processes):
            if shards < 2:
                continue
            realized = len(plan_orbital_blocks(n_splines, shards))
            pair = (processes, realized)
            if realized >= 2 and pair not in pairs:
                pairs.append(pair)
    return pairs


def autotune_parallel(
    shape: TuneShape,
    db: TuneDB | None = None,
    processes: int | None = None,
    grid_shape: tuple[int, int, int] = _SYNTH_GRID,
    repeats: int = DEFAULT_REPEATS,
    force: bool = False,
    persist: bool = True,
    start_method: str | None = None,
) -> TuneOutcome:
    """Measure the parallel axes ``(processes, orbital_shards)`` too.

    Extends the shape's stored (or freshly searched) ``(chunk, tile)``
    winner with measured parallel axes: every candidate pair from
    :func:`parallel_candidates` is timed best-of-``repeats`` on a real
    fan-out (:class:`~repro.parallel.orbital.OrbitalEvaluator` over a
    synthetic table at the exact shape), and every parallel candidate is
    bit-gated against the sequential engine's output **before** timing —
    a pair whose concatenated orbital blocks are not bit-identical to
    the single-engine result is discarded, so the stored winner keeps
    the sequential row's conformance tier.

    The warm-hit rule differs from :func:`autotune_table`: a stored
    entry only short-circuits the search when its parallel axes were
    actually measured (``processes > 1`` or ``orbital_shards > 1``) —
    a v1 entry or a plain ``autotune_shape`` winner reads as sequential
    ``(1, 1)`` and is re-searched, then upgraded in place.

    ``processes`` defaults to ``os.cpu_count()`` (capped at 8: tuning a
    fan-out wider than that measures scheduler noise on shared CI
    boxes).  The sequential baseline is always measured, so ``speedup``
    is the honest parallel-vs-sequential ratio at this shape.
    """
    import os

    if db is None:
        db = TuneDB()
    if processes is None:
        processes = max(1, min(os.cpu_count() or 1, 8))
    stored = db.get(shape)
    if (
        not force
        and stored is not None
        and (stored.processes > 1 or stored.orbital_shards > 1)
    ):
        if OBS.enabled:
            OBS.count("tune_db_hits_total")
        return TuneOutcome(shape, stored, from_db=True, measured=0)

    # Resolve (chunk, tile) first — stored winner if any, else a fresh
    # sequential search at this shape (persisted under the same key).
    if stored is not None:
        base = stored
        base_measured = 0
    else:
        seq = autotune_shape(
            shape, db=db, grid_shape=grid_shape, repeats=repeats,
            force=force, persist=persist,
        )
        base = seq.config
        base_measured = seq.measured

    from repro.core.grid import Grid3D
    from repro.core.kinds import Kind
    from repro.parallel.orbital import OrbitalEvaluator

    kind = Kind(shape.kind)
    nx, ny, nz = grid_shape
    rng = np.random.default_rng(2017)
    table = rng.standard_normal((nx, ny, nz, shape.n_splines)).astype(shape.dtype)
    grid = Grid3D(nx, ny, nz, (1.0, 1.0, 1.0))
    pos_rng = np.random.default_rng(shape.n_splines * 1_000_003 + shape.batch)
    positions = pos_rng.random((shape.batch, 3))

    from repro.core.batched import BsplineBatched

    engine = BsplineBatched(
        grid, table, chunk_size=base.chunk, tile_size=base.tile
    )
    ref_out = engine.new_output(kind, n=shape.batch)
    engine.evaluate_batch(kind, positions, ref_out)

    measured = 0
    rows: list[tuple[float, int, int]] = []
    baseline_seconds = None
    for procs, shards in parallel_candidates(processes, shape.n_splines):
        if procs == 1 and shards == 1:
            secs = _best_of(
                lambda: engine.evaluate_batch(kind, positions, ref_out), repeats
            )
        else:
            try:
                fanned = OrbitalEvaluator(
                    grid,
                    table,
                    processes=procs,
                    orbital_shards=shards,
                    max_positions=max(shape.batch, 1),
                    start_method=start_method,
                )
            except (OSError, ValueError):
                continue  # host cannot realize this fan-out; skip, don't fail
            try:
                out = fanned.new_output(kind, n=shape.batch)
                fanned.evaluate_batch(kind, positions, out)
                if _gate(out, ref_out, kind.value, engine.backend) != (
                    TIER_EXACT, 0.0, 0.0,
                ):
                    continue  # fan-out must be bit-identical, no allclose rung
                secs = _best_of(
                    lambda: fanned.evaluate_batch(kind, positions, out), repeats
                )
            finally:
                fanned.close()
        measured += 1
        if OBS.enabled:
            OBS.count("tune_measurements_total")
            OBS.observe(
                "tune_candidate_seconds", secs, kind=kind.value, axis="parallel"
            )
        if baseline_seconds is None:
            baseline_seconds = secs  # first row is the sequential baseline
        rows.append((secs, procs, shards))
    if not rows:
        raise RuntimeError(
            f"no parallel candidate passed the conformance gate for {shape.key}"
        )
    secs, win_procs, win_shards = min(rows, key=lambda r: r[0])
    config = TunedConfig(
        chunk=base.chunk,
        tile=base.tile,
        backend=base.backend,
        processes=win_procs,
        orbital_shards=win_shards,
        tier=base.tier,
        rtol=base.rtol,
        atol=base.atol,
        seconds=secs,
        baseline_seconds=baseline_seconds,
        speedup=baseline_seconds / secs if secs > 0 else 1.0,
        candidates=measured + base_measured,
    )
    if persist:
        db.put(shape, config)
    if OBS.enabled:
        OBS.count("tune_searches_total")
        OBS.gauge("tune_winner_processes", win_procs)
        OBS.gauge("tune_winner_orbital_shards", win_shards)
    return TuneOutcome(shape, config, from_db=False, measured=measured + base_measured)
