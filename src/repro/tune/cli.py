"""``python -m repro tune`` — run, inspect, and clear the tuning DB.

Three subcommands:

* ``run``   — micro-benchmark one or more shapes and persist winners
  (``--force`` re-measures a warm entry; the exit report says how many
  candidates were actually timed, so scripts can assert a warm second
  run measured zero);
* ``show``  — print the stored entries for this host (``--all-hosts``
  for everything in the file);
* ``clear`` — drop this host's entries (or the whole file).

All three honour ``--db`` / ``REPRO_TUNE_DB`` so CI can tune into a
workspace-local file without touching ``~/.cache``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.tune.db import TuneDB, TuneShape

__all__ = ["main"]

#: ``--tiny`` run defaults: seconds-scale on any host, still large
#: enough that chunk/tile choices move the needle.
_TINY_SHAPES = ((128, 128), (256, 512))
_DEFAULT_SHAPES = ((512, 512), (1024, 512), (2048, 512))


def _add_db_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--db",
        default=None,
        help="tuning-database path (default: REPRO_TUNE_DB or "
        "~/.cache/repro/tunedb.json)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Measured, persistent auto-tuning of the batched "
        "B-spline kernels.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="measure shapes and persist winners")
    _add_db_arg(run)
    run.add_argument(
        "--shape",
        action="append",
        metavar="NxBATCH",
        help="problem shape n_splines x batch (repeatable); default is a "
        "small sweep of production shapes",
    )
    run.add_argument("--dtype", default="float32", help="table dtype name")
    run.add_argument(
        "--kind", default="vgh", choices=("v", "vgl", "vgh"), help="kernel"
    )
    run.add_argument("--backend", default=None, help="kernel backend to tune")
    run.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per candidate"
    )
    run.add_argument(
        "--force", action="store_true", help="re-measure warm entries"
    )
    run.add_argument(
        "--tiny", action="store_true", help="CI-sized shapes (seconds, not minutes)"
    )
    run.add_argument("--json", action="store_true", help="machine-readable report")

    show = sub.add_parser("show", help="print stored entries")
    _add_db_arg(show)
    show.add_argument(
        "--all-hosts", action="store_true", help="include foreign-host entries"
    )
    show.add_argument("--json", action="store_true", help="machine-readable report")

    clear = sub.add_parser("clear", help="drop stored entries")
    _add_db_arg(clear)
    clear.add_argument(
        "--all-hosts", action="store_true", help="drop every host, not just this one"
    )
    return parser


def _parse_shape(text: str) -> tuple[int, int]:
    try:
        n, batch = text.lower().split("x")
        return int(n), int(batch)
    except ValueError:
        raise SystemExit(f"--shape must look like 512x512, got {text!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.tune.search import DEFAULT_REPEATS, autotune_shape

    db = TuneDB(path=args.db)
    if args.shape:
        shapes = [_parse_shape(s) for s in args.shape]
    else:
        shapes = list(_TINY_SHAPES if args.tiny else _DEFAULT_SHAPES)
    repeats = args.repeats if args.repeats is not None else DEFAULT_REPEATS
    rows = []
    total_measured = 0
    for n_splines, batch in shapes:
        shape = TuneShape(n_splines, batch, args.dtype, args.kind)
        outcome = autotune_shape(
            shape, db=db, backend=args.backend, repeats=repeats, force=args.force
        )
        total_measured += outcome.measured
        rows.append(outcome)
    report = {
        "db": str(db.path),
        "host": db.host.fingerprint,
        "measured": total_measured,
        "shapes": [
            {
                "shape": o.shape.key,
                "from_db": o.from_db,
                "measured": o.measured,
                **o.config.as_dict(),
            }
            for o in rows
        ],
    }
    if args.json:
        json.dump(report, sys.stdout, indent=1)
        print()
        return 0
    print(f"tuning DB: {db.path} (host {db.host.fingerprint})")
    for o in rows:
        c = o.config
        origin = "db" if o.from_db else f"measured {o.measured} candidates"
        print(
            f"  {o.shape.key:>28}  chunk={c.chunk:<6} tile={c.tile:<5} "
            f"backend={c.backend} tier={c.tier} "
            f"speedup={c.speedup:.2f}x  [{origin}]"
        )
    print(f"measured {total_measured} candidate configurations in total")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    db = TuneDB(path=args.db)
    rows = db.entries(all_hosts=args.all_hosts)
    if args.json:
        json.dump(
            {
                "db": str(db.path),
                "host": db.host.fingerprint,
                "entries": [
                    {"host": fp, "shape": shape.key, **cfg.as_dict()}
                    for fp, shape, cfg in rows
                ],
            },
            sys.stdout,
            indent=1,
        )
        print()
        return 0
    print(f"tuning DB: {db.path} (host {db.host.fingerprint})")
    if not rows:
        print("  (no entries)")
        return 0
    for fp, shape, cfg in rows:
        marker = "*" if fp == db.host.fingerprint else " "
        print(
            f" {marker}{fp}  {shape.key:>28}  chunk={cfg.chunk:<6} "
            f"tile={cfg.tile:<5} backend={cfg.backend} tier={cfg.tier} "
            f"speedup={cfg.speedup:.2f}x"
        )
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    db = TuneDB(path=args.db)
    dropped = db.clear(all_hosts=args.all_hosts)
    scope = "all hosts" if args.all_hosts else f"host {db.host.fingerprint}"
    print(f"dropped {dropped} entries ({scope}) from {db.path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {"run": _cmd_run, "show": _cmd_show, "clear": _cmd_clear}[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Downstream closed the pipe (`tune show | head`): point stdout
        # at devnull so the interpreter's exit flush doesn't raise too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
