"""repro.tune — blocking-parameter selection, heuristic and empirical.

Promoted from ``repro.core.tune`` in PR9 and grown into a two-tier
auto-tuner:

* :mod:`repro.tune.planner` — the PR5 cache-budget **heuristic**
  (:func:`plan_tiles`): instant, deterministic, no measurement.  The
  fallback tier and the baseline every measured winner is compared to.
* :mod:`repro.tune.search` — the **empirical** tier: micro-benchmarks
  model-pruned candidates, gates each one against the frozen PR4 oracle
  (so every stored config carries an ``exact``/``allclose`` conformance
  tier), and persists winners per host.
* :mod:`repro.tune.db` / :mod:`repro.tune.hostspec` — the persistent
  per-host tuning database and the declarative hardware spec that keys
  it.

Only the measurement-free modules are imported eagerly here;
:mod:`repro.tune.search` pulls in the kernel engines (which themselves
import :mod:`repro.tune.planner`), so it is imported lazily by the
callers that need it.
"""

from repro.tune.db import (
    TIER_ALLCLOSE,
    TIER_EXACT,
    TuneDB,
    TunedConfig,
    TuneShape,
    default_db_path,
)
from repro.tune.hostspec import HostSpec, current_host
from repro.tune.planner import (
    CacheInfo,
    TilePlan,
    detect_caches,
    gather_bytes,
    plan_budget_bytes,
    plan_tiles,
    working_set_bytes,
)

__all__ = [
    "CacheInfo",
    "TilePlan",
    "detect_caches",
    "plan_tiles",
    "plan_budget_bytes",
    "gather_bytes",
    "working_set_bytes",
    "HostSpec",
    "current_host",
    "TuneShape",
    "TunedConfig",
    "TuneDB",
    "default_db_path",
    "TIER_EXACT",
    "TIER_ALLCLOSE",
]
