"""ASCII tables and series rendering for the benchmark harness.

Every bench prints the same rows/series the paper reports; this module
keeps the formatting in one place so `pytest benchmarks/ -s` output reads
like the paper's tables.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_bars", "paper_vs_model_row"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    floatfmt: str = "{:.2f}",
) -> str:
    """Render a fixed-width ASCII table.

    Floats are formatted with ``floatfmt``; everything else with str().
    """
    def cell(v) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render named series against an x-axis as a table (figure-as-text)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [s[i] for s in series.values()])
    return format_table(headers, rows, title=title, floatfmt="{:.3g}")


def paper_vs_model_row(
    label: str, paper_value: float, model_value: float
) -> list:
    """A standard comparison row: label, paper, model, ratio."""
    ratio = model_value / paper_value if paper_value else float("nan")
    return [label, paper_value, model_value, ratio]


def format_bars(
    labels: Sequence,
    values: Sequence[float],
    title: str | None = None,
    width: int = 48,
) -> str:
    """Render a horizontal ASCII bar chart (figures as text).

    Bars are scaled to the maximum value; each row shows label, value and
    bar.  Used by the CLI to give the *figure* targets a visual shape on
    top of the numeric series.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("need at least one value")
    peak = max(values)
    if peak <= 0:
        raise ValueError("values must contain something positive")
    lines = []
    if title:
        lines.append(title)
    label_w = max(len(str(l)) for l in labels)
    for label, v in zip(labels, values):
        bar = "#" * max(int(round(width * v / peak)), 0)
        lines.append(f"{str(label).rjust(label_w)} | {v:10.3g} | {bar}")
    return "\n".join(lines)
