"""Parameter-sweep harness for benches and tuning runs.

A tiny, explicit alternative to ad-hoc nested loops: declare the axes,
get every combination with labels attached, collect rows ready for
:func:`repro.perf.report.format_table`.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Sequence

__all__ = ["sweep"]


def sweep(
    func: Callable[..., dict | float],
    axes: dict[str, Sequence],
    fixed: dict | None = None,
) -> list[dict]:
    """Run ``func`` over the cartesian product of ``axes``.

    Parameters
    ----------
    func:
        Called as ``func(**point, **fixed)``; may return a scalar (stored
        under ``"value"``) or a dict of result fields.
    axes:
        Ordered mapping of parameter name -> values to sweep.
    fixed:
        Extra keyword arguments passed unchanged to every call.

    Returns
    -------
    list of dict
        One record per point: the axis values plus the result fields.
    """
    fixed = fixed or {}
    names = list(axes)
    records = []
    for combo in product(*(axes[n] for n in names)):
        point = dict(zip(names, combo))
        result = func(**point, **fixed)
        record = dict(point)
        if isinstance(result, dict):
            record.update(result)
        else:
            record["value"] = result
        records.append(record)
    return records
