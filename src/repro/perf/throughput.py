"""The paper's throughput metric and derived quantities.

Paper Sec. VI: "We use T for the throughput per node, a QMC specific
metric (operations/sec) ... computed as T_X = Nw*N/t_X, where t_X is the
total time for X = V, VGL or VGH ... For the ideal performance, T should
be independent of N and the grid sizes."  Speedup is the ratio of T
before and after an optimization at equal node counts; parallel
efficiency is speedup over the resource factor.
"""

from __future__ import annotations

__all__ = ["throughput", "speedup", "parallel_efficiency"]


def throughput(n_walkers: int, n_splines: int, total_seconds: float, n_evals: int = 1) -> float:
    """T = Nw * N * evals / t — spline-values produced per second.

    Parameters
    ----------
    n_walkers:
        Walkers that ran concurrently.
    n_splines:
        Splines evaluated per kernel call.
    total_seconds:
        Wall time for the whole batch.
    n_evals:
        Kernel calls per walker in the batch (the paper's ns * niters).
    """
    if total_seconds <= 0:
        raise ValueError(f"total_seconds must be positive, got {total_seconds}")
    if n_walkers <= 0 or n_splines <= 0 or n_evals <= 0:
        raise ValueError("walker, spline and eval counts must be positive")
    return n_walkers * n_splines * n_evals / total_seconds


def speedup(t_optimized: float, t_baseline: float) -> float:
    """Throughput ratio optimized/baseline (same node count).

    Accepts throughputs (higher = better).  For *times*, swap arguments.
    """
    if t_baseline <= 0:
        raise ValueError(f"baseline throughput must be positive, got {t_baseline}")
    return t_optimized / t_baseline


def parallel_efficiency(speedup_value: float, resource_factor: int) -> float:
    """Speedup divided by the resource multiplier (threads, nodes)."""
    if resource_factor <= 0:
        raise ValueError(f"resource_factor must be positive, got {resource_factor}")
    return speedup_value / resource_factor
