"""repro.perf — timing, the paper's throughput metric, sweeps, reporting."""

from repro.perf.report import format_bars, format_series, format_table, paper_vs_model_row
from repro.perf.sweep import sweep
from repro.perf.throughput import parallel_efficiency, speedup, throughput
from repro.perf.timer import SectionTimers, best_of

__all__ = [
    "best_of",
    "SectionTimers",
    "throughput",
    "speedup",
    "parallel_efficiency",
    "sweep",
    "format_table",
    "format_series",
    "format_bars",
    "paper_vs_model_row",
]
