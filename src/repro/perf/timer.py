"""Timing utilities: repeat-min measurement and section timers.

Follows the measurement discipline of the optimization guides: no
optimization without measuring, best-of-repeats for microbenchmarks (the
minimum is the least-noise estimator of the true cost on an otherwise
idle machine), and named section accumulation for profile breakdowns.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["best_of", "SectionTimers"]


def best_of(func, *args, repeats: int = 3, **kwargs) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``func(*args, **kwargs)``.

    Returns the minimum across repeats; the callable's return value is
    discarded (measure side-effect-free closures).  ``repeats`` is
    keyword-only: every positional argument after ``func`` is forwarded
    to it, so ``best_of(f, x)`` times ``f(x)`` rather than silently
    reinterpreting ``x`` as a repeat count.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        func(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


class SectionTimers:
    """Named accumulating timers for run-time profile breakdowns.

    The tool behind the Table II/III reproductions: drivers wrap each
    kernel group (``bspline``, ``distance_tables``, ``jastrow``, ...) in
    :meth:`section` and read percentage shares at the end.
    """

    def __init__(self):
        self._elapsed: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def section(self, name: str):
        """Context manager accumulating wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._elapsed[name] = self._elapsed.get(name, 0.0) + dt
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Manually accumulate time under ``name``."""
        self._elapsed[name] = self._elapsed.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    @property
    def elapsed(self) -> dict[str, float]:
        """Accumulated seconds per section (copy)."""
        return dict(self._elapsed)

    @property
    def total(self) -> float:
        """Sum over all sections."""
        return sum(self._elapsed.values())

    def shares(self) -> dict[str, float]:
        """Per-section percentage of the total (the Table II/III format)."""
        tot = self.total
        if tot == 0.0:
            return {k: 0.0 for k in self._elapsed}
        return {k: 100.0 * v / tot for k, v in self._elapsed.items()}

    def reset(self) -> None:
        """Zero all accumulators."""
        self._elapsed.clear()
        self._counts.clear()
