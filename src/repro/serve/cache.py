"""Server-side coefficient-table cache over shared memory.

The expensive part of admitting a new tenant system is solving its
B-spline coefficient table and padding the ghost halo.  The server does
both exactly once per distinct ``(n_orbitals, box, grid_shape, dtype)``
system and parks the padded table in a
:class:`~repro.parallel.shared_table.SharedTable` segment; every serving
worker attaches the segment zero-copy, so the node holds one physical
copy of each live table no matter how many tenants share it (the
paper's one-table-many-readers memory model, promoted to service
scope).

The cache is a plain LRU: when a ``capacity+1``-th distinct system
arrives, the least-recently-served table's segment is unlinked and its
name is queued for workers to detach lazily (workers drop their mapping
at the next request they serve — a POSIX segment stays readable for
existing mappings after unlink, so an in-flight batch is never yanked).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.coeffs import pad_table_3d, solve_coefficients_3d
from repro.lattice.cell import Cell
from repro.lattice.orbitals import PlaneWaveOrbitalSet
from repro.obs import OBS

from repro.parallel.shared_table import SharedTable

__all__ = ["SystemKey", "solve_system_table", "TableCache"]


class SystemKey(tuple):
    """Normalized identity of a tenant system: what must match for two
    requests to share one coefficient table (and hence one batch)."""

    __slots__ = ()

    def __new__(cls, n_orbitals: int, box: float, grid_shape, dtype):
        return super().__new__(
            cls,
            (
                int(n_orbitals),
                float(box),
                tuple(int(g) for g in grid_shape),
                np.dtype(dtype).name,
            ),
        )

    @property
    def n_orbitals(self) -> int:
        return self[0]

    @property
    def box(self) -> float:
        return self[1]

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        return self[2]

    @property
    def dtype(self) -> str:
        return self[3]


def solve_system_table(key: SystemKey) -> np.ndarray:
    """Solve and ghost-pad the coefficient table for one system key.

    Same construction as :func:`repro.parallel.crowd.solve_spec_table`
    plus the parent-side pad — workers attach the halo zero-copy and
    never re-solve or re-pad.
    """
    cell = Cell.cubic(key.box)
    orbitals = PlaneWaveOrbitalSet(cell, key.n_orbitals)
    nx, ny, nz = key.grid_shape
    samples = orbitals.values_on_grid(nx, ny, nz)
    table = solve_coefficients_3d(samples, dtype=np.dtype(key.dtype))
    return pad_table_3d(table)


class TableCache:
    """LRU of owned :class:`SharedTable` segments, keyed by system.

    ``get`` returns the picklable segment spec workers attach by; a miss
    solves the table (the only expensive step) and may evict the
    least-recently-used entry, whose segment *name* is returned to the
    caller via ``drain_evicted`` so workers can be told to detach.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"table cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._tables: OrderedDict[SystemKey, SharedTable] = OrderedDict()
        self._evicted: list[str] = []

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, key: SystemKey) -> bool:
        return key in self._tables

    def get(self, key: SystemKey) -> dict:
        """The segment spec for ``key``, solving + caching on first use."""
        table = self._tables.get(key)
        if table is None:
            table = SharedTable.create(solve_system_table(key))
            self._tables[key] = table
            if OBS.enabled:
                OBS.count("serve_table_builds_total")
            while len(self._tables) > self.capacity:
                _, lru = self._tables.popitem(last=False)
                self._evicted.append(lru.name)
                lru.close()
                try:
                    lru.unlink()
                except FileNotFoundError:
                    pass  # already gone; removal was the goal
                if OBS.enabled:
                    OBS.count("serve_table_evictions_total")
        self._tables.move_to_end(key)
        if OBS.enabled:
            OBS.gauge("serve_tables_cached", len(self._tables))
        return table.spec

    def drain_evicted(self) -> list[str]:
        """Segment names evicted since the last drain (for worker
        detach broadcasts); clears the pending list."""
        evicted, self._evicted = self._evicted, []
        return evicted

    def close(self) -> None:
        """Unlink every owned segment (server shutdown)."""
        while self._tables:
            _, table = self._tables.popitem(last=False)
            table.close()
            try:
                table.unlink()
            except FileNotFoundError:
                pass  # already gone; removal was the goal
