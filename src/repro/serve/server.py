"""QMC-as-a-service: the asyncio server with cross-request batching.

``python -m repro serve`` turns the batched B-spline engines into a
long-lived multi-tenant service.  The shape is the one inference
servers converged on, applied to QMC kernels:

* an **asyncio front end** (TCP or unix socket, newline-delimited JSON
  — :mod:`repro.serve.protocol`) accepts concurrent requests from many
  tenants;
* **admission control** bounds the work in flight (global
  ``max_pending`` cap, per-tenant ``tenant_inflight`` cap, explicit
  ``draining`` state) so overload degrades into clean protocol errors
  instead of unbounded queues;
* compatible ``eval`` requests — same coefficient table, kernel kind
  and backend — coalesce in a bounded **micro-batching window**
  (:mod:`repro.serve.batching`) into single fused kernel calls.
  Coalescing is bit-safe: each position's result is independent of its
  batch neighbours, so every tenant gets exactly the bytes a solo call
  would have produced;
* execution happens in a :class:`~repro.parallel.pool.ProcessCrowdPool`
  of persistent workers, leased one batch at a time, each holding
  zero-copy attachments of the LRU-cached coefficient tables
  (:mod:`repro.serve.cache`, :mod:`repro.serve.worker`);
* per-tenant counters/gauges/latency histograms flow through the OBS
  switchboard, and shutdown **drains**: in-flight requests finish, new
  ones are refused, workers and shared segments are torn down cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import concurrent.futures
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.backends import (
    BackendConformanceError,
    BackendUnavailable,
    resolve_backend,
)
from repro.core.kinds import Kind
from repro.obs import OBS
from repro.parallel.pool import ProcessCrowdPool, WorkerError, WorkerTimeout
from repro.serve import protocol
from repro.serve.batching import BatchItem, MicroBatcher
from repro.serve.cache import SystemKey, TableCache
from repro.serve.protocol import ProtocolError
from repro.serve.worker import _init_serve_shard

__all__ = ["ServeConfig", "QmcServer", "ServerThread", "main"]

#: Validation bounds: generous for a test service, small enough that a
#: single request can never monopolize a worker for minutes.
_MAX_POSITIONS = 4096
_MAX_ORBITALS = 32
_MAX_GRID = 64
_MAX_WALKERS = 64
_MAX_STEPS = 500
_MAX_GENERATIONS = 200


@dataclass
class ServeConfig:
    """Everything that shapes one server instance (all CLI-settable)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from .address
    unix_socket: str | None = None  # overrides host/port when set
    workers: int = 2
    #: Batching window: a batch closes at ``max_batch`` riders or
    #: ``max_wait_us`` after its first, whichever comes first.
    #: ``max_batch=1`` disables coalescing (the benchmark baseline).
    max_batch: int = 32
    max_wait_us: float = 2000.0
    #: Admission control.
    max_pending: int = 256
    tenant_inflight: int = 32
    #: LRU capacity of the parent-side coefficient-table cache.
    table_cache: int = 8
    #: Default kernel backend (explicit name beats ``REPRO_BACKEND``;
    #: ``None`` defers to the env var, then NumPy).  Validated strictly
    #: at startup.
    backend: str | None = None
    #: Opt C for serving: when > 1, every coalesced eval batch is split
    #: into that many contiguous orbital blocks (clamped by the planner
    #: and the worker count) and fanned across concurrently leased
    #: workers, each evaluating its block of the shared table zero-copy.
    #: Responses are byte-identical to the single-worker path (the
    #: spline-axis blocking invariance).  1 = one fused call per batch.
    orbital_shards: int = 1
    worker_timeout: float = 120.0
    drain_timeout: float = 30.0
    observe: bool = True
    start_method: str | None = None
    #: :class:`repro.config.RunConfig` shipped to every worker shard —
    #: blocking (chunk/tile) and tune mode for the engines workers build
    #: per cached table.  ``None`` = ``RunConfig.from_env()`` at startup.
    #: Per-request backends still override its ``backend`` field.
    run_config: "object | None" = None


class QmcServer:
    """The serving state machine; one instance per listening socket.

    Lifecycle: ``await start()`` (resolves the default backend, spins up
    the worker pool, binds the socket), then ``await run()`` (serves
    until :meth:`request_shutdown`), which drains and tears everything
    down before returning.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        # Strict parent-side resolution: an explicit --backend that this
        # host cannot serve fails *here*, at startup — and because
        # resolve_backend only consults REPRO_BACKEND when the spec is
        # None, an explicit name always beats the environment.
        self.default_backend = resolve_backend(config.backend).name
        # Rungs 1-2 applied parent-side (env read once, here); workers
        # receive this config verbatim and finish rungs 3-4 per table.
        from repro.config import RunConfig

        self.run_config = (
            config.run_config
            if config.run_config is not None
            else RunConfig.from_env()
        )
        self._backend_names: dict[str, str] = {}
        self._cache = TableCache(config.table_cache)
        self._cache_lock = asyncio.Lock()
        self._table_specs: dict[str, dict] = {}
        self._pool: ProcessCrowdPool | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._worker_gate: asyncio.Queue | None = None
        # Serializes multi-worker lease acquisition: two concurrent
        # orbital fan-outs grabbing leases piecemeal could each hold a
        # partial set and deadlock; under the lock a fan-out acquires
        # all-or-nothing while single-lease ops drain normally.
        self._fanout_lock = asyncio.Lock()
        self._pending_release: dict[int, list[str]] = {}
        self._batcher = MicroBatcher(
            self._flush_batch, config.max_batch, config.max_wait_us / 1e6
        )
        self._inflight = 0
        self._tenant_inflight: dict[str, int] = {}
        self._req_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._shutdown = asyncio.Event()
        self._draining = False
        self._stopped = False
        self._obs_enabled_here = False
        self._t_started = 0.0
        self.address = None  # (host, port) or unix path, set by start()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and build the worker pool."""
        cfg = self.config
        if cfg.observe and not OBS.enabled:
            OBS.enable()
            self._obs_enabled_here = True
        # Start the shared-memory resource tracker *before* forking the
        # pool: workers forked first would each lazily spawn their own
        # tracker, which unlinks every attached segment when the worker
        # exits — yanking live cached tables out from under the server.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        loop = asyncio.get_running_loop()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=cfg.workers + 4, thread_name_prefix="serve"
        )
        self._pool = await loop.run_in_executor(
            self._executor,
            lambda: ProcessCrowdPool(
                cfg.workers,
                _init_serve_shard,
                (cfg.observe, self.run_config),
                start_method=cfg.start_method,
            ),
        )
        self._worker_gate = asyncio.Queue()
        for w in range(cfg.workers):
            self._worker_gate.put_nowait(w)
            self._pending_release[w] = []
        if cfg.unix_socket:
            self._server = await asyncio.start_unix_server(
                self._handle_conn,
                path=cfg.unix_socket,
                limit=protocol.MAX_LINE_BYTES + 1024,
            )
            self.address = cfg.unix_socket
        else:
            self._server = await asyncio.start_server(
                self._handle_conn,
                host=cfg.host,
                port=cfg.port,
                limit=protocol.MAX_LINE_BYTES + 1024,
            )
            self.address = self._server.sockets[0].getsockname()[:2]
        self._t_started = time.monotonic()

    def request_shutdown(self) -> None:
        """Ask the server to drain and stop (signal-handler safe)."""
        self._shutdown.set()

    async def run(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain and close."""
        try:
            await self._shutdown.wait()
        finally:
            await self._drain_and_close()

    async def _drain_and_close(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        cfg = self.config
        loop = asyncio.get_running_loop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Close every open batching window, then let in-flight requests
        # finish against the drain deadline.
        self._batcher.flush_all()
        pending = [t for t in self._req_tasks if not t.done()]
        if pending:
            done, still = await asyncio.wait(
                pending, timeout=cfg.drain_timeout
            )
            for task in still:
                task.cancel()
        await self._batcher.wait_idle()
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._pool is not None:
            pool = self._pool
            if OBS.enabled:
                try:
                    await loop.run_in_executor(
                        self._executor, pool.merge_metrics
                    )
                except WorkerError:
                    pass  # a dead worker must not wedge shutdown
            await loop.run_in_executor(self._executor, pool.close)
        self._cache.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._obs_enabled_here:
            OBS.disable()

    # -- connection handling -------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        wlock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(
                        writer,
                        wlock,
                        protocol.error_response(
                            None, "bad_request", "request line too long"
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, wlock)
                )
                self._req_tasks.add(task)
                task.add_done_callback(self._req_tasks.discard)
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, wlock: asyncio.Lock, obj: dict
    ) -> None:
        try:
            async with wlock:
                writer.write(protocol.encode_line(obj))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # client went away; nothing to tell it

    async def _serve_line(
        self, line: bytes, writer: asyncio.StreamWriter, wlock: asyncio.Lock
    ) -> None:
        req_id = None
        tenant = "default"
        op = "?"
        t0 = time.perf_counter()
        try:
            req = protocol.decode_line(line)
            req_id = req.get("id")
            tenant = self._parse_tenant(req.get("tenant"))
            op = req.get("op")
            if op not in protocol.OPS:
                raise ProtocolError(
                    "bad_request",
                    f"unknown op {op!r}; expected one of {protocol.OPS}",
                )
            if OBS.enabled:
                OBS.count("serve_requests_total", tenant=tenant, op=op)
            if op == "ping":
                response = protocol.ok_response(req_id, {"pong": True})
            elif op == "stats":
                response = protocol.ok_response(req_id, self._stats())
            else:
                self._admit(tenant)
                try:
                    if op == "eval":
                        result, meta = await self._op_eval(tenant, req)
                    elif op == "vmc":
                        result, meta = await self._op_vmc(tenant, req)
                    else:
                        result, meta = await self._op_dmc(tenant, req)
                finally:
                    self._release(tenant)
                response = protocol.ok_response(req_id, result, meta)
            if OBS.enabled:
                OBS.observe(
                    "serve_request_seconds",
                    time.perf_counter() - t0,
                    tenant=tenant,
                    op=op,
                )
        except ProtocolError as exc:
            if OBS.enabled:
                OBS.count(
                    "serve_rejected_total", tenant=tenant, reason=exc.code
                )
            response = protocol.error_response(req_id, exc.code, str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — protocol boundary
            if OBS.enabled:
                OBS.count(
                    "serve_rejected_total", tenant=tenant, reason="internal"
                )
            response = protocol.error_response(
                req_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        await self._write(writer, wlock, response)

    # -- admission control ---------------------------------------------------

    def _admit(self, tenant: str) -> None:
        cfg = self.config
        if self._draining:
            raise ProtocolError(
                "draining", "server is draining; not accepting new work"
            )
        if self._inflight >= cfg.max_pending:
            raise ProtocolError(
                "overloaded",
                f"server has {self._inflight} requests in flight "
                f"(max_pending={cfg.max_pending}); retry later",
            )
        held = self._tenant_inflight.get(tenant, 0)
        if held >= cfg.tenant_inflight:
            raise ProtocolError(
                "tenant_limit",
                f"tenant {tenant!r} already has {held} requests in flight "
                f"(tenant_inflight={cfg.tenant_inflight})",
            )
        self._inflight += 1
        self._tenant_inflight[tenant] = held + 1
        if OBS.enabled:
            OBS.gauge("serve_queue_depth", self._inflight)
            OBS.gauge("serve_tenant_inflight", held + 1, tenant=tenant)

    def _release(self, tenant: str) -> None:
        self._inflight -= 1
        held = self._tenant_inflight.get(tenant, 1) - 1
        if held <= 0:
            self._tenant_inflight.pop(tenant, None)
        else:
            self._tenant_inflight[tenant] = held
        if OBS.enabled:
            OBS.gauge("serve_queue_depth", self._inflight)
            OBS.gauge("serve_tenant_inflight", max(held, 0), tenant=tenant)

    # -- request validation --------------------------------------------------

    @staticmethod
    def _parse_tenant(tenant) -> str:
        if tenant is None:
            return "default"
        if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
            raise ProtocolError(
                "bad_request", "tenant must be a short non-empty string"
            )
        return tenant

    @staticmethod
    def _system_key(system, default_dtype: str = "float64") -> SystemKey:
        if not isinstance(system, dict):
            raise ProtocolError("bad_request", "system must be an object")
        try:
            n_orbitals = int(system.get("n_orbitals", 4))
            box = float(system.get("box", 6.0))
            grid_shape = tuple(
                int(g) for g in system.get("grid_shape", (12, 12, 12))
            )
            dtype = str(system.get("dtype", default_dtype))
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_request", f"malformed system: {exc}")
        if not 1 <= n_orbitals <= _MAX_ORBITALS:
            raise ProtocolError(
                "bad_request",
                f"n_orbitals must be in [1, {_MAX_ORBITALS}], got {n_orbitals}",
            )
        if not 1.0 <= box <= 100.0:
            raise ProtocolError(
                "bad_request", f"box must be in [1, 100], got {box}"
            )
        if len(grid_shape) != 3 or not all(
            4 <= g <= _MAX_GRID for g in grid_shape
        ):
            raise ProtocolError(
                "bad_request",
                f"grid_shape must be three ints in [4, {_MAX_GRID}], "
                f"got {grid_shape}",
            )
        if dtype not in ("float64", "float32"):
            raise ProtocolError(
                "bad_request",
                f"dtype must be 'float64' or 'float32', got {dtype!r}",
            )
        return SystemKey(n_orbitals, box, grid_shape, dtype)

    @staticmethod
    def _parse_kind(kind) -> Kind:
        try:
            return Kind(kind)
        except ValueError:
            valid = ", ".join(repr(m.value) for m in Kind)
            raise ProtocolError(
                "bad_request", f"kind must be one of {valid}, got {kind!r}"
            )

    @staticmethod
    def _parse_positions(positions) -> np.ndarray:
        if isinstance(positions, dict):
            array = protocol.decode_array(positions)
        elif isinstance(positions, list):
            try:
                array = np.asarray(positions, dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    "bad_request", f"malformed positions: {exc}"
                )
        else:
            raise ProtocolError(
                "bad_request", "positions must be an array object or list"
            )
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2 or array.shape[1] != 3:
            raise ProtocolError(
                "bad_request",
                f"positions must be (n, 3), got shape {array.shape}",
            )
        if not 1 <= len(array) <= _MAX_POSITIONS:
            raise ProtocolError(
                "bad_request",
                f"need 1..{_MAX_POSITIONS} positions, got {len(array)}",
            )
        if not np.all(np.isfinite(array)):
            raise ProtocolError("bad_request", "positions must be finite")
        if np.any(array < 0.0) or np.any(array >= 1.0):
            raise ProtocolError(
                "bad_request",
                "positions are fractional grid coordinates in [0, 1)",
            )
        return np.ascontiguousarray(array)

    def _resolve_request_backend(self, name) -> str:
        """Strict parent-side backend resolution for one request.

        A tenant naming a backend this host cannot serve gets a
        ``backend_unavailable`` protocol error; no worker ever sees the
        bad name.  Successful resolutions are cached by name.
        """
        if name is None:
            return self.default_backend
        if not isinstance(name, str):
            raise ProtocolError(
                "bad_request", "backend must be a backend name string"
            )
        resolved = self._backend_names.get(name)
        if resolved is None:
            try:
                resolved = resolve_backend(name).name
            except (BackendUnavailable, BackendConformanceError) as exc:
                raise ProtocolError("backend_unavailable", str(exc))
            self._backend_names[name] = resolved
        return resolved

    @staticmethod
    def _bounded_int(req, field, lo, hi, default) -> int:
        try:
            value = int(req.get(field, default))
        except (TypeError, ValueError):
            raise ProtocolError("bad_request", f"{field} must be an integer")
        if not lo <= value <= hi:
            raise ProtocolError(
                "bad_request", f"{field} must be in [{lo}, {hi}], got {value}"
            )
        return value

    @staticmethod
    def _bounded_float(req, field, lo, hi, default) -> float:
        try:
            value = float(req.get(field, default))
        except (TypeError, ValueError):
            raise ProtocolError("bad_request", f"{field} must be a number")
        if not lo < value <= hi:
            raise ProtocolError(
                "bad_request", f"{field} must be in ({lo}, {hi}], got {value}"
            )
        return value

    # -- shared helpers ------------------------------------------------------

    async def _table_spec(self, key: SystemKey) -> dict:
        """The shared-segment spec for ``key``, solving at most once.

        The solve runs in the executor so a cold table never stalls the
        event loop; the lock serializes cache access (two tenants
        racing the same cold key must not both solve it).
        """
        loop = asyncio.get_running_loop()
        async with self._cache_lock:
            spec = await loop.run_in_executor(
                self._executor, self._cache.get, key
            )
            self._table_specs[spec["name"]] = spec
            for name in self._cache.drain_evicted():
                for releases in self._pending_release.values():
                    releases.append(name)
        return spec

    async def _lease_worker(self):
        worker = await self._worker_gate.get()
        release = self._pending_release.get(worker, [])
        self._pending_release[worker] = []
        return worker, release

    async def _dispatch(self, worker: int, method: str, kwargs: dict):
        """Run one pool call on a leased worker off the event loop.

        A hung worker raises :class:`WorkerTimeout` after
        ``worker_timeout``; either failure mode replaces the worker (the
        recovery path :meth:`ProcessCrowdPool.restart_worker` bounds)
        before the lease is returned, so one sick request cannot poison
        the next tenant's.
        """
        loop = asyncio.get_running_loop()
        pool = self._pool
        cfg = self.config

        def call():
            pool.start_call(worker, method, kwargs=kwargs)
            return pool.finish_call(
                worker, timeout=cfg.worker_timeout, method=method
            )

        try:
            return await loop.run_in_executor(self._executor, call)
        except WorkerError as exc:
            if OBS.enabled:
                OBS.count("serve_worker_failures_total", worker=str(worker))
            try:
                await loop.run_in_executor(
                    self._executor,
                    lambda: pool.restart_worker(worker, timeout=30.0),
                )
                # The replacement holds no attachments; stale release
                # orders for this worker are moot.
                self._pending_release[worker] = []
            except WorkerError:
                pass  # next lease of this worker retries the restart
            code = (
                "worker_timeout"
                if isinstance(exc, WorkerTimeout)
                else "internal"
            )
            raise ProtocolError(code, f"serving worker failed: {exc}")

    # -- eval (micro-batched) ------------------------------------------------

    async def _op_eval(self, tenant: str, req: dict):
        key = self._system_key(req.get("system", {}))
        kind = self._parse_kind(req.get("kind", "vgh"))
        backend = self._resolve_request_backend(req.get("backend"))
        positions = self._parse_positions(req.get("positions"))
        spec = await self._table_spec(key)
        batch_key = (spec["name"], kind.value, backend, key.grid_shape)
        future = asyncio.get_running_loop().create_future()
        self._batcher.submit(
            batch_key, BatchItem(tenant, positions, future)
        )
        streams, meta = await future
        result = {
            "kind": kind.value,
            "streams": {
                name: protocol.encode_array(arr)
                for name, arr in streams.items()
            },
        }
        return result, meta

    def _plan_fanout(self, name: str) -> list | None:
        """Orbital blocks for one eval batch, or None for the fused path.

        Fan-out engages when ``orbital_shards > 1`` and the planner can
        cut the table's spline axis into at least two blocks no wider
        than the worker pool — small-batch requests then borrow idle
        workers along the orbital axis instead of leaving them parked.
        """
        shards = self.config.orbital_shards
        if shards <= 1:
            return None
        from repro.core.partition import plan_orbital_blocks

        n_splines = int(self._table_specs[name]["shape"][-1])
        blocks = plan_orbital_blocks(
            n_splines, min(shards, self.config.workers)
        )
        return blocks if len(blocks) > 1 else None

    async def _fanout_eval(
        self, name, kind_value, backend, grid_shape, positions, blocks
    ) -> dict:
        """One batch fanned across ``len(blocks)`` concurrently leased
        workers, one orbital block each; streams reassembled column-wise."""
        async with self._fanout_lock:
            leases = [await self._lease_worker() for _ in blocks]
        parts: list = []
        try:
            calls = [
                self._dispatch(
                    worker,
                    "eval_block",
                    {
                        "table_spec": self._table_specs[name],
                        "grid_shape": grid_shape,
                        "kind_value": kind_value,
                        "positions": positions,
                        "spline_range": (block.start, block.stop),
                        "backend": backend,
                        "release": release,
                    },
                )
                for (worker, release), block in zip(leases, blocks)
            ]
            # return_exceptions: every dispatch must settle before the
            # leases go back — a cancelled sibling would otherwise leave
            # a pool call in flight on a worker someone else then leases.
            parts = await asyncio.gather(*calls, return_exceptions=True)
        finally:
            for worker, _ in leases:
                self._worker_gate.put_nowait(worker)
        for part in parts:
            if isinstance(part, BaseException):
                raise part
        if OBS.enabled:
            OBS.count("serve_fanout_batches_total")
            OBS.observe("serve_fanout_blocks", len(blocks))
        return {
            stream: np.concatenate([p[stream] for p in parts], axis=-1)
            for stream in Kind(kind_value).streams
        }

    async def _flush_batch(self, batch_key, items: list[BatchItem]) -> None:
        """Serve one closed batching window with one fused kernel call
        (or, with ``orbital_shards > 1``, one fanned call per block)."""
        name, kind_value, backend, grid_shape = batch_key
        positions = np.concatenate([item.positions for item in items])
        if OBS.enabled:
            OBS.count("serve_batches_total")
            OBS.observe("serve_batch_size", len(items))
            OBS.observe("serve_batch_positions", len(positions))
            if len(items) > 1:
                OBS.count("serve_coalesced_requests_total", len(items))
        blocks = self._plan_fanout(name)
        worker = None
        try:
            if blocks is not None:
                streams = await self._fanout_eval(
                    name, kind_value, backend, grid_shape, positions, blocks
                )
            else:
                worker, release = await self._lease_worker()
                streams = await self._dispatch(
                    worker,
                    "eval_batch",
                    {
                        "table_spec": self._table_specs[name],
                        "grid_shape": grid_shape,
                        "kind_value": kind_value,
                        "positions": positions,
                        "backend": backend,
                        "release": release,
                    },
                )
        except Exception as exc:  # noqa: BLE001 — batch failure boundary
            if not isinstance(exc, ProtocolError):
                exc = ProtocolError(
                    "internal", f"{type(exc).__name__}: {exc}"
                )
            for item in items:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        finally:
            if worker is not None:
                self._worker_gate.put_nowait(worker)
        meta = {"coalesced": len(items), "batch_positions": len(positions)}
        if blocks is not None:
            meta["orbital_blocks"] = len(blocks)
        offset = 0
        for item in items:
            sl = slice(offset, offset + item.n_positions)
            offset += item.n_positions
            if not item.future.done():
                item.future.set_result(
                    ({s: arr[sl] for s, arr in streams.items()}, meta)
                )

    # -- vmc / dmc (leased worker, no batching) ------------------------------

    def _spec_fields(self, req: dict, key: SystemKey, backend: str) -> dict:
        # The server's RunConfig with the per-request backend folded in;
        # the worker rebuilds the CrowdSpec from these fields verbatim.
        return {
            "n_walkers": self._bounded_int(
                req, "n_walkers", 1, _MAX_WALKERS, 4
            ),
            "n_orbitals": key.n_orbitals,
            "box": key.box,
            "grid_shape": key.grid_shape,
            "seed": self._bounded_int(req, "seed", 0, 2**63 - 1, 2017),
            "config": self.run_config.replace(backend=backend),
        }

    async def _op_vmc(self, tenant: str, req: dict):
        key = self._system_key(req.get("system", {}))
        if key.dtype != "float64":
            raise ProtocolError(
                "bad_request", "vmc serves float64 tables only"
            )
        backend = self._resolve_request_backend(req.get("backend"))
        kwargs = {
            "spec_fields": self._spec_fields(req, key, backend),
            "n_steps": self._bounded_int(req, "n_steps", 1, _MAX_STEPS, 10),
            "n_warmup": self._bounded_int(req, "n_warmup", 0, _MAX_STEPS, 0),
            "tau": self._bounded_float(req, "tau", 0.0, 10.0, 0.3),
            "ion_charge": self._bounded_float(
                req, "ion_charge", 0.0, 100.0, 4.0
            ),
        }
        kwargs["table_spec"] = await self._table_spec(key)
        worker, release = await self._lease_worker()
        kwargs["release"] = release
        try:
            out = await self._dispatch(worker, "run_vmc", kwargs)
        finally:
            self._worker_gate.put_nowait(worker)
        result = {
            "energies": protocol.encode_array(out["energies"]),
            "accepted": int(out["accepted"]),
            "attempted": int(out["attempted"]),
        }
        return result, {"worker": worker}

    async def _op_dmc(self, tenant: str, req: dict):
        key = self._system_key(req.get("system", {}))
        if key.dtype != "float64":
            raise ProtocolError(
                "bad_request", "dmc serves float64 tables only"
            )
        backend = self._resolve_request_backend(req.get("backend"))
        kwargs = {
            "spec_fields": self._spec_fields(req, key, backend),
            "n_generations": self._bounded_int(
                req, "n_generations", 1, _MAX_GENERATIONS, 10
            ),
            "tau": self._bounded_float(req, "tau", 0.0, 10.0, 0.05),
            "ion_charge": self._bounded_float(
                req, "ion_charge", 0.0, 100.0, 4.0
            ),
        }
        worker, release = await self._lease_worker()
        kwargs["release"] = release
        try:
            out = await self._dispatch(worker, "run_dmc", kwargs)
        finally:
            self._worker_gate.put_nowait(worker)
        result = {
            "energy_trace": protocol.encode_array(out["energy_trace"]),
            "population_trace": protocol.encode_array(
                out["population_trace"]
            ),
            "acceptance": float(out["acceptance"]),
            "energy_mean": float(out["energy_mean"]),
        }
        return result, {"worker": worker}

    # -- stats ---------------------------------------------------------------

    @staticmethod
    def _metrics_snapshot() -> dict:
        """The registry flattened to ``{"name{k=v}": snapshot_fields}`` —
        counters carry ``value``, histograms count/sum/mean/p50/p90/p99."""
        from repro.obs.metrics import format_labels

        return {
            name + format_labels(labels): metric.snapshot()
            for name, labels, metric in OBS.registry.items()
        }

    def _stats(self) -> dict:
        return {
            "uptime_seconds": time.monotonic() - self._t_started,
            "draining": self._draining,
            "workers": self.config.workers,
            "inflight": self._inflight,
            "tables_cached": len(self._cache),
            "default_backend": self.default_backend,
            "run_config": self.run_config.as_dict(),
            "max_batch": self.config.max_batch,
            "max_wait_us": self.config.max_wait_us,
            "metrics": self._metrics_snapshot() if OBS.enabled else {},
        }


class ServerThread:
    """A QmcServer on a private event-loop thread (tests, benchmarks).

    ``with ServerThread(config) as server: server.address`` — the block
    exit requests shutdown and joins the thread, so every worker,
    socket and shared segment is gone when the block closes.
    """

    def __init__(self, config: ServeConfig, start_timeout: float = 60.0):
        import threading

        self._config = config
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._qserver: QmcServer | None = None
        self._thread = threading.Thread(
            target=self._run, name="qmc-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(start_timeout):
            raise TimeoutError("server did not start in time")
        if self._error is not None:
            self._thread.join(timeout=5.0)
            raise self._error

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            server = QmcServer(self._config)
            await server.start()
        except BaseException as exc:  # startup failure -> constructor
            self._error = exc
            self._ready.set()
            return
        self._qserver = server
        self._ready.set()
        await server.run()

    @property
    def address(self):
        return self._qserver.address

    @property
    def server(self) -> QmcServer:
        return self._qserver

    def stop(self, timeout: float = 60.0) -> None:
        if self._qserver is not None and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self._qserver.request_shutdown
                )
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve batched B-spline orbital evaluations and short QMC "
            "runs to concurrent tenants over newline-delimited JSON."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--unix-socket", default=None, help="serve on a unix socket instead"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-us", type=float, default=2000.0)
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument("--tenant-inflight", type=int, default=32)
    parser.add_argument("--table-cache", type=int, default=8)
    parser.add_argument(
        "--backend",
        default=None,
        help="default kernel backend (beats REPRO_BACKEND; strict)",
    )
    parser.add_argument(
        "--orbital-shards",
        type=int,
        default=None,
        metavar="K",
        help="fan each eval batch across K orbital blocks on "
        "concurrently leased workers (Opt C; byte-identical responses); "
        "default: REPRO_ORBITAL_SHARDS / the RunConfig, else 1",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="JSON RunConfig file shipped to worker shards "
        "(chunk/tile/tune mode); --backend still wins per request",
    )
    parser.add_argument(
        "--no-tune",
        action="store_true",
        help="skip the per-host tuned-config DB in worker shards "
        "(rung 3); blocking falls back to the cache heuristic",
    )
    parser.add_argument("--worker-timeout", type=float, default=120.0)
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument(
        "--no-observe",
        action="store_true",
        help="disable the OBS metrics switchboard",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the final metrics registry JSON here on shutdown",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro serve``."""
    args = _build_parser().parse_args(argv)
    from repro.config import TUNE_OFF, RunConfig, load_run_config

    try:
        run_config = (
            load_run_config(args.config) if args.config else RunConfig.from_env()
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.no_tune:
        run_config = run_config.replace(tune=TUNE_OFF)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        max_pending=args.max_pending,
        tenant_inflight=args.tenant_inflight,
        table_cache=args.table_cache,
        backend=args.backend,
        orbital_shards=(
            args.orbital_shards
            if args.orbital_shards is not None
            else (run_config.orbital_shards or 1)
        ),
        worker_timeout=args.worker_timeout,
        drain_timeout=args.drain_timeout,
        observe=not args.no_observe,
        run_config=run_config,
    )

    async def amain() -> None:
        import signal

        server = QmcServer(config)
        await server.start()
        if config.unix_socket:
            print(f"serving on {server.address}", flush=True)
        else:
            host, port = server.address
            print(f"serving on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except NotImplementedError:
                pass
        await server.run()
        if args.metrics_out:
            OBS.registry.write_json(args.metrics_out)

    try:
        asyncio.run(amain())
    except (BackendUnavailable, BackendConformanceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0
