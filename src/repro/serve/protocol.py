"""The wire protocol of the QMC service: newline-delimited JSON.

One request per line, one response per line, both UTF-8 JSON objects.
The framing is deliberately the simplest thing that can serve many
tenants over one socket — readable with ``nc``, testable with a
five-line client, and fast enough that the batched kernels (not the
protocol) dominate service time.

Request::

    {"id": <any json>, "op": "eval", "tenant": "team-a", ...op fields}

Response::

    {"id": <echoed>, "ok": true,  "result": {...}, "meta": {...}}
    {"id": <echoed>, "ok": false, "error": {"code": "...", "message": "..."}}

Responses carry the request's ``id`` verbatim; a client that pipelines
requests over one connection correlates by id (completion order is not
guaranteed — coalescing may finish a later request first).

Arrays travel as ``{"dtype", "shape", "data"}`` with ``data`` a flat
list.  JSON numbers round-trip Python floats exactly (``repr`` based),
so a served float64 result is **bit-identical** after decoding — the
property the benchmark's ``assert_array_equal`` gate relies on; float32
values widen and re-narrow exactly as well.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = [
    "OPS",
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode_array",
    "decode_array",
    "encode_line",
    "decode_line",
    "ok_response",
    "error_response",
]

#: Operations the server understands.
OPS = ("ping", "eval", "vmc", "dmc", "stats")

#: Error codes a response may carry (the protocol's public contract).
ERROR_CODES = (
    "bad_request",        # malformed JSON / unknown op / invalid params
    "backend_unavailable",  # tenant asked for a backend this host can't serve
    "overloaded",         # admission control: global in-flight cap reached
    "tenant_limit",       # admission control: per-tenant in-flight cap reached
    "draining",           # server is shutting down; no new work accepted
    "worker_timeout",     # the serving worker missed its reply deadline
    "internal",           # worker crash or unexpected server error
)

#: Hard cap on one request line (a 4096-position f64 VGH request is ~1 MiB
#: of JSON; this bounds a hostile or confused client, not a real one).
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(Exception):
    """A request that cannot be served, with its protocol error code."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code


def encode_array(array: np.ndarray) -> dict:
    """An ndarray as a JSON-ready ``{dtype, shape, data}`` dict."""
    array = np.asarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": array.ravel().tolist(),
    }


def decode_array(obj: dict) -> np.ndarray:
    """Rebuild the ndarray an :func:`encode_array` dict describes."""
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(s) for s in obj["shape"])
        data = obj["data"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("bad_request", f"malformed array: {exc}") from None
    array = np.asarray(data, dtype=dtype)
    if array.size != int(np.prod(shape, dtype=np.int64)):
        raise ProtocolError(
            "bad_request",
            f"array data length {array.size} does not match shape {shape}",
        )
    return array.reshape(shape)


def encode_line(obj: dict) -> bytes:
    """One protocol object as a newline-terminated JSON line."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one received line; raises :class:`ProtocolError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "bad_request", f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    return obj


def ok_response(request_id, result: dict, meta: dict | None = None) -> dict:
    """A success response echoing ``request_id``."""
    out = {"id": request_id, "ok": True, "result": result}
    if meta:
        out["meta"] = meta
    return out


def error_response(request_id, code: str, message: str) -> dict:
    """An error response echoing ``request_id`` (``None`` when unknown)."""
    if code not in ERROR_CODES:
        code, message = "internal", f"[{code}] {message}"
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
