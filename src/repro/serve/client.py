"""A synchronous client for the QMC service, plus its CLI.

:class:`ServeClient` speaks the newline-delimited JSON protocol over
one TCP or unix-socket connection; decoded eval streams come back as
NumPy arrays **bit-identical** to a direct in-process
:meth:`~repro.core.batched.BsplineBatched.evaluate_batch` call (the
protocol round-trips floats exactly — see :mod:`repro.serve.protocol`).

``python -m repro serve-client`` wraps it for shell use::

    python -m repro serve-client --connect 127.0.0.1:7777 ping
    python -m repro serve-client --connect 127.0.0.1:7777 eval \
        --kind vgh --positions "0.1,0.2,0.3;0.4,0.5,0.6"
    python -m repro serve-client --connect /tmp/qmc.sock vmc --n-steps 5
"""

from __future__ import annotations

import argparse
import itertools
import json
import socket
import sys

import numpy as np

from repro.serve import protocol
from repro.serve.protocol import ProtocolError

__all__ = ["ServeError", "ServeClient", "parse_address", "main"]


class ServeError(RuntimeError):
    """An error response from the server, carrying its protocol code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


def parse_address(address):
    """``"host:port"`` / ``(host, port)`` → TCP; anything else → unix path."""
    if isinstance(address, (tuple, list)):
        return ("tcp", (address[0], int(address[1])))
    if isinstance(address, str) and ":" in address:
        host, port = address.rsplit(":", 1)
        if port.isdigit():
            return ("tcp", (host, int(port)))
    return ("unix", str(address))


class ServeClient:
    """One connection to a QMC server; safe to use from one thread.

    Requests are issued synchronously (send one line, read lines until
    the response with the matching id arrives — the server may
    interleave other work, but this client never pipelines, so the next
    line for *this* connection is always ours).
    """

    def __init__(self, address, tenant: str = "default", timeout: float = 120.0):
        kind, target = parse_address(address)
        if kind == "tcp":
            self._sock = socket.create_connection(target, timeout=timeout)
        else:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(target)
        self._file = self._sock.makefile("rwb")
        self.tenant = tenant
        self._ids = itertools.count(1)

    # -- plumbing ------------------------------------------------------------

    def request(self, op: str, **fields) -> tuple[dict, dict]:
        """One round trip; returns ``(result, meta)`` or raises
        :class:`ServeError` with the server's error code."""
        req_id = next(self._ids)
        req = {"id": req_id, "op": op, "tenant": self.tenant, **fields}
        self._file.write(protocol.encode_line(req))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", "internal"), error.get("message", "?")
            )
        return response.get("result", {}), response.get("meta", {})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ----------------------------------------------------------

    def ping(self) -> bool:
        result, _ = self.request("ping")
        return bool(result.get("pong"))

    def stats(self) -> dict:
        result, _ = self.request("stats")
        return result

    def evaluate(
        self,
        positions,
        kind: str = "vgh",
        system: dict | None = None,
        backend: str | None = None,
    ) -> tuple[dict, dict]:
        """Evaluate fractional ``(n, 3)`` positions; returns
        ``({stream: ndarray}, meta)`` with meta reporting coalescing."""
        positions = np.asarray(positions, dtype=np.float64)
        fields = {
            "kind": kind,
            "positions": protocol.encode_array(positions),
            "system": system or {},
        }
        if backend is not None:
            fields["backend"] = backend
        result, meta = self.request("eval", **fields)
        streams = {
            name: protocol.decode_array(arr)
            for name, arr in result["streams"].items()
        }
        return streams, meta

    def vmc(
        self,
        system: dict | None = None,
        n_walkers: int = 4,
        n_steps: int = 10,
        n_warmup: int = 0,
        tau: float = 0.3,
        seed: int = 2017,
        ion_charge: float = 4.0,
        backend: str | None = None,
    ) -> dict:
        """A short served VMC run; energies come back as an ndarray."""
        fields = {
            "system": system or {},
            "n_walkers": n_walkers,
            "n_steps": n_steps,
            "n_warmup": n_warmup,
            "tau": tau,
            "seed": seed,
            "ion_charge": ion_charge,
        }
        if backend is not None:
            fields["backend"] = backend
        result, _ = self.request("vmc", **fields)
        result["energies"] = protocol.decode_array(result["energies"])
        return result

    def dmc(
        self,
        system: dict | None = None,
        n_walkers: int = 4,
        n_generations: int = 10,
        tau: float = 0.05,
        seed: int = 2017,
        ion_charge: float = 4.0,
        backend: str | None = None,
    ) -> dict:
        """A short served DMC run; traces come back as ndarrays."""
        fields = {
            "system": system or {},
            "n_walkers": n_walkers,
            "n_generations": n_generations,
            "tau": tau,
            "seed": seed,
            "ion_charge": ion_charge,
        }
        if backend is not None:
            fields["backend"] = backend
        result, _ = self.request("dmc", **fields)
        for trace in ("energy_trace", "population_trace"):
            result[trace] = protocol.decode_array(result[trace])
        return result


def _parse_cli_positions(text: str) -> np.ndarray:
    """``"x,y,z;x,y,z;..."`` → an ``(n, 3)`` float64 array."""
    try:
        rows = [
            [float(v) for v in row.split(",")]
            for row in text.split(";")
            if row.strip()
        ]
        return np.asarray(rows, dtype=np.float64).reshape(len(rows), 3)
    except (TypeError, ValueError):
        raise SystemExit(
            f"error: positions must look like 'x,y,z;x,y,z', got {text!r}"
        )


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n-orbitals", type=int, default=4)
    parser.add_argument("--box", type=float, default=6.0)
    parser.add_argument("--grid", type=int, default=12, help="grid points per axis")
    parser.add_argument("--backend", default=None)


def _system(args, dtype: str | None = None) -> dict:
    system = {
        "n_orbitals": args.n_orbitals,
        "box": args.box,
        "grid_shape": [args.grid] * 3,
    }
    if dtype is not None:
        system["dtype"] = dtype
    return system


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve-client",
        description="Talk to a running `python -m repro serve` instance.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        help="server address: HOST:PORT or a unix-socket path",
    )
    parser.add_argument("--tenant", default="cli")
    parser.add_argument("--timeout", type=float, default=120.0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ping")
    sub.add_parser("stats")

    p_eval = sub.add_parser("eval")
    p_eval.add_argument("--kind", default="vgh", choices=("v", "vgl", "vgh"))
    p_eval.add_argument(
        "--positions",
        required=True,
        help="fractional positions as 'x,y,z;x,y,z;...' in [0, 1)",
    )
    p_eval.add_argument("--dtype", default="float64")
    _add_system_args(p_eval)

    p_vmc = sub.add_parser("vmc")
    p_vmc.add_argument("--n-walkers", type=int, default=4)
    p_vmc.add_argument("--n-steps", type=int, default=10)
    p_vmc.add_argument("--n-warmup", type=int, default=0)
    p_vmc.add_argument("--tau", type=float, default=0.3)
    p_vmc.add_argument("--seed", type=int, default=2017)
    _add_system_args(p_vmc)

    p_dmc = sub.add_parser("dmc")
    p_dmc.add_argument("--n-walkers", type=int, default=4)
    p_dmc.add_argument("--n-generations", type=int, default=10)
    p_dmc.add_argument("--tau", type=float, default=0.05)
    p_dmc.add_argument("--seed", type=int, default=2017)
    _add_system_args(p_dmc)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro serve-client``."""
    args = _build_parser().parse_args(argv)
    try:
        with ServeClient(
            args.connect, tenant=args.tenant, timeout=args.timeout
        ) as client:
            if args.command == "ping":
                print("pong" if client.ping() else "no pong")
            elif args.command == "stats":
                print(json.dumps(client.stats(), indent=2, default=str))
            elif args.command == "eval":
                positions = _parse_cli_positions(args.positions)
                streams, meta = client.evaluate(
                    positions,
                    kind=args.kind,
                    system=_system(args, dtype=args.dtype),
                    backend=args.backend,
                )
                print(f"coalesced={meta.get('coalesced', 1)}")
                for name, arr in sorted(streams.items()):
                    print(f"{name}: shape={arr.shape} dtype={arr.dtype}")
                    print(np.array2string(arr, precision=6, threshold=24))
            elif args.command == "vmc":
                out = client.vmc(
                    system=_system(args),
                    n_walkers=args.n_walkers,
                    n_steps=args.n_steps,
                    n_warmup=args.n_warmup,
                    tau=args.tau,
                    seed=args.seed,
                    backend=args.backend,
                )
                energies = out["energies"]
                acc = out["accepted"] / max(out["attempted"], 1)
                print(
                    f"walkers={energies.shape[0]} steps={energies.shape[1]} "
                    f"mean_energy={energies.mean():.6f} acceptance={acc:.3f}"
                )
            elif args.command == "dmc":
                out = client.dmc(
                    system=_system(args),
                    n_walkers=args.n_walkers,
                    n_generations=args.n_generations,
                    tau=args.tau,
                    seed=args.seed,
                    backend=args.backend,
                )
                print(
                    f"generations={len(out['energy_trace'])} "
                    f"energy_mean={out['energy_mean']:.6f} "
                    f"acceptance={out['acceptance']:.3f} "
                    f"final_population={int(out['population_trace'][-1])}"
                )
    except (ServeError, ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"connection error: {exc}", file=sys.stderr)
        return 1
    return 0
