"""The serving worker's process-side state.

One :class:`ServeShard` lives in each :class:`ProcessCrowdPool` worker.
Unlike the crowd/VMC shards (one fixed walker range for the whole run),
a serving shard is a *multi-tenant kernel executor*: it keeps two small
caches keyed by what requests actually touch —

* attached :class:`~repro.parallel.shared_table.SharedTable` mappings,
  by segment name (zero-copy views of the parent's cached tables);
* built :class:`~repro.core.batched.BsplineBatched` engines, by
  ``(segment name, backend name)`` — construction is cheap but not
  free, and a hot tenant system reuses its engine across batches.

The parent's table cache evicts by LRU; evicted segment *names* ride
along with the next batch dispatched to each worker (``release``), so
mappings are dropped lazily without an extra broadcast round-trip.

Backend policy mirrors the fleet workers: the parent validates a
requested backend strictly (a tenant naming an unavailable backend gets
a protocol error, not a worker crash); the shard re-resolves the
already-validated name with ``fallback=True`` so a heterogeneous node
degrades loudly instead of dying.
"""

from __future__ import annotations

import numpy as np

from repro.core.batched import BsplineBatched
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.obs import OBS
from repro.parallel.crowd import CrowdSpec, build_walker_range
from repro.parallel.shared_table import SharedTable
from repro.parallel.vmc import _run_walker_range

__all__ = ["ServeShard"]


class ServeShard:
    """Per-worker state serving eval/VMC/DMC requests over cached tables."""

    def __init__(self, worker_id: int, observe: bool = False, config=None):
        self.worker_id = int(worker_id)
        if observe and not OBS.enabled:
            OBS.enable()
        # The server's RunConfig (rungs 1-2 already applied parent-side);
        # engines built here finish rungs 3-4 against each table's shape.
        self._config = config
        self._tables: dict[str, SharedTable] = {}
        # Engines are keyed by (segment, backend, spline_range): full-width
        # engines use spline_range=None, orbital-block engines the (lo, hi)
        # column window they evaluate (see eval_block).
        self._engines: dict[
            tuple[str, str | None, tuple[int, int] | None], BsplineBatched
        ] = {}

    # -- table / engine caches ----------------------------------------------

    def _attach(self, table_spec: dict) -> SharedTable:
        table = self._tables.get(table_spec["name"])
        if table is None:
            table = SharedTable.attach(table_spec)
            self._tables[table_spec["name"]] = table
        return table

    def _engine(
        self,
        table_spec: dict,
        grid_shape,
        backend: str | None,
        spline_range: tuple[int, int] | None = None,
    ) -> BsplineBatched:
        key = (table_spec["name"], backend, spline_range)
        engine = self._engines.get(key)
        if engine is None:
            from repro.config import RunConfig

            table = self._attach(table_spec)
            nx, ny, nz = (int(g) for g in grid_shape)
            grid = Grid3D(nx, ny, nz, (1.0, 1.0, 1.0))
            cfg = self._config if self._config is not None else RunConfig.from_env()
            if backend is not None:
                from repro.backends import resolve_backend

                cfg = cfg.replace(backend=resolve_backend(backend, fallback=True))
            if not cfg.is_resolved:
                n_splines = int(table.array.shape[-1])
                cfg = cfg.resolved_for(
                    n_splines, batch=max(n_splines, 1), dtype=table.array.dtype
                )
            engine = BsplineBatched(
                grid, table.array, config=cfg, spline_range=spline_range
            )
            self._engines[key] = engine
        return engine

    def release(self, names: list[str]) -> int:
        """Detach evicted segments (and drop their engines); returns how
        many mappings were actually released."""
        released = 0
        for name in names:
            for key in [k for k in self._engines if k[0] == name]:
                del self._engines[key]
            table = self._tables.pop(name, None)
            if table is not None:
                try:
                    table.close()
                except BufferError:
                    pass  # a lingering view dies with the worker
                released += 1
        return released

    # -- request execution ---------------------------------------------------

    def eval_batch(
        self,
        table_spec: dict,
        grid_shape,
        kind_value: str,
        positions: np.ndarray,
        backend: str | None = None,
        release: list[str] | None = None,
    ) -> dict:
        """One fused kernel call over a coalesced position batch.

        ``positions`` is the concatenation of every rider's fractional
        positions; the parent slices the returned streams back per
        request.  Results for each position are bitwise independent of
        the batch composition (the coalescing contract).
        """
        if release:
            self.release(release)
        engine = self._engine(table_spec, grid_shape, backend)
        kind = Kind(kind_value)
        positions = np.ascontiguousarray(positions, dtype=np.float64)
        out = engine.new_output(kind, n=len(positions))
        engine.evaluate_batch(kind, positions, out)
        if OBS.enabled:
            OBS.count("serve_worker_evals_total")
            OBS.observe("serve_worker_batch_positions", len(positions))
        return {
            stream: np.array(getattr(out, stream)) for stream in kind.streams
        }

    def eval_block(
        self,
        table_spec: dict,
        grid_shape,
        kind_value: str,
        positions: np.ndarray,
        spline_range,
        backend: str | None = None,
        release: list[str] | None = None,
    ) -> dict:
        """One kernel call over an *orbital block* of the cached table.

        The Opt C serving path: the server splits a small batch's spline
        axis into contiguous blocks, dispatches one ``eval_block`` per
        leased worker, and concatenates the returned block-width streams
        column-wise — byte-identical to a full-width :meth:`eval_batch`
        (the spline-axis blocking invariance of
        :class:`~repro.core.batched.BsplineBatched`).  Block engines view
        their column window of the shared table zero-copy and are cached
        alongside the full-width ones.
        """
        if release:
            self.release(release)
        lo, hi = (int(b) for b in spline_range)
        engine = self._engine(table_spec, grid_shape, backend, spline_range=(lo, hi))
        kind = Kind(kind_value)
        positions = np.ascontiguousarray(positions, dtype=np.float64)
        out = engine.new_output(kind, n=len(positions))
        engine.evaluate_batch(kind, positions, out)
        if OBS.enabled:
            OBS.count("serve_worker_evals_total")
            OBS.count("serve_worker_block_evals_total")
            OBS.observe("serve_worker_batch_positions", len(positions))
        return {
            stream: np.array(getattr(out, stream)) for stream in kind.streams
        }

    def run_vmc(
        self,
        table_spec: dict,
        spec_fields: dict,
        n_steps: int,
        n_warmup: int,
        tau: float,
        ion_charge: float,
        release: list[str] | None = None,
    ) -> dict:
        """A short VMC run over the cached (float64) table.

        Reuses the crowd machinery end to end: deterministic walkers
        from the spec's seeds over the attached padded table, advanced
        by the batched population step — bit-identical to
        ``run_vmc_population(spec, processes=False)`` on the same spec.
        """
        if release:
            self.release(release)
        table = self._attach(table_spec)
        spec = CrowdSpec(**spec_fields)
        wfs, rngs = build_walker_range(spec, table.array, 0, spec.n_walkers)
        out = _run_walker_range(
            wfs, rngs, n_steps, n_warmup, tau, ion_charge, "batched"
        )
        if OBS.enabled:
            OBS.count("serve_worker_vmc_total")
        return out

    def run_dmc(
        self,
        spec_fields: dict,
        n_generations: int,
        tau: float,
        ion_charge: float,
        release: list[str] | None = None,
    ) -> dict:
        """A short DMC run, built and propagated entirely in-worker.

        DMC ensembles branch (population changes every generation), so
        they do not slice out of a shared table the way eval/VMC do;
        the worker builds the deterministic ensemble itself.
        """
        if release:
            self.release(release)
        from repro.qmc.dmc import build_dmc_ensemble, run_dmc
        from repro.qmc.rng import WalkerRngPool

        spec = CrowdSpec(**spec_fields)
        pool = WalkerRngPool(spec.seed)
        walkers = build_dmc_ensemble(
            pool,
            spec.n_walkers,
            n_orbitals=spec.n_orbitals,
            box=spec.box,
            grid_shape=spec.grid_shape,
            config=spec.run_config(),
        )
        result = run_dmc(
            walkers,
            pool,
            n_generations=n_generations,
            tau=tau,
            ion_charge=ion_charge,
        )
        if OBS.enabled:
            OBS.count("serve_worker_dmc_total")
        return {
            "energy_trace": np.asarray(result.energy_trace),
            "population_trace": np.asarray(result.population_trace),
            "acceptance": float(result.acceptance),
            "energy_mean": float(result.energy_mean),
        }

    def close(self) -> None:
        """Drop engines, then detach every mapped segment."""
        self._engines.clear()
        self.release(list(self._tables))


def _init_serve_shard(
    worker_id: int, observe: bool = False, config=None
) -> ServeShard:
    """Module-level initializer (picklable under ``spawn``)."""
    return ServeShard(worker_id, observe=observe, config=config)
