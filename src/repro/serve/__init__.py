"""QMC-as-a-service: serve batched orbital evaluations to many tenants.

The paper batches positions *within* one process to fill the B-spline
kernels; this package batches them *across tenants*.  A long-lived
asyncio server (``python -m repro serve``) accepts concurrent
evaluate/VMC/DMC requests over newline-delimited JSON, coalesces
compatible evaluations into single fused kernel calls inside a bounded
micro-batching window, and executes them on a persistent worker pool
over LRU-cached shared-memory coefficient tables — one physical table
per live system, no matter how many tenants read it.

Coalescing never changes numbers: each position's result is bitwise
independent of its batch neighbours, so a served response is
bit-identical to a direct in-process engine call (the gate
``benchmarks/bench_pr8.py`` asserts on every response).

Modules: :mod:`~repro.serve.protocol` (wire format),
:mod:`~repro.serve.batching` (the micro-batcher),
:mod:`~repro.serve.cache` (shared-table LRU),
:mod:`~repro.serve.worker` (per-process executor state),
:mod:`~repro.serve.server` (the asyncio server + CLI),
:mod:`~repro.serve.client` (synchronous client + CLI).
"""

from repro.serve.batching import BatchItem, MicroBatcher
from repro.serve.cache import SystemKey, TableCache, solve_system_table
from repro.serve.client import ServeClient, ServeError, parse_address
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    decode_array,
    decode_line,
    encode_array,
    encode_line,
    error_response,
    ok_response,
)
from repro.serve.server import QmcServer, ServeConfig, ServerThread
from repro.serve.worker import ServeShard

__all__ = [
    "OPS",
    "ERROR_CODES",
    "ProtocolError",
    "encode_array",
    "decode_array",
    "encode_line",
    "decode_line",
    "ok_response",
    "error_response",
    "SystemKey",
    "TableCache",
    "solve_system_table",
    "BatchItem",
    "MicroBatcher",
    "ServeShard",
    "ServeConfig",
    "QmcServer",
    "ServerThread",
    "ServeClient",
    "ServeError",
    "parse_address",
]
