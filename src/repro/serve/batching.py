"""Cross-request micro-batching: the serving layer's core trick.

Concurrent tenants evaluating the *same* system send small position
batches that each would under-fill the batched kernels; the
:class:`MicroBatcher` holds compatible requests (same coefficient
table, kernel kind, backend — the :func:`batch key <BatchKey>`) for at
most a short window and fuses them into one
:meth:`~repro.core.batched.BsplineBatched.evaluate_batch` call.  The
fusion is **bit-safe**: every position's contraction is independent of
its batch neighbours (the PR5 contract the conformance tests pin), so a
request's slice of the fused output is bitwise identical to serving it
alone — coalescing changes latency and throughput, never numbers.

A batch closes when either

* ``max_batch`` requests have queued for the key, or
* ``max_wait`` seconds have passed since the key's *first* queued
  request (the batching window; new arrivals never extend it).

Closing hands the batch to the flush coroutine the server installed
(lease a worker, dispatch, scatter results back to each request's
future); meanwhile a fresh window can open for the same key.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

__all__ = ["BatchItem", "MicroBatcher"]


@dataclass
class BatchItem:
    """One admitted eval request riding a batch: its positions plus the
    future its response writer awaits."""

    tenant: str
    positions: object  # (n, 3) float64 ndarray
    future: asyncio.Future
    n_positions: int = field(init=False)

    def __post_init__(self) -> None:
        self.n_positions = len(self.positions)


class MicroBatcher:
    """Group compatible requests per key inside a bounded time window.

    Parameters
    ----------
    flush:
        ``async flush(key, items)`` — called with every closed batch.
        Scheduled as a task; multiple batches (different keys, or
        successive windows of one key) flush concurrently.
    max_batch:
        Close a window as soon as this many requests have joined it.
    max_wait:
        Seconds after a window's first request before it closes anyway.
        ``0`` degenerates to no coalescing (every request is its own
        batch) — the benchmark's baseline mode.
    """

    def __init__(self, flush, max_batch: int, max_wait: float):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._flush = flush
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._pending: dict[object, list[BatchItem]] = {}
        self._timers: dict[object, asyncio.TimerHandle] = {}
        self._tasks: set[asyncio.Task] = set()

    @property
    def pending_requests(self) -> int:
        """Requests currently waiting in open windows."""
        return sum(len(items) for items in self._pending.values())

    def submit(self, key, item: BatchItem) -> None:
        """Queue one request under ``key`` (opens a window if none)."""
        if self.max_batch == 1 or self.max_wait == 0.0:
            self._spawn(key, [item])
            return
        items = self._pending.setdefault(key, [])
        items.append(item)
        if len(items) >= self.max_batch:
            self.flush_key(key)
        elif len(items) == 1:
            loop = asyncio.get_running_loop()
            self._timers[key] = loop.call_later(
                self.max_wait, self.flush_key, key
            )

    def flush_key(self, key) -> None:
        """Close ``key``'s window now and hand its batch to ``flush``."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        items = self._pending.pop(key, None)
        if items:
            self._spawn(key, items)

    def flush_all(self) -> None:
        """Close every open window (drain path)."""
        for key in list(self._pending):
            self.flush_key(key)

    def _spawn(self, key, items: list[BatchItem]) -> None:
        task = asyncio.get_running_loop().create_task(self._flush(key, items))
        # Keep a strong reference until done (asyncio only holds weakly).
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def wait_idle(self) -> None:
        """Await completion of every in-flight flush task (drain path)."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
