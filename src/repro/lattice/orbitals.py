"""Synthetic periodic orbitals used to fill the B-spline tables.

The paper's coefficient tables come from DFT calculations of graphite —
data we do not have.  The kernels never look at coefficient *values*
(only shapes and layout matter for performance), but correctness tests
and the QMC substrate need real functions, so we substitute plane-wave
superpositions: smooth, exactly periodic with the simulation cell, and
with closed-form gradients/Laplacians that make the spline accuracy
testable analytically (see DESIGN.md, substitution table).

Orbitals are ordered by increasing |G| exactly like the low bands of a
free-electron solid: orbital ``2m`` is ``cos(G_m . r)`` and ``2m+1`` is
``sin(G_m . r)`` over the sorted nonzero half-space of reciprocal lattice
vectors (plus the constant orbital as number 0).  They are mutually
orthogonal over the cell, so Slater matrices built from them are well
conditioned.

Because ``G . r`` is linear in the *fractional* coordinates, evaluation
on the B-spline grid is separable per axis and costs O(Ng * N) with tiny
constants — important when building tables with thousands of orbitals.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.cell import Cell

__all__ = ["enumerate_gvectors", "PlaneWaveOrbitalSet"]


def enumerate_gvectors(cell: Cell, count: int, max_index: int = 12) -> np.ndarray:
    """The ``count`` shortest nonzero half-space reciprocal vectors.

    Integer triples ``(h, k, l)`` are sorted by the length of
    ``h b1 + k b2 + l b3``; only one of each ``+/-G`` pair is kept (the
    lexicographically positive one) since cos/sin of ``-G`` duplicate
    those of ``+G``.

    Returns
    -------
    numpy.ndarray
        ``(count, 3)`` int64 Miller-index triples.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng_idx = np.arange(-max_index, max_index + 1)
    h, k, l = np.meshgrid(rng_idx, rng_idx, rng_idx, indexing="ij")
    triples = np.stack([h.ravel(), k.ravel(), l.ravel()], axis=1)
    # Half space: first nonzero component positive.
    keep = (
        (triples[:, 0] > 0)
        | ((triples[:, 0] == 0) & (triples[:, 1] > 0))
        | ((triples[:, 0] == 0) & (triples[:, 1] == 0) & (triples[:, 2] > 0))
    )
    triples = triples[keep]
    gcart = triples @ cell.reciprocal
    order = np.argsort(np.einsum("ij,ij->i", gcart, gcart), kind="stable")
    triples = triples[order]
    if len(triples) < count:
        raise ValueError(
            f"max_index={max_index} yields only {len(triples)} G-vectors, "
            f"need {count}; raise max_index"
        )
    return triples[:count].astype(np.int64)


class PlaneWaveOrbitalSet:
    """N analytic periodic orbitals on a cell, with exact derivatives.

    Parameters
    ----------
    cell:
        The periodic simulation cell the orbitals live on.
    n_orbitals:
        Number of orbitals N.
    amplitude:
        Overall scale applied to every orbital (cosmetic).
    """

    def __init__(self, cell: Cell, n_orbitals: int, amplitude: float = 1.0):
        if n_orbitals <= 0:
            raise ValueError(f"n_orbitals must be positive, got {n_orbitals}")
        self.cell = cell
        self.n_orbitals = int(n_orbitals)
        self.amplitude = float(amplitude)
        # Orbital 0 is the constant; orbitals 2m+1 / 2m+2 are cos/sin of G_m.
        n_g = (n_orbitals + 1) // 2
        self._triples = enumerate_gvectors(cell, max(n_g, 1))
        self._gcart = self._triples @ cell.reciprocal

    def _orbital_plan(self) -> list[tuple[str, int]]:
        """Per-orbital recipe: ("const", -1), ("cos", m) or ("sin", m)."""
        plan: list[tuple[str, int]] = [("const", -1)]
        m = 0
        while len(plan) < self.n_orbitals:
            plan.append(("cos", m))
            if len(plan) < self.n_orbitals:
                plan.append(("sin", m))
            m += 1
        return plan

    def values_on_grid(
        self, nx: int, ny: int, nz: int, dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        """Sample every orbital on the fractional-coordinate grid.

        Grid point ``(i, j, k)`` sits at fractional coordinate
        ``(i/nx, j/ny, k/nz)``; the result feeds straight into
        :func:`repro.core.coeffs.solve_coefficients_3d`.

        Returns
        -------
        numpy.ndarray
            ``(nx, ny, nz, N)`` samples in the requested dtype.

        Notes
        -----
        ``G . r = 2 pi (h i/nx + k j/ny + l k/nz)`` is separable, so each
        orbital is assembled from three axis phase vectors via complex
        outer products — O(Ng) per orbital with no trig on the full grid.
        """
        out = np.empty((nx, ny, nz, self.n_orbitals), dtype=dtype)
        fx = np.arange(nx) / nx
        fy = np.arange(ny) / ny
        fz = np.arange(nz) / nz
        plan = self._orbital_plan()
        for n, (kind, m) in enumerate(plan):
            if kind == "const":
                out[..., n] = self.amplitude
                continue
            h, k, l = self._triples[m]
            ph = (
                np.exp(2j * np.pi * h * fx)[:, None, None]
                * np.exp(2j * np.pi * k * fy)[None, :, None]
                * np.exp(2j * np.pi * l * fz)[None, None, :]
            )
            comp = ph.real if kind == "cos" else ph.imag
            out[..., n] = self.amplitude * comp
        return out

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        """Orbital values at Cartesian positions; shape ``(npos, N)``."""
        v, _, _ = self.evaluate_vgl(positions)
        return v

    def evaluate_vgl(
        self, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Values, Cartesian gradients and Laplacians — all analytic.

        Parameters
        ----------
        positions:
            ``(npos, 3)`` Cartesian positions (any image; periodicity is
            automatic).

        Returns
        -------
        (v, g, lap):
            ``v`` is ``(npos, N)``, ``g`` is ``(npos, 3, N)``,
            ``lap`` is ``(npos, N)``.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        npos = positions.shape[0]
        theta = positions @ self._gcart.T  # (npos, n_g)
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        g2 = np.einsum("ij,ij->i", self._gcart, self._gcart)
        v = np.empty((npos, self.n_orbitals))
        g = np.zeros((npos, 3, self.n_orbitals))
        lap = np.zeros((npos, self.n_orbitals))
        for n, (kind, m) in enumerate(self._orbital_plan()):
            if kind == "const":
                v[:, n] = self.amplitude
                continue
            gv = self._gcart[m]
            if kind == "cos":
                v[:, n] = self.amplitude * cos_t[:, m]
                g[:, :, n] = -self.amplitude * sin_t[:, m : m + 1] * gv
                lap[:, n] = -self.amplitude * g2[m] * cos_t[:, m]
            else:
                v[:, n] = self.amplitude * sin_t[:, m]
                g[:, :, n] = self.amplitude * cos_t[:, m : m + 1] * gv
                lap[:, n] = -self.amplitude * g2[m] * sin_t[:, m]
        return v, g, lap
