"""AB-stacked graphite geometry and the CORAL 4x4x1 benchmark setup.

The paper's baseline workload is "the CORAL benchmark 4x4x1 problem ...
256 electrons of 64-atom AB-stacked graphite system consisting of 4 by 4
periodic images of the 4-atom unit cell ... grid sizes Nx=Ny=48 and Nz=60
of N=128 orbitals" (Sec. IV).  The performance sweep instead keeps the
grid at 48x48x48 and scales N from 128 to 4096 "from current day problems
to large problems planned as the grand-challenge on pre-exascale systems"
(Sec. VI).

This module provides both geometries plus the benchmark descriptors the
drivers and benches consume.  Lengths are in Bohr radii (atomic units,
the QMC convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lattice.cell import Cell

__all__ = [
    "GRAPHITE_A_BOHR",
    "GRAPHITE_C_BOHR",
    "graphite_unit_cell",
    "graphite_basis_frac",
    "BenchmarkSystem",
    "coral_4x4x1",
    "sweep_system",
]

#: In-plane lattice constant of graphite, 2.462 Angstrom in Bohr.
GRAPHITE_A_BOHR = 4.6527
#: Out-of-plane (c-axis) lattice constant, 6.707 Angstrom in Bohr.
GRAPHITE_C_BOHR = 12.6749
#: Valence electrons per carbon atom with the usual C pseudopotential.
VALENCE_PER_CARBON = 4


def graphite_unit_cell() -> Cell:
    """The hexagonal 4-atom AB graphite primitive cell (paper Fig. 1b, blue).

    Lattice vectors: a1 = a(1,0,0), a2 = a(-1/2, sqrt(3)/2, 0), a3 = (0,0,c).
    """
    a, c = GRAPHITE_A_BOHR, GRAPHITE_C_BOHR
    return Cell(
        np.array(
            [
                [a, 0.0, 0.0],
                [-0.5 * a, 0.5 * np.sqrt(3.0) * a, 0.0],
                [0.0, 0.0, c],
            ]
        )
    )


def graphite_basis_frac() -> np.ndarray:
    """Fractional positions of the 4 carbon atoms (AB stacking).

    Layer A at z=0: atoms at (0,0,0) and (2/3,1/3,0);
    layer B at z=1/2: atoms at (0,0,1/2) and (1/3,2/3,1/2).
    """
    return np.array(
        [
            [0.0, 0.0, 0.0],
            [2.0 / 3.0, 1.0 / 3.0, 0.0],
            [0.0, 0.0, 0.5],
            [1.0 / 3.0, 2.0 / 3.0, 0.5],
        ]
    )


@dataclass(frozen=True)
class BenchmarkSystem:
    """Everything a driver needs to set up one benchmark problem.

    Attributes
    ----------
    name:
        Human-readable identifier.
    cell:
        The periodic *simulation* cell (supercell for CORAL).
    ion_positions:
        ``(n_ions, 3)`` Cartesian ion positions.
    n_electrons:
        Total electron count (both spins).
    n_orbitals:
        Splines per determinant, the paper's N (``n_electrons / 2``
        for the physical systems; free-standing for the sweep).
    grid_shape:
        B-spline grid ``(nx, ny, nz)``.
    """

    name: str
    cell: Cell
    ion_positions: np.ndarray
    n_electrons: int
    n_orbitals: int
    grid_shape: tuple[int, int, int]

    @property
    def n_ions(self) -> int:
        """Number of ions in the simulation cell."""
        return self.ion_positions.shape[0]

    @property
    def n_grid_points(self) -> int:
        """Ng = nx*ny*nz."""
        nx, ny, nz = self.grid_shape
        return nx * ny * nz


def coral_4x4x1() -> BenchmarkSystem:
    """The CORAL 4x4x1 benchmark (paper Sec. IV).

    4x4x1 tiling of the 4-atom cell: 64 carbons, 256 valence electrons,
    N = 128 orbitals per spin determinant, spline grid 48x48x60.
    """
    unit = graphite_unit_cell()
    tiling = (4, 4, 1)
    cell = unit.supercell(tiling)
    frac = unit.tile_positions(graphite_basis_frac(), tiling)
    ions = cell.frac_to_cart(frac)
    n_atoms = ions.shape[0]
    n_el = n_atoms * VALENCE_PER_CARBON
    return BenchmarkSystem(
        name="coral-4x4x1",
        cell=cell,
        ion_positions=ions,
        n_electrons=n_el,
        n_orbitals=n_el // 2,
        grid_shape=(48, 48, 60),
    )


def sweep_system(
    n_splines: int, grid: tuple[int, int, int] = (48, 48, 48)
) -> BenchmarkSystem:
    """A problem from the paper's N-scaling sweep (Sec. VI).

    The grid stays fixed (default 48^3, "simulating periodic images of
    the primitive unit cell") while N scales; the carbon count scales
    with N to keep the physical correspondence of Sec. VI's
    "64-carbon (128 SPOs) to 2048-carbon (4096 SPOs)" systems.

    Parameters
    ----------
    n_splines:
        N, the number of orbitals; the paper uses {128, 256, ..., 4096}.
    grid:
        Spline grid shape; the paper fixes 48x48x48 for the sweep.
    """
    if n_splines <= 0:
        raise ValueError(f"n_splines must be positive, got {n_splines}")
    unit = graphite_unit_cell()
    n_atoms = n_splines // 2
    n_el = 2 * n_splines
    return BenchmarkSystem(
        name=f"sweep-N{n_splines}",
        cell=unit,
        ion_positions=unit.frac_to_cart(graphite_basis_frac()),
        n_electrons=n_el,
        n_orbitals=n_splines,
        grid_shape=grid,
    )
