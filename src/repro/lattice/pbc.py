"""Minimal-image displacement and distance computation under PBC.

Distance tables are one of the three dominant computational groups of the
QMC profile (paper Tables II/III), and every entry is a minimal-image
distance.  Two code paths:

* an orthorhombic fast path — component-wise nearest-image rounding,
  fully vectorized, the one production cells in this reproduction use;
* a general triclinic path that searches the 27 neighbouring images,
  correct for any cell whose Wigner-Seitz radius exceeds the largest
  interaction range (the standard QMC assumption).
"""

from __future__ import annotations

import numpy as np

from repro.lattice.cell import Cell

__all__ = ["minimal_image_displacements", "minimal_image_distances", "wigner_seitz_radius"]

# The 27 fractional image shifts (-1, 0, 1)^3 used by the triclinic path.
_IMAGE_SHIFTS = np.array(
    [(i, j, k) for i in (-1.0, 0.0, 1.0) for j in (-1.0, 0.0, 1.0) for k in (-1.0, 0.0, 1.0)]
)


def minimal_image_displacements(
    cell: Cell, from_pos: np.ndarray, to_pos: np.ndarray
) -> np.ndarray:
    """Minimal-image displacement vectors ``to - from`` for all pairs.

    Parameters
    ----------
    cell:
        The periodic cell.
    from_pos:
        ``(n, 3)`` Cartesian positions.
    to_pos:
        ``(m, 3)`` Cartesian positions.

    Returns
    -------
    numpy.ndarray
        ``(n, m, 3)`` displacements: entry ``[i, j]`` is the shortest
        periodic vector from ``from_pos[i]`` to ``to_pos[j]``.
    """
    from_pos = np.atleast_2d(np.asarray(from_pos, dtype=np.float64))
    to_pos = np.atleast_2d(np.asarray(to_pos, dtype=np.float64))
    dfrac = (
        cell.cart_to_frac(to_pos)[np.newaxis, :, :]
        - cell.cart_to_frac(from_pos)[:, np.newaxis, :]
    )
    # Pull each fractional component into [-0.5, 0.5).
    dfrac -= np.round(dfrac)
    if cell.is_orthorhombic:
        return dfrac @ cell.lattice
    # Triclinic: the componentwise-rounded image is not always the closest;
    # check the 27 candidates around it.
    cand = dfrac[..., np.newaxis, :] + _IMAGE_SHIFTS  # (n, m, 27, 3)
    cart = cand @ cell.lattice
    r2 = np.einsum("...ij,...ij->...i", cart, cart)
    best = np.argmin(r2, axis=-1)
    idx = np.indices(best.shape)
    return cart[idx[0], idx[1], best]


def minimal_image_distances(
    cell: Cell, from_pos: np.ndarray, to_pos: np.ndarray
) -> np.ndarray:
    """Minimal-image distances for all pairs; shape ``(n, m)``."""
    disp = minimal_image_displacements(cell, from_pos, to_pos)
    return np.sqrt(np.einsum("...i,...i->...", disp, disp))


def wigner_seitz_radius(cell: Cell) -> float:
    """Radius of the largest sphere inscribed in the Wigner-Seitz cell.

    Interactions (Jastrow cutoffs, pair potentials) must be shorter-ranged
    than this for the minimal-image convention to be exact; the QMC
    substrate asserts it when building cutoffs.
    """
    lat = cell.lattice
    # Distance from the origin to the nearest lattice plane through each
    # of the 26 nonzero small lattice vectors' midpoints.
    shifts = _IMAGE_SHIFTS[np.any(_IMAGE_SHIFTS != 0.0, axis=1)]
    vecs = shifts @ lat
    return 0.5 * float(np.min(np.linalg.norm(vecs, axis=1)))
