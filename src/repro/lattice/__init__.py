"""repro.lattice — simulation cells, PBC, graphite geometry, synthetic SPOs.

* :class:`Cell` — triclinic periodic cells with fractional/Cartesian
  conversion and supercell tiling.
* :func:`minimal_image_displacements` / :func:`minimal_image_distances` —
  PBC pair geometry (orthorhombic fast path + triclinic image search).
* :func:`graphite_unit_cell`, :func:`coral_4x4x1`, :func:`sweep_system` —
  the paper's benchmark geometries.
* :class:`PlaneWaveOrbitalSet` — analytic periodic orbitals substituting
  for DFT data (see DESIGN.md substitution table).
"""

from repro.lattice.cell import Cell
from repro.lattice.graphite import (
    BenchmarkSystem,
    coral_4x4x1,
    graphite_basis_frac,
    graphite_unit_cell,
    sweep_system,
    GRAPHITE_A_BOHR,
    GRAPHITE_C_BOHR,
)
from repro.lattice.orbitals import PlaneWaveOrbitalSet, enumerate_gvectors
from repro.lattice.pbc import (
    minimal_image_displacements,
    minimal_image_distances,
    wigner_seitz_radius,
)

__all__ = [
    "Cell",
    "BenchmarkSystem",
    "coral_4x4x1",
    "sweep_system",
    "graphite_unit_cell",
    "graphite_basis_frac",
    "GRAPHITE_A_BOHR",
    "GRAPHITE_C_BOHR",
    "PlaneWaveOrbitalSet",
    "enumerate_gvectors",
    "minimal_image_displacements",
    "minimal_image_distances",
    "wigner_seitz_radius",
]
