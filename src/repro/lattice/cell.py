"""Simulation cells: lattice vectors, coordinate conversions, supercells.

QMC solids calculations run in a periodic simulation cell built by tiling
a primitive unit cell (paper Fig. 1b: the 4-carbon graphite cell in blue,
tiled 4x4x1 for the CORAL benchmark).  :class:`Cell` handles the general
triclinic case; the B-spline grid itself lives in *fractional*
coordinates, which is how a non-orthorhombic cell maps onto the
rectangular ``(nx, ny, nz)`` coefficient grid.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Cell"]


class Cell:
    """A periodic simulation cell defined by three lattice vectors.

    Parameters
    ----------
    lattice:
        ``(3, 3)`` array with lattice vectors as *rows*: ``lattice[0]`` is
        the a-vector, etc.  Must be right-handed and non-singular.

    Attributes
    ----------
    lattice:
        The row-vector lattice matrix.
    reciprocal:
        ``(3, 3)`` matrix with reciprocal-lattice vectors as rows,
        satisfying ``lattice @ reciprocal.T == 2*pi*I``.
    volume:
        Cell volume (always positive).
    """

    def __init__(self, lattice: np.ndarray):
        lattice = np.asarray(lattice, dtype=np.float64)
        if lattice.shape != (3, 3):
            raise ValueError(f"lattice must be (3, 3), got {lattice.shape}")
        det = np.linalg.det(lattice)
        if abs(det) < 1e-12:
            raise ValueError("lattice vectors are singular")
        if det < 0:
            raise ValueError("lattice must be right-handed (positive determinant)")
        self.lattice = lattice
        self.volume = det
        self.reciprocal = 2.0 * np.pi * np.linalg.inv(lattice).T
        self._inv_lattice = np.linalg.inv(lattice)

    # -- coordinate conversions -------------------------------------------

    def frac_to_cart(self, frac: np.ndarray) -> np.ndarray:
        """Fractional ``(..., 3)`` coordinates to Cartesian."""
        return np.asarray(frac, dtype=np.float64) @ self.lattice

    def cart_to_frac(self, cart: np.ndarray) -> np.ndarray:
        """Cartesian ``(..., 3)`` coordinates to fractional."""
        return np.asarray(cart, dtype=np.float64) @ self._inv_lattice

    def wrap_frac(self, frac: np.ndarray) -> np.ndarray:
        """Wrap fractional coordinates into ``[0, 1)`` per component."""
        return np.asarray(frac, dtype=np.float64) % 1.0

    def wrap_cart(self, cart: np.ndarray) -> np.ndarray:
        """Wrap Cartesian positions back into the home cell."""
        return self.frac_to_cart(self.wrap_frac(self.cart_to_frac(cart)))

    # -- geometry helpers ---------------------------------------------------

    @property
    def is_orthorhombic(self) -> bool:
        """True when the lattice matrix is diagonal (fast-path PBC applies)."""
        off = self.lattice - np.diag(np.diag(self.lattice))
        return bool(np.all(np.abs(off) < 1e-12))

    @property
    def edge_lengths(self) -> np.ndarray:
        """Lengths of the three lattice vectors."""
        return np.linalg.norm(self.lattice, axis=1)

    def supercell(self, tiling: tuple[int, int, int]) -> "Cell":
        """A new cell tiled ``(ta, tb, tc)`` times along each lattice vector."""
        ta, tb, tc = tiling
        if min(ta, tb, tc) < 1:
            raise ValueError(f"tiling factors must be >= 1, got {tiling}")
        return Cell(self.lattice * np.asarray([[ta], [tb], [tc]], dtype=np.float64))

    def tile_positions(
        self, frac_positions: np.ndarray, tiling: tuple[int, int, int]
    ) -> np.ndarray:
        """Replicate fractional positions into a supercell.

        Returns fractional coordinates *of the supercell* with shape
        ``(n * ta * tb * tc, 3)``, ordered image-major (all atoms of image
        (0,0,0), then image (0,0,1), ...).
        """
        frac_positions = np.atleast_2d(np.asarray(frac_positions, dtype=np.float64))
        ta, tb, tc = tiling
        shifts = np.array(
            [(i, j, k) for i in range(ta) for j in range(tb) for k in range(tc)],
            dtype=np.float64,
        )
        tiled = shifts[:, np.newaxis, :] + frac_positions[np.newaxis, :, :]
        tiled /= np.asarray([ta, tb, tc], dtype=np.float64)
        return tiled.reshape(-1, 3)

    @classmethod
    def orthorhombic(cls, lx: float, ly: float, lz: float) -> "Cell":
        """Convenience constructor for a rectangular box."""
        return cls(np.diag([lx, ly, lz]))

    @classmethod
    def cubic(cls, a: float) -> "Cell":
        """Convenience constructor for a cubic box of edge ``a``."""
        return cls.orthorhombic(a, a, a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        e = ", ".join(f"{v:.3f}" for v in self.edge_lengths)
        return f"Cell(edges=[{e}], volume={self.volume:.3f})"
