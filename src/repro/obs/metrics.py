"""Process-wide metrics primitives: counters, gauges, histograms, registry.

The design follows the shape every production metrics system converges on
(Prometheus client libraries, QMCPACK's own ``NewTimer`` accumulators):

* a metric is identified by a **name plus a frozen label set** — the same
  ``(name, labels)`` pair always returns the same live object, so hot
  paths can cache the handle and skip the registry lookup entirely;
* counters only go up, gauges hold the last value, histograms keep
  streaming aggregates (count/sum/min/max) plus a bounded sample buffer
  for quantiles;
* the registry snapshots to plain dicts/JSON so the CLI, the BENCH
  harness, or an external scraper can consume one dump format.

Histograms bound their memory with deterministic stride decimation: once
the sample buffer hits its cap, every other retained sample is dropped
and the retention stride doubles.  Quantiles stay representative for
arbitrarily long runs at a fixed (documented) resolution, with no RNG —
reservoir sampling would perturb the reproducibility contracts the rest
of the codebase keeps.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_labels",
]


def format_labels(labels: dict[str, str]) -> str:
    """Render a label dict as ``{k=v,...}`` (empty string when unlabeled)."""
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count (evals, retries, guard trips).

    Updates are lock-protected so concurrent walker threads sharing one
    registry never lose increments.
    """

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        """Plain-dict view for dumps."""
        return {"value": self.value}

    def state(self) -> dict:
        """Mergeable full state (see :meth:`MetricsRegistry.state`)."""
        return {"value": self.value}

    def merge_state(self, state: dict) -> None:
        """Fold another process's counter into this one (values add)."""
        self.inc(state["value"])


class Gauge:
    """A point-in-time value (population size, occupancy, queue depth)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def snapshot(self) -> dict:
        """Plain-dict view for dumps."""
        return {"value": self.value}

    def state(self) -> dict:
        """Mergeable full state (see :meth:`MetricsRegistry.state`)."""
        return {"value": self.value}

    def merge_state(self, state: dict) -> None:
        """Fold another process's gauge into this one (last write wins)."""
        self.set(state["value"])


class Histogram:
    """Streaming distribution with bounded-memory quantiles.

    Parameters
    ----------
    max_samples:
        Cap on retained raw samples.  When reached, retained samples are
        decimated 2:1 and the retention stride doubles, so a run of any
        length keeps at most ``max_samples`` values while still spanning
        the whole observation sequence.
    """

    kind = "histogram"

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self._max_samples = int(max_samples)
        self._samples: list[float] = []
        self._stride = 1
        self._seen = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if self._seen % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= self._max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            self._seen += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile from the retained samples.

        Parameters
        ----------
        q:
            Quantile in ``[0, 1]``; 0.5 is the median.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def snapshot(self) -> dict:
        """count/sum/mean/min/max plus p50/p90/p99 as a plain dict."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def state(self) -> dict:
        """Mergeable full state, *including* the retained sample buffer.

        Unlike :meth:`snapshot` (which reduces to fixed quantiles), the
        state carries enough to fold this histogram into another one —
        the per-worker → parent merge of multiprocess runs.
        """
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "samples": list(self._samples),
            "seen": self._seen,
            "stride": self._stride,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's state into this one.

        Aggregates (count/sum/min/max) combine exactly.  Retained
        samples carry *weight*: a buffer decimated to stride ``s`` keeps
        one sample per ``s`` observations, so the two buffers are first
        brought to a **common stride** (the finer one is decimated the
        same way ``observe`` would have) before concatenating and
        re-applying the cap.  Merging buffers of unequal stride
        as-is would over-weight whichever histogram retained at the
        finer stride and skew every merged quantile toward its values.

        The retention phase is re-based afterwards (``_seen`` becomes
        ``len(samples) * stride``), so subsequent :meth:`observe` calls
        keep exactly one retained sample per ``stride`` observations —
        the documented resolution contract — instead of drifting on a
        stale pre-merge phase.
        """
        with self._lock:
            self.count += int(state["count"])
            self.sum += float(state["sum"])
            if state["min"] is not None and state["min"] < self.min:
                self.min = float(state["min"])
            if state["max"] is not None and state["max"] > self.max:
                self.max = float(state["max"])
            other = [float(s) for s in state["samples"]]
            other_stride = int(state.get("stride", 1))
            # Equalize strides (both are powers of two by construction:
            # they only ever double from 1).
            while self._stride < other_stride:
                self._samples = self._samples[::2]
                self._stride *= 2
            while other_stride < self._stride:
                other = other[::2]
                other_stride *= 2
            self._samples.extend(other)
            while len(self._samples) >= self._max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
            self._seen = len(self._samples) * self._stride


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for every metric in the process.

    The registry hands out live metric objects; callers on hot paths
    should hold the returned handle rather than re-looking it up per
    event.  Re-registering the same ``(name, labels)`` with a different
    metric type is an error — silent type morphing is how dashboards rot.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str, labels: dict[str, str]):
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get_or_create(self, cls, name: str, labels: dict[str, str]):
        key = self._key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls()
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r}{format_labels(labels)} already registered "
                    f"as {metric.kind}, requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter named ``name`` with ``labels`` (created on demand)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge named ``name`` with ``labels`` (created on demand)."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram named ``name`` with ``labels`` (created on demand)."""
        return self._get_or_create(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def items(self) -> Iterable[tuple[str, dict[str, str], object]]:
        """Iterate ``(name, labels, metric)`` sorted by name then labels."""
        for (name, labels), metric in sorted(self._metrics.items()):
            yield name, dict(labels), metric

    def snapshot(self) -> dict:
        """The whole registry as one JSON-ready dict.

        Format: ``{"counters": [...], "gauges": [...], "histograms": [...]}``
        with each entry carrying ``name``, ``labels`` and the metric's own
        snapshot fields.
        """
        out: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        for name, labels, metric in self.items():
            entry = {"name": name, "labels": labels, **metric.snapshot()}
            out[metric.kind + "s"].append(entry)
        return out

    def state(self) -> list[dict]:
        """The whole registry as a picklable, *mergeable* entry list.

        Each entry carries ``name``, ``labels``, ``kind`` and the
        metric's :meth:`state` payload.  Worker processes ship this back
        to the parent, which folds it in with :meth:`merge_state` —
        counters add, gauges keep the last write, histograms combine
        aggregates and re-decimate samples.
        """
        return [
            {
                "name": name,
                "labels": labels,
                "kind": metric.kind,
                "state": metric.state(),
            }
            for name, labels, metric in self.items()
        ]

    def merge_state(self, entries: list[dict]) -> None:
        """Fold a :meth:`state` dump (e.g. from a worker process) in."""
        for entry in entries:
            cls = _METRIC_TYPES[entry["kind"]]
            metric = self._get_or_create(cls, entry["name"], entry["labels"])
            metric.merge_state(entry["state"])

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot serialized as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        """Write the snapshot to ``path`` as JSON."""
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def summary_table(self) -> str:
        """Human-readable summary (the CLI's ``--metrics-out`` companion).

        Counters and gauges print ``name value``; histograms print
        count/mean/p50/p90/p99/max with seconds-style precision.
        """
        lines: list[str] = []
        scalars = [
            (f"{name}{format_labels(labels)}", metric.value)
            for name, labels, metric in self.items()
            if metric.kind in ("counter", "gauge")
        ]
        if scalars:
            width = max(len(k) for k, _ in scalars)
            lines.append("-- counters / gauges --")
            for key, value in scalars:
                shown = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"  {key:<{width}}  {shown}")
        histos = [
            (f"{name}{format_labels(labels)}", metric.snapshot())
            for name, labels, metric in self.items()
            if metric.kind == "histogram"
        ]
        if histos:
            width = max(len(k) for k, _ in histos)
            lines.append("-- histograms --")
            header = (
                f"  {'metric':<{width}}  {'count':>8} {'mean':>11} "
                f"{'p50':>11} {'p90':>11} {'p99':>11} {'max':>11}"
            )
            lines.append(header)
            for key, s in histos:
                lines.append(
                    f"  {key:<{width}}  {s['count']:>8d} {s['mean']:>11.4g} "
                    f"{s['p50']:>11.4g} {s['p90']:>11.4g} {s['p99']:>11.4g} "
                    f"{s['max']:>11.4g}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()
