"""repro.obs — observability: metrics, tracing, and profiling hooks.

The paper's argument is built on measurement (per-kernel timings, working
sets, speedup tables); this package is the measurement substrate for the
live code.  One process-wide :class:`Observability` instance, :data:`OBS`,
owns a :class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.Tracer`, and the hot paths are instrumented
against it behind a **zero-cost-when-disabled** contract:

* disabled (the default), every instrumentation point is a single
  attribute check — ``if OBS.enabled:`` — and nothing is allocated,
  locked, or recorded;
* enabled, kernels/drivers/guards record eval counts, bytes moved,
  latency histograms, occupancy gauges, and checkpoint/guard/retry
  events, dumpable as a metrics JSON, a Chrome ``trace_event`` JSON, a
  flat JSONL event log, and a human summary table.

Usage::

    from repro.obs import OBS
    OBS.enable()
    ...  # run drivers / QMC
    print(OBS.summary_table())
    OBS.write(metrics_out="metrics.json", trace_out="trace.json")
    OBS.disable()

Both CLIs expose this as ``--metrics-out`` / ``--trace-out``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
)
from repro.obs.tracing import NULL_SPAN, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "NULL_SPAN",
    "Observability",
    "OBS",
    "kernel_bytes_moved",
    "format_labels",
]

#: Stencil points gathered per evaluation (the 4x4x4 input block).
_STENCIL_POINTS = 64

#: Output streams per kernel for bytes-moved accounting; AoS stores the
#: redundant Hessian entries (13 streams), every SoA-shaped layout 10.
_OUT_STREAMS = {
    ("v", "aos"): 1,
    ("vgl", "aos"): 5,
    ("vgh", "aos"): 13,
    ("v", "soa"): 1,
    ("vgl", "soa"): 5,
    ("vgh", "soa"): 10,
}


def kernel_bytes_moved(
    kind: str, layout: str, n_splines: int, itemsize: int
) -> int:
    """Model bytes moved by one kernel evaluation (paper's working sets).

    Input side: the 64-point stencil gathers ``64 * N * itemsize`` bytes
    of coefficients; output side: ``streams * N * itemsize`` bytes, with
    the stream count from paper Secs. IV/V-A (13 for AoS VGH, 10 SoA).

    Parameters
    ----------
    kind:
        ``"v"``, ``"vgl"`` or ``"vgh"``.
    layout:
        ``"aos"`` for the interleaved baseline; anything else (``soa``,
        ``fused``, ``aosoa``…) uses the SoA stream counts.
    n_splines:
        N, splines evaluated per call.
    itemsize:
        Bytes per coefficient/output value.
    """
    group = "aos" if layout == "aos" else "soa"
    try:
        streams = _OUT_STREAMS[(kind, group)]
    except KeyError:
        raise ValueError(f"unknown kernel kind {kind!r}") from None
    return (_STENCIL_POINTS + streams) * n_splines * itemsize


class Observability:
    """The process-wide observability switchboard.

    Attributes
    ----------
    enabled:
        The one flag every hot path checks.  ``False`` by default; while
        false, all recording helpers return immediately (and
        :meth:`span` returns a shared no-op context manager).
    registry:
        The live :class:`~repro.obs.metrics.MetricsRegistry` (always
        present, so handles survive enable/disable cycles).
    tracer:
        The live :class:`~repro.obs.tracing.Tracer`.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> "Observability":
        """Turn recording on (idempotent); returns self for chaining."""
        self.enabled = True
        return self

    def disable(self) -> None:
        """Turn recording off; recorded data is kept until :meth:`reset`."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded metrics and trace events (state, not the flag)."""
        self.registry.reset()
        self.tracer.reset()

    def __enter__(self) -> "Observability":
        return self.enable()

    def __exit__(self, *exc) -> None:
        self.disable()

    # -- recording helpers (each is a no-op while disabled) ------------------

    def count(self, name: str, amount: float = 1, **labels) -> None:
        """Increment counter ``name{labels}`` by ``amount``."""
        if self.enabled:
            self.registry.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name{labels}`` to ``value``."""
        if self.enabled:
            self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record ``value`` into histogram ``name{labels}``."""
        if self.enabled:
            self.registry.histogram(name, **labels).observe(value)

    def span(self, name: str, cat: str = "repro", **args):
        """A timing span context manager (no-op singleton when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, cat=cat, **args)

    def complete(
        self,
        name: str,
        start_seconds: float,
        duration_seconds: float,
        cat: str = "repro",
        **args,
    ) -> None:
        """Record an already-measured interval (see ``Tracer.add_complete``)."""
        if self.enabled:
            self.tracer.add_complete(
                name, start_seconds, duration_seconds, cat=cat, **args
            )

    def event(self, name: str, cat: str = "repro", **args) -> None:
        """Record an instant marker in the trace."""
        if self.enabled:
            self.tracer.instant(name, cat=cat, **args)

    def kernel_eval(
        self,
        engine: str,
        kernel: str,
        n_evals: int,
        seconds: float,
        bytes_moved: int = 0,
    ) -> None:
        """The per-kernel profiling hook the drivers call once per batch.

        Records the eval count, the modeled bytes moved, and the batch
        latency (seconds for the whole batch) into

        * ``kernel_evals_total{engine,kernel}`` (counter),
        * ``kernel_bytes_total{engine,kernel}`` (counter),
        * ``kernel_batch_seconds{engine,kernel}`` (histogram), and
        * ``kernel_eval_seconds{engine,kernel}`` (histogram, per-eval).
        """
        if not self.enabled:
            return
        self.count("kernel_evals_total", n_evals, engine=engine, kernel=kernel)
        if bytes_moved:
            self.count(
                "kernel_bytes_total", bytes_moved, engine=engine, kernel=kernel
            )
        self.observe(
            "kernel_batch_seconds", seconds, engine=engine, kernel=kernel
        )
        if n_evals > 0:
            self.observe(
                "kernel_eval_seconds",
                seconds / n_evals,
                engine=engine,
                kernel=kernel,
            )

    # -- output --------------------------------------------------------------

    def summary_table(self) -> str:
        """The registry's human-readable summary table."""
        return self.registry.summary_table()

    def write(
        self, metrics_out=None, trace_out=None, events_out=None
    ) -> None:
        """Dump recorded data to files (each destination optional).

        Parameters
        ----------
        metrics_out:
            Metrics snapshot as JSON.
        trace_out:
            Chrome ``trace_event`` JSON (open in ``chrome://tracing``).
        events_out:
            Flat JSONL event log.
        """
        if metrics_out is not None:
            self.registry.write_json(metrics_out)
        if trace_out is not None:
            self.tracer.write_chrome_trace(trace_out)
        if events_out is not None:
            self.tracer.write_jsonl(events_out)


#: The process-wide instance every instrumentation point checks.
OBS = Observability()
