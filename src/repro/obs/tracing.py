"""Low-overhead span tracer emitting Chrome ``trace_event`` JSON + JSONL.

Every span is one append of a small dict to an in-memory list under a
lock — no I/O, no formatting, no syscalls on the hot path.  Rendering to
the two output formats happens once, at dump time:

* **Chrome trace** (``chrome://tracing`` / Perfetto): a ``traceEvents``
  array of complete (``"ph": "X"``) and instant (``"ph": "i"``) events
  with microsecond timestamps — the visual timeline of a run;
* **JSONL**: the same events one-JSON-object-per-line, for grep/jq/pandas
  pipelines and the flat event log the resilience layer appends to.

Timestamps come from ``time.perf_counter`` relative to the tracer's
creation, so traces from one process line up across threads.  Thread ids
are remapped to small consecutive integers in arrival order, which keeps
the Chrome UI's track names stable and the JSON diffable.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = ["Tracer", "NULL_SPAN"]


class _NullSpan:
    """Shared no-op context manager returned by disabled tracing paths."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


#: The singleton no-op span; reused so disabled paths allocate nothing.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and instants; renders Chrome trace JSON and JSONL.

    Parameters
    ----------
    clock:
        Injectable monotonic clock (seconds); tests pass a fake to get
        deterministic timestamps.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._tids: dict[int, int] = {}

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _append(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[dict]:
        """A copy of the recorded events (dump order = record order)."""
        with self._lock:
            return list(self._events)

    @contextmanager
    def span(self, name: str, cat: str = "repro", **args):
        """Time the enclosed block as one complete ("X") event.

        ``args`` become the Chrome-trace ``args`` payload (shown in the
        UI's detail pane); keep them small and JSON-native.
        """
        start = self._now_us()
        try:
            yield self
        finally:
            end = self._now_us()
            self._append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": start,
                    "dur": end - start,
                    "tid": self._tid(),
                    "args": args,
                }
            )

    def add_complete(
        self,
        name: str,
        start_seconds: float,
        duration_seconds: float,
        cat: str = "repro",
        **args,
    ) -> None:
        """Record an already-measured interval as a complete event.

        Hot paths that time themselves (the drivers' per-walker loops)
        use this instead of :meth:`span`, so observability never adds a
        second clock read to code that already has one.

        Parameters
        ----------
        start_seconds:
            The interval start as a ``time.perf_counter`` reading taken
            by the caller (same clock the tracer runs on).
        duration_seconds:
            The measured interval length in seconds.
        """
        self._append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": (start_seconds - self._t0) * 1e6,
                "dur": duration_seconds * 1e6,
                "tid": self._tid(),
                "args": args,
            }
        )

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        """Record a zero-duration marker (checkpoint written, guard trip)."""
        self._append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": self._now_us(),
                "s": "t",
                "tid": self._tid(),
                "args": args,
            }
        )

    # -- rendering -----------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` document (``{"traceEvents": [...]}``)."""
        pid = os.getpid()
        events = []
        for e in self.events:
            ev = dict(e)
            ev["pid"] = pid
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Write the Chrome-trace JSON document to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)

    def write_jsonl(self, path) -> None:
        """Write the flat one-event-per-line JSONL log to ``path``."""
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")

    def reset(self) -> None:
        """Drop all recorded events (keeps the epoch)."""
        with self._lock:
            self._events.clear()
