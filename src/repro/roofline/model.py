"""The roofline performance model (paper Fig. 10, refs [29][30]).

A roofline bounds attainable GFLOP/s by ``min(peak, AI * BW)`` for each
bandwidth ceiling; the paper plots the cache-aware variant where the
arithmetic intensity uses bytes actually transferred from main memory.
This module provides the curves; :mod:`repro.roofline.analysis` computes
where each optimization step lands on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hwsim.machine import MachineSpec

__all__ = ["Roofline"]


@dataclass
class Roofline:
    """Roofline curves for one machine.

    Parameters
    ----------
    peak_gflops:
        Compute ceiling.
    ceilings:
        Named bandwidth ceilings in GB/s, e.g.
        ``{"MCDRAM": 490.0, "DDR": 90.0}``.
    """

    peak_gflops: float
    ceilings: dict[str, float] = field(default_factory=dict)

    @classmethod
    def for_machine(cls, machine: MachineSpec) -> "Roofline":
        """Build the standard rooflines for a paper machine.

        KNL gets both MCDRAM and DDR ceilings (the Fig. 10 comparison);
        machines with a shared LLC get an LLC ceiling on top of DRAM.
        """
        ceilings = {"DRAM": machine.stream_bw / 1e9}
        if machine.name == "KNL":
            ceilings = {"MCDRAM": machine.stream_bw / 1e9, "DDR": machine.ddr_bw / 1e9}
        elif machine.has_shared_llc:
            ceilings["LLC"] = machine.llc_bw / 1e9
        return cls(peak_gflops=machine.peak_sp_gflops, ceilings=ceilings)

    def attainable(self, ai: float, ceiling: str | None = None) -> float:
        """Attainable GFLOP/s at arithmetic intensity ``ai`` (FLOP/byte).

        Parameters
        ----------
        ceiling:
            Which bandwidth ceiling to use; default is the fastest one.
        """
        if ai < 0:
            raise ValueError(f"arithmetic intensity must be >= 0, got {ai}")
        if ceiling is None:
            bw = max(self.ceilings.values())
        else:
            bw = self.ceilings[ceiling]
        return min(self.peak_gflops, ai * bw)

    def ridge_point(self, ceiling: str | None = None) -> float:
        """AI where the bandwidth roof meets the compute roof."""
        if ceiling is None:
            bw = max(self.ceilings.values())
        else:
            bw = self.ceilings[ceiling]
        return self.peak_gflops / bw

    def curve(
        self, ai_range: np.ndarray, ceiling: str | None = None
    ) -> np.ndarray:
        """Vectorized attainable GFLOP/s over an AI array (for plotting)."""
        ai_range = np.asarray(ai_range, dtype=np.float64)
        if ceiling is None:
            bw = max(self.ceilings.values())
        else:
            bw = self.ceilings[ceiling]
        return np.minimum(self.peak_gflops, ai_range * bw)

    def efficiency(self, ai: float, gflops: float, ceiling: str | None = None) -> float:
        """Achieved fraction of the attainable performance at this AI."""
        att = self.attainable(ai, ceiling)
        return gflops / att if att > 0 else 0.0
