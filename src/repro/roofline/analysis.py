"""Roofline points per optimization step (paper Fig. 10).

For VGH at N=2048 the paper plots, per machine, the (cache-aware AI,
GFLOP/s) point of each optimization step.  Its key observations, which
these computations reproduce:

* "In all cases, the bytes transferred from the main memory are the same,
  64N reads and 10N writes, and the difference in AI reflects the SIMD
  efficiency and cache reuse" — AoS moves more bytes (13 streams + write
  spill), so its cache-aware AI is lower;
* "The AoS-to-SoA transformation increases the AI as well as GFLOPS";
* "The AoSoA transformation does not affect the AIs but increases the
  performance" — with outputs cache-resident both SoA variants transfer
  the ideal byte count, and tiling only moves the achieved point upward;
* KNL on DDR instead of MCDRAM caps the best version at ~150 GFLOP/s
  (the X marker).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.machine import MachineSpec
from repro.hwsim.perfmodel import BsplinePerfModel
from repro.roofline.model import Roofline

__all__ = ["RooflinePoint", "roofline_points"]


@dataclass(frozen=True)
class RooflinePoint:
    """One optimization step on the roofline plot."""

    step: str
    ai: float
    gflops: float
    attainable_gflops: float

    @property
    def efficiency(self) -> float:
        """Fraction of the attainable roof achieved."""
        return self.gflops / self.attainable_gflops if self.attainable_gflops else 0.0


def roofline_points(
    machine: MachineSpec,
    kernel: str = "vgh",
    n_splines: int = 2048,
    include_ddr: bool | None = None,
) -> list[RooflinePoint]:
    """The Fig.-10 point set for one machine.

    Steps: AoS baseline, SoA (Opt A), AoSoA at the model-optimal tile
    (Opt B), and — on KNL by default — AoSoA re-evaluated with the DDR
    bandwidth in place of MCDRAM (the paper's X marker).

    AI is cache-aware: FLOPs divided by modelled *main-memory* bytes
    (including spill traffic), exactly what Intel Advisor measures.
    """
    model = BsplinePerfModel(machine)
    roof = Roofline.for_machine(machine)
    points: list[RooflinePoint] = []

    def add(step: str, res, bw_ceiling: str | None = None) -> None:
        ai = res.flops / res.dram_bytes if res.dram_bytes else float("inf")
        gflops = res.flops * res.evals_per_sec / 1e9
        points.append(
            RooflinePoint(
                step=step,
                ai=ai,
                gflops=gflops,
                attainable_gflops=roof.attainable(ai, bw_ceiling),
            )
        )

    add("AoS", model.evaluate(kernel, "aos", n_splines))
    add("SoA", model.evaluate(kernel, "soa", n_splines))
    nb_opt, _ = model.best_tile_size(kernel, n_splines)
    add(f"AoSoA(Nb={nb_opt})", model.evaluate(kernel, "aosoa", n_splines, nb_opt))

    if include_ddr is None:
        include_ddr = machine.name == "KNL"
    if include_ddr and machine.ddr_bw != machine.stream_bw:
        from dataclasses import replace

        ddr_machine = replace(machine, stream_bw=machine.ddr_bw)
        ddr_model = BsplinePerfModel(ddr_machine)
        res = ddr_model.evaluate(kernel, "aosoa", n_splines, nb_opt)
        ai = res.flops / res.dram_bytes if res.dram_bytes else float("inf")
        gflops = res.flops * res.evals_per_sec / 1e9
        points.append(
            RooflinePoint(
                step=f"AoSoA-DDR(Nb={nb_opt})",
                ai=ai,
                gflops=gflops,
                attainable_gflops=roof.attainable(ai, "DDR"),
            )
        )
    return points
