"""repro.roofline — cache-aware roofline analysis (paper Fig. 10)."""

from repro.roofline.analysis import RooflinePoint, roofline_points
from repro.roofline.model import Roofline

__all__ = ["Roofline", "RooflinePoint", "roofline_points"]
