"""Shared-memory multiprocess execution layer (paper Sec. IV at node scope).

The paper parallelizes walkers over threads sharing one read-only
B-spline table; pure-Python walker loops are GIL-bound, so this package
re-creates that architecture with *processes*:

* :class:`~repro.parallel.shared_table.SharedTable` — the coefficient
  table in POSIX shared memory, one physical copy per node;
* :class:`~repro.parallel.pool.ProcessCrowdPool` — persistent worker
  processes holding shard state across calls;
* :mod:`~repro.parallel.sharding` — deterministic contiguous sharding
  and per-walker streams, the bit-for-bit contract;
* :mod:`~repro.parallel.orbital` — Opt C at process scope: orbital-axis
  sharding over :class:`~repro.parallel.orbital.SharedOutputRing`
  zero-copy output buffers (``split="orbitals"``);
* :func:`~repro.parallel.crowd.run_crowd_parallel`,
  :func:`~repro.parallel.vmc.run_vmc_population`,
  :func:`~repro.parallel.dmc.run_dmc_sharded` — drivers whose results
  are bit-identical for any worker count.
"""

from repro.parallel.crowd import (
    CrowdRunResult,
    CrowdSpec,
    build_walker_range,
    run_crowd_parallel,
    run_crowd_sequential,
    solve_spec_table,
)
from repro.parallel.dmc import run_dmc_sharded
from repro.parallel.orbital import (
    OrbitalEvaluator,
    OrbitalWorker,
    SharedOutputRing,
    choose_split,
    plan_orbital_blocks,
    resolve_split,
)
from repro.parallel.pool import ProcessCrowdPool, WorkerError, WorkerTimeout
from repro.parallel.sharding import shard_slices, walker_rng, walker_seed_sequence
from repro.parallel.shared_table import SharedTable
from repro.parallel.vmc import VmcPopulationResult, run_vmc_population

__all__ = [
    "SharedTable",
    "SharedOutputRing",
    "OrbitalEvaluator",
    "OrbitalWorker",
    "choose_split",
    "resolve_split",
    "plan_orbital_blocks",
    "ProcessCrowdPool",
    "WorkerError",
    "WorkerTimeout",
    "shard_slices",
    "walker_seed_sequence",
    "walker_rng",
    "CrowdSpec",
    "CrowdRunResult",
    "solve_spec_table",
    "build_walker_range",
    "run_crowd_sequential",
    "run_crowd_parallel",
    "VmcPopulationResult",
    "run_vmc_population",
    "run_dmc_sharded",
]
