"""The read-only coefficient table in POSIX shared memory.

Paper Fig. 3 shares one read-only ``(nx, ny, nz, N)`` coefficient table
across all walker threads; :class:`SharedTable` extends that contract to
*process* scope.  The owner process copies the table into a
``multiprocessing.shared_memory`` segment exactly once; every worker
process attaches the same segment by name and maps it zero-copy — the
table never travels through a pipe, and the node holds one physical copy
no matter how many workers run (the O(table) + O(Nw * N) memory model of
paper Sec. I, with Nw spread over processes).

Lifetime rules (enforced by tests, documented in ``docs/API.md``):

* the **owner** (``SharedTable.create``) must call :meth:`unlink` —
  most simply via the context-manager form — or the segment outlives
  the process in ``/dev/shm``;
* **attachers** (``SharedTable.attach``) call :meth:`close` only; they
  never unlink a segment they do not own;
* close workers *before* the owner unlinks: a mapped segment survives
  unlinking (POSIX semantics), but late attachers would fail.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedTable"]


def _stage_copy(shm: shared_memory.SharedMemory, array: np.ndarray) -> None:
    """Copy ``array`` into the fresh segment (separate so tests can make
    the staging step fail and assert ``create`` cleans up after itself)."""
    staging = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    try:
        staging[...] = array
    finally:
        # Drop the view even when the copy raises: a surviving export
        # over ``shm.buf`` would turn the caller's cleanup ``close()``
        # into a BufferError and leak the segment after all.
        del staging


class SharedTable:
    """A NumPy array placed once in shared memory, attached zero-copy.

    Use :meth:`create` in the owner process and :meth:`attach` (with the
    owner's picklable :attr:`spec`) in workers.  The exposed
    :attr:`array` view is marked read-only in *every* process — the
    coefficient table is immutable by contract, and an accidental write
    from a worker would silently corrupt all of them.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
    ):
        self._shm = shm
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.owner = bool(owner)
        self._closed = False
        view = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)
        view.flags.writeable = False
        self._array = view

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedTable":
        """Copy ``array`` into a fresh shared segment; returns the owner
        handle.  The one copy this class ever makes.  If staging the
        copy fails, the just-created segment is closed *and unlinked*
        before the error propagates — ``create`` never leaks a
        ``/dev/shm`` segment nobody owns.
        """
        array = np.ascontiguousarray(array)
        if array.nbytes == 0:
            raise ValueError("refusing to share an empty array")
        shm = shared_memory.SharedMemory(create=True, size=array.nbytes)
        try:
            _stage_copy(shm, array)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, array.shape, array.dtype, owner=True)

    @classmethod
    def attach(cls, spec: dict) -> "SharedTable":
        """Attach an existing segment from an owner's :attr:`spec`.

        Zero-copy: the returned :attr:`array` maps the owner's pages
        directly.  The attachment is *not* an owner — :meth:`unlink`
        refuses, and the context-manager exit only detaches.

        The segment's actual size is validated against the spec before
        any array is mapped: a stale or mismatched spec raises a
        :class:`ValueError` naming the segment and both sizes instead
        of surfacing as a cryptic numpy ``TypeError`` deep in a worker.
        """
        shm = shared_memory.SharedMemory(name=spec["name"])
        shape = tuple(int(s) for s in spec["shape"])
        dtype = np.dtype(spec["dtype"])
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        actual = shm.size
        if actual < expected:
            shm.close()
            raise ValueError(
                f"shared segment {spec['name']!r} holds {actual} bytes but "
                f"the spec (shape={shape}, dtype={dtype}) needs {expected} "
                f"bytes — stale or mismatched table spec"
            )
        return cls(shm, shape, dtype, owner=False)

    # -- access --------------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The read-only table view (valid until :meth:`close`)."""
        if self._closed:
            raise ValueError("shared table is closed")
        return self._array

    @property
    def name(self) -> str:
        """The segment name (how attachers find it)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Table payload size in bytes."""
        return int(np.prod(self.shape)) * self.dtype.itemsize

    @property
    def spec(self) -> dict:
        """Picklable descriptor workers use to :meth:`attach`."""
        return {
            "name": self._shm.name,
            "shape": list(self.shape),
            "dtype": self.dtype.str,
        }

    # -- lifetime ------------------------------------------------------------

    def close(self) -> None:
        """Detach this process's mapping (idempotent).

        The segment itself survives until the owner unlinks it; after
        closing, :attr:`array` raises instead of touching unmapped
        memory.
        """
        if self._closed:
            return
        self._closed = True
        self._array = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after workers closed)."""
        if not self.owner:
            raise ValueError("only the creating process may unlink a segment")
        self._shm.unlink()

    def __enter__(self) -> "SharedTable":
        return self

    def __exit__(self, *exc) -> None:
        was_owner = self.owner and not self._closed
        self.close()
        if was_owner:
            self.unlink()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return (
            f"SharedTable({self._shm.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, {role})"
        )
