"""Process-parallel crowd execution over one shared coefficient table.

The sequential :class:`repro.qmc.crowd.Crowd` already turns per-electron
orbital evaluations across walkers into batched kernel calls; this
module distributes the *walkers* over worker processes.  Each worker
attaches the :class:`~repro.parallel.shared_table.SharedTable`
zero-copy, builds its contiguous walker shard from deterministic
per-walker seeds (:mod:`repro.parallel.sharding`), and advances it as a
sub-crowd.  Because every walker's streams depend only on its global
index, and the batched kernels evaluate each position independently,

    ``run_crowd_parallel(spec, n_workers=K)``

is **bit-identical** to the sequential one-process crowd for every
``K`` — the regression the tests pin down at 1, 2 and 4 workers.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro.core.coeffs import pad_table_3d, solve_coefficients_3d
from repro.core.grid import Grid3D
from repro.core.layout_fused import BsplineFused
from repro.core.layout_soa import BsplineSoA
from repro.core.layout_aos import BsplineAoS
from repro.lattice.cell import Cell
from repro.lattice.orbitals import PlaneWaveOrbitalSet
from repro.lattice.pbc import wigner_seitz_radius
from repro.obs import OBS
from repro.parallel.pool import ProcessCrowdPool
from repro.parallel.sharding import shard_slices, walker_rng
from repro.parallel.shared_table import SharedTable
from repro.qmc.crowd import Crowd
from repro.qmc.drift_diffusion import sweep
from repro.qmc.jastrow import make_polynomial_radial
from repro.qmc.particleset import ParticleSet
from repro.qmc.slater import SplineOrbitalSet
from repro.qmc.wavefunction import SlaterJastrow

__all__ = [
    "CrowdSpec",
    "CrowdRunResult",
    "solve_spec_table",
    "build_walker_range",
    "run_crowd_sequential",
    "run_crowd_parallel",
]

_ENGINES = {"aos": BsplineAoS, "soa": BsplineSoA, "fused": BsplineFused}


@dataclass(frozen=True)
class CrowdSpec:
    """A picklable description of a walker population.

    Everything a worker needs to rebuild its shard deterministically:
    walker ``w``'s configuration comes from stream ``(seed, w, 0)`` and
    its move stream from ``(seed, w, 1)`` — independent of sharding.
    """

    n_walkers: int
    n_orbitals: int = 4
    box: float = 6.0
    grid_shape: tuple[int, int, int] = (12, 12, 12)
    engine: str = "fused"
    seed: int = 2017
    #: .. deprecated:: PR9
    #:    Pre-config spellings of the execution knobs; a non-None value
    #:    overrides the matching :attr:`config` field and warns.  Use
    #:    ``config=RunConfig(...)``.
    tile_size: int | None = None
    chunk_size: int | None = None
    backend: str | None = None
    #: The execution configuration (:class:`repro.config.RunConfig`).
    #: ``None`` builds one from the environment at use time.  The run
    #: entry points resolve it **parent-side** (tuned-DB winner or
    #: heuristic, concretized to ints) before sharding, so every worker
    #: inherits the parent's blocking decision bit-identically
    #: regardless of its own env or tuning DB.  A backend *name* is
    #: still resolved worker-side with the fallback policy: a worker
    #: that cannot serve it degrades to NumPy with a warning and a
    #: ``backend_fallback_total`` count (see :func:`build_walker_range`).
    config: "RunConfig | None" = None

    def __post_init__(self) -> None:
        from repro.config import deprecated_kwargs

        deprecated_kwargs(
            "CrowdSpec",
            tile_size=self.tile_size is not None,
            chunk_size=self.chunk_size is not None,
            backend=self.backend is not None,
        )
        if self.n_walkers <= 0:
            raise ValueError(f"n_walkers must be positive, got {self.n_walkers}")
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.tile_size is not None and self.tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {self.tile_size}")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )
        backend = (
            self.backend
            if self.backend is not None
            else self.config.backend
            if self.config is not None
            else None
        )
        if backend is not None and not isinstance(backend, str):
            raise ValueError(
                "CrowdSpec backends must be registered backend names "
                f"(specs must stay picklable), got {backend!r}"
            )

    def run_config(self) -> "RunConfig":
        """The effective config: deprecated field overrides over ``config``.

        When :attr:`config` is None the environment is consulted (rung 2)
        — in whichever process calls this, which is why the run entry
        points resolve parent-side and ship the result.
        """
        from repro.config import RunConfig

        cfg = self.config if self.config is not None else RunConfig.from_env()
        overrides = {
            k: v
            for k, v in (
                ("tile_size", self.tile_size),
                ("chunk_size", self.chunk_size),
                ("backend", self.backend),
            )
            if v is not None
        }
        return cfg.replace(**overrides) if overrides else cfg

    def resolved(self, dtype=np.float64) -> "CrowdSpec":
        """A copy whose config is fully resolved (concrete chunk/tile).

        The parent calls this once before sharding; the returned spec's
        deprecated knob fields are folded into :attr:`config`, so a
        worker unpickling it reconstructs the parent's exact plan
        without touching its own env or tuning DB.
        """
        cfg = self.run_config()
        if not cfg.is_resolved:
            cfg = cfg.resolved_for(
                self.n_orbitals, batch=self.n_walkers, dtype=dtype
            )
        return dataclasses.replace(
            self, tile_size=None, chunk_size=None, backend=None, config=cfg
        )


def solve_spec_table(spec: CrowdSpec) -> np.ndarray:
    """Solve the spec's plane-wave coefficient table once (float64).

    The parent does this exactly once; workers receive the bytes through
    shared memory, never by re-solving.
    """
    cell = Cell.cubic(spec.box)
    orbitals = PlaneWaveOrbitalSet(cell, spec.n_orbitals)
    nx, ny, nz = spec.grid_shape
    samples = orbitals.values_on_grid(nx, ny, nz)
    return solve_coefficients_3d(samples, dtype=np.float64)


def build_walker_range(
    spec: CrowdSpec,
    table: np.ndarray,
    lo: int,
    hi: int,
    spos: SplineOrbitalSet | None = None,
) -> tuple[list[SlaterJastrow], list[np.random.Generator]]:
    """Walkers ``lo .. hi-1`` of the population, over ``table``.

    All walkers of the range share one :class:`SplineOrbitalSet` (the
    crowd contract); ``table`` may be a private array or a
    :class:`SharedTable` view — the engine never copies it.  A
    ghost-padded ``(nx+3, ny+3, nz+3, N)`` table (what
    :func:`run_crowd_parallel` shares, so workers attach the halo
    zero-copy) is detected by shape: the single-position engine gets the
    central view, the batched engine adopts the padded table directly.
    Pass an existing ``spos`` to extend a crowd across *calls* too
    (walkers only batch together when they share the orbital-set object,
    so callers that grow their population incrementally — e.g. the
    sharded DMC templates — must reuse one).

    The spec's ``backend`` is resolved *here*, in whichever process the
    shard lives in, with the fleet-worker fallback policy: a worker
    that cannot serve the requested backend (missing JIT/toolchain on a
    heterogeneous node) degrades to the exact-tier NumPy path with a
    warning and a ``backend_fallback_total`` count instead of killing
    the run.  Strict validation is the parent's job (the CLIs call
    :func:`repro.backends.resolve_backend` without fallback first).
    """
    cell = Cell.cubic(spec.box)
    if spos is None:
        cfg = spec.run_config()
        if cfg.backend is not None and not hasattr(cfg.backend, "capability"):
            from repro.backends import resolve_backend

            cfg = cfg.replace(
                backend=resolve_backend(cfg.backend, fallback=True)
            )
        nx, ny, nz = spec.grid_shape
        grid = Grid3D(nx, ny, nz, (1.0, 1.0, 1.0))
        padded = None
        if table.shape[:3] == grid.padded_shape:
            padded = table
            table = table[1 : nx + 1, 1 : ny + 1, 1 : nz + 1]
        engine = _ENGINES[spec.engine](grid, table)
        spos = SplineOrbitalSet(cell, grid, engine, padded_table=padded, config=cfg)
    rcut = 0.9 * wigner_seitz_radius(cell)
    j1 = make_polynomial_radial(0.4, rcut)
    j2 = make_polynomial_radial(0.6, rcut)
    wfs, rngs = [], []
    for w in range(lo, hi):
        conf_rng = walker_rng(spec.seed, w, stream=0)
        ions = ParticleSet("ion", cell, cell.frac_to_cart(conf_rng.random((2, 3))))
        electrons = ParticleSet.random("e", cell, 2 * spec.n_orbitals, conf_rng)
        wfs.append(SlaterJastrow(electrons, ions, spos, j1, j2))
        rngs.append(walker_rng(spec.seed, w, stream=1))
    return wfs, rngs


@dataclass
class CrowdRunResult:
    """Merged outcome of a (parallel) crowd run, in walker order.

    ``positions`` is ``(n_walkers, n_electrons, 3)``; ``log_values`` the
    per-walker ``log |Psi|`` after the last sweep — together they pin a
    trajectory bit-for-bit.  ``seconds`` is parent wall time over the
    whole run (the number speedups are computed from).
    """

    positions: np.ndarray
    log_values: np.ndarray
    accepted: int
    attempted: int
    seconds: float
    n_workers: int

    @property
    def acceptance(self) -> float:
        """Overall move acceptance."""
        return self.accepted / max(self.attempted, 1)

    @property
    def walkers_per_second(self) -> float:
        """Walker-sweeps per wall second (the bench's rate metric)."""
        if self.seconds <= 0 or len(self.positions) == 0:
            return 0.0
        n_el = self.positions.shape[1] or 1
        sweeps = self.attempted / (len(self.positions) * n_el)
        return len(self.positions) * sweeps / self.seconds


class _CrowdShard:
    """Worker-process state: one attached table + one sub-crowd."""

    def __init__(self, worker_id: int, spec: CrowdSpec, table_spec: dict):
        self._table = SharedTable.attach(table_spec)
        shard = shard_slices(spec.n_walkers, table_spec["n_workers"])[worker_id]
        self.lo, self.hi = shard.start, shard.stop
        wfs, rngs = build_walker_range(spec, self._table.array, self.lo, self.hi)
        self.crowd = Crowd(wfs, rngs) if wfs else None

    def plan(self) -> dict:
        """The shard's resolved execution plan (for inheritance tests).

        Reports the chunk/tile/backend the worker's batched engine
        actually runs with, plus the inherited config — the observable
        that must match the parent's resolved spec bit for bit.
        """
        if self.crowd is None:
            return {}
        spos = self.crowd.wfs[0].slater.spos
        eng = spos._get_batched()
        return {
            "chunk": eng.plan.chunk,
            "tile": eng.plan.tile,
            "backend": eng.backend.name,
            "config": spos.config.as_dict(),
        }

    def run(self, n_sweeps: int, tau: float, step_mode: str = "batched") -> dict:
        """Advance the shard ``n_sweeps`` sweeps (lock-step by default)."""
        if self.crowd is None:
            return {
                "positions": None,
                "log_values": None,
                "accepted": 0,
                "attempted": 0,
            }
        t0 = time.perf_counter()
        accepted = attempted = 0
        for _ in range(n_sweeps):
            if step_mode == "walker":
                acc = att = 0
                for wf, rng in zip(self.crowd.wfs, self.crowd.rngs):
                    a, t = sweep(wf, tau, rng)
                    acc += a
                    att += t
                self.crowd.state.refresh_positions()
            else:
                acc, att = self.crowd.sweep(tau)
            accepted += acc
            attempted += att
        dt = time.perf_counter() - t0
        if OBS.enabled:
            OBS.count("crowd_sweeps_total", n_sweeps)
            OBS.count("crowd_moves_total", attempted)
            OBS.observe("crowd_shard_seconds", dt)
            OBS.gauge("crowd_shard_walkers", len(self.crowd))
        return {
            "positions": np.stack(
                [wf.electrons.positions for wf in self.crowd.wfs]
            ),
            "log_values": np.asarray(
                [wf.log_value for wf in self.crowd.wfs], dtype=np.float64
            ),
            "accepted": accepted,
            "attempted": attempted,
        }

    def close(self) -> None:
        """Drop table views, then detach the shared segment."""
        self.crowd = None
        try:
            self._table.close()
        except BufferError:
            # Lingering views die with the worker process anyway; the
            # segment itself is unlinked by the owner, not here.
            pass


def _init_crowd_shard(worker_id: int, spec: CrowdSpec, table_spec: dict):
    return _CrowdShard(worker_id, spec, table_spec)


def run_crowd_sequential(
    spec: CrowdSpec,
    n_sweeps: int,
    tau: float,
    table: np.ndarray | None = None,
    step_mode: str | None = None,
) -> CrowdRunResult:
    """The single-process reference: one crowd holding every walker.

    ``step_mode="walker"`` advances each walker with the sequential
    per-electron sweep instead of the batched kernels — bit-identical to
    the default, kept as the comparison baseline for the benchmarks and
    the CLI parity smoke.  ``None`` takes the spec config's mode
    (default ``"batched"``).
    """
    if table is None:
        table = solve_spec_table(spec)
    spec = spec.resolved(table.dtype)
    if step_mode is None:
        step_mode = spec.config.step_mode
    if step_mode not in ("batched", "walker"):
        raise ValueError(
            f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
        )
    wfs, rngs = build_walker_range(spec, table, 0, spec.n_walkers)
    crowd = Crowd(wfs, rngs)
    t0 = time.perf_counter()
    accepted = attempted = 0
    for _ in range(n_sweeps):
        if step_mode == "walker":
            for wf, rng in zip(wfs, rngs):
                a, t = sweep(wf, tau, rng)
                accepted += a
                attempted += t
        else:
            acc, att = crowd.sweep(tau)
            accepted += acc
            attempted += att
    seconds = time.perf_counter() - t0
    return CrowdRunResult(
        positions=np.stack([wf.electrons.positions for wf in wfs]),
        log_values=np.asarray([wf.log_value for wf in wfs], dtype=np.float64),
        accepted=accepted,
        attempted=attempted,
        seconds=seconds,
        n_workers=1,
    )


def _run_crowd_orbital(
    spec: CrowdSpec,
    n_workers: int,
    n_sweeps: int,
    tau: float,
    table: np.ndarray,
    orbital_shards: int,
    start_method: str | None,
    step_mode: str,
    fleet=None,
) -> CrowdRunResult:
    """Opt C for the crowd: one parent-side population, fanned kernels.

    The whole population lives in the parent (one crowd, exactly the
    sequential trajectory); every batched orbital call is split along
    the *spline* axis across ``n_workers`` pool processes via
    :class:`~repro.parallel.orbital.OrbitalEvaluator`, writing into the
    shared output ring zero-copy.  Because the fan-out is bit-gated
    (concatenated blocks ``==`` the single-engine result), the returned
    trajectory is bit-identical to :func:`run_crowd_sequential` — the
    same contract walker sharding gives, reached from the other axis.
    """
    from repro.parallel.orbital import OrbitalEvaluator

    spec = spec.resolved(table.dtype)
    wfs, rngs = build_walker_range(spec, table, 0, spec.n_walkers)
    spos = wfs[0].slater.spos
    fanned = OrbitalEvaluator(
        spos.grid,
        spos._padded_table if spos._padded_table is not None else spos.engine.P,
        config=spec.config,
        processes=n_workers,
        orbital_shards=orbital_shards,
        supervise=fleet is not None,
        fleet_config=fleet,
        start_method=start_method,
    )
    # All walkers share this orbital set, so one injection fans every
    # kernel call of the run across the orbital blocks.
    spos._batched = fanned
    crowd = Crowd(wfs, rngs)
    t0 = time.perf_counter()
    accepted = attempted = 0
    try:
        for _ in range(n_sweeps):
            if step_mode == "walker":
                for wf, rng in zip(wfs, rngs):
                    a, t = sweep(wf, tau, rng)
                    accepted += a
                    attempted += t
            else:
                acc, att = crowd.sweep(tau)
                accepted += acc
                attempted += att
    finally:
        fanned.close()
    seconds = time.perf_counter() - t0
    return CrowdRunResult(
        positions=np.stack([wf.electrons.positions for wf in wfs]),
        log_values=np.asarray([wf.log_value for wf in wfs], dtype=np.float64),
        accepted=accepted,
        attempted=attempted,
        seconds=seconds,
        n_workers=n_workers,
    )


def run_crowd_parallel(
    spec: CrowdSpec,
    n_workers: int,
    n_sweeps: int,
    tau: float,
    table: np.ndarray | None = None,
    start_method: str | None = None,
    step_mode: str | None = None,
    fleet=None,
    injector=None,
    split: str = "walkers",
    orbital_shards: int | None = None,
) -> CrowdRunResult:
    """Shard the population over ``n_workers`` processes and advance it.

    The coefficient table is placed in shared memory once and attached
    zero-copy by every worker; walkers are sharded contiguously and
    gathered back in order, so the result is bit-identical to
    :func:`run_crowd_sequential` for any ``n_workers`` — and, since the
    batched and per-walker paths share one trajectory, for either
    ``step_mode``.  All segments and workers are torn down before
    returning (no ``/dev/shm`` leaks).

    ``split`` selects the sharded axis: ``"walkers"`` (default — the
    behaviour above), ``"orbitals"`` (Opt C: the population stays in
    the parent and every kernel call is split along the spline axis
    across the pool; see :mod:`repro.parallel.orbital`), or ``"auto"``
    (policy via :func:`~repro.parallel.orbital.resolve_split`:
    explicit ``orbital_shards`` kwarg, then ``REPRO_ORBITAL_SHARDS`` /
    tuned DB through the spec's config, then the perf-model heuristic
    — orbital sharding wins when walkers alone cannot fill the pool).
    Both splits return bit-identical trajectories.

    Passing a :class:`repro.fleet.FleetConfig` as ``fleet`` supervises
    the shards: a crashed or hung worker is restarted and its
    (deterministic) shard re-run, preserving bit-identity.  Crowd
    shards are stateful, so supervision covers recovery only — elastic
    resizing is a DMC feature; orbital shards are *stateless* replicas,
    so under ``split="orbitals"`` supervision is plain restart +
    re-issue.  ``injector`` requires ``fleet`` (walker split only).
    """
    if injector is not None and fleet is None:
        raise ValueError(
            "injector requires fleet supervision (pass fleet=FleetConfig(...))"
        )
    if table is None:
        table = solve_spec_table(spec)
    if split != "walkers" or orbital_shards is not None:
        from repro.parallel.orbital import resolve_split

        mode, shards = resolve_split(
            spec.n_walkers,
            n_workers,
            spec.n_orbitals,
            split=split,
            orbital_shards=orbital_shards,
            config=spec.run_config(),
        )
        if mode == "orbitals":
            if injector is not None:
                raise ValueError(
                    "fault injectors target walker shards; orbital replicas "
                    "take faults via OrbitalEvaluator.arm_fault instead"
                )
            if step_mode is None:
                from repro.config import effective_step_mode

                step_mode = effective_step_mode(step_mode, spec.config)
            if step_mode not in ("batched", "walker"):
                raise ValueError(
                    f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
                )
            return _run_crowd_orbital(
                spec,
                n_workers,
                n_sweeps,
                tau,
                table,
                orbital_shards=shards,
                start_method=start_method,
                step_mode=step_mode,
                fleet=fleet,
            )
    # Resolve once, parent-side: workers unpickle a spec whose config
    # already carries concrete chunk/tile ints and never consult their
    # own env or tuning DB for the blocking decision.
    spec = spec.resolved(table.dtype)
    if step_mode is None:
        step_mode = spec.config.step_mode
    if step_mode not in ("batched", "walker"):
        raise ValueError(
            f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
        )
    # Pad once in the parent: workers then attach the ghost halo
    # zero-copy instead of each paying the pad copy themselves.
    shared = SharedTable.create(pad_table_3d(table))
    table_spec = dict(shared.spec, n_workers=n_workers)
    t0 = time.perf_counter()
    try:
        if fleet is not None:
            from repro.fleet import FleetSupervisor

            with FleetSupervisor(
                n_workers,
                _init_crowd_shard,
                (spec, table_spec),
                config=fleet,
                stateful=True,
                start_method=start_method,
            ) as supervisor:
                supervisor.arm_injector(injector)
                shards = supervisor.broadcast("run", n_sweeps, tau, step_mode)
                supervisor.merge_metrics()
        else:
            with ProcessCrowdPool(
                n_workers,
                _init_crowd_shard,
                (spec, table_spec),
                start_method=start_method,
            ) as pool:
                shards = pool.broadcast("run", n_sweeps, tau, step_mode)
                pool.merge_metrics()
    finally:
        shared.close()
        shared.unlink()
    seconds = time.perf_counter() - t0
    filled = [s for s in shards if s["positions"] is not None]
    return CrowdRunResult(
        positions=np.concatenate([s["positions"] for s in filled]),
        log_values=np.concatenate([s["log_values"] for s in filled]),
        accepted=sum(s["accepted"] for s in shards),
        attempted=sum(s["attempted"] for s in shards),
        seconds=seconds,
        n_workers=n_workers,
    )
