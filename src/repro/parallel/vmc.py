"""VMC over a walker population, sharded across worker processes.

Each walker's VMC trajectory is fully independent (its wavefunction and
its private stream), so population-level VMC is embarrassingly parallel:
shard the walkers, run :func:`repro.qmc.vmc.run_vmc` per walker inside
each worker, gather per-walker energy traces in walker order.  With the
per-walker streams of :mod:`repro.parallel.sharding`, the merged result
is bit-identical to the sequential loop for any worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.coeffs import pad_table_3d
from repro.obs import OBS
from repro.parallel.crowd import CrowdSpec, build_walker_range, solve_spec_table
from repro.parallel.pool import ProcessCrowdPool
from repro.parallel.sharding import shard_slices
from repro.parallel.shared_table import SharedTable
from repro.qmc.batched_step import CrowdState, batched_sweep
from repro.qmc.estimators import LocalEnergy
from repro.qmc.vmc import run_vmc

__all__ = ["VmcPopulationResult", "run_vmc_population"]

# Must match run_vmc's default recompute cadence: the two step modes are
# compared bit-for-bit, and recompute timing is part of the trajectory.
_RECOMPUTE_EVERY = 20


@dataclass
class VmcPopulationResult:
    """Merged population VMC outcome, in walker order.

    ``energies`` is ``(n_walkers, n_steps)`` — one post-warm-up local
    energy trace per walker.
    """

    energies: np.ndarray
    acceptance: float
    seconds: float
    n_workers: int
    energy_mean: float = field(init=False)
    energy_error: float = field(init=False)

    def __post_init__(self) -> None:
        flat = np.asarray(self.energies).ravel()
        self.energy_mean = float(np.mean(flat)) if flat.size else 0.0
        self.energy_error = (
            float(np.std(flat) / np.sqrt(flat.size)) if flat.size > 1 else 0.0
        )


def _run_walker_range(
    wfs, rngs, n_steps, n_warmup, tau, ion_charge, step_mode="batched"
) -> dict:
    """Run VMC over already-built walkers; shared by the in-process path
    and the worker shards.

    ``step_mode="batched"`` advances the whole range in lock step through
    the batched population kernels — each electron move across every
    walker of the shard is one orbital call.  ``"walker"`` runs the
    sequential :func:`repro.qmc.vmc.run_vmc` per walker.  Trajectories
    and energy traces are bit-identical between the modes (walkers only
    consume their private streams; measurement draws none).
    """
    if step_mode == "batched" and wfs:
        state = CrowdState(wfs, rngs)
        estimators = [LocalEnergy(wf, ion_charge) for wf in wfs]
        traces: list[list[float]] = [[] for _ in wfs]
        accepted = attempted = 0
        for step in range(n_warmup + n_steps):
            acc, att = batched_sweep(state, tau)
            accepted += acc
            attempted += att
            if (step + 1) % _RECOMPUTE_EVERY == 0:
                for wf in wfs:
                    wf.recompute()
            if step >= n_warmup:
                for trace, est in zip(traces, estimators):
                    trace.append(est.total())
        return {
            "energies": np.asarray(traces, dtype=np.float64),
            "accepted": accepted,
            "attempted": attempted,
        }
    energies, accepted, attempted = [], 0, 0
    for wf, rng in zip(wfs, rngs):
        result = run_vmc(
            wf,
            rng,
            n_steps=n_steps,
            n_warmup=n_warmup,
            tau=tau,
            ion_charge=ion_charge,
            recompute_every=_RECOMPUTE_EVERY,
            step_mode="walker",
        )
        energies.append(result.energies)
        sweeps = n_steps + n_warmup
        n_el = len(wf.electrons)
        attempted += sweeps * n_el
        accepted += round(result.acceptance * sweeps * n_el)
    return {
        "energies": np.asarray(energies, dtype=np.float64)
        if energies
        else np.empty((0, n_steps)),
        "accepted": accepted,
        "attempted": attempted,
    }


class _VmcShard:
    """Worker-process state: attached table + this shard's walkers."""

    def __init__(self, worker_id: int, spec: CrowdSpec, table_spec: dict):
        self._table = SharedTable.attach(table_spec)
        shard = shard_slices(spec.n_walkers, table_spec["n_workers"])[worker_id]
        self.wfs, self.rngs = build_walker_range(
            spec, self._table.array, shard.start, shard.stop
        )

    def run(self, n_steps, n_warmup, tau, ion_charge, step_mode="batched") -> dict:
        t0 = time.perf_counter()
        out = _run_walker_range(
            self.wfs, self.rngs, n_steps, n_warmup, tau, ion_charge, step_mode
        )
        if OBS.enabled and self.wfs:
            OBS.count("vmc_shard_walkers_total", len(self.wfs))
            OBS.observe("vmc_shard_seconds", time.perf_counter() - t0)
        return out

    def close(self) -> None:
        self.wfs = self.rngs = None
        try:
            self._table.close()
        except BufferError:
            pass


def _init_vmc_shard(worker_id: int, spec: CrowdSpec, table_spec: dict):
    return _VmcShard(worker_id, spec, table_spec)


def run_vmc_population(
    spec: CrowdSpec,
    n_workers: int = 1,
    n_steps: int = 50,
    n_warmup: int = 10,
    tau: float = 0.3,
    ion_charge: float = 4.0,
    table: np.ndarray | None = None,
    processes: bool = True,
    start_method: str | None = None,
    step_mode: str | None = None,
    fleet=None,
    injector=None,
    split: str = "walkers",
    orbital_shards: int | None = None,
) -> VmcPopulationResult:
    """Run VMC over ``spec.n_walkers`` walkers, sharded over processes.

    ``processes=False`` (or ``n_workers == 0``) runs the same walker loop
    in the calling process — the bit-identity reference the tests compare
    1/2/4-worker runs against.  ``step_mode`` selects the batched
    lock-step shard kernels (default) or the sequential per-walker sweep;
    both are bit-identical for any worker count.

    ``split`` selects the sharded axis (see
    :func:`~repro.parallel.crowd.run_crowd_parallel`): ``"orbitals"``
    keeps the population in the parent and fans every orbital kernel
    call across the pool along the spline axis — bit-identical to both
    the sequential reference and the walker split.

    Passing a :class:`repro.fleet.FleetConfig` as ``fleet`` runs the
    shards under a :class:`~repro.fleet.supervisor.FleetSupervisor`: a
    worker that crashes or hangs is restarted and its (deterministic)
    shard re-run, so the merged energies still match the sequential
    reference bit for bit.  VMC shards are stateful, so supervision here
    means crash recovery — elastic resizing is a DMC-only feature;
    orbital shards are stateless replicas, supervised by restart +
    re-issue.  ``injector`` (process faults, fired at the run's single
    broadcast) requires ``fleet`` and the walker split.
    ``step_mode=None`` resolves through the spec's
    :class:`~repro.config.RunConfig`, then ``REPRO_STEP_MODE``.
    """
    from repro.config import effective_step_mode

    step_mode = effective_step_mode(step_mode, spec.config)
    if step_mode not in ("batched", "walker"):
        raise ValueError(
            f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
        )
    if injector is not None and fleet is None:
        raise ValueError(
            "injector requires fleet supervision (pass fleet=FleetConfig(...))"
        )
    if table is None:
        table = solve_spec_table(spec)
    if (split != "walkers" or orbital_shards is not None) and processes and n_workers:
        from repro.parallel.orbital import OrbitalEvaluator, resolve_split

        mode, shards = resolve_split(
            spec.n_walkers,
            n_workers,
            spec.n_orbitals,
            split=split,
            orbital_shards=orbital_shards,
            config=spec.run_config(),
        )
        if mode == "orbitals":
            if injector is not None:
                raise ValueError(
                    "fault injectors target walker shards; orbital replicas "
                    "take faults via OrbitalEvaluator.arm_fault instead"
                )
            spec = spec.resolved(table.dtype)
            t0 = time.perf_counter()
            wfs, rngs = build_walker_range(spec, table, 0, spec.n_walkers)
            spos = wfs[0].slater.spos
            fanned = OrbitalEvaluator(
                spos.grid,
                spos._padded_table
                if spos._padded_table is not None
                else spos.engine.P,
                config=spec.config,
                processes=n_workers,
                orbital_shards=shards,
                supervise=fleet is not None,
                fleet_config=fleet,
                start_method=start_method,
            )
            spos._batched = fanned
            try:
                shard = _run_walker_range(
                    wfs, rngs, n_steps, n_warmup, tau, ion_charge, step_mode
                )
            finally:
                fanned.close()
            return VmcPopulationResult(
                energies=shard["energies"],
                acceptance=shard["accepted"] / max(shard["attempted"], 1),
                seconds=time.perf_counter() - t0,
                n_workers=n_workers,
            )
    t0 = time.perf_counter()
    if not processes or n_workers == 0:
        wfs, rngs = build_walker_range(spec, table, 0, spec.n_walkers)
        shards = [
            _run_walker_range(
                wfs, rngs, n_steps, n_warmup, tau, ion_charge, step_mode
            )
        ]
        n_workers = 0
    else:
        # Pad in the parent so every worker attaches the ghost halo
        # zero-copy (build_walker_range detects the padded shape).
        shared = SharedTable.create(pad_table_3d(table))
        table_spec = dict(shared.spec, n_workers=n_workers)
        try:
            if fleet is not None:
                from repro.fleet import FleetSupervisor

                with FleetSupervisor(
                    n_workers,
                    _init_vmc_shard,
                    (spec, table_spec),
                    config=fleet,
                    stateful=True,
                    start_method=start_method,
                ) as supervisor:
                    supervisor.arm_injector(injector)
                    shards = supervisor.broadcast(
                        "run", n_steps, n_warmup, tau, ion_charge, step_mode
                    )
                    supervisor.merge_metrics()
            else:
                with ProcessCrowdPool(
                    n_workers,
                    _init_vmc_shard,
                    (spec, table_spec),
                    start_method=start_method,
                ) as pool:
                    shards = pool.broadcast(
                        "run", n_steps, n_warmup, tau, ion_charge, step_mode
                    )
                    pool.merge_metrics()
        finally:
            shared.close()
            shared.unlink()
    seconds = time.perf_counter() - t0
    energies = np.concatenate(
        [s["energies"] for s in shards if len(s["energies"])]
    )
    accepted = sum(s["accepted"] for s in shards)
    attempted = sum(s["attempted"] for s in shards)
    return VmcPopulationResult(
        energies=energies,
        acceptance=accepted / max(attempted, 1),
        seconds=seconds,
        n_workers=n_workers,
    )
