"""Deterministic walker sharding and per-walker random streams.

The bit-for-bit contract of :mod:`repro.parallel` rests on two rules:

* a walker's random stream is a function of its **global index only**
  (:func:`walker_seed_sequence`), never of which worker it lands on or
  how many workers exist;
* walkers are sharded **contiguously and in order**
  (:func:`shard_slices`), and results are gathered back in walker
  order.

Together they make ``run_*(n_workers=K)`` bit-identical for every ``K``
— the multiprocess twin of the paper's "independent walkers that share
only the read-only table".
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_slices", "walker_seed_sequence", "walker_rng"]


def shard_slices(n_items: int, n_shards: int) -> list[slice]:
    """Contiguous, in-order, near-equal slices of ``range(n_items)``.

    The first ``n_items % n_shards`` shards get one extra item.  Shards
    beyond ``n_items`` come back empty (a 4-worker pool given 2 walkers
    runs 2 idle workers rather than failing).
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    base, extra = divmod(n_items, n_shards)
    slices = []
    lo = 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        slices.append(slice(lo, hi))
        lo = hi
    return slices


def walker_seed_sequence(seed: int, walker: int, stream: int = 0) -> np.random.SeedSequence:
    """The seed sequence of global walker ``walker`` under master ``seed``.

    ``stream`` separates independent uses for the same walker (0 =
    configuration build, 1 = move stream, ...).  Depends only on
    ``(seed, walker, stream)`` — not on sharding — which is what makes
    process counts interchangeable.
    """
    if walker < 0:
        raise ValueError(f"walker index must be >= 0, got {walker}")
    return np.random.SeedSequence(entropy=seed, spawn_key=(walker, stream))


def walker_rng(seed: int, walker: int, stream: int = 0) -> np.random.Generator:
    """A fresh generator on :func:`walker_seed_sequence`'s stream."""
    return np.random.default_rng(walker_seed_sequence(seed, walker, stream))
