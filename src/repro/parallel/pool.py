"""ProcessCrowdPool — a persistent pool of crowd-worker processes.

Thread pools parallelize nothing here: outside the NumPy contractions,
the walker loops are pure Python and GIL-bound (measured in
``benchmarks/bench_pr3.py``: thread speedup ~1x).  This pool is the
process-level replacement — the design QMCPACK's crowd drivers and
QMCkl-style kernel libraries converged on:

* each worker process builds its **shard state** once (attaching the
  :class:`~repro.parallel.shared_table.SharedTable` zero-copy, building
  its walkers from deterministic per-walker seeds) and keeps it alive
  across calls — no per-step pickling of wavefunctions;
* the parent scatters small command messages over pipes and gathers
  results in worker order, so trajectories are bit-identical for any
  worker count (see :mod:`repro.parallel.sharding`);
* worker exceptions carry their traceback back to the parent and raise
  :class:`WorkerError` there — never a silent hang;
* per-worker :class:`~repro.obs.metrics.MetricsRegistry` state can be
  pulled and merged into the parent's registry
  (:meth:`ProcessCrowdPool.merge_metrics`).

A crashed worker (SIGKILL, OOM-kill, segfault) surfaces as a
:class:`WorkerError` naming the worker — never a raw ``BrokenPipeError``
or a hang in ``conn.recv()`` — and the pool can replace exactly that
worker (:meth:`ProcessCrowdPool.restart_worker`) or grow/shrink
(:meth:`add_worker` / :meth:`remove_worker`).  The recovery *policy*
(replay, rebalance, elastic scaling) lives one layer up in
:mod:`repro.fleet`; the pool only provides the mechanisms.

Start method: ``fork`` where the platform offers it (cheap, inherits
the built problem), else ``spawn`` — overridable per pool or globally
via the ``REPRO_START_METHOD`` environment variable.  In every case the
worker's *state* is built by the initializer in the worker, so the pool
works identically under either.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
import traceback

__all__ = ["WorkerError", "WorkerTimeout", "ProcessCrowdPool"]

_CHAOS_KINDS = ("sigkill", "hang")


class WorkerError(RuntimeError):
    """A worker process failed.

    Attributes
    ----------
    worker_id:
        Index of the failed worker, or ``None`` when unknown.
    method:
        The state method being dispatched when the failure surfaced
        (``None`` for failures outside a call, e.g. the initializer).
    remote_traceback:
        The worker's formatted traceback, when the worker lived long
        enough to send one; ``None`` for a process death.
    exitcode:
        The worker process exit code when it died (``-9`` for SIGKILL),
        else ``None``.
    """

    def __init__(
        self,
        message: str,
        *,
        worker_id: int | None = None,
        method: str | None = None,
        remote_traceback: str | None = None,
        exitcode: int | None = None,
    ):
        super().__init__(message)
        self.worker_id = worker_id
        self.method = method
        self.remote_traceback = remote_traceback
        self.exitcode = exitcode


class WorkerTimeout(WorkerError):
    """A worker missed its reply deadline (hung, not provably dead)."""


def _worker_main(conn, worker_id: int, initializer, init_args: tuple) -> None:
    """The worker loop: build state once, then serve commands until stop."""
    from repro.obs import OBS

    # Under fork the child inherits the parent's registry contents;
    # recording must start from zero or merging would double-count.
    OBS.reset()
    try:
        state = initializer(worker_id, *init_args)
        conn.send(("ready", None))
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    # An armed chaos fault (see arm_chaos) fires on the *next* "call",
    # so the parent can pin the failure to a chosen generation.
    pending_fault: tuple[str, float] | None = None
    try:
        while True:
            # Orphan guard: a SIGKILL'd parent can never send "stop", and
            # under fork each worker inherits a copy of its *own* parent
            # pipe end, so recv would never raise EOFError either.  Poll
            # with a timeout and exit once the parent is gone — this is
            # also what lets the resource tracker reclaim the shared
            # table segment after a parent crash.
            while not conn.poll(1.0):
                parent = mp.parent_process()
                if parent is not None and not parent.is_alive():
                    return
            try:
                msg = conn.recv()
            except EOFError:
                break
            cmd = msg[0]
            if cmd == "stop":
                conn.send(("ok", None))
                break
            if cmd == "ping":
                conn.send(("ok", "pong"))
                continue
            if cmd == "metrics":
                conn.send(("ok", OBS.registry.state()))
                continue
            if cmd == "chaos":
                pending_fault = (msg[1], float(msg[2]))
                conn.send(("ok", None))
                continue
            # ("call", method, args, kwargs)
            _, method, args, kwargs = msg
            if pending_fault is not None:
                kind, seconds = pending_fault
                pending_fault = None
                if kind == "sigkill":
                    # Die without replying: the parent sees EOF, exactly
                    # like a real OOM-kill or segfault.
                    os.kill(os.getpid(), signal.SIGKILL)
                elif kind == "hang":
                    # Stall past any reasonable deadline, then serve the
                    # call normally (a stuck-but-alive worker).
                    time.sleep(seconds)
            try:
                result = getattr(state, method)(*args, **kwargs)
                conn.send(("ok", result))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
    finally:
        closer = getattr(state, "close", None)
        if callable(closer):
            try:
                closer()
            except Exception:
                pass
        conn.close()


def _default_start_method() -> str:
    override = os.environ.get("REPRO_START_METHOD")
    if override:
        if override not in mp.get_all_start_methods():
            raise ValueError(
                f"REPRO_START_METHOD={override!r} is not available on this "
                f"platform (have {mp.get_all_start_methods()})"
            )
        return override
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class ProcessCrowdPool:
    """Persistent worker processes, each holding one walker shard.

    Parameters
    ----------
    n_workers:
        Worker process count (>= 1).
    initializer:
        ``initializer(worker_id, *init_args) -> state`` run once inside
        each worker; the returned object serves every later
        :meth:`call`/:meth:`broadcast` by method name.  Must be a
        module-level callable (pickled under ``spawn``).  If the state
        has a ``close()`` method it is invoked at worker shutdown —
        the hook for detaching shared-memory segments.
    init_args:
        Extra initializer arguments (picklable; pass the
        ``SharedTable.spec`` here, never the array).
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default prefers
        ``fork`` where available, or honors ``REPRO_START_METHOD``.

    Notes
    -----
    The pool is a context manager; :meth:`close` is idempotent, joins
    every worker against a deadline (a dead or hung child can never
    wedge shutdown), and so a ``with`` block leaves no processes (and,
    once the owning :class:`SharedTable` unlinks, no ``/dev/shm``
    segments) behind.
    """

    def __init__(
        self,
        n_workers: int,
        initializer,
        init_args: tuple = (),
        start_method: str | None = None,
    ):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self._ctx = mp.get_context(start_method or _default_start_method())
        self._initializer = initializer
        self._init_args = tuple(init_args)
        self.n_workers = int(n_workers)
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for w in range(n_workers):
                conn, proc = self._spawn(w)
                self._conns.append(conn)
                self._procs.append(proc)
            for w in range(n_workers):
                self._recv(w)  # "ready" (or the initializer's traceback)
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return self.n_workers

    @property
    def pids(self) -> list[int]:
        """Live worker process ids, in worker order."""
        return [proc.pid for proc in self._procs]

    def alive(self, worker: int) -> bool:
        """Whether worker ``worker``'s process is currently running."""
        return self._procs[worker].is_alive()

    # -- low-level spawn / message plumbing ----------------------------------

    def _spawn(self, worker_id: int):
        """Start one worker process; returns its (parent_conn, proc) pair.

        The child end of the pipe is closed in the parent immediately, so
        a worker's death always surfaces as EOF on the parent end — even
        under ``fork``, where a *later*-forked sibling still holds copies
        of earlier parent ends (benign: those are parent ends, not this
        worker's child end).
        """
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, self._initializer, self._init_args),
            daemon=True,
            name=f"crowd-worker-{worker_id}",
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    def _record_failure(self, worker: int) -> None:
        from repro.obs import OBS

        OBS.count("worker_failures_total", worker=str(worker))

    def _exitcode(self, worker: int) -> int | None:
        """The worker's exit code, joining briefly so a just-died child
        is reaped (EOF can beat the zombie becoming waitable)."""
        proc = self._procs[worker]
        proc.join(timeout=0.5)
        return proc.exitcode

    def _dead_worker_error(
        self, worker: int, method: str | None
    ) -> WorkerError:
        exitcode = self._exitcode(worker)
        doing = f" running {method!r}" if method else ""
        return WorkerError(
            f"worker {worker} died without replying{doing} "
            f"(exit code {exitcode})",
            worker_id=worker,
            method=method,
            exitcode=exitcode,
        )

    def _recv(self, worker: int, timeout: float | None = None, method: str | None = None):
        conn = self._conns[worker]
        if timeout is not None and not conn.poll(timeout):
            if not self._procs[worker].is_alive():
                # Died between poll slices: report the death, not a hang.
                self._record_failure(worker)
                raise self._dead_worker_error(worker, method)
            self._record_failure(worker)
            raise WorkerTimeout(
                f"worker {worker} missed its {timeout:.3g}s deadline"
                + (f" on {method!r}" if method else ""),
                worker_id=worker,
                method=method,
            )
        try:
            status, payload = conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            self._record_failure(worker)
            raise self._dead_worker_error(worker, method) from None
        if status == "err":
            self._record_failure(worker)
            raise WorkerError(
                f"worker {worker} failed:\n{payload}",
                worker_id=worker,
                method=method,
                remote_traceback=payload,
            )
        return payload

    def _send(self, worker: int, message: tuple, method: str | None = None) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, ConnectionResetError, OSError):
            self._record_failure(worker)
            exitcode = self._exitcode(worker)
            doing = f" while sending {method!r}" if method else ""
            raise WorkerError(
                f"worker {worker} is dead{doing} "
                f"(pipe closed; exit code {exitcode})",
                worker_id=worker,
                method=method,
                exitcode=exitcode,
            ) from None

    # -- scatter / gather ----------------------------------------------------

    def start_call(
        self, worker: int, method: str, args: tuple = (), kwargs: dict | None = None
    ) -> None:
        """Dispatch ``state.method`` on one worker without waiting.

        Pair with :meth:`finish_call`; the supervisor uses this split to
        put per-worker deadlines on the gather side.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._send(
            worker, ("call", method, tuple(args), dict(kwargs or {})), method
        )

    def finish_call(
        self, worker: int, timeout: float | None = None, method: str | None = None
    ):
        """Collect one worker's pending reply (deadline optional)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        return self._recv(worker, timeout=timeout, method=method)

    def call(self, method: str, per_worker_args: list[tuple], **kwargs) -> list:
        """Scatter ``state.method(*args_w, **kwargs)`` and gather in order.

        ``per_worker_args`` holds one positional-args tuple per worker;
        all workers run concurrently, and the result list preserves
        worker (hence walker) order.  A worker that crashed (or crashes
        mid-call) raises :class:`WorkerError` naming the worker id —
        never a raw pipe error or a hang.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if len(per_worker_args) != self.n_workers:
            raise ValueError(
                f"need {self.n_workers} argument tuples, got {len(per_worker_args)}"
            )
        for w, args in enumerate(per_worker_args):
            self._send(w, ("call", method, tuple(args), kwargs), method)
        return [self._recv(w, method=method) for w in range(self.n_workers)]

    def broadcast(self, method: str, *args, **kwargs) -> list:
        """Run ``state.method(*args, **kwargs)`` on every worker."""
        return self.call(method, [args] * self.n_workers, **kwargs)

    # -- health & fleet mechanisms -------------------------------------------

    def ping(self, worker: int, timeout: float | None = 5.0) -> bool:
        """Round-trip a heartbeat through one worker.

        Returns ``True`` on a pong; raises :class:`WorkerTimeout` on a
        missed deadline or :class:`WorkerError` on a dead worker.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._send(worker, ("ping",), "ping")
        return self._recv(worker, timeout=timeout, method="ping") == "pong"

    def restart_worker(self, worker: int, timeout: float = 10.0) -> None:
        """Replace one worker with a fresh process (same initializer).

        The old process is killed if still alive (it may be hung); the
        replacement rebuilds its state from ``initializer(worker, ...)``
        — deterministic, so a restarted shard is indistinguishable from
        the original.  ``timeout`` also bounds the replacement's own
        "ready" handshake: an initializer that hangs gets the process
        killed and :class:`WorkerTimeout` raised, so recovery itself can
        never wedge on a sick replacement.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if not 0 <= worker < self.n_workers:
            raise ValueError(f"no worker {worker} in a pool of {self.n_workers}")
        old_proc = self._procs[worker]
        try:
            self._conns[worker].close()
        except OSError:
            pass
        if old_proc.is_alive():
            old_proc.kill()
        old_proc.join(timeout)
        conn, proc = self._spawn(worker)
        self._conns[worker] = conn
        self._procs[worker] = proc
        try:
            self._recv(worker, timeout=timeout, method="initializer")  # "ready"
        except WorkerTimeout:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=1.0)
            raise

    def add_worker(self, timeout: float = 10.0) -> int:
        """Grow the pool by one worker; returns the new worker id.

        ``timeout`` bounds the new worker's initializer handshake; a
        hung initializer is killed and raises :class:`WorkerTimeout`,
        leaving the pool at its previous size.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        w = self.n_workers
        conn, proc = self._spawn(w)
        self._conns.append(conn)
        self._procs.append(proc)
        self.n_workers += 1
        try:
            self._recv(w, timeout=timeout, method="initializer")  # "ready"
        except BaseException:
            self._conns.pop()
            self._procs.pop()
            self.n_workers -= 1
            if proc.is_alive():
                proc.kill()
            proc.join(timeout)
            raise
        return w

    def remove_worker(self, timeout: float = 5.0) -> int:
        """Shrink the pool by one worker (the highest id); returns its id.

        The worker is asked to stop politely (running its state's
        ``close()``); if it does not comply within ``timeout`` it is
        killed — shrink never wedges on a sick worker.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self.n_workers <= 1:
            raise ValueError("cannot shrink the pool below one worker")
        w = self.n_workers - 1
        conn = self._conns.pop()
        proc = self._procs.pop()
        self.n_workers -= 1
        try:
            conn.send(("stop",))
            if conn.poll(timeout):
                conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        try:
            conn.close()
        except OSError:
            pass
        proc.join(timeout)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout)
        return w

    def arm_chaos(
        self, worker: int, kind: str, seconds: float = 0.0, timeout: float = 5.0
    ) -> None:
        """Arm a process-level fault on one worker (testing hook).

        ``kind="sigkill"`` makes the worker SIGKILL itself at its next
        dispatched call (the parent sees EOF, like a real crash);
        ``kind="hang"`` makes it sleep ``seconds`` before serving the
        call (a stuck worker a deadline must catch).
        """
        if kind not in _CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {kind!r} (have {_CHAOS_KINDS})")
        if self._closed:
            raise RuntimeError("pool is closed")
        self._send(worker, ("chaos", kind, float(seconds)), "chaos")
        self._recv(worker, timeout=timeout, method="chaos")

    # -- observability -------------------------------------------------------

    def metrics_state(self, worker: int, timeout: float | None = None) -> list[dict]:
        """Pull one worker's metrics-registry state."""
        if self._closed:
            raise RuntimeError("pool is closed")
        self._send(worker, ("metrics",), "metrics")
        return self._recv(worker, timeout=timeout, method="metrics")

    def metrics_states(self) -> list[list[dict]]:
        """Pull every worker's metrics-registry state (one list each)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        for w in range(self.n_workers):
            self._send(w, ("metrics",), "metrics")
        return [self._recv(w, method="metrics") for w in range(self.n_workers)]

    def merge_metrics(self) -> None:
        """Fold every worker's registry into the parent's ``OBS`` registry.

        Counters add, gauges keep the last worker's value, histograms
        combine — see :meth:`repro.obs.metrics.MetricsRegistry.merge_state`.
        A ``crowd_pool_workers`` gauge records the pool size.
        """
        from repro.obs import OBS

        if not OBS.enabled:
            return
        for state in self.metrics_states():
            OBS.registry.merge_state(state)
        OBS.gauge("crowd_pool_workers", self.n_workers)

    # -- lifetime ------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop and join every worker (idempotent, never raises on exit).

        All waits run against one shared deadline: a worker that died
        mid-run (closed pipe) or hangs in a call is skipped/killed
        instead of wedging shutdown in a blocking ``recv``.
        """
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            budget = max(0.0, deadline - time.monotonic())
            try:
                if conn.poll(budget):
                    conn.recv()
            except (EOFError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)

    def __enter__(self) -> "ProcessCrowdPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
