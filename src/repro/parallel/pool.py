"""ProcessCrowdPool — a persistent pool of crowd-worker processes.

Thread pools parallelize nothing here: outside the NumPy contractions,
the walker loops are pure Python and GIL-bound (measured in
``benchmarks/bench_pr3.py``: thread speedup ~1x).  This pool is the
process-level replacement — the design QMCPACK's crowd drivers and
QMCkl-style kernel libraries converged on:

* each worker process builds its **shard state** once (attaching the
  :class:`~repro.parallel.shared_table.SharedTable` zero-copy, building
  its walkers from deterministic per-walker seeds) and keeps it alive
  across calls — no per-step pickling of wavefunctions;
* the parent scatters small command messages over pipes and gathers
  results in worker order, so trajectories are bit-identical for any
  worker count (see :mod:`repro.parallel.sharding`);
* worker exceptions carry their traceback back to the parent and raise
  :class:`WorkerError` there — never a silent hang;
* per-worker :class:`~repro.obs.metrics.MetricsRegistry` state can be
  pulled and merged into the parent's registry
  (:meth:`ProcessCrowdPool.merge_metrics`).

Start method: ``fork`` where the platform offers it (cheap, inherits
the built problem), else ``spawn`` — in both cases the worker's *state*
is built by the initializer in the worker, so the pool works identically
under either.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback

__all__ = ["WorkerError", "ProcessCrowdPool"]


class WorkerError(RuntimeError):
    """A worker process failed; carries the worker's formatted traceback."""


def _worker_main(conn, worker_id: int, initializer, init_args: tuple) -> None:
    """The worker loop: build state once, then serve commands until stop."""
    from repro.obs import OBS

    # Under fork the child inherits the parent's registry contents;
    # recording must start from zero or merging would double-count.
    OBS.reset()
    try:
        state = initializer(worker_id, *init_args)
        conn.send(("ready", None))
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    try:
        while True:
            # Orphan guard: a SIGKILL'd parent can never send "stop", and
            # under fork each worker inherits a copy of its *own* parent
            # pipe end, so recv would never raise EOFError either.  Poll
            # with a timeout and exit once the parent is gone — this is
            # also what lets the resource tracker reclaim the shared
            # table segment after a parent crash.
            while not conn.poll(1.0):
                parent = mp.parent_process()
                if parent is not None and not parent.is_alive():
                    return
            try:
                msg = conn.recv()
            except EOFError:
                break
            cmd = msg[0]
            if cmd == "stop":
                conn.send(("ok", None))
                break
            if cmd == "metrics":
                conn.send(("ok", OBS.registry.state()))
                continue
            # ("call", method, args, kwargs)
            _, method, args, kwargs = msg
            try:
                result = getattr(state, method)(*args, **kwargs)
                conn.send(("ok", result))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
    finally:
        closer = getattr(state, "close", None)
        if callable(closer):
            try:
                closer()
            except Exception:
                pass
        conn.close()


def _default_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class ProcessCrowdPool:
    """Persistent worker processes, each holding one walker shard.

    Parameters
    ----------
    n_workers:
        Worker process count (>= 1).
    initializer:
        ``initializer(worker_id, *init_args) -> state`` run once inside
        each worker; the returned object serves every later
        :meth:`call`/:meth:`broadcast` by method name.  Must be a
        module-level callable (pickled under ``spawn``).  If the state
        has a ``close()`` method it is invoked at worker shutdown —
        the hook for detaching shared-memory segments.
    init_args:
        Extra initializer arguments (picklable; pass the
        ``SharedTable.spec`` here, never the array).
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default prefers
        ``fork`` where available.

    Notes
    -----
    The pool is a context manager; :meth:`close` is idempotent and joins
    every worker, so a ``with`` block leaves no processes (and, once the
    owning :class:`SharedTable` unlinks, no ``/dev/shm`` segments)
    behind.
    """

    def __init__(
        self,
        n_workers: int,
        initializer,
        init_args: tuple = (),
        start_method: str | None = None,
    ):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        ctx = mp.get_context(start_method or _default_start_method())
        self.n_workers = int(n_workers)
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for w in range(n_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, w, initializer, init_args),
                    daemon=True,
                    name=f"crowd-worker-{w}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for w in range(n_workers):
                self._recv(w)  # "ready" (or the initializer's traceback)
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return self.n_workers

    def _recv(self, worker: int):
        try:
            status, payload = self._conns[worker].recv()
        except EOFError:
            raise WorkerError(
                f"worker {worker} died without replying (exit code "
                f"{self._procs[worker].exitcode})"
            ) from None
        if status == "err":
            raise WorkerError(f"worker {worker} failed:\n{payload}")
        return payload

    def call(self, method: str, per_worker_args: list[tuple], **kwargs) -> list:
        """Scatter ``state.method(*args_w, **kwargs)`` and gather in order.

        ``per_worker_args`` holds one positional-args tuple per worker;
        all workers run concurrently, and the result list preserves
        worker (hence walker) order.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if len(per_worker_args) != self.n_workers:
            raise ValueError(
                f"need {self.n_workers} argument tuples, got {len(per_worker_args)}"
            )
        for conn, args in zip(self._conns, per_worker_args):
            conn.send(("call", method, tuple(args), kwargs))
        return [self._recv(w) for w in range(self.n_workers)]

    def broadcast(self, method: str, *args, **kwargs) -> list:
        """Run ``state.method(*args, **kwargs)`` on every worker."""
        return self.call(method, [args] * self.n_workers, **kwargs)

    # -- observability -------------------------------------------------------

    def metrics_states(self) -> list[list[dict]]:
        """Pull every worker's metrics-registry state (one list each)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        for conn in self._conns:
            conn.send(("metrics",))
        return [self._recv(w) for w in range(self.n_workers)]

    def merge_metrics(self) -> None:
        """Fold every worker's registry into the parent's ``OBS`` registry.

        Counters add, gauges keep the last worker's value, histograms
        combine — see :meth:`repro.obs.metrics.MetricsRegistry.merge_state`.
        A ``crowd_pool_workers`` gauge records the pool size.
        """
        from repro.obs import OBS

        if not OBS.enabled:
            return
        for state in self.metrics_states():
            OBS.registry.merge_state(state)
        OBS.gauge("crowd_pool_workers", self.n_workers)

    # -- lifetime ------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop and join every worker (idempotent, never raises on exit)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)

    def __enter__(self) -> "ProcessCrowdPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
