"""Orbital-axis sharding with zero-copy shared output buffers (Opt C).

The paper's Opt C (Sec. V-C, Fig. 9) is the answer to a starved node:
when there are fewer walkers than cores, split the spline dimension N
into contiguous blocks and let several workers cooperate on *one*
walker.  :mod:`repro.core.nested` reproduces that thread-side on the
AoSoA layout; this module brings it to the production
:class:`~repro.core.batched.BsplineBatched` path at **process** scope,
composed with the existing walker sharding into a 2D grid:

* **rows** — position (walker) ranges, the classic walker shard;
* **columns** — orbital blocks from
  :func:`repro.core.partition.plan_orbital_blocks`, each evaluated by a
  block engine built with ``spline_range=(lo, hi)`` against the same
  zero-copy :class:`~repro.parallel.shared_table.SharedTable` every
  worker already attaches.

Results never ride a pipe.  A :class:`SharedOutputRing` preallocates
positions + V/VGL/VGH output buffers in one POSIX shared-memory
segment; the parent writes positions into a slot, each worker evaluates
its (row range x orbital block) rectangle **directly into views of the
slot** (:meth:`repro.core.batched.BatchedOutput.from_views`), and the
parent reads the assembled full-width result back out.  Only tiny
control tuples (method name, slot, row/column bounds) cross the pipes —
for both the new orbital path and a walker-only topology (``K=1``),
which is how ``benchmarks/bench_pr10.py`` measures the pipe-vs-shm
gather delta separately from the 2D-sharding win.

**Bitwise contract.**  Per-position results are independent of batch
composition (the PR5 contract), and per-column einsum results are
independent of how the spline axis is blocked — *except* for width-1
blocks, which NumPy's einsum dispatches to a different inner loop
(ulp-level differences).  :func:`~repro.core.partition.plan_orbital_blocks`
therefore never emits a width-1 block, and the concatenated block
outputs ``assert_array_equal`` the single-engine result at any shard
count, start method, and dtype (the tested gate).

**Fault model.**  All control flow is parent-dispatched: every block
evaluation is an independent supervised call, so a SIGKILL'd worker is
restarted by the :class:`~repro.fleet.supervisor.FleetSupervisor`
(orbital shards are **stateless replicas** — the initializer rebuilds
table + ring attachments and block engines deterministically, no
journal, no walker homes to migrate) and the re-issued call rewrites
exactly its rectangle of the slot.  Recovery is bit-identical.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory

import numpy as np

from repro.core.batched import _KERNEL_STREAMS, BatchedOutput, BsplineBatched
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.core.partition import partition, plan_orbital_blocks
from repro.obs import OBS, kernel_bytes_moved
from repro.parallel.pool import ProcessCrowdPool
from repro.parallel.shared_table import SharedTable

__all__ = [
    "SharedOutputRing",
    "OrbitalWorker",
    "OrbitalEvaluator",
    "choose_split",
    "resolve_split",
    "plan_orbital_blocks",
]

#: Stream shapes per position: (trailing axes between ns and N).
_STREAM_AXES = {"v": (), "g": (3,), "l": (), "h": (6,)}

_SPLITS = ("walkers", "orbitals", "auto")


def _align(offset: int, to: int = 16) -> int:
    return (offset + to - 1) // to * to


class SharedOutputRing:
    """Preallocated position + V/VGL/VGH buffers in POSIX shared memory.

    One segment holds ``n_slots`` identical slots; each slot carries a
    float64 ``(max_positions, 3)`` position block plus full-width
    ``v``/``g``/``l``/``h`` output streams in the table dtype.  The
    parent fills a slot's positions, workers write their (row x orbital
    block) rectangles straight into the slot's stream views, and the
    parent reads the assembled result — result arrays never travel
    through a pipe in either direction.

    Lifetime mirrors :class:`~repro.parallel.shared_table.SharedTable`
    (the tested PR3 rules): the **owner** (:meth:`create`) must
    :meth:`unlink` — most simply via the context-manager form —
    **attachers** (:meth:`attach`) only ever :meth:`close`, and workers
    detach before the owner unlinks.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_slots: int,
        max_positions: int,
        n_splines: int,
        dtype: np.dtype,
        owner: bool,
    ):
        self._shm = shm
        self.n_slots = int(n_slots)
        self.max_positions = int(max_positions)
        self.n_splines = int(n_splines)
        self.dtype = np.dtype(dtype)
        self.owner = bool(owner)
        self._closed = False
        self._layout, self.slot_bytes = self._plan_layout(
            self.max_positions, self.n_splines, self.dtype
        )
        # One view per (slot, field), built eagerly so slot access in the
        # hot fan-out path is a dict lookup, not an ndarray construction.
        self._views: list[dict[str, np.ndarray]] = []
        for slot in range(self.n_slots):
            base = slot * self.slot_bytes
            views = {}
            for name, (offset, shape, dt) in self._layout.items():
                views[name] = np.ndarray(
                    shape, dtype=dt, buffer=shm.buf, offset=base + offset
                )
            self._views.append(views)

    @staticmethod
    def _plan_layout(max_positions: int, n_splines: int, dtype: np.dtype):
        """Per-slot field offsets; every field 16-byte aligned."""
        layout: dict[str, tuple[int, tuple[int, ...], np.dtype]] = {}
        offset = 0
        pos_shape = (max_positions, 3)
        f64 = np.dtype(np.float64)
        layout["positions"] = (offset, pos_shape, f64)
        offset = _align(offset + int(np.prod(pos_shape)) * f64.itemsize)
        for name, mid in _STREAM_AXES.items():
            shape = (max_positions, *mid, n_splines)
            layout[name] = (offset, shape, dtype)
            offset = _align(offset + int(np.prod(shape)) * dtype.itemsize)
        return layout, offset

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        n_slots: int,
        max_positions: int,
        n_splines: int,
        dtype,
    ) -> "SharedOutputRing":
        """Allocate a fresh ring; returns the owner handle.

        The segment starts zeroed (the kernel hands out zero pages);
        validity is tracked per call by the evaluator, exactly like a
        fresh :class:`~repro.core.batched.BatchedOutput`.
        """
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        if max_positions <= 0:
            raise ValueError(
                f"max_positions must be positive, got {max_positions}"
            )
        if n_splines <= 0:
            raise ValueError(f"n_splines must be positive, got {n_splines}")
        dtype = np.dtype(dtype)
        _, slot_bytes = cls._plan_layout(
            int(max_positions), int(n_splines), dtype
        )
        shm = shared_memory.SharedMemory(
            create=True, size=int(n_slots) * slot_bytes
        )
        return cls(shm, n_slots, max_positions, n_splines, dtype, owner=True)

    @classmethod
    def attach(cls, spec: dict) -> "SharedOutputRing":
        """Attach an existing ring from an owner's :attr:`spec`.

        The segment's actual size is validated against the spec before
        any view is mapped — a stale or mismatched spec raises a
        :class:`ValueError` naming the segment and both sizes, never a
        cryptic out-of-bounds view deep in a worker.
        """
        shm = shared_memory.SharedMemory(name=spec["name"])
        n_slots = int(spec["n_slots"])
        max_positions = int(spec["max_positions"])
        n_splines = int(spec["n_splines"])
        dtype = np.dtype(spec["dtype"])
        _, slot_bytes = cls._plan_layout(max_positions, n_splines, dtype)
        expected = n_slots * slot_bytes
        if shm.size < expected:
            shm.close()
            raise ValueError(
                f"shared ring {spec['name']!r} holds {shm.size} bytes but "
                f"the spec (n_slots={n_slots}, max_positions={max_positions}, "
                f"n_splines={n_splines}, dtype={dtype}) needs {expected} "
                f"bytes — stale or mismatched ring spec"
            )
        return cls(shm, n_slots, max_positions, n_splines, dtype, owner=False)

    @property
    def spec(self) -> dict:
        """Picklable descriptor workers use to :meth:`attach`."""
        return {
            "name": self._shm.name,
            "n_slots": self.n_slots,
            "max_positions": self.max_positions,
            "n_splines": self.n_splines,
            "dtype": self.dtype.str,
        }

    @property
    def name(self) -> str:
        """The segment name (how attachers find it)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total segment payload in bytes (all slots)."""
        return self.n_slots * self.slot_bytes

    # -- access --------------------------------------------------------------

    def _slot(self, slot: int) -> dict[str, np.ndarray]:
        if self._closed:
            raise ValueError("shared output ring is closed")
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"no slot {slot} in a ring of {self.n_slots}")
        return self._views[slot]

    def positions(self, slot: int, n_positions: int | None = None) -> np.ndarray:
        """The slot's ``(max_positions, 3)`` float64 block (writable view),
        trimmed to the first ``n_positions`` rows when given."""
        view = self._slot(slot)["positions"]
        return view if n_positions is None else view[:n_positions]

    def views(
        self,
        slot: int,
        n_positions: int | None = None,
        rows: tuple[int, int] | None = None,
        spline_range: tuple[int, int] | None = None,
    ) -> dict[str, np.ndarray]:
        """Stream views of one slot, optionally windowed.

        ``rows=(lo, hi)`` trims the position axis, ``spline_range=(lo,
        hi)`` the orbital axis — the worker's rectangle.  The returned
        views alias shared memory; writing them is the zero-copy result
        path.
        """
        slot_views = self._slot(slot)
        if rows is None:
            rows = (0, self.max_positions if n_positions is None else n_positions)
        rlo, rhi = rows
        clo, chi = spline_range or (0, self.n_splines)
        out = {}
        for name in _STREAM_AXES:
            out[name] = slot_views[name][rlo:rhi, ..., clo:chi]
        return out

    def output(
        self,
        slot: int,
        rows: tuple[int, int],
        spline_range: tuple[int, int] | None = None,
    ) -> BatchedOutput:
        """A :class:`~repro.core.batched.BatchedOutput` aliasing one
        rectangle of the slot — what a worker's kernels write into."""
        v = self.views(slot, rows=rows, spline_range=spline_range)
        return BatchedOutput.from_views(v["v"], v["g"], v["l"], v["h"])

    # -- lifetime ------------------------------------------------------------

    def close(self) -> None:
        """Detach this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._views = []
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after workers closed)."""
        if not self.owner:
            raise ValueError("only the creating process may unlink a segment")
        self._shm.unlink()

    def __enter__(self) -> "SharedOutputRing":
        return self

    def __exit__(self, *exc) -> None:
        was_owner = self.owner and not self._closed
        self.close()
        if was_owner:
            self.unlink()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return (
            f"SharedOutputRing({self._shm.name!r}, n_slots={self.n_slots}, "
            f"max_positions={self.max_positions}, n_splines={self.n_splines}, "
            f"dtype={self.dtype}, {role})"
        )


class OrbitalWorker:
    """Per-process state of one orbital-shard replica.

    Stateless in the fleet sense: everything here (table and ring
    attachments, block engines) is rebuilt deterministically by the
    initializer, so the supervisor restarts a replica and re-issues its
    call with no journal replay — and the rewritten rectangle is
    bit-identical.
    """

    def __init__(
        self,
        worker_id: int,
        table_spec: dict,
        grid_fields: dict,
        ring_spec: dict,
        config=None,
    ):
        self.worker_id = int(worker_id)
        self._table = SharedTable.attach(table_spec)
        self._ring = SharedOutputRing.attach(ring_spec)
        self._grid = Grid3D(**grid_fields)
        self._config = config
        self._engines: dict[tuple[int, int], BsplineBatched] = {}

    def _engine(self, col_lo: int, col_hi: int) -> BsplineBatched:
        engine = self._engines.get((col_lo, col_hi))
        if engine is None:
            engine = BsplineBatched(
                self._grid,
                self._table.array,
                config=self._config,
                spline_range=(col_lo, col_hi),
            )
            self._engines[(col_lo, col_hi)] = engine
        return engine

    def eval_block(
        self,
        kind_value: str,
        slot: int,
        row_lo: int,
        row_hi: int,
        col_lo: int,
        col_hi: int,
    ) -> dict:
        """Evaluate rows ``[row_lo, row_hi)`` of the slot's positions over
        orbital columns ``[col_lo, col_hi)``, writing **into the ring**.

        Returns only a tiny timing ack — the results are already in
        shared memory when this reply reaches the parent.
        """
        kind = Kind(kind_value)
        engine = self._engine(col_lo, col_hi)
        positions = self._ring.positions(slot)[row_lo:row_hi]
        out = self._ring.output(
            slot, rows=(row_lo, row_hi), spline_range=(col_lo, col_hi)
        )
        t0 = time.perf_counter()
        engine.evaluate_batch(kind, positions, out)
        dt = time.perf_counter() - t0
        self._observe(kind, row_hi - row_lo, col_hi - col_lo, dt)
        return {"seconds": dt}

    def eval_block_pipe(
        self,
        kind_value: str,
        slot: int,
        row_lo: int,
        row_hi: int,
        col_lo: int,
        col_hi: int,
    ) -> dict:
        """The pipe-gather baseline: same rectangle, same kernels, but the
        result arrays are pickled back through the pipe.

        Exists so ``bench_pr10`` can measure the shm-ring vs pipe-gather
        overhead on an identical topology; production callers use
        :meth:`eval_block`.
        """
        kind = Kind(kind_value)
        engine = self._engine(col_lo, col_hi)
        positions = np.array(self._ring.positions(slot)[row_lo:row_hi])
        n = len(positions)
        t0 = time.perf_counter()
        out = (
            engine.new_output(kind, n=n)
            if n
            else BatchedOutput(0, engine.n_splines, engine.dtype)
        )
        engine.evaluate_batch(kind, positions, out)
        dt = time.perf_counter() - t0
        self._observe(kind, n, col_hi - col_lo, dt)
        return {
            stream: np.array(getattr(out, stream)) for stream in kind.streams
        }

    def _observe(self, kind: Kind, n_rows: int, width: int, dt: float) -> None:
        if not OBS.enabled or n_rows <= 0:
            return
        # Block-sized accounting (the PR10 OBS fix): the gather touches
        # only the block's columns of the padded table and the outputs
        # are block-wide, so modeled bytes scale with the block width —
        # summed over a walker's blocks they equal the unsharded total.
        OBS.kernel_eval(
            "orbital",
            kind.value,
            n_rows,
            dt,
            n_rows
            * kernel_bytes_moved(
                kind.value, "soa", width, self._ring.dtype.itemsize
            ),
        )
        OBS.observe(
            "orbital_walker_latency_seconds",
            dt / n_rows,
            kernel=kind.value,
            block_splines=str(width),
        )

    def ring_check(self) -> dict:
        """Liveness/diagnostics: the worker's view of its attachments."""
        return {
            "worker": self.worker_id,
            "ring": self._ring.name,
            "table": self._table.name,
            "engines": sorted(self._engines),
        }

    def close(self) -> None:
        """Drop engines, then detach ring and table mappings."""
        self._engines.clear()
        try:
            self._ring.close()
        except BufferError:
            pass  # a lingering view dies with the worker
        try:
            self._table.close()
        except BufferError:
            pass


def _init_orbital_worker(
    worker_id: int,
    table_spec: dict,
    grid_fields: dict,
    ring_spec: dict,
    config=None,
) -> OrbitalWorker:
    """Module-level initializer (picklable under ``spawn``)."""
    return OrbitalWorker(worker_id, table_spec, grid_fields, ring_spec, config)


class OrbitalEvaluator:
    """A drop-in batched engine fanned across (walker x orbital) workers.

    Wraps a full-width :class:`~repro.core.batched.BsplineBatched` and
    serves the same ``evaluate``/``evaluate_batch``/``new_output``
    surface; every batch is split into an ``R x K`` grid — ``R`` row
    (position) groups x ``K`` orbital blocks — and dispatched to
    ``R * K`` pool workers that write their rectangles into a
    :class:`SharedOutputRing`.  Unknown attributes delegate to the local
    engine, so code written against ``BsplineBatched`` (``n_splines``,
    ``dtype``, ``plan``, ``P``...) keeps working.

    Parameters
    ----------
    grid, coefficients:
        As :class:`~repro.core.batched.BsplineBatched`; the padded table
        is placed in a :class:`SharedTable` once, workers attach.
    config:
        A **resolved** :class:`~repro.config.RunConfig` (concrete
        chunk/tile) or ``None``; shipped to workers so block engines
        inherit the parent's plan bit-identically.
    processes:
        Total worker count (defaults to the shard count).
    orbital_shards:
        Requested K; clamped by
        :func:`~repro.core.partition.plan_orbital_blocks` (width >= 2).
        ``K=1`` gives walker-only row sharding with shm outputs — the
        pipe-free upgrade of the classic scatter/gather.
    max_positions:
        Ring capacity per slot; larger batches stream through the slot
        in ``max_positions``-sized pieces (bitwise-free, per-position
        independence).
    supervise:
        Run the workers under a :class:`~repro.fleet.supervisor.
        FleetSupervisor` (stateless replicas: restart + re-issue, no
        journal) instead of a bare pool.
    fleet_config:
        :class:`~repro.fleet.supervisor.FleetConfig` for ``supervise``.
    start_method:
        Pool start method (fork/spawn), default per platform/env.
    """

    layout = "batched"

    def __init__(
        self,
        grid: Grid3D,
        coefficients: np.ndarray,
        config=None,
        processes: int | None = None,
        orbital_shards: int | None = None,
        max_positions: int = 1024,
        supervise: bool = False,
        fleet_config=None,
        start_method: str | None = None,
    ):
        self._engine = BsplineBatched(grid, coefficients, config=config)
        n = self._engine.n_splines
        if orbital_shards is None:
            orbital_shards = (
                config.orbital_shards
                if config is not None and config.orbital_shards
                else (processes or 1)
            )
        self.blocks = plan_orbital_blocks(n, int(orbital_shards))
        self.n_blocks = len(self.blocks)
        if processes is None:
            processes = self.n_blocks
        if processes < self.n_blocks:
            raise ValueError(
                f"processes={processes} cannot serve "
                f"{self.n_blocks} orbital blocks"
            )
        #: Row (position) groups: workers per block.
        self.n_row_groups = max(1, int(processes) // self.n_blocks)
        self.n_workers = self.n_row_groups * self.n_blocks
        self.max_positions = int(max_positions)
        if self.max_positions <= 0:
            raise ValueError(
                f"max_positions must be positive, got {max_positions}"
            )
        self._table = None
        self._ring = None
        try:
            self._table = SharedTable.create(self._engine._padded)
            self._ring = SharedOutputRing.create(
                1, self.max_positions, n, self._engine.dtype
            )
        except BaseException:
            self._release_shared()
            raise
        grid_fields = {
            "nx": grid.nx, "ny": grid.ny, "nz": grid.nz,
            "lengths": tuple(grid.lengths),
        }
        init_args = (self._table.spec, grid_fields, self._ring.spec, config)
        self._supervisor = None
        try:
            if supervise:
                from repro.fleet.supervisor import FleetSupervisor

                self._supervisor = FleetSupervisor(
                    self.n_workers,
                    _init_orbital_worker,
                    init_args,
                    config=fleet_config,
                    stateful=False,
                    start_method=start_method,
                )
                self._pool = self._supervisor.pool
            else:
                self._pool = ProcessCrowdPool(
                    self.n_workers,
                    _init_orbital_worker,
                    init_args,
                    start_method=start_method,
                )
        except BaseException:
            self._release_shared()
            raise
        self._closed = False
        self._pos1 = np.empty((1, 3), dtype=np.float64)
        if OBS.enabled:
            OBS.gauge("orbital_shards", self.n_blocks)
            OBS.gauge("orbital_row_groups", self.n_row_groups)
            OBS.gauge("orbital_ring_bytes", self._ring.nbytes)

    # -- engine-protocol delegation ------------------------------------------

    def __getattr__(self, name):
        # Only called for attributes not found on the instance: the
        # local full-width engine backs the rest of the protocol.
        # Private names never delegate (prevents recursion through a
        # partially-constructed instance).
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            engine = self.__dict__["_engine"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(engine, name)

    def new_output(self, kind=Kind.VGH, n: int | None = None) -> BatchedOutput:
        """Full-width output allocation (delegates to the local engine)."""
        return self._engine.new_output(kind, n=n)

    @property
    def fleet(self) -> dict | None:
        """The supervisor's :meth:`fleet_summary` (``None`` unsupervised)."""
        return (
            self._supervisor.fleet_summary()
            if self._supervisor is not None
            else None
        )

    # -- fan-out -------------------------------------------------------------

    def _plan_calls(self, n: int, pipe: bool) -> list[tuple]:
        """One args tuple per worker: worker ``w`` owns row group
        ``w // K`` x orbital block ``w % K`` (empty rows allowed)."""
        method = "eval_block_pipe" if pipe else "eval_block"
        rows = partition(n, self.n_row_groups) if n else [
            range(0) for _ in range(self.n_row_groups)
        ]
        calls = []
        for w in range(self.n_workers):
            r, b = divmod(w, self.n_blocks)
            block = self.blocks[b]
            calls.append(
                (
                    method,
                    (rows[r].start, rows[r].stop, block.start, block.stop),
                )
            )
        return calls

    def _dispatch(self, kind: Kind, n: int, pipe: bool = False) -> list:
        """Scatter one slot's fan-out and gather the acks (or streams)."""
        calls = self._plan_calls(n, pipe)
        per_worker_args = [
            (kind.value, 0, *bounds) for _, bounds in calls
        ]
        method = calls[0][0]
        if self._supervisor is not None:
            return self._supervisor.call(method, per_worker_args)
        for w, args in enumerate(per_worker_args):
            self._pool.start_call(w, method, args)
        return [self._pool.finish_call(w, method=method) for w in range(self.n_workers)]

    def evaluate_batch(
        self, kind, positions, out: BatchedOutput
    ) -> BatchedOutput:
        """Evaluate ``(ns, 3)`` positions across the worker grid.

        Bit-identical to the wrapped engine's ``evaluate_batch`` for the
        same inputs (the module-docstring contract); larger batches
        stream through the ring slot in ``max_positions`` pieces.
        """
        kind = Kind.coerce(kind)
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(
                f"expected (ns, 3) positions, got {positions.shape}"
            )
        if out.v.shape != (len(positions), self._engine.n_splines):
            raise ValueError(
                f"output holds ({out.n_positions}, {out.n_splines}), "
                f"batch needs ({len(positions)}, {self._engine.n_splines})"
            )
        if self._closed:
            raise RuntimeError("OrbitalEvaluator is closed")
        streams = _KERNEL_STREAMS[kind.value]
        BsplineBatched._begin(out, streams)
        t0 = time.perf_counter() if OBS.enabled else 0.0
        for lo in range(0, len(positions), self.max_positions) or (0,):
            hi = min(lo + self.max_positions, len(positions))
            n = hi - lo
            self._ring.positions(0)[:n] = positions[lo:hi]
            self._dispatch(kind, n)
            assembled = self._ring.views(0, n_positions=n)
            for stream in streams:
                getattr(out, stream)[lo:hi] = assembled[stream]
        out.valid = frozenset(streams)
        if OBS.enabled:
            dt = time.perf_counter() - t0
            OBS.count(
                "orbital_fanout_calls_total",
                kernel=kind.value,
                shards=str(self.n_blocks),
            )
            OBS.observe("orbital_fanout_seconds", dt, kernel=kind.value)
        return out

    def evaluate_batch_pipe(
        self, kind, positions, out: BatchedOutput
    ) -> BatchedOutput:
        """The measured pipe-gather baseline: identical fan-out topology,
        but workers pickle their result rectangles back through pipes and
        the parent assembles them.  Benchmark-only."""
        kind = Kind.coerce(kind)
        positions = np.asarray(positions, dtype=np.float64)
        if self._closed:
            raise RuntimeError("OrbitalEvaluator is closed")
        streams = _KERNEL_STREAMS[kind.value]
        BsplineBatched._begin(out, streams)
        for lo in range(0, len(positions), self.max_positions) or (0,):
            hi = min(lo + self.max_positions, len(positions))
            n = hi - lo
            self._ring.positions(0)[:n] = positions[lo:hi]
            replies = self._dispatch(kind, n, pipe=True)
            calls = self._plan_calls(n, pipe=True)
            for w, reply in enumerate(replies):
                row_lo, row_hi, col_lo, col_hi = calls[w][1]
                if row_hi <= row_lo:
                    continue
                for stream in streams:
                    getattr(out, stream)[
                        lo + row_lo : lo + row_hi, ..., col_lo:col_hi
                    ] = reply[stream]
        out.valid = frozenset(streams)
        return out

    def evaluate(self, kind, pos, out: BatchedOutput) -> BatchedOutput:
        """Single-position evaluation (batch of 1 through the fan-out)."""
        self._pos1[0] = pos
        return self.evaluate_batch(kind, self._pos1, out)

    # -- pass-through kernel spellings ---------------------------------------

    def v_batch(self, positions, out: BatchedOutput) -> None:
        self.evaluate_batch(Kind.V, positions, out)

    def vgl_batch(self, positions, out: BatchedOutput) -> None:
        self.evaluate_batch(Kind.VGL, positions, out)

    def vgh_batch(self, positions, out: BatchedOutput) -> None:
        self.evaluate_batch(Kind.VGH, positions, out)

    # -- chaos hook (testing) ------------------------------------------------

    def arm_fault(self, worker: int, kind: str, seconds: float = 0.0) -> None:
        """Arm a chaos fault on one replica (supervised mode recovers)."""
        if self._supervisor is not None:
            self._supervisor.arm_fault(worker, kind, seconds)
        else:
            self._pool.arm_chaos(worker, kind, seconds)

    # -- lifetime ------------------------------------------------------------

    def _release_shared(self) -> None:
        for handle in (self._ring, self._table):
            if handle is None:
                continue
            try:
                handle.close()
            except Exception:
                pass
            try:
                if handle.owner:
                    handle.unlink()
            except Exception:
                pass

    def close(self, timeout: float = 10.0) -> None:
        """Stop workers, then release the shared segments (idempotent)."""
        if getattr(self, "_closed", True):
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.close(timeout=timeout)
        else:
            self._pool.close(timeout=timeout)
        self._release_shared()

    def __enter__(self) -> "OrbitalEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def choose_split(
    n_walkers: int,
    processes: int,
    n_splines: int,
    split: str = "auto",
    kernel: str = "vgh",
    config=None,
    model=None,
) -> tuple[str, int]:
    """Resolve the ``split=`` policy to ``("walkers"|"orbitals", shards)``.

    ``"walkers"`` and ``"orbitals"`` are honoured as stated (orbital
    shard count from ``config.orbital_shards`` when decided, else one
    block per process, clamped by the planner).  ``"auto"`` chooses:

    1. an explicitly-decided ``config.orbital_shards`` (kwarg, env, or
       tuned-DB provenance) wins — the measured tuner's verdict;
    2. walker sharding when it already fills the pool
       (``n_walkers >= processes``), when there is no pool
       (``processes <= 1``), or when the spline axis is too narrow;
    3. otherwise Opt C, with the shard count ranked by the
       :class:`~repro.hwsim.perfmodel.BsplinePerfModel` of this host's
       cache hierarchy (``nested_efficiency`` must clear 0.3 — below
       that the model says the blocks are too narrow to pay for the
       fan-out, matching the paper's ``nth <= N/Nb`` limit).
    """
    if split not in _SPLITS:
        raise ValueError(f"split must be one of {_SPLITS}, got {split!r}")
    processes = max(1, int(processes))
    if split == "walkers":
        return "walkers", 1
    configured = config.orbital_shards if config is not None else None
    if split == "orbitals":
        shards = configured if configured else processes
        return "orbitals", len(plan_orbital_blocks(n_splines, shards))
    # -- auto ----------------------------------------------------------------
    from repro.config import SOURCE_ENV, SOURCE_KWARG, SOURCE_TUNED

    if (
        config is not None
        and configured
        and config.source_of("orbital_shards")
        in (SOURCE_KWARG, SOURCE_ENV, SOURCE_TUNED)
    ):
        if configured <= 1:
            return "walkers", 1
        return "orbitals", len(plan_orbital_blocks(n_splines, configured))
    if processes <= 1 or n_splines < 4 or n_walkers >= processes:
        return "walkers", 1
    shards = min(processes // max(int(n_walkers), 1), n_splines // 2)
    if shards <= 1:
        return "walkers", 1
    if model is None:
        from repro.hwsim.machine import host_machine_spec
        from repro.hwsim.perfmodel import BsplinePerfModel
        from repro.tune.planner import detect_caches

        caches = detect_caches()
        model = BsplinePerfModel(
            host_machine_spec(
                caches.l2_bytes, caches.llc_bytes, cpu_count=processes
            )
        )
    try:
        efficiency = model.nested_efficiency(kernel, n_splines, shards)
    except Exception:
        efficiency = 1.0  # a model that cannot rank never vetoes Opt C
    if efficiency < 0.3:
        return "walkers", 1
    return "orbitals", len(plan_orbital_blocks(n_splines, shards))


def resolve_split(
    n_walkers: int,
    processes: int,
    n_splines: int,
    split: str = "auto",
    orbital_shards: int | None = None,
    kernel: str = "vgh",
    config=None,
    model=None,
) -> tuple[str, int]:
    """Driver-facing :func:`choose_split` with the kwarg rung on top.

    The run drivers (``run_crowd_parallel`` etc.) take both a ``split=``
    policy and an explicit ``orbital_shards=`` count; this resolves the
    pair with the documented precedence: an explicit kwarg count wins
    over everything (rung 1), then the config/auto policy of
    :func:`choose_split` (env, tuned DB, heuristic).  ``split="walkers"``
    always means walker sharding — an ``orbital_shards`` kwarg alongside
    it is rejected rather than silently ignored.
    """
    if split not in _SPLITS:
        raise ValueError(f"split must be one of {_SPLITS}, got {split!r}")
    if orbital_shards is not None and orbital_shards <= 0:
        raise ValueError(
            f"orbital_shards must be positive, got {orbital_shards}"
        )
    if split == "walkers":
        if orbital_shards is not None and orbital_shards > 1:
            raise ValueError(
                "split='walkers' cannot honour orbital_shards="
                f"{orbital_shards}; pass split='orbitals' or 'auto'"
            )
        return "walkers", 1
    if orbital_shards is not None:
        shards = len(plan_orbital_blocks(n_splines, orbital_shards))
        if shards > 1 or split == "orbitals":
            return "orbitals", shards
        return "walkers", 1
    return choose_split(
        n_walkers,
        processes,
        n_splines,
        split=split,
        kernel=kernel,
        config=config,
        model=model,
    )
