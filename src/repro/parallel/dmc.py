"""Sharded DMC: propagation in worker processes, branching in the parent.

The DMC generation loop splits naturally at the paper's three stages:
drift-diffusion and measurement touch only per-walker state (workers),
while branching and population control are global decisions (parent).
This driver keeps the *authoritative* population in the parent as plain
arrays — positions, exact RNG bit-generator states, last local energy —
and ships each generation's shard to persistent workers that hold the
heavy wavefunction machinery (shared coefficient table, Slater-Jastrow
templates) and never pickle it back.

Workers rebuild derived state with ``recompute()`` before every sweep,
so a walker's trajectory is a pure function of its (positions, ions,
rng-state) triple.  Two consequences the tests pin down:

* **worker-count invariance** — the run is bit-identical for any
  ``n_workers`` (sharding is contiguous, gathering ordered, branching
  draws come from per-walker streams and a parent-side clone pool);
* **cadence-free resume** — unlike :func:`repro.qmc.dmc.run_dmc` (whose
  checkpoints recompute mid-run state), checkpoint/resume here is
  bit-identical to the uninterrupted run at *any* ``checkpoint_every``,
  and a resumed run may even use a different worker count.

A third consequence powers :mod:`repro.fleet`: because the parent's
walker arrays *are* the in-memory checkpoint, a worker that crashes or
hangs mid-generation loses nothing — restart it, re-ship its tasks,
and the generation replays bit-identically.  The generation loop is
therefore factored over an **executor** protocol: the plain
:class:`_PoolExecutor` here (contiguous shards, bare pool) and the
supervised, elastic, rebalancing executor in :mod:`repro.fleet.dmc`
run the *same* loop and produce the same traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.coeffs import pad_table_3d
from repro.lattice.cell import Cell
from repro.obs import OBS
from repro.parallel.crowd import CrowdSpec, build_walker_range, solve_spec_table
from repro.parallel.pool import ProcessCrowdPool
from repro.parallel.sharding import shard_slices, walker_rng
from repro.parallel.shared_table import SharedTable
from repro.qmc.batched_step import CrowdState, batched_sweep
from repro.qmc.dmc import DmcResult
from repro.qmc.drift_diffusion import sweep
from repro.qmc.estimators import LocalEnergy
from repro.qmc.particleset import ParticleSet
from repro.qmc.rng import WalkerRngPool
from repro.resilience.checkpoint import (
    CheckpointError,
    has_checkpoint,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.resilience.guards import GuardConfig, GuardViolation, PopulationGuard

__all__ = ["run_dmc_sharded"]

_CHECKPOINT_KIND = "dmc-sharded"


@dataclass
class _WalkerState:
    """The parent's authoritative view of one walker: arrays, no objects.

    ``home`` is the walker's current shard assignment — pure scheduling
    state used by the fleet executor's rebalancer.  It is deliberately
    excluded from :meth:`task` and from checkpoints: the physics is a
    function of the task triple only, which is what keeps traces
    identical across worker counts, rebalances and restarts.
    """

    positions: np.ndarray
    ion_positions: np.ndarray
    rng_state: dict
    e_local: float = 0.0
    home: int = -1

    def clone(self, rng: np.random.Generator) -> "_WalkerState":
        """Branching copy: same configuration, fresh stream (pool-drawn)."""
        return _WalkerState(
            positions=self.positions.copy(),
            ion_positions=self.ion_positions.copy(),
            rng_state=rng_state(rng),
            e_local=self.e_local,
            home=self.home,
        )

    def task(self) -> dict:
        return {
            "positions": self.positions,
            "ion_positions": self.ion_positions,
            "rng_state": self.rng_state,
        }


class _DmcShard:
    """Worker-process state: attached table + reusable wavefunction templates.

    Templates are grown on demand (branching can push a shard past its
    initial size); each task loads its positions into template ``i``,
    recomputes, and propagates — the template never carries state between
    generations.
    """

    def __init__(self, worker_id: int, spec: CrowdSpec, table_spec: dict):
        self._spec = spec
        self._table = SharedTable.attach(table_spec)
        # Template 0 doubles as the structural prototype; templates use a
        # fixed arbitrary configuration stream (walker 0's) — every task
        # overwrites positions before any physics runs.
        self._wfs, _ = build_walker_range(spec, self._table.array, 0, 1)
        # Every template shares template 0's orbital set so the shard's
        # tasks form ONE crowd for the batched step (walkers only batch
        # together when they share the orbital-set object).
        self._spos = self._wfs[0].slater.spos

    def _template(self, i: int):
        while len(self._wfs) <= i:
            wfs, _ = build_walker_range(
                self._spec, self._table.array, 0, 1, spos=self._spos
            )
            self._wfs.append(wfs[0])
        return self._wfs[i]

    def _load(self, i: int, task: dict):
        wf = self._template(i)
        wf.electrons.load_positions(task["positions"], wrap=False)
        wf.ions.load_positions(task["ion_positions"], wrap=False)
        wf.recompute()
        return wf

    def measure(self, tasks: list[dict], ion_charge: float) -> list[float]:
        """Local energy of each task's configuration (no RNG consumed)."""
        return [
            float(LocalEnergy(self._load(i, t), ion_charge).total())
            for i, t in enumerate(tasks)
        ]

    def propagate(
        self,
        tasks: list[dict],
        tau: float,
        ion_charge: float,
        step_mode: str = "batched",
    ) -> list[dict]:
        """One drift-diffusion sweep + measurement per task.

        ``step_mode="batched"`` loads every task into its template and
        advances the whole shard through the batched population kernels
        (one crowd — all templates share one orbital set), then measures
        in task order; measurement consumes no RNG, so this is bitwise
        identical to the per-task ``"walker"`` loop.
        """
        t0 = time.perf_counter()
        out = []
        if step_mode == "batched" and tasks:
            wfs = [self._load(i, t) for i, t in enumerate(tasks)]
            rngs = [restore_rng(t["rng_state"]) for t in tasks]
            state = CrowdState(wfs, rngs)
            batched_sweep(state, tau)
            for i, wf in enumerate(wfs):
                out.append(
                    {
                        "positions": wf.electrons.positions.copy(),
                        "rng_state": rng_state(rngs[i]),
                        "e_local": float(LocalEnergy(wf, ion_charge).total()),
                        "accepted": int(state.accepts[i]),
                        "attempted": state.n_electrons,
                    }
                )
        else:
            for i, task in enumerate(tasks):
                wf = self._load(i, task)
                rng = restore_rng(task["rng_state"])
                acc, att = sweep(wf, tau, rng)
                e = float(LocalEnergy(wf, ion_charge).total())
                out.append(
                    {
                        "positions": wf.electrons.positions.copy(),
                        "rng_state": rng_state(rng),
                        "e_local": e,
                        "accepted": acc,
                        "attempted": att,
                    }
                )
        if OBS.enabled and tasks:
            OBS.count("dmc_shard_walkers_propagated_total", len(tasks))
            OBS.observe("dmc_shard_propagate_seconds", time.perf_counter() - t0)
        return out

    def close(self) -> None:
        self._wfs = None
        try:
            self._table.close()
        except BufferError:
            pass


def _init_dmc_shard(worker_id: int, spec: CrowdSpec, table_spec: dict):
    return _DmcShard(worker_id, spec, table_spec)


class _LocalDmcShard(_DmcShard):
    """A :class:`_DmcShard` living in the parent over a plain table.

    The orbital-split executor holds the whole population here; the
    heavy kernels underneath are fanned across processes by the
    injected :class:`~repro.parallel.orbital.OrbitalEvaluator`, so this
    shard never needs a shared-memory attachment of its own.
    """

    def __init__(self, spec: CrowdSpec, table: np.ndarray):
        self._spec = spec
        self._array = table
        self._wfs, _ = build_walker_range(spec, table, 0, 1)
        self._spos = self._wfs[0].slater.spos

    def _template(self, i: int):
        while len(self._wfs) <= i:
            wfs, _ = build_walker_range(
                self._spec, self._array, 0, 1, spos=self._spos
            )
            self._wfs.append(wfs[0])
        return self._wfs[i]

    def close(self) -> None:
        self._wfs = None


class _OrbitalExecutor:
    """Opt C executor: population in the parent, kernels fanned.

    Trace-affecting work is identical to the pool executors — the same
    ``measure``/``propagate`` physics over the same task triples, just
    computed through orbital-block fan-out (bit-gated, so bit-identical
    to any walker sharding).  ``summary()`` surfaces the split and, when
    supervised, the fleet recovery counters.
    """

    def __init__(
        self, shard: _LocalDmcShard, fanned, step_mode: str, n_workers: int
    ):
        self._shard = shard
        self._fanned = fanned
        self._step_mode = step_mode
        self._n_workers = n_workers

    def measure(self, states: list[_WalkerState], ion_charge: float) -> list[float]:
        return self._shard.measure([s.task() for s in states], ion_charge)

    def propagate(
        self, states: list[_WalkerState], gen: int, tau: float, ion_charge: float
    ) -> list[dict]:
        return self._shard.propagate(
            [s.task() for s in states], tau, ion_charge, self._step_mode
        )

    def generation_end(
        self, gen: int, states: list[_WalkerState], seconds: float
    ) -> None:
        pass

    def finish(self) -> None:
        self._shard.close()

    def summary(self) -> dict | None:
        out = {
            "split": "orbitals",
            "orbital_shards": self._fanned.n_blocks,
            "n_workers": self._n_workers,
        }
        fleet = self._fanned.fleet
        if fleet is not None:
            out.update(fleet)
        return out


def _initial_population(spec: CrowdSpec) -> list[_WalkerState]:
    """Deterministic starting population from per-walker streams.

    Uses the same streams as :func:`repro.parallel.crowd.build_walker_range`
    (stream 0 configuration, stream 1 moves) but builds only the arrays —
    the parent never instantiates wavefunctions.
    """
    cell = Cell.cubic(spec.box)
    states = []
    for w in range(spec.n_walkers):
        conf_rng = walker_rng(spec.seed, w, stream=0)
        ion_positions = cell.frac_to_cart(conf_rng.random((2, 3)))
        electrons = ParticleSet.random("e", cell, 2 * spec.n_orbitals, conf_rng)
        states.append(
            _WalkerState(
                positions=electrons.positions.copy(),
                ion_positions=ion_positions,
                rng_state=rng_state(walker_rng(spec.seed, w, stream=1)),
            )
        )
    return states


def _scatter(pool: ProcessCrowdPool, states: list[_WalkerState], method: str, *args):
    """Shard ``states`` contiguously, run ``method`` on each shard, and
    gather results back in walker order."""
    slices = shard_slices(len(states), pool.n_workers)
    per_worker = [([s.task() for s in states[sl.start : sl.stop]], *args) for sl in slices]
    shards = pool.call(method, per_worker)
    merged = []
    for shard in shards:
        merged.extend(shard)
    return merged


class _PoolExecutor:
    """The plain executor: contiguous shards over an unsupervised pool."""

    def __init__(self, pool: ProcessCrowdPool, step_mode: str):
        self._pool = pool
        self._step_mode = step_mode

    def measure(self, states: list[_WalkerState], ion_charge: float) -> list[float]:
        return _scatter(self._pool, states, "measure", ion_charge)

    def propagate(
        self, states: list[_WalkerState], gen: int, tau: float, ion_charge: float
    ) -> list[dict]:
        return _scatter(
            self._pool, states, "propagate", tau, ion_charge, self._step_mode
        )

    def generation_end(
        self, gen: int, states: list[_WalkerState], seconds: float
    ) -> None:
        pass

    def finish(self) -> None:
        self._pool.merge_metrics()

    def summary(self) -> dict | None:
        return None


def _run_dmc_loop(
    executor,
    spec: CrowdSpec,
    *,
    n_generations: int,
    tau: float,
    target_population: int | None,
    feedback: float,
    max_population_factor: int,
    ion_charge: float,
    checkpoint_every: int | None,
    checkpoint_path,
    resume,
    guard: GuardConfig | None,
) -> DmcResult:
    """The shared DMC generation loop, parameterized by an executor.

    The executor provides ``measure(states, ion_charge)``,
    ``propagate(states, gen, tau, ion_charge)`` (results in global
    walker order), ``generation_end(gen, states, seconds)`` (scheduling
    hook — heartbeats, autoscaling), ``finish()`` and ``summary()``.
    Everything trace-affecting lives *here*, which is why the plain and
    the supervised executors are bit-identical by construction.

    ``resume="auto"`` resumes from ``checkpoint_path`` when a complete
    checkpoint exists there and starts fresh otherwise — the idiom for
    restart-in-a-loop deployments.
    """
    if n_generations <= 0:
        raise ValueError(f"n_generations must be positive, got {n_generations}")
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
    if isinstance(resume, str) and resume == "auto":
        if checkpoint_path is None:
            raise ValueError("resume='auto' requires checkpoint_path")
        resume = checkpoint_path if has_checkpoint(checkpoint_path) else None
    target = target_population or spec.n_walkers
    params = {
        "tau": tau,
        "target_population": target,
        "feedback": feedback,
        "max_population_factor": max_population_factor,
        "ion_charge": ion_charge,
        # The physical system is part of the contract; the worker count
        # deliberately is not (resume with any n_workers).
        "spec": {
            "n_walkers": spec.n_walkers,
            "n_orbitals": spec.n_orbitals,
            "box": spec.box,
            "grid_shape": list(spec.grid_shape),
            "engine": spec.engine,
            "seed": spec.seed,
        },
    }
    energy_policy = guard.on_nonfinite_energy if guard is not None else "ignore"
    pop_guard = PopulationGuard(target, max_population_factor)
    clone_pool = WalkerRngPool(spec.seed)
    dropped = 0

    def keep(e_local: float) -> bool:
        """Apply the non-finite-energy policy; True keeps the walker."""
        nonlocal dropped
        if np.isfinite(e_local) or energy_policy == "ignore":
            return True
        OBS.count("guard_trips_total", kind="nonfinite_energy", driver="dmc-sharded")
        OBS.event("guard:nonfinite_energy", cat="guard", driver="dmc-sharded")
        if energy_policy == "raise":
            raise GuardViolation(
                f"non-finite local energy {e_local!r} "
                f"(policy 'raise'; use 'drop' to continue)"
            )
        dropped += 1  # "drop" and "recompute" (see run_dmc_sharded docstring)
        return False

    if resume is not None:
        ckpt = load_checkpoint(resume, expect_kind=_CHECKPOINT_KIND)
        saved = ckpt.manifest["params"]
        for key in params:
            if saved.get(key) != params[key]:
                raise CheckpointError(
                    f"checkpoint parameter mismatch for {key!r}: "
                    f"saved {saved.get(key)!r}, requested {params[key]!r}"
                )
        n_saved = int(ckpt.manifest["n_walkers"])
        states = [
            _WalkerState(
                positions=ckpt.arrays["positions"][i].copy(),
                ion_positions=ckpt.arrays["ion_positions"][i].copy(),
                rng_state=ckpt.manifest["walker_rng_states"][i],
                e_local=float(ckpt.arrays["e_local"][i]),
            )
            for i in range(n_saved)
        ]
        clone_pool = WalkerRngPool.from_state(ckpt.manifest["pool_state"])
        start_gen = int(ckpt.manifest["generation"])
        e_trial = float(ckpt.arrays["e_trial"])
        accepted = int(ckpt.manifest["accepted"])
        attempted = int(ckpt.manifest["attempted"])
        energy_trace = list(ckpt.arrays["energy_trace"])
        pop_trace = [int(p) for p in ckpt.arrays["population_trace"]]
        et_trace = list(ckpt.arrays["e_trial_trace"])
    else:
        states = _initial_population(spec)
        energies = executor.measure(states, ion_charge)
        healthy = []
        for s, e in zip(states, energies):
            s.e_local = e
            if keep(e):
                healthy.append(s)
        if not healthy:
            raise GuardViolation("no walker with finite local energy at start")
        states = healthy
        e_trial = float(np.mean([s.e_local for s in states]))
        start_gen = 0
        accepted = attempted = 0
        energy_trace, pop_trace, et_trace = [], [], []

    for gen in range(start_gen, n_generations):
        t_gen = time.perf_counter()
        results = executor.propagate(states, gen, tau, ion_charge)
        weights: list[float | None] = []
        for s, r in zip(states, results):
            e_old = s.e_local
            s.positions = r["positions"]
            s.rng_state = r["rng_state"]
            s.e_local = r["e_local"]
            accepted += r["accepted"]
            attempted += r["attempted"]
            if not keep(s.e_local):
                weights.append(None)
                continue
            weights.append(
                float(np.exp(-tau * (0.5 * (s.e_local + e_old) - e_trial)))
            )
        new_states: list[_WalkerState] = []
        cap = pop_guard.cap
        for s, wt in zip(states, weights):
            if wt is None:
                continue
            # The branching uniform comes from the walker's own
            # stream (as in run_dmc), restored parent-side.
            rng = restore_rng(s.rng_state)
            n_copies = int(wt + rng.random())
            s.rng_state = rng_state(rng)
            for c in range(n_copies):
                if len(new_states) >= cap:
                    break
                if c == 0:
                    new_states.append(s)
                else:
                    new_states.append(s.clone(clone_pool.next_rng()))
                    OBS.count("dmc_branch_clones_total")
        states = pop_guard.enforce(new_states, states, clone_pool)
        e_est = float(np.mean([s.e_local for s in states]))
        e_trial = e_est - feedback * np.log(len(states) / target)
        energy_trace.append(e_est)
        pop_trace.append(len(states))
        et_trace.append(e_trial)
        dt = time.perf_counter() - t_gen
        if OBS.enabled:
            OBS.count("dmc_generations_total")
            OBS.observe("dmc_generation_seconds", dt)
            OBS.gauge("dmc_population", len(states))
            OBS.gauge("dmc_e_trial", e_trial)
            OBS.complete(
                "dmc:generation",
                t_gen,
                dt,
                cat="qmc",
                generation=gen,
                population=len(states),
            )
        if checkpoint_every is not None and (gen + 1) % checkpoint_every == 0:
            save_checkpoint(
                checkpoint_path,
                {
                    "kind": _CHECKPOINT_KIND,
                    "generation": gen + 1,
                    "accepted": accepted,
                    "attempted": attempted,
                    "n_walkers": len(states),
                    "pool_state": clone_pool.state,
                    "walker_rng_states": [s.rng_state for s in states],
                    "params": params,
                },
                {
                    "positions": np.stack([s.positions for s in states]),
                    "ion_positions": np.stack(
                        [s.ion_positions for s in states]
                    ),
                    "e_local": np.asarray(
                        [s.e_local for s in states], dtype=np.float64
                    ),
                    "e_trial": np.asarray(e_trial, dtype=np.float64),
                    "energy_trace": np.asarray(energy_trace, dtype=np.float64),
                    "population_trace": np.asarray(pop_trace, dtype=np.int64),
                    "e_trial_trace": np.asarray(et_trace, dtype=np.float64),
                },
            )
        # Scheduling hook (heartbeats, rebalance accounting, autoscale)
        # runs after all trace-affecting work for the generation.
        executor.generation_end(gen, states, dt)
    executor.finish()
    return DmcResult(
        energy_trace=np.asarray(energy_trace),
        population_trace=np.asarray(pop_trace),
        e_trial_trace=np.asarray(et_trace),
        acceptance=accepted / max(attempted, 1),
        rescues=pop_guard.rescues,
        truncations=pop_guard.truncations,
        dropped_walkers=dropped,
        fleet=executor.summary(),
    )


def run_dmc_sharded(
    spec: CrowdSpec,
    n_workers: int = 1,
    n_generations: int = 20,
    tau: float = 0.05,
    target_population: int | None = None,
    feedback: float = 1.0,
    max_population_factor: int = 4,
    ion_charge: float = 4.0,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume=None,
    guard: GuardConfig | None = None,
    start_method: str | None = None,
    step_mode: str | None = None,
    fleet=None,
    injector=None,
    split: str = "walkers",
    orbital_shards: int | None = None,
) -> DmcResult:
    """Run DMC with propagation sharded over ``n_workers`` processes.

    ``split`` selects the sharded axis (see
    :func:`~repro.parallel.crowd.run_crowd_parallel`): under
    ``"orbitals"`` the authoritative population *and* the propagation
    loop stay in the parent, and each generation's batched kernel calls
    are fanned across the pool along the spline axis — bit-identical to
    the walker split (``DmcResult.fleet`` then reports the split and,
    when supervised, the recovery counters; orbital shards are
    stateless replicas, so there is no walker rebalancing to report).

    Parameters mirror :func:`repro.qmc.dmc.run_dmc` where they overlap;
    the ensemble itself is described by ``spec`` (the parent builds the
    initial population deterministically from per-walker streams).
    ``step_mode`` selects batched shard propagation (default) or the
    per-walker sweep; both are bit-identical, so — like the worker
    count — the mode is deliberately not part of the checkpoint
    contract.  ``resume="auto"`` resumes from ``checkpoint_path`` if a
    checkpoint exists there, else starts fresh.

    Passing a :class:`repro.fleet.FleetConfig` as ``fleet`` delegates to
    :func:`repro.fleet.run_dmc_supervised`: the same loop under a
    supervisor with crash/hang recovery, optional elastic scaling and
    shard rebalancing — still bit-identical.  ``injector`` (a
    :class:`~repro.resilience.faults.FaultInjector` carrying process
    faults) requires ``fleet``.

    Guard policy note: workers recompute derived state before every
    sweep, so the ``"recompute"`` non-finite-energy policy has nothing
    further to rebuild — it behaves like ``"drop"`` here.  ``"raise"``
    and ``"ignore"`` behave as in ``run_dmc``.

    Returns the same :class:`~repro.qmc.dmc.DmcResult` shape as the
    sequential driver.  ``step_mode=None`` resolves through the spec's
    :class:`~repro.config.RunConfig`, then ``REPRO_STEP_MODE``.
    """
    from repro.config import effective_step_mode

    step_mode = effective_step_mode(step_mode, spec.config)
    if step_mode not in ("batched", "walker"):
        raise ValueError(
            f"step_mode must be 'batched' or 'walker', got {step_mode!r}"
        )
    if split != "walkers" or orbital_shards is not None:
        from repro.parallel.orbital import OrbitalEvaluator, resolve_split

        mode, shards = resolve_split(
            spec.n_walkers,
            n_workers,
            spec.n_orbitals,
            split=split,
            orbital_shards=orbital_shards,
            config=spec.run_config(),
        )
        if mode == "orbitals":
            if injector is not None:
                raise ValueError(
                    "fault injectors target walker shards; orbital replicas "
                    "take faults via OrbitalEvaluator.arm_fault instead"
                )
            table = solve_spec_table(spec)
            spec = spec.resolved(table.dtype)
            shard = _LocalDmcShard(spec, table)
            fanned = OrbitalEvaluator(
                shard._spos.grid,
                shard._spos.engine.P,
                config=spec.config,
                processes=n_workers,
                orbital_shards=shards,
                supervise=fleet is not None,
                fleet_config=fleet,
                start_method=start_method,
            )
            shard._spos._batched = fanned
            try:
                return _run_dmc_loop(
                    _OrbitalExecutor(shard, fanned, step_mode, n_workers),
                    spec,
                    n_generations=n_generations,
                    tau=tau,
                    target_population=target_population,
                    feedback=feedback,
                    max_population_factor=max_population_factor,
                    ion_charge=ion_charge,
                    checkpoint_every=checkpoint_every,
                    checkpoint_path=checkpoint_path,
                    resume=resume,
                    guard=guard,
                )
            finally:
                fanned.close()
    if fleet is not None:
        from repro.fleet.dmc import run_dmc_supervised

        return run_dmc_supervised(
            spec,
            n_workers=n_workers,
            n_generations=n_generations,
            tau=tau,
            target_population=target_population,
            feedback=feedback,
            max_population_factor=max_population_factor,
            ion_charge=ion_charge,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            resume=resume,
            guard=guard,
            start_method=start_method,
            step_mode=step_mode,
            fleet=fleet,
            injector=injector,
        )
    if injector is not None:
        raise ValueError(
            "injector requires fleet supervision (pass fleet=FleetConfig(...))"
        )
    table = solve_spec_table(spec)
    # Pad in the parent so every worker attaches the ghost halo
    # zero-copy (build_walker_range detects the padded shape).
    shared = SharedTable.create(pad_table_3d(table))
    table_spec = dict(shared.spec, n_workers=n_workers)
    try:
        with ProcessCrowdPool(
            n_workers,
            _init_dmc_shard,
            (spec, table_spec),
            start_method=start_method,
        ) as pool:
            return _run_dmc_loop(
                _PoolExecutor(pool, step_mode),
                spec,
                n_generations=n_generations,
                tau=tau,
                target_population=target_population,
                feedback=feedback,
                max_population_factor=max_population_factor,
                ion_charge=ion_charge,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume=resume,
                guard=guard,
            )
    finally:
        shared.close()
        shared.unlink()
