"""The ``cc`` backend: the fused kernel compiled from C with the host toolchain.

Where the NumPy path makes ~10 einsum passes over a gathered
``(chunk, 64, N)`` temporary, this backend compiles (once, cached on
disk) a single C routine that walks the ghost-padded table directly:
for every position the 4x4x4 stencil is read once and all ten output
streams (V, 3 gradients, Laplacian, 6 Hessian components — the paper's
VGH) accumulate in registers and an L1-resident ``6 x N`` scratch.  No
gather temporary, no intermediate slabs, one pass over the data — the
memory-bound argument of the paper taken to its logical end on the CPU.

The contraction is the same staged z→y→x scheme, but the compiler is
free to fuse multiply-adds and the per-axis accumulations are ordered
differently from NumPy's einsum inner loops, so the backend declares
the **allclose** tier with labelled per-dtype tolerances (measured
worst-case normalized error is ~1e2 x tighter than declared).

Toolchain: any ``cc``-spelled C compiler (env override ``REPRO_CC``).
Shared objects are cached under ``~/.cache/repro/ccbackend`` (override
``REPRO_CC_CACHE_DIR``), keyed by a hash of the source + compiler, so
spawn-started fleet workers reuse the parent's build instead of
recompiling.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.backends.base import (
    BackendCapability,
    BackendCores,
    BackendUnavailable,
    KernelBackend,
)

__all__ = ["CcBackend"]

# One routine per (kernel, dtype); {REAL}/{SUFFIX} are templated below.
# Loop order matches the staged einsum contraction: for each position,
# the z axis collapses first (tz* registers), the y axis accumulates
# into the 6 x N scratch `u`, and the x axis folds `u` into the output
# slabs — the n (spline) axis is always innermost and contiguous, which
# is what lets the compiler vectorize every loop here.
_C_TEMPLATE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

void repro_v_{SUFFIX}(
    const {REAL} *restrict table, const int64_t *restrict base,
    int64_t sy, int64_t sz, int64_t ns, int64_t N,
    const {REAL} *restrict wx, const {REAL} *restrict wy,
    const {REAL} *restrict wz, {REAL} *restrict v)
{{
    for (int64_t s = 0; s < ns; ++s) {{
        const {REAL} *ax = wx + 4 * s;
        const {REAL} *ay = wy + 4 * s;
        const {REAL} *az = wz + 4 * s;
        {REAL} *restrict vs = v + s * N;
        memset(vs, 0, (size_t)N * sizeof({REAL}));
        for (int a = 0; a < 4; ++a) {{
            for (int b = 0; b < 4; ++b) {{
                const {REAL} *row = table + (base[s] + a * sy + b * sz) * N;
                const {REAL} wab = ax[a] * ay[b];
                const {REAL} z0 = az[0], z1 = az[1], z2 = az[2], z3 = az[3];
                for (int64_t n = 0; n < N; ++n) {{
                    const {REAL} tz = row[n] * z0 + row[N + n] * z1
                                    + row[2 * N + n] * z2 + row[3 * N + n] * z3;
                    vs[n] += wab * tz;
                }}
            }}
        }}
    }}
}}

int repro_vgh_{SUFFIX}(
    const {REAL} *restrict table, const int64_t *restrict base,
    int64_t sy, int64_t sz, int64_t ns, int64_t N,
    const {REAL} *restrict wx, const {REAL} *restrict dwx,
    const {REAL} *restrict d2wx,
    const {REAL} *restrict wy, const {REAL} *restrict dwy,
    const {REAL} *restrict d2wy,
    const {REAL} *restrict wz, const {REAL} *restrict dwz,
    const {REAL} *restrict d2wz,
    {REAL} *restrict v, {REAL} *restrict g, {REAL} *restrict l,
    {REAL} *restrict h, int64_t want_h)
{{
    {REAL} *u = ({REAL} *) malloc((size_t)(6 * N) * sizeof({REAL}));
    if (!u) return 1;
    {REAL} *restrict u00 = u,         *restrict u10 = u + N,
           *restrict u20 = u + 2 * N, *restrict u01 = u + 3 * N,
           *restrict u11 = u + 4 * N, *restrict u02 = u + 5 * N;
    for (int64_t s = 0; s < ns; ++s) {{
        const {REAL} *ax = wx + 4 * s, *dax = dwx + 4 * s, *d2ax = d2wx + 4 * s;
        const {REAL} *ay = wy + 4 * s, *day = dwy + 4 * s, *d2ay = d2wy + 4 * s;
        const {REAL} *az = wz + 4 * s, *daz = dwz + 4 * s, *d2az = d2wz + 4 * s;
        {REAL} *restrict vs = v + s * N;
        {REAL} *restrict gx = g + s * 3 * N;
        {REAL} *restrict gy = gx + N;
        {REAL} *restrict gz = gy + N;
        {REAL} *restrict ls = l + s * N;
        {REAL} *restrict hs = want_h ? h + s * 6 * N : NULL;
        memset(vs, 0, (size_t)N * sizeof({REAL}));
        memset(gx, 0, (size_t)(3 * N) * sizeof({REAL}));
        memset(ls, 0, (size_t)N * sizeof({REAL}));
        if (want_h) memset(hs, 0, (size_t)(6 * N) * sizeof({REAL}));
        for (int a = 0; a < 4; ++a) {{
            memset(u, 0, (size_t)(6 * N) * sizeof({REAL}));
            const {REAL} z0 = az[0], z1 = az[1], z2 = az[2], z3 = az[3];
            const {REAL} dz0 = daz[0], dz1 = daz[1], dz2 = daz[2], dz3 = daz[3];
            const {REAL} z20 = d2az[0], z21 = d2az[1], z22 = d2az[2],
                         z23 = d2az[3];
            for (int b = 0; b < 4; ++b) {{
                const {REAL} *row = table + (base[s] + a * sy + b * sz) * N;
                const {REAL} yb = ay[b], dyb = day[b], d2yb = d2ay[b];
                for (int64_t n = 0; n < N; ++n) {{
                    const {REAL} c0 = row[n], c1 = row[N + n],
                                 c2 = row[2 * N + n], c3 = row[3 * N + n];
                    const {REAL} tz0 = c0 * z0 + c1 * z1 + c2 * z2 + c3 * z3;
                    const {REAL} tz1 = c0 * dz0 + c1 * dz1 + c2 * dz2
                                     + c3 * dz3;
                    const {REAL} tz2 = c0 * z20 + c1 * z21 + c2 * z22
                                     + c3 * z23;
                    u00[n] += tz0 * yb;
                    u10[n] += tz0 * dyb;
                    u20[n] += tz0 * d2yb;
                    u01[n] += tz1 * yb;
                    u11[n] += tz1 * dyb;
                    u02[n] += tz2 * yb;
                }}
            }}
            const {REAL} xa = ax[a], dxa = dax[a], d2xa = d2ax[a];
            if (want_h) {{
                for (int64_t n = 0; n < N; ++n) {{
                    const {REAL} hxx = u00[n] * d2xa;
                    const {REAL} hyy = u20[n] * xa;
                    const {REAL} hzz = u02[n] * xa;
                    vs[n] += u00[n] * xa;
                    gx[n] += u00[n] * dxa;
                    gy[n] += u10[n] * xa;
                    gz[n] += u01[n] * xa;
                    ls[n] += hxx + hyy + hzz;
                    hs[n] += hxx;
                    hs[N + n] += u10[n] * dxa;
                    hs[2 * N + n] += u01[n] * dxa;
                    hs[3 * N + n] += hyy;
                    hs[4 * N + n] += u11[n] * xa;
                    hs[5 * N + n] += hzz;
                }}
            }} else {{
                for (int64_t n = 0; n < N; ++n) {{
                    const {REAL} hxx = u00[n] * d2xa;
                    const {REAL} hyy = u20[n] * xa;
                    const {REAL} hzz = u02[n] * xa;
                    vs[n] += u00[n] * xa;
                    gx[n] += u00[n] * dxa;
                    gy[n] += u10[n] * xa;
                    gz[n] += u01[n] * xa;
                    ls[n] += hxx + hyy + hzz;
                }}
            }}
        }}
    }}
    free(u);
    return 0;
}}
"""

_CFLAGS = ("-O3", "-march=native", "-fPIC", "-shared")

_LIB = None  # process-wide cache of the loaded shared object


def _compiler() -> str | None:
    return shutil.which(os.environ.get("REPRO_CC", "cc"))


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CC_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "ccbackend"


def _source() -> str:
    return _C_TEMPLATE.format(REAL="double", SUFFIX="f64") + _C_TEMPLATE.format(
        REAL="float", SUFFIX="f32"
    )


def _load_library() -> ctypes.CDLL:
    """Compile (or reuse the cached build of) the kernel library."""
    global _LIB
    if _LIB is not None:
        return _LIB
    cc = _compiler()
    if cc is None:
        raise BackendUnavailable(
            "backend 'cc' needs a C compiler ('cc' on PATH, or set "
            "REPRO_CC); none found."
        )
    source = _source()
    key = hashlib.sha256(
        (source + cc + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"repro_kernels_{key}.so"
    if not lib_path.exists():
        cache.mkdir(parents=True, exist_ok=True)
        src_path = cache / f"repro_kernels_{key}.c"
        src_path.write_text(source)
        # Build to a private name, then rename atomically: concurrent
        # workers either win the race or load the winner's build.
        with tempfile.NamedTemporaryFile(
            dir=cache, suffix=".so", delete=False
        ) as tmp:
            tmp_path = Path(tmp.name)
        try:
            proc = subprocess.run(
                [cc, *_CFLAGS, "-o", str(tmp_path), str(src_path)],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                raise BackendUnavailable(
                    f"backend 'cc' failed to compile its kernels with "
                    f"{cc!r}:\n{proc.stderr.strip()}"
                )
            os.replace(tmp_path, lib_path)
        finally:
            tmp_path.unlink(missing_ok=True)
    lib = ctypes.CDLL(str(lib_path))
    i64 = ctypes.c_int64
    ptr = ctypes.c_void_p
    for suffix in ("f64", "f32"):
        fn_v = getattr(lib, f"repro_v_{suffix}")
        fn_v.restype = None
        fn_v.argtypes = [ptr, ptr, i64, i64, i64, i64, ptr, ptr, ptr, ptr]
        fn_vgh = getattr(lib, f"repro_vgh_{suffix}")
        fn_vgh.restype = ctypes.c_int
        fn_vgh.argtypes = [ptr, ptr, i64, i64, i64, i64] + [ptr] * 13 + [i64]
    _LIB = lib
    return lib


def _p(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


class CcBackend(KernelBackend):
    """Fused single-pass C kernels, compiled on first use and disk-cached."""

    capability = BackendCapability(
        name="cc",
        tier="allclose",
        # Declared bounds; the conformance harness holds every build to
        # them, and measured normalized error sits orders of magnitude
        # below (the reassociation differs by a handful of ulps).
        tolerances=(
            ("float64", 1e-12, 1e-12),
            ("float32", 1e-4, 1e-4),
        ),
        requires=(),
        install_hint=(
            "Install a C toolchain (e.g. gcc) or point REPRO_CC at one."
        ),
        description=(
            "fused gather+contraction compiled from C via the host "
            "toolchain (allclose tier; cached under ~/.cache/repro)"
        ),
    )

    def availability_error(self) -> str | None:
        if _compiler() is None:
            return (
                "backend 'cc' needs a C compiler ('cc' on PATH, or set "
                f"REPRO_CC). {self.capability.install_hint}"
            )
        return None

    def make_cores(self, engine) -> BackendCores:
        self._check_engine(engine)
        lib = _load_library()
        suffix = "f64" if engine.dtype == np.float64 else "f32"
        fn_v = getattr(lib, f"repro_v_{suffix}")
        fn_vgh = getattr(lib, f"repro_vgh_{suffix}")
        flat = np.ascontiguousarray(engine._flat)
        n = engine.n_splines
        sy, sz = engine._row_strides

        def v_core(positions, v):
            base, ((ax, _, _), (ay, _, _), (az, _, _)) = engine._locate_weights(
                positions
            )
            fn_v(
                _p(flat), _p(base), sy, sz, len(positions), n,
                _p(ax), _p(ay), _p(az), _p(v),
            )

        def vgh_core(positions, v, g, l, h):
            base, (wx3, wy3, wz3) = engine._locate_weights(positions)
            status = fn_vgh(
                _p(flat), _p(base), sy, sz, len(positions), n,
                _p(wx3[0]), _p(wx3[1]), _p(wx3[2]),
                _p(wy3[0]), _p(wy3[1]), _p(wy3[2]),
                _p(wz3[0]), _p(wz3[1]), _p(wz3[2]),
                _p(v), _p(g), _p(l),
                _p(h if h is not None else v), 1 if h is not None else 0,
            )
            if status != 0:
                raise MemoryError(
                    "cc backend could not allocate its contraction scratch"
                )

        return BackendCores(v=v_core, vgh=vgh_core)
