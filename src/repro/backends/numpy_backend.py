"""The NumPy backend: today's einsum path, always available, exact tier.

This backend *is* the PR5 memory path — the ghost-padded flat-index
gather plus spline-tiled z→y→x einsum contraction cores that
``tests/core/test_padded_gather.py`` proves bitwise-identical to the
frozen PR4 oracle for every (chunk, tile, dtype, seam position).  It
claims the ``exact`` tier on that evidence, and the backend conformance
suite re-proves it through the same harness every other backend is held
to.

It is the fallback target of every resolution path: ``auto`` degrades
here when no compiled backend is importable, and fleet workers that
cannot honour an explicit compiled-backend request degrade here rather
than kill the run (recorded on the ``backend_fallback_total`` counter).
"""

from __future__ import annotations

from repro.backends.base import BackendCapability, BackendCores, KernelBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Serve the engine's own einsum contraction cores (the PR5 path)."""

    capability = BackendCapability(
        name="numpy",
        tier="exact",
        description=(
            "ghost-padded gather + tiled einsum contractions (always "
            "available; bit-identical to the reference oracle)"
        ),
    )

    def make_cores(self, engine) -> BackendCores:
        self._check_engine(engine)
        # The engine's private cores already implement chunk-view
        # semantics; handing them back keeps a single source of truth
        # for the exact-tier arithmetic.
        return BackendCores(v=engine._numpy_v_core, vgh=engine._numpy_vgh_core)
