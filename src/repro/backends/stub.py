"""Template for future device backends (CuPy / torch): copy, fill in, register.

This module is the documented starting point the tentpole promises for
GPU backends.  It is **not** registered by default and its cores raise
:class:`NotImplementedError`; its value is the worked-through checklist
of what a device backend owes the harness:

1. **Capability honesty.**  Declare only the (kinds, dtypes) the device
   kernels actually serve, put every required import in
   ``requires`` (so ``auto`` resolution can skip the backend cleanly on
   CPU-only hosts), and declare the ``allclose`` tier with *measured*
   per-dtype tolerances — device accumulation order will not match
   NumPy's, so the ``exact`` tier is off the table.
2. **Host-side contract.**  ``make_cores`` receives the engine with its
   ghost-padded ``_flat`` table already built; upload it **once** here
   (never per chunk) and keep the handle in the returned closures.  The
   per-call contract is host-in/host-out: ``positions`` arrives as a
   host ``(ns, 3)`` float64 array and results must land in the provided
   host output views — copy back before returning, because the engine's
   stream-poisoning and ``as_canonical()`` read them immediately.
3. **Conformance before service.**  Register with
   ``register_backend(MyGpuBackend())`` (eager verification is the
   default) — the differential harness then proves every (kind, dtype,
   chunk/tile, seam) case against the frozen oracle before the backend
   can be named by ``--backend``.  Nothing else to wire: the
   registry-parametrized conformance suite under ``tests/backends/``
   picks the new name up automatically.
"""

from __future__ import annotations

from repro.backends.base import BackendCapability, BackendCores, KernelBackend

__all__ = ["StubDeviceBackend"]


class StubDeviceBackend(KernelBackend):
    """Skeleton device backend; every core raises ``NotImplementedError``.

    Subclass (or copy) this, replace ``cupy`` with the real device
    module, and implement the two closures in :meth:`make_cores`.
    """

    capability = BackendCapability(
        name="stub-device",
        dtypes=("float32", "float64"),
        tier="allclose",
        tolerances=(
            # Placeholder bounds: measure on real hardware and tighten.
            ("float64", 1e-12, 1e-12),
            ("float32", 1e-4, 1e-4),
        ),
        requires=("cupy",),
        install_hint=(
            "Install a CUDA-enabled `cupy` wheel matching your driver."
        ),
        description=(
            "documented template for device backends; raises "
            "NotImplementedError until the kernels are filled in"
        ),
    )

    def make_cores(self, engine) -> BackendCores:
        self._check_engine(engine)
        # A real implementation uploads engine._flat to the device here
        # and captures the device handle in the closures below.

        def v_core(positions, v):
            raise NotImplementedError(
                "StubDeviceBackend is a template: implement the device "
                "V kernel (see module docstring)"
            )

        def vgh_core(positions, v, g, l, h):
            raise NotImplementedError(
                "StubDeviceBackend is a template: implement the device "
                "VGH kernel (see module docstring)"
            )

        return BackendCores(v=v_core, vgh=vgh_core)
