"""Backend contracts: capability records and the kernel-backend interface.

A *kernel backend* supplies the contraction cores of the batched
B-spline engine (:class:`repro.core.BsplineBatched`) — the fused
gather + z→y→x stencil contraction that turns a chunk of positions into
V/VGL/VGH output slabs.  The engine owns everything around the cores
(ghost-padded table, chunking, stream-validity poisoning, obs); a
backend only replaces the arithmetic inner loop, which is exactly the
part an accelerator or JIT can win on.

Every backend declares a :class:`BackendCapability` — which kernel
:class:`~repro.core.kinds.Kind`\\ s and dtypes it serves, and at which
**conformance tier** it promises to match the frozen oracle
(:class:`repro.core.batched_reference.ReferenceBatched`):

* ``"exact"`` — bit-for-bit: every output stream equals the oracle's
  under ``np.testing.assert_array_equal``.  Only backends that preserve
  NumPy's exact accumulation order can claim this tier.
* ``"allclose"`` — elementwise close at an explicit, *labelled*
  per-dtype ``(rtol, atol)``.  JIT/compiled backends that reassociate
  the stencil sums (or use FMA contraction) live here; the tolerance is
  part of the capability record, never an unstated test constant.

The declared tier is enforced by the differential-conformance harness
(:mod:`repro.backends.conformance`) before a backend may serve kernels
— see :func:`repro.backends.registry.resolve_backend`.
"""

from __future__ import annotations

import abc
import importlib
from dataclasses import dataclass

import numpy as np

from repro.core.kinds import Kind

__all__ = [
    "BackendCapability",
    "BackendConformanceError",
    "BackendUnavailable",
    "KernelBackend",
    "TIER_ALLCLOSE",
    "TIER_EXACT",
]

#: The two conformance tiers a backend may declare.
TIER_EXACT = "exact"
TIER_ALLCLOSE = "allclose"
_TIERS = (TIER_EXACT, TIER_ALLCLOSE)


class BackendUnavailable(RuntimeError):
    """The requested backend cannot run here (missing import / toolchain).

    The message always names what is missing and how to get it (the
    capability's ``install_hint``), so a CLI can surface it verbatim as
    an actionable error instead of a traceback.
    """


class BackendConformanceError(RuntimeError):
    """A backend failed its declared conformance tier against the oracle."""


@dataclass(frozen=True)
class BackendCapability:
    """What a backend can do, and how closely it matches the oracle.

    Attributes
    ----------
    name:
        Registry key (``"numpy"``, ``"numba"``, ``"cc"``, ...).
    kinds:
        Kernel kinds the backend serves.  All current backends serve all
        three; a partial backend (e.g. V-only on a device) is legal —
        the engine refuses unsupported kinds at construction.
    dtypes:
        Supported coefficient-table dtype names (``"float32"``,
        ``"float64"``).
    tier:
        ``"exact"`` or ``"allclose"`` (module docstring).
    tolerances:
        Per-dtype ``(dtype_name, rtol, atol)`` triples — required (and
        only meaningful) for the ``allclose`` tier.  These are the
        *declared* tolerances the conformance harness enforces and the
        benchmarks gate on; they are part of the public record.
    requires:
        Importable module names the backend needs (``("numba",)``).
        :meth:`KernelBackend.availability_error` checks them.
    install_hint:
        One actionable sentence for the unavailable-backend error.
    description:
        One line for ``--backend`` help and the docs table.
    """

    name: str
    kinds: tuple[Kind, ...] = (Kind.V, Kind.VGL, Kind.VGH)
    dtypes: tuple[str, ...] = ("float32", "float64")
    tier: str = TIER_EXACT
    tolerances: tuple[tuple[str, float, float], ...] = ()
    requires: tuple[str, ...] = ()
    install_hint: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.tier not in _TIERS:
            raise ValueError(
                f"tier must be one of {_TIERS}, got {self.tier!r}"
            )
        if self.tier == TIER_ALLCLOSE:
            declared = {t[0] for t in self.tolerances}
            missing = [d for d in self.dtypes if d not in declared]
            if missing:
                raise ValueError(
                    f"allclose-tier backend {self.name!r} must declare a "
                    f"(rtol, atol) tolerance for every supported dtype; "
                    f"missing {missing}"
                )
        elif self.tolerances:
            raise ValueError(
                f"exact-tier backend {self.name!r} must not declare "
                f"tolerances — exactness is the tolerance"
            )

    def supports(self, kind: Kind, dtype) -> bool:
        """Whether (kind, dtype) is inside this backend's envelope."""
        return kind in self.kinds and np.dtype(dtype).name in self.dtypes

    def tolerance_for(self, dtype) -> tuple[float, float]:
        """Declared ``(rtol, atol)`` for ``dtype``; ``(0.0, 0.0)`` if exact."""
        if self.tier == TIER_EXACT:
            return (0.0, 0.0)
        name = np.dtype(dtype).name
        for dname, rtol, atol in self.tolerances:
            if dname == name:
                return (rtol, atol)
        raise KeyError(
            f"backend {self.name!r} declares no tolerance for dtype {name}"
        )


@dataclass
class BackendCores:
    """The two chunk-level kernels a backend hands the engine.

    ``v(positions, v)`` fills one chunk's value slab; ``vgh(positions,
    v, g, l, h)`` fills value/gradient/Laplacian and — when ``h`` is not
    ``None`` — the six Hessian components.  ``positions`` is the
    chunk's ``(ns, 3)`` float64 slice; the output arguments are
    C-contiguous row views of the :class:`~repro.core.batched
    .BatchedOutput` streams in the engine's dtype.  The engine drives
    VGL through ``vgh`` with ``h=None``.
    """

    v: "object"
    vgh: "object"


class KernelBackend(abc.ABC):
    """One pluggable implementation of the batched kernel cores.

    Subclasses set :attr:`capability` and implement :meth:`make_cores`.
    Backends are stateless between engines: all per-table state (JIT
    specializations, device buffers, scratch) belongs to the closure
    returned by :meth:`make_cores`, so one registered backend instance
    can serve any number of engines and processes.
    """

    capability: BackendCapability

    @property
    def name(self) -> str:
        return self.capability.name

    def availability_error(self) -> str | None:
        """Why this backend cannot run here, or ``None`` if it can.

        The default checks that every module in ``capability.requires``
        imports.  Checked live (never cached) so tests can simulate a
        broken dependency by poisoning ``sys.modules`` — and so a fleet
        worker whose environment differs from the parent's reaches its
        own honest answer.
        """
        for module in self.capability.requires:
            try:
                importlib.import_module(module)
            except ImportError as exc:
                hint = self.capability.install_hint
                return (
                    f"backend {self.name!r} needs the {module!r} module "
                    f"({exc})." + (f" {hint}" if hint else "")
                )
        return None

    def is_available(self) -> bool:
        """Whether the backend can run in this process right now."""
        return self.availability_error() is None

    @abc.abstractmethod
    def make_cores(self, engine) -> BackendCores:
        """Build the chunk kernels for one engine (table, dtype, plan).

        Called once per :class:`~repro.core.batched.BsplineBatched`
        construction; compilation and scratch allocation happen here,
        never per call.  Must raise :class:`BackendUnavailable` if the
        engine's dtype falls outside :attr:`capability`.
        """

    def _check_engine(self, engine) -> None:
        """Shared envelope check for :meth:`make_cores` implementations."""
        err = self.availability_error()
        if err is not None:
            raise BackendUnavailable(err)
        if np.dtype(engine.dtype).name not in self.capability.dtypes:
            raise BackendUnavailable(
                f"backend {self.name!r} supports dtypes "
                f"{self.capability.dtypes}, engine table is "
                f"{np.dtype(engine.dtype).name}"
            )

    def __repr__(self) -> str:
        cap = self.capability
        return (
            f"<{type(self).__name__} {cap.name!r} tier={cap.tier} "
            f"dtypes={','.join(cap.dtypes)}>"
        )
